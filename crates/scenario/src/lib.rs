//! # mlscale-scenario — declarative scenario specs and the batch sweep engine
//!
//! The paper's contribution is evaluating distributed-ML scalability
//! across *configurations* — cluster shape, communication model,
//! workload, straggler regime. This crate turns those configurations into
//! **data**: a JSON scenario names everything the `mlscale` CLI can
//! express (hardware presets or explicit specs, collectives with α–β
//! latency, rack topologies, gd/bp workloads, straggler distributions,
//! heterogeneity, drop-slowest-k, provisioning queries) plus a **sweep
//! grid** of axes whose cross product the engine expands, evaluates in
//! parallel, and reports per point and in a roll-up.
//!
//! ```json
//! {
//!   "name": "latency-grid",
//!   "workload": {"kind": "gd", "params": 12e6, "cost_per_example": 72e6,
//!                "batch": 60000, "flops": 84.48e9, "bits": 64, "max_n": 32},
//!   "sweep": [
//!     {"param": "comm", "values": ["tree", "ring", "halving", "spark"]},
//!     {"param": "latency", "values": [0, 1e-5, 1e-4, 1e-3]}
//!   ]
//! }
//! ```
//!
//! A scenario can also name a paper exhibit (`{"kind": "exhibit", "id":
//! "fig2", "max_n": 16}`): the engine then calls the same experiment
//! definition as the `exp-*`/`ext-*` binary with the same defaults and
//! seeds, so scenario-driven output is byte-identical to the binaries'
//! golden fixtures — checked-in scenario files under `scenarios/` are
//! cross-validated against `crates/bench/tests/golden/` in CI.
//!
//! Malformed documents never half-run: [`ScenarioSpec::from_json`]
//! validates the whole document *including a dry expansion of every grid
//! point* and reports the offending key by full path
//! (`workload.straggler.mean`, `sweep[2].values`, `grid point g-p014`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod adaptive;
pub mod checkpoint;
pub mod run;
pub mod spec;
pub mod store;

pub use adaptive::{run_adaptive, run_adaptive_pooled, AdaptiveSweep, FrontierPoint};
pub use checkpoint::{
    run_checkpointed, run_checkpointed_pooled, run_sharded, run_sharded_pooled, CheckpointedSweep,
    ShardedSweep,
};
pub use run::{run, run_pooled, write_outcome, SweepOutcome, SweepSummary};
pub use spec::{
    AxisSpec, AxisValue, BpSpec, ExhibitSpec, GdSpec, GridPoint, HeteroSpec, PlanSpec,
    ResolvedWorkload, ScenarioSpec, SpecError, StragglerSpec, WorkloadSpec, EXHIBITS,
    MAX_GRID_POINTS,
};
pub use store::{
    peak_buffered_records, reset_buffer_telemetry, ShardedStore, DEFAULT_PER_POINT_MAX,
};
