//! The declarative scenario spec: JSON shapes, the path-tracking parser,
//! validation, and sweep-grid expansion.
//!
//! Parsing is hand-rolled over the vendored serde's [`Value`] tree rather
//! than derived, for one reason: every malformed input must fail with an
//! error that names the offending key by its full path
//! (`workload.straggler.mean`, `sweep[2].values`) — the derive machinery
//! cannot do that, and a sweep over a 24-point grid is unusable when the
//! only diagnostic is "expected number". Unknown fields are rejected, not
//! ignored: a typo'd `"latancy"` must not silently run the default.

use mlscale_core::hardware::{presets, ClusterSpec, Heterogeneity, LinkSpec, NodeSpec, RackSpec};
use mlscale_core::models::gd::{GdComm, GradientDescentModel};
use mlscale_core::speedup::DENSE_EVAL_MAX_N;
use mlscale_core::straggler::{StragglerGdModel, StragglerModel};
use mlscale_core::units::{BitsPerSec, FlopCount, FlopsRate, Seconds};
use serde::Value;
use std::fmt;

/// Grid sizes past this are almost certainly a typo'd range. Grids up
/// to the cap stream through the sharded store (`crate::store`) — the
/// limit bounds id widths and journal size, not resident memory.
pub const MAX_GRID_POINTS: usize = 1_000_000;

/// A validation or parse failure, carrying the full path of the offending
/// key (`workload.max_n`, `sweep[1].range.step`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// Dotted path to the offending key; empty for document-level errors.
    pub path: String,
    /// What is wrong with the value at `path`.
    pub message: String,
}

impl SpecError {
    /// Creates an error at a path.
    pub fn new(path: impl Into<String>, message: impl Into<String>) -> Self {
        Self {
            path: path.into(),
            message: message.into(),
        }
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.path.is_empty() {
            f.write_str(&self.message)
        } else {
            write!(f, "{}: {}", self.path, self.message)
        }
    }
}

impl std::error::Error for SpecError {}

type Result<T> = std::result::Result<T, SpecError>;

// ---------------------------------------------------------------------------
// Path-tracking object reader
// ---------------------------------------------------------------------------

/// A JSON object being consumed field-by-field; [`Obj::deny_unknown`]
/// rejects any key no getter asked for, naming it by full path.
struct Obj<'a> {
    path: String,
    entries: &'a [(String, Value)],
    consumed: Vec<&'a str>,
}

impl<'a> Obj<'a> {
    fn new(v: &'a Value, path: &str) -> Result<Self> {
        let Some(entries) = v.as_map() else {
            return Err(SpecError::new(
                path,
                format!("expected an object, got {}", kind_of(v)),
            ));
        };
        // Duplicate keys would silently resolve first-wins (the vendored
        // parser keeps both entries); a pasted-then-edited block must
        // fail as loudly as a duplicated CLI flag does.
        for (i, (key, _)) in entries.iter().enumerate() {
            if entries[..i].iter().any(|(k, _)| k == key) {
                let key_path = if path.is_empty() {
                    key.clone()
                } else {
                    format!("{path}.{key}")
                };
                return Err(SpecError::new(key_path, "key given more than once"));
            }
        }
        Ok(Self {
            path: path.to_string(),
            entries,
            consumed: Vec::new(),
        })
    }

    fn key_path(&self, key: &str) -> String {
        if self.path.is_empty() {
            key.to_string()
        } else {
            format!("{}.{key}", self.path)
        }
    }

    /// Marks `key` consumed and returns its value; `null` counts as absent.
    fn get(&mut self, key: &'a str) -> Option<&'a Value> {
        self.consumed.push(key);
        match self.entries.iter().find(|(k, _)| k == key) {
            Some((_, Value::Null)) | None => None,
            Some((_, v)) => Some(v),
        }
    }

    fn string(&mut self, key: &'a str) -> Result<Option<String>> {
        match self.get(key) {
            None => Ok(None),
            Some(Value::Str(s)) => Ok(Some(s.clone())),
            Some(v) => Err(SpecError::new(
                self.key_path(key),
                format!("expected a string, got {}", kind_of(v)),
            )),
        }
    }

    fn bool(&mut self, key: &'a str) -> Result<Option<bool>> {
        match self.get(key) {
            None => Ok(None),
            Some(Value::Bool(b)) => Ok(Some(*b)),
            Some(v) => Err(SpecError::new(
                self.key_path(key),
                format!("expected true or false, got {}", kind_of(v)),
            )),
        }
    }

    fn f64(&mut self, key: &'a str) -> Result<Option<f64>> {
        let path = self.key_path(key);
        match self.get(key) {
            None => Ok(None),
            Some(v) => match as_f64(v) {
                Some(f) => Ok(Some(f)),
                None => Err(SpecError::new(
                    path,
                    format!("expected a number, got {}", kind_of(v)),
                )),
            },
        }
    }

    fn uint(&mut self, key: &'a str) -> Result<Option<usize>> {
        let path = self.key_path(key);
        match self.get(key) {
            None => Ok(None),
            Some(v) => as_uint(v)
                .map(Some)
                .map_err(|msg| SpecError::new(path, msg)),
        }
    }

    /// Rejects any key not consumed by a getter.
    fn deny_unknown(&self) -> Result<()> {
        for (key, _) in self.entries {
            if !self.consumed.contains(&key.as_str()) {
                return Err(SpecError::new(
                    self.key_path(key),
                    format!(
                        "unknown field (expected one of: {})",
                        self.consumed.join(", ")
                    ),
                ));
            }
        }
        Ok(())
    }
}

/// The preset models, sourced from the canonical exhibit definitions in
/// `mlscale-workloads` (one copy of the paper's constants, not a
/// re-transcription that could drift from the exhibits a preset claims
/// to reproduce). `pod` is the Fig 2 job moved onto the two-tier rack
/// pod with the hierarchical collective — the same construction as the
/// CLI's `--preset pod`.
fn preset_model(preset: &str) -> Option<GradientDescentModel> {
    match preset {
        "fig2" => Some(mlscale_workloads::experiments::figures::fig2_model()),
        "fig3" => Some(mlscale_workloads::experiments::figures::fig3_model()),
        "pod" => Some(GradientDescentModel {
            cluster: presets::two_tier_pod(),
            comm: GdComm::Hierarchical,
            ..mlscale_workloads::experiments::figures::fig2_model()
        }),
        _ => None,
    }
}

fn kind_of(v: &Value) -> &'static str {
    match v {
        Value::Null => "null",
        Value::Bool(_) => "a boolean",
        Value::U64(_) | Value::I64(_) | Value::F64(_) => "a number",
        Value::Str(_) => "a string",
        Value::Seq(_) => "an array",
        Value::Map(_) => "an object",
    }
}

fn as_f64(v: &Value) -> Option<f64> {
    match *v {
        Value::U64(n) => Some(n as f64),
        Value::I64(n) => Some(n as f64),
        Value::F64(f) => Some(f),
        _ => None,
    }
}

fn as_uint(v: &Value) -> std::result::Result<usize, String> {
    match *v {
        Value::U64(n) => usize::try_from(n).map_err(|_| format!("integer {n} out of range")),
        Value::I64(n) => Err(format!("expected a non-negative integer, got {n}")),
        Value::F64(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => Ok(f as usize),
        Value::F64(f) => Err(format!("expected a non-negative integer, got {f}")),
        ref other => Err(format!(
            "expected a non-negative integer, got {}",
            kind_of(other)
        )),
    }
}

// ---------------------------------------------------------------------------
// Spec types
// ---------------------------------------------------------------------------

/// A parsed, validated scenario document.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario name — becomes the results-file prefix.
    pub name: String,
    /// Optional human-readable title (defaults to the name).
    pub title: Option<String>,
    /// What each grid point evaluates.
    pub workload: WorkloadSpec,
    /// Sweep axes; empty means a single (1-point) grid.
    pub sweep: Vec<AxisSpec>,
    /// Adaptive mode: evaluate a coarse sub-grid, then refine only
    /// around the (cost, expected time) Pareto frontier instead of
    /// evaluating every point (`--adaptive` sets this from the CLI).
    pub adaptive: bool,
}

/// The workload of a scenario.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadSpec {
    /// Gradient-descent scaling (the `mlscale gd`/`plan` model space).
    Gd(Box<GdSpec>),
    /// Graph-inference scaling (the `mlscale bp` model space).
    Bp(BpSpec),
    /// A named paper exhibit, reproduced exactly as its `exp-*`/`ext-*`
    /// binary would (same defaults, same seeds, byte-identical output).
    Exhibit(ExhibitSpec),
}

/// Straggler delay distribution (mirrors `--straggler`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StragglerSpec {
    /// No delays (the paper's assumption).
    Det,
    /// Uniform jitter on `[0, spread]`.
    Jitter {
        /// Jitter spread in seconds (≥ 0).
        spread: f64,
    },
    /// Exponential tail.
    Exp {
        /// Mean delay in seconds (≥ 0).
        mean: f64,
    },
    /// Lognormal tail.
    LogNormal {
        /// Log-space location.
        mu: f64,
        /// Log-space scale (≥ 0).
        sigma: f64,
    },
}

impl StragglerSpec {
    /// The core model for this spec.
    pub fn model(&self) -> StragglerModel {
        match *self {
            StragglerSpec::Det => StragglerModel::Deterministic,
            StragglerSpec::Jitter { spread } => StragglerModel::BoundedJitter { spread },
            StragglerSpec::Exp { mean } => StragglerModel::ExponentialTail { mean },
            StragglerSpec::LogNormal { mu, sigma } => StragglerModel::LogNormalTail { mu, sigma },
        }
    }
}

/// Compute-speed heterogeneity (mirrors `--hetero`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HeteroSpec {
    /// `count` workers at `factor`× nominal speed.
    Slow {
        /// Number of degraded workers.
        count: usize,
        /// Their speed multiplier (> 0).
        factor: f64,
    },
    /// Rack `r` at `factor^r` of nominal (needs a rack topology).
    Rack {
        /// Per-rack geometric speed factor (> 0).
        factor: f64,
    },
}

impl HeteroSpec {
    /// The core heterogeneity for this spec.
    pub fn model(&self) -> Heterogeneity {
        match *self {
            HeteroSpec::Slow { count, factor } => Heterogeneity::SlowWorkers { count, factor },
            HeteroSpec::Rack { factor } => Heterogeneity::RackDecay { factor },
        }
    }
}

/// Optional provisioning queries priced per point (mirrors `mlscale plan`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanSpec {
    /// Job length in iterations.
    pub iterations: f64,
    /// Price per node-hour.
    pub price: f64,
    /// Deadline in seconds for a cheapest-within-deadline query.
    pub deadline: Option<f64>,
    /// Budget for a fastest-within-budget query.
    pub budget: Option<f64>,
}

/// The gradient-descent workload: everything `mlscale gd`/`plan` can
/// express, as data. `None` means "use the CLI's default".
#[derive(Debug, Clone, PartialEq)]
pub struct GdSpec {
    /// Hardware+workload preset (`fig2`, `fig3`, `pod`); conflicts with
    /// the explicit model fields below.
    pub preset: Option<String>,
    /// Number of model parameters `W`.
    pub params: Option<f64>,
    /// Per-example gradient cost `C` in flops.
    pub cost_per_example: Option<f64>,
    /// Batch size `S`.
    pub batch: Option<f64>,
    /// Bits per parameter (default 32).
    pub bits: Option<usize>,
    /// Effective per-node flop/s.
    pub flops: Option<f64>,
    /// Link bandwidth in bit/s (default 1e9).
    pub bandwidth: Option<f64>,
    /// Per-message link latency in seconds (default 0).
    pub latency: Option<f64>,
    /// Collective: `tree|spark|linear|ring|halving|hier|none` (default tree).
    pub comm: Option<String>,
    /// Workers per rack (enables the two-tier topology).
    pub rack_size: Option<usize>,
    /// Inter-rack uplink bandwidth (needs `rack_size`).
    pub uplink_bandwidth: Option<f64>,
    /// Inter-rack uplink latency (needs `rack_size`).
    pub uplink_latency: Option<f64>,
    /// Evaluate `n ∈ 1..=max_n` (default 32).
    pub max_n: usize,
    /// Log-spaced evaluation: sample this many geometrically spaced
    /// worker counts over `[1, max_n]` instead of the dense range —
    /// required (and the only way) to go past the dense-mode limit
    /// (`DENSE_EVAL_MAX_N`), e.g. `max_n = 10⁶` with 200 points.
    pub log_points: Option<usize>,
    /// Weak scaling (per-instance time) instead of strong.
    pub weak: bool,
    /// Straggler delay distribution.
    pub straggler: Option<StragglerSpec>,
    /// Heterogeneity.
    pub hetero: Option<HeteroSpec>,
    /// Drop the slowest `k` workers per superstep.
    pub backup_k: usize,
    /// Optional provisioning queries per grid point.
    pub plan: Option<PlanSpec>,
}

/// The graph-inference workload (mirrors `mlscale bp`).
#[derive(Debug, Clone, PartialEq)]
pub struct BpSpec {
    /// Vertex count.
    pub vertices: f64,
    /// Edge count.
    pub edges: f64,
    /// Hub degree (default `(2E/V·10).max(4)` like the CLI).
    pub max_degree: Option<f64>,
    /// States per variable (default 2).
    pub states: usize,
    /// Effective per-node flop/s (default 7.6e9).
    pub flops: f64,
    /// Link bandwidth in bit/s (default: infinite, shared memory).
    pub bandwidth: Option<f64>,
    /// Vertex replication factor (default 0.5).
    pub replication: f64,
    /// Evaluate `n ∈ 1..=max_n` (default 80).
    pub max_n: usize,
}

/// A named paper exhibit to reproduce.
#[derive(Debug, Clone, PartialEq)]
pub struct ExhibitSpec {
    /// Exhibit id: `table1`, `fig1`, `fig2`, `fig3`, `fig4-small`,
    /// `ext-stragglers` or `ext-hierarchical-comm`.
    pub id: String,
    /// Worker-count range for the exhibits that take one (`fig2`,
    /// `ext-stragglers`, `ext-hierarchical-comm`); `None` uses the same
    /// default as the exhibit binary.
    pub max_n: Option<usize>,
}

/// Exhibits a scenario may name, with whether they accept `max_n`.
pub const EXHIBITS: &[(&str, bool)] = &[
    ("table1", false),
    ("fig1", false),
    ("fig2", true),
    ("fig3", false),
    ("fig4-small", false),
    ("ext-stragglers", true),
    ("ext-hierarchical-comm", true),
];

// ---------------------------------------------------------------------------
// Sweep axes
// ---------------------------------------------------------------------------

/// One value of a sweep axis.
#[derive(Debug, Clone, PartialEq)]
pub enum AxisValue {
    /// A real-valued setting (latency, bandwidth, jitter, …).
    Num(f64),
    /// An integer setting (max_n, rack_size, backup_k, …).
    Int(usize),
    /// A symbolic setting (comm).
    Str(String),
}

impl fmt::Display for AxisValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AxisValue::Num(x) => write!(f, "{x}"),
            AxisValue::Int(n) => write!(f, "{n}"),
            AxisValue::Str(s) => f.write_str(s),
        }
    }
}

/// One sweep axis: a parameter name and its values (explicit list or an
/// expanded range), in file order.
#[derive(Debug, Clone, PartialEq)]
pub struct AxisSpec {
    /// The swept parameter (a sweepable field of the workload).
    pub param: String,
    /// The axis values, in sweep order.
    pub values: Vec<AxisValue>,
}

/// One point of the expanded grid.
#[derive(Debug, Clone, PartialEq)]
pub struct GridPoint {
    /// 0-based index in expansion order.
    pub index: usize,
    /// Stable id: `<scenario-name>-pNNN` (zero-padded).
    pub id: String,
    /// `(param, value)` assignments, one per axis, in axis order.
    pub assignments: Vec<(String, AxisValue)>,
}

impl GridPoint {
    /// `latency=0.001, comm=ring` — the human-readable assignment list.
    pub fn label(&self) -> String {
        self.assignments
            .iter()
            .map(|(p, v)| format!("{p}={v}"))
            .collect::<Vec<_>>()
            .join(", ")
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

impl ScenarioSpec {
    /// Parses and validates a scenario document from JSON text.
    pub fn from_json(text: &str) -> Result<Self> {
        let value = serde_json::value_from_str(text)
            .map_err(|e| SpecError::new("", format!("invalid JSON: {e}")))?;
        Self::from_value(&value)
    }

    /// Parses and validates a scenario from a parsed [`Value`].
    pub fn from_value(value: &Value) -> Result<Self> {
        let mut obj = Obj::new(value, "")?;
        let name = obj
            .string("name")?
            .ok_or_else(|| SpecError::new("name", "missing required field"))?;
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
        {
            return Err(SpecError::new(
                "name",
                format!(
                    "must be non-empty [A-Za-z0-9_-] (it names the result files), got {name:?}"
                ),
            ));
        }
        let title = obj.string("title")?;
        let workload_value = obj
            .get("workload")
            .ok_or_else(|| SpecError::new("workload", "missing required field"))?;
        let workload = parse_workload(workload_value)?;
        let sweep = match obj.get("sweep") {
            None => Vec::new(),
            Some(v) => parse_sweep(v)?,
        };
        let adaptive = obj.bool("adaptive")?.unwrap_or(false);
        obj.deny_unknown()?;
        let spec = Self {
            name,
            title,
            workload,
            sweep,
            adaptive,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// The scenario's display title (explicit title or the name).
    pub fn display_title(&self) -> &str {
        self.title.as_deref().unwrap_or(&self.name)
    }
}

fn parse_workload(v: &Value) -> Result<WorkloadSpec> {
    let mut obj = Obj::new(v, "workload")?;
    let kind = obj
        .string("kind")?
        .ok_or_else(|| SpecError::new("workload.kind", "missing required field"))?;
    match kind.as_str() {
        "gd" => parse_gd(&mut obj).map(|gd| WorkloadSpec::Gd(Box::new(gd))),
        "bp" => parse_bp(&mut obj).map(WorkloadSpec::Bp),
        "exhibit" => parse_exhibit(&mut obj).map(WorkloadSpec::Exhibit),
        other => Err(SpecError::new(
            "workload.kind",
            format!("unknown workload kind {other:?} (use gd, bp or exhibit)"),
        )),
    }
}

fn parse_gd(obj: &mut Obj<'_>) -> Result<GdSpec> {
    let spec = GdSpec {
        preset: obj.string("preset")?,
        params: obj.f64("params")?,
        cost_per_example: obj.f64("cost_per_example")?,
        batch: obj.f64("batch")?,
        bits: obj.uint("bits")?,
        flops: obj.f64("flops")?,
        bandwidth: obj.f64("bandwidth")?,
        latency: obj.f64("latency")?,
        comm: obj.string("comm")?,
        rack_size: obj.uint("rack_size")?,
        uplink_bandwidth: obj.f64("uplink_bandwidth")?,
        uplink_latency: obj.f64("uplink_latency")?,
        max_n: obj.uint("max_n")?.unwrap_or(32),
        log_points: obj.uint("log_points")?,
        weak: obj.bool("weak")?.unwrap_or(false),
        straggler: match obj.get("straggler") {
            None => None,
            Some(v) => Some(parse_straggler(v)?),
        },
        hetero: match obj.get("hetero") {
            None => None,
            Some(v) => Some(parse_hetero(v)?),
        },
        backup_k: obj.uint("backup_k")?.unwrap_or(0),
        plan: match obj.get("plan") {
            None => None,
            Some(v) => Some(parse_plan(v)?),
        },
    };
    obj.deny_unknown()?;
    Ok(spec)
}

fn parse_straggler(v: &Value) -> Result<StragglerSpec> {
    let mut obj = Obj::new(v, "workload.straggler")?;
    let kind = obj
        .string("kind")?
        .ok_or_else(|| SpecError::new("workload.straggler.kind", "missing required field"))?;
    let spec = match kind.as_str() {
        "det" => StragglerSpec::Det,
        "jitter" => StragglerSpec::Jitter {
            spread: obj.f64("spread")?.ok_or_else(|| {
                SpecError::new("workload.straggler.spread", "missing required field")
            })?,
        },
        "exp" => StragglerSpec::Exp {
            mean: obj.f64("mean")?.ok_or_else(|| {
                SpecError::new("workload.straggler.mean", "missing required field")
            })?,
        },
        "lognormal" => StragglerSpec::LogNormal {
            mu: obj
                .f64("mu")?
                .ok_or_else(|| SpecError::new("workload.straggler.mu", "missing required field"))?,
            sigma: obj.f64("sigma")?.ok_or_else(|| {
                SpecError::new("workload.straggler.sigma", "missing required field")
            })?,
        },
        other => {
            return Err(SpecError::new(
                "workload.straggler.kind",
                format!("unknown straggler kind {other:?} (use det, jitter, exp or lognormal)"),
            ))
        }
    };
    obj.deny_unknown()?;
    match spec {
        StragglerSpec::Jitter { spread } if spread < 0.0 || !spread.is_finite() => {
            Err(SpecError::new(
                "workload.straggler.spread",
                "must be a finite non-negative number",
            ))
        }
        StragglerSpec::Exp { mean } if mean < 0.0 || !mean.is_finite() => Err(SpecError::new(
            "workload.straggler.mean",
            "must be a finite non-negative number",
        )),
        StragglerSpec::LogNormal { mu, sigma }
            if sigma < 0.0 || !sigma.is_finite() || !mu.is_finite() =>
        {
            Err(SpecError::new(
                "workload.straggler.sigma",
                "mu must be finite and sigma a finite non-negative number",
            ))
        }
        ok => Ok(ok),
    }
}

fn parse_hetero(v: &Value) -> Result<HeteroSpec> {
    let mut obj = Obj::new(v, "workload.hetero")?;
    let kind = obj
        .string("kind")?
        .ok_or_else(|| SpecError::new("workload.hetero.kind", "missing required field"))?;
    let spec = match kind.as_str() {
        "slow" => HeteroSpec::Slow {
            count: obj
                .uint("count")?
                .ok_or_else(|| SpecError::new("workload.hetero.count", "missing required field"))?,
            factor: obj.f64("factor")?.ok_or_else(|| {
                SpecError::new("workload.hetero.factor", "missing required field")
            })?,
        },
        "rack" => HeteroSpec::Rack {
            factor: obj.f64("factor")?.ok_or_else(|| {
                SpecError::new("workload.hetero.factor", "missing required field")
            })?,
        },
        other => {
            return Err(SpecError::new(
                "workload.hetero.kind",
                format!("unknown hetero kind {other:?} (use slow or rack)"),
            ))
        }
    };
    obj.deny_unknown()?;
    let factor = match spec {
        HeteroSpec::Slow { factor, .. } | HeteroSpec::Rack { factor } => factor,
    };
    if factor <= 0.0 || !factor.is_finite() {
        return Err(SpecError::new(
            "workload.hetero.factor",
            format!("speed factor must be positive and finite, got {factor}"),
        ));
    }
    Ok(spec)
}

fn parse_plan(v: &Value) -> Result<PlanSpec> {
    let mut obj = Obj::new(v, "workload.plan")?;
    let spec = PlanSpec {
        iterations: obj.f64("iterations")?.unwrap_or(1000.0),
        price: obj.f64("price")?.unwrap_or(1.0),
        deadline: obj.f64("deadline")?,
        budget: obj.f64("budget")?,
    };
    obj.deny_unknown()?;
    for (key, v, pos) in [
        ("iterations", Some(spec.iterations), true),
        ("price", Some(spec.price), true),
        ("deadline", spec.deadline, false),
        ("budget", spec.budget, false),
    ] {
        if let Some(v) = v {
            if !v.is_finite() || v < 0.0 || (pos && v == 0.0) {
                return Err(SpecError::new(
                    format!("workload.plan.{key}"),
                    format!("must be a finite positive number, got {v}"),
                ));
            }
        }
    }
    Ok(spec)
}

fn parse_bp(obj: &mut Obj<'_>) -> Result<BpSpec> {
    let spec = BpSpec {
        vertices: obj
            .f64("vertices")?
            .ok_or_else(|| SpecError::new("workload.vertices", "missing required field"))?,
        edges: obj
            .f64("edges")?
            .ok_or_else(|| SpecError::new("workload.edges", "missing required field"))?,
        max_degree: obj.f64("max_degree")?,
        states: obj.uint("states")?.unwrap_or(2),
        flops: obj.f64("flops")?.unwrap_or(7.6e9),
        bandwidth: obj.f64("bandwidth")?,
        replication: obj.f64("replication")?.unwrap_or(0.5),
        max_n: obj.uint("max_n")?.unwrap_or(80),
    };
    obj.deny_unknown()?;
    Ok(spec)
}

fn parse_exhibit(obj: &mut Obj<'_>) -> Result<ExhibitSpec> {
    let spec = ExhibitSpec {
        id: obj
            .string("id")?
            .ok_or_else(|| SpecError::new("workload.id", "missing required field"))?,
        max_n: obj.uint("max_n")?,
    };
    obj.deny_unknown()?;
    Ok(spec)
}

fn parse_sweep(v: &Value) -> Result<Vec<AxisSpec>> {
    let axes_json = v.as_seq().ok_or_else(|| {
        SpecError::new(
            "sweep",
            format!("expected an array of axes, got {}", kind_of(v)),
        )
    })?;
    let mut axes = Vec::with_capacity(axes_json.len());
    for (i, axis) in axes_json.iter().enumerate() {
        axes.push(parse_axis(axis, &format!("sweep[{i}]"))?);
    }
    Ok(axes)
}

fn parse_axis(v: &Value, path: &str) -> Result<AxisSpec> {
    let mut obj = Obj::new(v, path)?;
    let param = obj
        .string("param")?
        .ok_or_else(|| SpecError::new(format!("{path}.param"), "missing required field"))?;
    let values_json = obj.get("values").cloned();
    let range_json = obj.get("range").cloned();
    obj.deny_unknown()?;
    let values = match (values_json, range_json) {
        (Some(_), Some(_)) => {
            return Err(SpecError::new(
                path,
                "give either values or range, not both",
            ))
        }
        (None, None) => {
            return Err(SpecError::new(
                path,
                "an axis needs values (a non-empty array) or range ({from, to, step})",
            ))
        }
        (Some(values), None) => parse_axis_values(&values, &format!("{path}.values"))?,
        (None, Some(range)) => expand_range(&range, &format!("{path}.range"))?,
    };
    Ok(AxisSpec { param, values })
}

fn parse_axis_values(v: &Value, path: &str) -> Result<Vec<AxisValue>> {
    let items = v
        .as_seq()
        .ok_or_else(|| SpecError::new(path, format!("expected an array, got {}", kind_of(v))))?;
    if items.is_empty() {
        return Err(SpecError::new(
            path,
            "empty grid axis (a sweep axis needs at least one value)",
        ));
    }
    items
        .iter()
        .enumerate()
        .map(|(i, item)| match item {
            Value::U64(n) => usize::try_from(*n).map(AxisValue::Int).map_err(|_| {
                SpecError::new(format!("{path}[{i}]"), format!("integer {n} out of range"))
            }),
            Value::I64(n) => Ok(AxisValue::Num(*n as f64)),
            Value::F64(f) => Ok(AxisValue::Num(*f)),
            Value::Str(s) => Ok(AxisValue::Str(s.clone())),
            other => Err(SpecError::new(
                format!("{path}[{i}]"),
                format!(
                    "axis values must be numbers or strings, got {}",
                    kind_of(other)
                ),
            )),
        })
        .collect()
}

/// Expands `{from, to, step}` into an inclusive arithmetic progression:
/// all-integer endpoints yield integer values, anything else real ones.
fn expand_range(v: &Value, path: &str) -> Result<Vec<AxisValue>> {
    let mut obj = Obj::new(v, path)?;
    let raw = |obj: &mut Obj<'_>, key: &'static str| -> Result<(f64, bool)> {
        let path = obj.key_path(key);
        match obj.get(key) {
            Some(Value::U64(n)) => Ok((*n as f64, true)),
            Some(v) => as_f64(v).map(|f| (f, false)).ok_or_else(|| {
                SpecError::new(
                    path.clone(),
                    format!("expected a number, got {}", kind_of(v)),
                )
            }),
            None => Err(SpecError::new(path, "missing required field")),
        }
    };
    let (from, from_int) = raw(&mut obj, "from")?;
    let (to, to_int) = raw(&mut obj, "to")?;
    let (step, step_int) = raw(&mut obj, "step")?;
    obj.deny_unknown()?;
    if !from.is_finite() || !to.is_finite() || !step.is_finite() {
        return Err(SpecError::new(path, "range bounds must be finite"));
    }
    if step <= 0.0 {
        return Err(SpecError::new(
            format!("{path}.step"),
            format!("must be positive, got {step}"),
        ));
    }
    if to < from {
        return Err(SpecError::new(
            path,
            format!("empty grid axis: to ({to}) is below from ({from})"),
        ));
    }
    // Size check in float space, before the usize cast: a huge range
    // (to = 1e30) would otherwise saturate the cast and wrap to a silent
    // 0-point axis in release builds.
    let count_f = ((to - from) / step + 1e-9).floor() + 1.0;
    if count_f > MAX_GRID_POINTS as f64 {
        return Err(SpecError::new(
            path,
            format!("range expands to {count_f:.0} values (limit {MAX_GRID_POINTS})"),
        ));
    }
    let count = count_f as usize;
    let all_int = from_int && to_int && step_int;
    Ok((0..count)
        .map(|i| {
            if all_int {
                AxisValue::Int(from as usize + i * step as usize)
            } else {
                AxisValue::Num(from + i as f64 * step)
            }
        })
        .collect())
}

// ---------------------------------------------------------------------------
// Validation
// ---------------------------------------------------------------------------

/// Gd fields a preset fixes; naming one alongside `preset` (or sweeping
/// it) is a conflict, mirroring the CLI's rule.
const GD_PRESET_FIXED: &[&str] = &[
    "params",
    "cost_per_example",
    "batch",
    "bits",
    "flops",
    "bandwidth",
    "latency",
    "rack_size",
    "uplink_bandwidth",
    "uplink_latency",
];

/// Sweepable gd parameters and the value shape each accepts.
const GD_AXES: &[(&str, AxisKind)] = &[
    ("params", AxisKind::Num),
    ("cost_per_example", AxisKind::Num),
    ("batch", AxisKind::Num),
    ("flops", AxisKind::Num),
    ("bandwidth", AxisKind::Num),
    ("latency", AxisKind::Num),
    ("uplink_bandwidth", AxisKind::Num),
    ("uplink_latency", AxisKind::Num),
    ("jitter", AxisKind::Num),
    ("bits", AxisKind::Int),
    ("max_n", AxisKind::Int),
    ("log_points", AxisKind::Int),
    ("rack_size", AxisKind::Int),
    ("backup_k", AxisKind::Int),
    ("comm", AxisKind::Str),
];

/// Sweepable bp parameters.
const BP_AXES: &[(&str, AxisKind)] = &[
    ("vertices", AxisKind::Num),
    ("edges", AxisKind::Num),
    ("max_degree", AxisKind::Num),
    ("flops", AxisKind::Num),
    ("bandwidth", AxisKind::Num),
    ("replication", AxisKind::Num),
    ("states", AxisKind::Int),
    ("max_n", AxisKind::Int),
];

#[derive(Clone, Copy, PartialEq)]
enum AxisKind {
    Num,
    Int,
    Str,
}

impl ScenarioSpec {
    /// Cross-field validation: preset conflicts, axis applicability, and
    /// a dry expansion of every grid point (so `validate` catches a bad
    /// combination deep in the grid before any evaluation starts).
    fn validate(&self) -> Result<()> {
        match &self.workload {
            WorkloadSpec::Gd(gd) => {
                gd.validate("workload")?;
                self.validate_axes(GD_AXES, |param| {
                    gd.preset.is_some() && GD_PRESET_FIXED.contains(&param)
                })?;
            }
            WorkloadSpec::Bp(bp) => {
                bp.validate("workload")?;
                self.validate_axes(BP_AXES, |_| false)?;
            }
            WorkloadSpec::Exhibit(ex) => {
                ex.validate("workload")?;
                if !self.sweep.is_empty() {
                    return Err(SpecError::new(
                        "sweep",
                        "exhibit workloads reproduce one fixed exhibit and cannot be swept \
                         (use a gd or bp workload for grids)",
                    ));
                }
            }
        }
        if self.adaptive && self.sweep.is_empty() {
            return Err(SpecError::new(
                "adaptive",
                "adaptive refinement needs a non-empty sweep (there is no grid to refine)",
            ));
        }
        // Size and dense-cap screens come first: a typo'd range or an
        // over-cap max_n axis must be a named diagnostic carrying the
        // expanded point count *before* any per-point expansion work.
        let total = self.grid_len()?;
        self.screen_dense_cap(total)?;
        // Dry-run the whole grid, streaming: every point must yield a
        // valid resolved workload, but the grid is never collected.
        for point in self.grid_iter()? {
            self.resolve(&point)?;
        }
        Ok(())
    }

    /// Refuses, before any expansion work, a grid that sweeps `max_n`
    /// past the dense-mode limit with no `log_points` anywhere to lift
    /// it — the per-point dry run would otherwise only discover the bad
    /// value mid-iteration, after resolving every earlier point. The
    /// diagnostic reports the expanded point count of the refused grid.
    fn screen_dense_cap(&self, total: usize) -> Result<()> {
        let log_points_fixed = match &self.workload {
            WorkloadSpec::Gd(gd) => gd.log_points.is_some(),
            _ => false,
        };
        if log_points_fixed || self.sweep.iter().any(|a| a.param == "log_points") {
            return Ok(());
        }
        for (i, axis) in self.sweep.iter().enumerate() {
            if axis.param != "max_n" {
                continue;
            }
            for (j, value) in axis.values.iter().enumerate() {
                if let AxisValue::Int(n) = value {
                    if *n > DENSE_EVAL_MAX_N {
                        return Err(SpecError::new(
                            format!("sweep[{i}].values[{j}]"),
                            format!(
                                "max_n {n} exceeds the dense-mode limit {DENSE_EVAL_MAX_N}; \
                                 refused before expanding the {total}-point grid — set \
                                 log_points (e.g. 200) to evaluate a log-spaced ladder instead"
                            ),
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    fn validate_axes(
        &self,
        axes: &[(&str, AxisKind)],
        fixed_by_preset: impl Fn(&str) -> bool,
    ) -> Result<()> {
        let mut seen: Vec<&str> = Vec::new();
        for (i, axis) in self.sweep.iter().enumerate() {
            let path = format!("sweep[{i}].param");
            let Some(&(_, kind)) = axes.iter().find(|(p, _)| *p == axis.param) else {
                let names: Vec<&str> = axes.iter().map(|&(p, _)| p).collect();
                return Err(SpecError::new(
                    path,
                    format!(
                        "{:?} is not sweepable for this workload (sweepable: {})",
                        axis.param,
                        names.join(", ")
                    ),
                ));
            };
            if seen.contains(&axis.param.as_str()) {
                return Err(SpecError::new(
                    path,
                    format!("duplicate axis {:?}", axis.param),
                ));
            }
            seen.push(&axis.param);
            if fixed_by_preset(&axis.param) {
                return Err(SpecError::new(
                    path,
                    format!(
                        "{:?} is fixed by workload.preset {:?}; drop the preset to sweep it",
                        axis.param,
                        match &self.workload {
                            WorkloadSpec::Gd(gd) => gd.preset.clone().unwrap_or_default(),
                            _ => String::new(),
                        }
                    ),
                ));
            }
            for (j, value) in axis.values.iter().enumerate() {
                let ok = matches!(
                    (kind, value),
                    (AxisKind::Num, AxisValue::Num(_) | AxisValue::Int(_))
                        | (AxisKind::Int, AxisValue::Int(_))
                        | (AxisKind::Str, AxisValue::Str(_))
                );
                if !ok {
                    let expected = match kind {
                        AxisKind::Num => "a number",
                        AxisKind::Int => "a non-negative integer",
                        AxisKind::Str => "a string",
                    };
                    return Err(SpecError::new(
                        format!("sweep[{i}].values[{j}]"),
                        format!("axis {:?} expects {expected}, got {value}", axis.param),
                    ));
                }
            }
        }
        Ok(())
    }
}

impl GdSpec {
    /// Validates the (possibly override-resolved) gd workload; `path`
    /// prefixes every reported key.
    pub fn validate(&self, path: &str) -> Result<()> {
        let at = |key: &str| format!("{path}.{key}");
        if let Some(preset) = &self.preset {
            if !matches!(preset.as_str(), "fig2" | "fig3" | "pod") {
                return Err(SpecError::new(
                    at("preset"),
                    format!("unknown preset {preset:?} (use fig2, fig3 or pod)"),
                ));
            }
            let explicit: &[(&str, bool)] = &[
                ("params", self.params.is_some()),
                ("cost_per_example", self.cost_per_example.is_some()),
                ("batch", self.batch.is_some()),
                ("bits", self.bits.is_some()),
                ("flops", self.flops.is_some()),
                ("bandwidth", self.bandwidth.is_some()),
                ("latency", self.latency.is_some()),
                ("rack_size", self.rack_size.is_some()),
                ("uplink_bandwidth", self.uplink_bandwidth.is_some()),
                ("uplink_latency", self.uplink_latency.is_some()),
            ];
            if let Some((key, _)) = explicit.iter().find(|(_, set)| *set) {
                return Err(SpecError::new(
                    at(key),
                    format!(
                        "conflicts with preset {preset:?} (presets fix the hardware and \
                         workload; drop the preset to configure by hand)"
                    ),
                ));
            }
        } else {
            for (key, value) in [
                ("params", self.params),
                ("cost_per_example", self.cost_per_example),
                ("batch", self.batch),
                ("flops", self.flops),
            ] {
                match value {
                    None => return Err(SpecError::new(at(key), "missing required field")),
                    Some(v) if !(v.is_finite() && v > 0.0) => {
                        return Err(SpecError::new(
                            at(key),
                            format!("must be a finite positive number, got {v}"),
                        ))
                    }
                    _ => {}
                }
            }
            for (key, value, strictly_positive) in [
                ("bandwidth", self.bandwidth, true),
                ("latency", self.latency, false),
                ("uplink_bandwidth", self.uplink_bandwidth, true),
                ("uplink_latency", self.uplink_latency, false),
            ] {
                if let Some(v) = value {
                    if !v.is_finite() || v < 0.0 || (strictly_positive && v == 0.0) {
                        return Err(SpecError::new(
                            at(key),
                            format!("must be a finite non-negative number, got {v}"),
                        ));
                    }
                }
            }
            if let Some(bits) = self.bits {
                if bits == 0 || u32::try_from(bits).is_err() {
                    return Err(SpecError::new(at("bits"), format!("out of range: {bits}")));
                }
            }
            if let Some(rack) = self.rack_size {
                if rack == 0 {
                    return Err(SpecError::new(at("rack_size"), "must be at least 1"));
                }
            }
            if self.rack_size.is_none()
                && (self.uplink_bandwidth.is_some() || self.uplink_latency.is_some())
            {
                let key = if self.uplink_bandwidth.is_some() {
                    "uplink_bandwidth"
                } else {
                    "uplink_latency"
                };
                return Err(SpecError::new(
                    at(key),
                    "needs rack_size to define the racks",
                ));
            }
        }
        if let Some(comm) = &self.comm {
            if !matches!(
                comm.as_str(),
                "tree" | "spark" | "linear" | "ring" | "halving" | "hier" | "none"
            ) {
                return Err(SpecError::new(
                    at("comm"),
                    format!(
                        "unknown comm {comm:?} (use tree, spark, linear, ring, halving, hier or none)"
                    ),
                ));
            }
            if comm == "hier" && !self.has_racks() {
                return Err(SpecError::new(
                    at("comm"),
                    "hier needs a rack topology: set rack_size or use preset \"pod\"",
                ));
            }
        }
        if self.max_n < 1 {
            return Err(SpecError::new(at("max_n"), "must be at least 1"));
        }
        if self.max_n > DENSE_EVAL_MAX_N && self.log_points.is_none() {
            return Err(SpecError::new(
                at("max_n"),
                format!(
                    "{} exceeds the dense-mode limit {DENSE_EVAL_MAX_N} (one table entry and \
                     model call per n); set log_points (e.g. 200) to evaluate a log-spaced \
                     ladder instead",
                    self.max_n
                ),
            ));
        }
        if let Some(points) = self.log_points {
            if points < 2 {
                return Err(SpecError::new(
                    at("log_points"),
                    "a log-spaced ladder needs at least its two endpoints",
                ));
            }
        }
        if self.backup_k >= self.max_n {
            return Err(SpecError::new(
                at("backup_k"),
                format!(
                    "dropping {} workers leaves nothing at max_n {}; use a value below the \
                     cluster size",
                    self.backup_k, self.max_n
                ),
            ));
        }
        if self.backup_k > 0 && self.straggler.is_none() && self.hetero.is_none() {
            return Err(SpecError::new(
                at("backup_k"),
                "has no effect without a straggler distribution or heterogeneity; add a \
                 straggler/hetero field (a zero-valued one from a sweep axis is fine) or drop it",
            ));
        }
        if matches!(self.hetero, Some(HeteroSpec::Rack { .. })) && !self.has_racks() {
            return Err(SpecError::new(
                at("hetero"),
                "rack heterogeneity needs a rack topology: set rack_size or use preset \"pod\"",
            ));
        }
        Ok(())
    }

    /// Whether this spec describes a racked cluster.
    fn has_racks(&self) -> bool {
        self.rack_size.is_some() || self.preset.as_deref() == Some("pod")
    }

    /// Applies one sweep assignment; `path` names the grid point in errors.
    pub fn set_param(&mut self, param: &str, value: &AxisValue, path: &str) -> Result<()> {
        let num = || -> Result<f64> {
            match value {
                AxisValue::Num(x) => Ok(*x),
                AxisValue::Int(n) => Ok(*n as f64),
                AxisValue::Str(s) => Err(SpecError::new(
                    path,
                    format!("{param}: expected a number, got {s:?}"),
                )),
            }
        };
        let int = || -> Result<usize> {
            match value {
                AxisValue::Int(n) => Ok(*n),
                other => Err(SpecError::new(
                    path,
                    format!("{param}: expected a non-negative integer, got {other}"),
                )),
            }
        };
        match param {
            "params" => self.params = Some(num()?),
            "cost_per_example" => self.cost_per_example = Some(num()?),
            "batch" => self.batch = Some(num()?),
            "flops" => self.flops = Some(num()?),
            "bandwidth" => self.bandwidth = Some(num()?),
            "latency" => self.latency = Some(num()?),
            "uplink_bandwidth" => self.uplink_bandwidth = Some(num()?),
            "uplink_latency" => self.uplink_latency = Some(num()?),
            "jitter" => {
                match self.straggler {
                    None | Some(StragglerSpec::Det) | Some(StragglerSpec::Jitter { .. }) => {}
                    Some(_) => {
                        return Err(SpecError::new(
                            path,
                            "jitter axis conflicts with the workload's non-jitter straggler kind",
                        ))
                    }
                }
                let spread = num()?;
                if spread < 0.0 || !spread.is_finite() {
                    return Err(SpecError::new(
                        path,
                        format!("jitter: must be a finite non-negative number, got {spread}"),
                    ));
                }
                self.straggler = Some(StragglerSpec::Jitter { spread });
            }
            "bits" => self.bits = Some(int()?),
            "max_n" => self.max_n = int()?,
            "log_points" => self.log_points = Some(int()?),
            "rack_size" => self.rack_size = Some(int()?),
            "backup_k" => self.backup_k = int()?,
            "comm" => match value {
                AxisValue::Str(s) => self.comm = Some(s.clone()),
                other => {
                    return Err(SpecError::new(
                        path,
                        format!("comm: expected a string, got {other}"),
                    ))
                }
            },
            other => {
                return Err(SpecError::new(
                    path,
                    format!("{other:?} is not a sweepable gd parameter"),
                ))
            }
        }
        Ok(())
    }

    /// The straggler model (deterministic when unspecified).
    pub fn straggler_model(&self) -> StragglerModel {
        self.straggler
            .map_or(StragglerModel::Deterministic, |s| s.model())
    }

    /// Builds the straggler-wrapped model. [`Self::validate`] screens
    /// every failure mode ahead of time, but a parse/validation desync
    /// must not kill a long-lived process (`mlscale serve`), so
    /// violations surface as `SpecError`s naming the offending key path
    /// instead of panics.
    pub fn build(&self) -> Result<StragglerGdModel> {
        let inner = self.build_inner()?;
        Ok(StragglerGdModel {
            inner,
            straggler: self.straggler_model(),
            hetero: self.hetero.map_or(Heterogeneity::Uniform, |h| h.model()),
            backup_k: self.backup_k,
        })
    }

    /// A required field that validation should have guaranteed; absence
    /// is reported against its key path, not unwrapped.
    fn required(field: Option<f64>, key: &str) -> Result<f64> {
        field.ok_or_else(|| {
            SpecError::new(
                format!("workload.{key}"),
                "required without a preset (validation desync)",
            )
        })
    }

    /// Builds the deterministic gd model — field for field the same
    /// construction as the CLI's `gd_model`, so a scenario and the
    /// equivalent `mlscale gd` invocation price bit-identical models.
    fn build_inner(&self) -> Result<GradientDescentModel> {
        if let Some(preset) = &self.preset {
            let mut model = preset_model(preset).ok_or_else(|| {
                SpecError::new("workload.preset", format!("unknown preset {preset:?}"))
            })?;
            if self.comm.is_some() {
                model.comm = self.gd_comm()?;
            }
            return Ok(model);
        }
        let bandwidth = BitsPerSec::new(self.bandwidth.unwrap_or(1e9));
        let latency = Seconds::new(self.latency.unwrap_or(0.0));
        let mut cluster = ClusterSpec::new(
            NodeSpec::new(FlopsRate::new(Self::required(self.flops, "flops")?), 1.0),
            LinkSpec::new(bandwidth, latency),
        );
        if let Some(rack_size) = self.rack_size {
            let uplink = LinkSpec::new(
                BitsPerSec::new(self.uplink_bandwidth.unwrap_or(bandwidth.get())),
                Seconds::new(self.uplink_latency.unwrap_or(latency.as_secs())),
            );
            cluster = cluster.with_racks(RackSpec::new(rack_size, uplink));
        }
        Ok(GradientDescentModel {
            cost_per_example: FlopCount::new(Self::required(
                self.cost_per_example,
                "cost_per_example",
            )?),
            batch_size: Self::required(self.batch, "batch")?,
            params: Self::required(self.params, "params")?,
            bits_per_param: self.bits.unwrap_or(32) as u32,
            cluster,
            comm: self.gd_comm()?,
        })
    }

    fn gd_comm(&self) -> Result<GdComm> {
        match self.comm.as_deref().unwrap_or("tree") {
            "tree" => Ok(GdComm::TwoStageTree),
            "spark" => Ok(GdComm::Spark),
            "linear" => Ok(GdComm::LinearFlat),
            "ring" => Ok(GdComm::Ring),
            "halving" => Ok(GdComm::HalvingDoubling),
            "hier" => Ok(GdComm::Hierarchical),
            "none" => Ok(GdComm::None),
            other => Err(SpecError::new(
                "workload.comm",
                format!("unknown collective {other:?}"),
            )),
        }
    }
}

impl BpSpec {
    /// Validates the (possibly override-resolved) bp workload.
    pub fn validate(&self, path: &str) -> Result<()> {
        let at = |key: &str| format!("{path}.{key}");
        for (key, v, strictly_positive) in [
            ("vertices", Some(self.vertices), true),
            ("edges", Some(self.edges), true),
            ("max_degree", self.max_degree, true),
            ("flops", Some(self.flops), true),
            ("bandwidth", self.bandwidth, true),
            ("replication", Some(self.replication), false),
        ] {
            if let Some(v) = v {
                if !v.is_finite() || v < 0.0 || (strictly_positive && v == 0.0) {
                    return Err(SpecError::new(
                        at(key),
                        format!("must be a finite positive number, got {v}"),
                    ));
                }
            }
        }
        if self.states < 2 {
            return Err(SpecError::new(
                at("states"),
                format!("needs at least 2 states per variable, got {}", self.states),
            ));
        }
        if self.max_n < 1 {
            return Err(SpecError::new(at("max_n"), "must be at least 1"));
        }
        if self.max_n > DENSE_EVAL_MAX_N {
            return Err(SpecError::new(
                at("max_n"),
                format!(
                    "{} exceeds the dense-mode limit {DENSE_EVAL_MAX_N}: the bp workload \
                     evaluates (and Monte-Carlo loads) every n in 1..=max_n",
                    self.max_n
                ),
            ));
        }
        Ok(())
    }

    /// Applies one sweep assignment (see [`GdSpec::set_param`]).
    pub fn set_param(&mut self, param: &str, value: &AxisValue, path: &str) -> Result<()> {
        let num = || -> Result<f64> {
            match value {
                AxisValue::Num(x) => Ok(*x),
                AxisValue::Int(n) => Ok(*n as f64),
                AxisValue::Str(s) => Err(SpecError::new(
                    path,
                    format!("{param}: expected a number, got {s:?}"),
                )),
            }
        };
        let int = || -> Result<usize> {
            match value {
                AxisValue::Int(n) => Ok(*n),
                other => Err(SpecError::new(
                    path,
                    format!("{param}: expected a non-negative integer, got {other}"),
                )),
            }
        };
        match param {
            "vertices" => self.vertices = num()?,
            "edges" => self.edges = num()?,
            "max_degree" => self.max_degree = Some(num()?),
            "flops" => self.flops = num()?,
            "bandwidth" => self.bandwidth = Some(num()?),
            "replication" => self.replication = num()?,
            "states" => self.states = int()?,
            "max_n" => self.max_n = int()?,
            other => {
                return Err(SpecError::new(
                    path,
                    format!("{other:?} is not a sweepable bp parameter"),
                ))
            }
        }
        Ok(())
    }
}

impl ExhibitSpec {
    /// Validates the exhibit reference.
    pub fn validate(&self, path: &str) -> Result<()> {
        let Some(&(_, takes_max_n)) = EXHIBITS.iter().find(|(id, _)| *id == self.id) else {
            let names: Vec<&str> = EXHIBITS.iter().map(|&(id, _)| id).collect();
            return Err(SpecError::new(
                format!("{path}.id"),
                format!(
                    "unknown exhibit {:?} (use one of: {})",
                    self.id,
                    names.join(", ")
                ),
            ));
        };
        match self.max_n {
            Some(0) => Err(SpecError::new(
                format!("{path}.max_n"),
                "must be at least 1",
            )),
            Some(_) if !takes_max_n => Err(SpecError::new(
                format!("{path}.max_n"),
                format!("exhibit {:?} takes no max_n", self.id),
            )),
            Some(m) if m > DENSE_EVAL_MAX_N => Err(SpecError::new(
                format!("{path}.max_n"),
                format!("{m} exceeds the dense-mode limit {DENSE_EVAL_MAX_N}: exhibits sweep every n in 1..=max_n"),
            )),
            _ => Ok(()),
        }
    }
}

// ---------------------------------------------------------------------------
// Grid expansion
// ---------------------------------------------------------------------------

/// A grid point together with its fully-resolved workload.
#[derive(Debug, Clone, PartialEq)]
pub enum ResolvedWorkload {
    /// A resolved gd workload.
    Gd(Box<GdSpec>),
    /// A resolved bp workload.
    Bp(BpSpec),
    /// The (sweep-less) exhibit workload.
    Exhibit(ExhibitSpec),
}

/// Lazily yields a sweep grid's points in odometer order (first axis
/// outermost, last axis fastest) — the same points, ids and order as
/// [`ScenarioSpec::expand`], without ever materialising the grid.
pub struct GridIter<'a> {
    spec: &'a ScenarioSpec,
    width: usize,
    index: usize,
    total: usize,
}

impl Iterator for GridIter<'_> {
    type Item = GridPoint;

    fn next(&mut self) -> Option<GridPoint> {
        if self.index >= self.total {
            return None;
        }
        let point = self.spec.point_at(self.index, self.width);
        self.index += 1;
        Some(point)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.total - self.index;
        (left, Some(left))
    }
}

impl ExactSizeIterator for GridIter<'_> {}

impl ScenarioSpec {
    /// The expanded grid size, without expanding: the checked product of
    /// the axis lengths, refused past [`MAX_GRID_POINTS`].
    pub fn grid_len(&self) -> Result<usize> {
        let total: usize = self
            .sweep
            .iter()
            .map(|a| a.values.len())
            .try_fold(1usize, |acc, len| acc.checked_mul(len))
            .ok_or_else(|| SpecError::new("sweep", "grid size overflows"))?;
        if total > MAX_GRID_POINTS {
            return Err(SpecError::new(
                "sweep",
                format!("grid expands to {total} points (limit {MAX_GRID_POINTS})"),
            ));
        }
        Ok(total)
    }

    /// A lazy iterator over the sweep grid — expansion order is a pure
    /// function of the document, so repeated runs number and order the
    /// points identically, and a million-point grid costs one point of
    /// memory at a time.
    pub fn grid_iter(&self) -> Result<GridIter<'_>> {
        let total = self.grid_len()?;
        Ok(GridIter {
            spec: self,
            width: point_id_width(total),
            index: 0,
            total,
        })
    }

    /// Decodes grid point `index` directly (the odometer: last axis
    /// varies fastest). `width` is the id zero-pad width for the full
    /// grid ([`point_id_width`] of the grid length), so a point built
    /// here is identical to the one [`Self::expand`] would yield.
    pub fn point_at(&self, index: usize, width: usize) -> GridPoint {
        let mut rem = index;
        let mut assignments = Vec::with_capacity(self.sweep.len());
        for axis in self.sweep.iter().rev() {
            let len = axis.values.len();
            assignments.push((axis.param.clone(), axis.values[rem % len].clone()));
            rem /= len;
        }
        assignments.reverse();
        GridPoint {
            index,
            id: format!("{}-p{index:0width$}", self.name),
            assignments,
        }
    }

    /// Expands the sweep grid into its cross product — the collecting
    /// form of [`Self::grid_iter`], for small grids and tests.
    pub fn expand(&self) -> Result<Vec<GridPoint>> {
        Ok(self.grid_iter()?.collect())
    }

    /// Resolves a grid point into its concrete workload: base spec +
    /// overrides, revalidated so a bad combination names the point.
    pub fn resolve(&self, point: &GridPoint) -> Result<ResolvedWorkload> {
        let context = if point.assignments.is_empty() {
            format!("grid point {}", point.id)
        } else {
            format!("grid point {} ({})", point.id, point.label())
        };
        match &self.workload {
            WorkloadSpec::Gd(gd) => {
                let mut resolved = gd.clone();
                for (param, value) in &point.assignments {
                    resolved.set_param(param, value, &context)?;
                }
                resolved.validate(&context)?;
                Ok(ResolvedWorkload::Gd(resolved))
            }
            WorkloadSpec::Bp(bp) => {
                let mut resolved = bp.clone();
                for (param, value) in &point.assignments {
                    resolved.set_param(param, value, &context)?;
                }
                resolved.validate(&context)?;
                Ok(ResolvedWorkload::Bp(resolved))
            }
            WorkloadSpec::Exhibit(ex) => Ok(ResolvedWorkload::Exhibit(ex.clone())),
        }
    }
}

/// Zero-pad width for point ids: at least 3 digits, more for huge grids,
/// so lexicographic file order equals grid order.
pub fn point_id_width(total: usize) -> usize {
    let digits = total.saturating_sub(1).max(1).ilog10() as usize + 1;
    digits.max(3)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(json: &str) -> Result<ScenarioSpec> {
        ScenarioSpec::from_json(json)
    }

    fn err_of(json: &str) -> SpecError {
        parse(json).expect_err("spec must be rejected")
    }

    const MINIMAL_GD: &str = r#"{
        "name": "t",
        "workload": {"kind": "gd", "preset": "fig2", "max_n": 13}
    }"#;

    #[test]
    fn minimal_gd_parses() {
        let spec = parse(MINIMAL_GD).unwrap();
        assert_eq!(spec.name, "t");
        match &spec.workload {
            WorkloadSpec::Gd(gd) => {
                assert_eq!(gd.preset.as_deref(), Some("fig2"));
                assert_eq!(gd.max_n, 13);
            }
            other => panic!("wrong workload: {other:?}"),
        }
        assert_eq!(spec.expand().unwrap().len(), 1);
    }

    #[test]
    fn unknown_top_level_field_named() {
        let e =
            err_of(r#"{"name": "t", "workload": {"kind": "gd", "preset": "fig2"}, "sweeps": []}"#);
        assert_eq!(e.path, "sweeps");
        assert!(e.message.contains("unknown field"), "{e}");
    }

    #[test]
    fn unknown_workload_field_named_with_path() {
        let e =
            err_of(r#"{"name": "t", "workload": {"kind": "gd", "preset": "fig2", "latancy": 1}}"#);
        assert_eq!(e.path, "workload.latancy");
        assert!(e.message.contains("unknown field"), "{e}");
    }

    #[test]
    fn negative_max_n_named() {
        let e =
            err_of(r#"{"name": "t", "workload": {"kind": "gd", "preset": "fig2", "max_n": -3}}"#);
        assert_eq!(e.path, "workload.max_n");
        assert!(e.message.contains("-3"), "{e}");
    }

    #[test]
    fn absurd_max_n_without_log_points_named() {
        let e = err_of(
            r#"{"name": "t", "workload": {"kind": "gd", "preset": "fig2", "max_n": 1000000000}}"#,
        );
        assert_eq!(e.path, "workload.max_n");
        assert!(e.message.contains("dense-mode limit"), "{e}");
        assert!(e.message.contains("log_points"), "{e}");
    }

    #[test]
    fn large_max_n_with_log_points_validates() {
        let spec = parse(
            r#"{"name": "t", "workload": {"kind": "gd", "preset": "fig2",
                "max_n": 1000000, "log_points": 200}}"#,
        )
        .expect("log-spaced mode lifts the dense cap");
        match &spec.workload {
            WorkloadSpec::Gd(gd) => assert_eq!(gd.log_points, Some(200)),
            other => panic!("unexpected workload {other:?}"),
        }
    }

    #[test]
    fn degenerate_log_points_named() {
        let e = err_of(
            r#"{"name": "t", "workload": {"kind": "gd", "preset": "fig2",
                "max_n": 64, "log_points": 1}}"#,
        );
        assert_eq!(e.path, "workload.log_points");
        assert!(e.message.contains("two endpoints"), "{e}");
    }

    #[test]
    fn absurd_bp_max_n_named() {
        let e = err_of(
            r#"{"name": "t", "workload": {"kind": "bp", "vertices": 16259, "edges": 99785,
                "max_n": 100000}}"#,
        );
        assert_eq!(e.path, "workload.max_n");
        assert!(e.message.contains("dense-mode limit"), "{e}");
    }

    #[test]
    fn preset_conflicts_with_explicit_field() {
        let e =
            err_of(r#"{"name": "t", "workload": {"kind": "gd", "preset": "fig2", "params": 1e6}}"#);
        assert_eq!(e.path, "workload.params");
        assert!(e.message.contains("preset"), "{e}");
    }

    #[test]
    fn preset_conflicts_with_rack_fields() {
        let e =
            err_of(r#"{"name": "t", "workload": {"kind": "gd", "preset": "pod", "rack_size": 8}}"#);
        assert_eq!(e.path, "workload.rack_size");
    }

    #[test]
    fn missing_required_fields_named() {
        let e = err_of(r#"{"name": "t", "workload": {"kind": "gd", "params": 1e6}}"#);
        assert_eq!(e.path, "workload.cost_per_example");
        assert!(e.message.contains("missing"), "{e}");
    }

    #[test]
    fn hier_without_racks_rejected() {
        let e = err_of(
            r#"{"name": "t", "workload": {"kind": "gd", "params": 1e6,
                "cost_per_example": 1e6, "batch": 10, "flops": 1e9, "comm": "hier"}}"#,
        );
        assert_eq!(e.path, "workload.comm");
        assert!(e.message.contains("rack"), "{e}");
    }

    #[test]
    fn uplink_without_rack_size_rejected() {
        let e = err_of(
            r#"{"name": "t", "workload": {"kind": "gd", "params": 1e6,
                "cost_per_example": 1e6, "batch": 10, "flops": 1e9,
                "uplink_bandwidth": 1e9}}"#,
        );
        assert_eq!(e.path, "workload.uplink_bandwidth");
    }

    #[test]
    fn empty_axis_rejected() {
        let e = err_of(
            r#"{"name": "t", "workload": {"kind": "gd", "preset": "fig2"},
                "sweep": [{"param": "jitter", "values": []}]}"#,
        );
        assert_eq!(e.path, "sweep[0].values");
        assert!(e.message.contains("empty grid axis"), "{e}");
    }

    #[test]
    fn sweeping_a_preset_fixed_param_rejected() {
        let e = err_of(
            r#"{"name": "t", "workload": {"kind": "gd", "preset": "fig2"},
                "sweep": [{"param": "latency", "values": [0, 1e-4]}]}"#,
        );
        assert_eq!(e.path, "sweep[0].param");
        assert!(e.message.contains("fixed by workload.preset"), "{e}");
    }

    #[test]
    fn duplicate_axis_rejected() {
        let e = err_of(
            r#"{"name": "t", "workload": {"kind": "gd", "preset": "fig2"},
                "sweep": [{"param": "jitter", "values": [0]},
                          {"param": "jitter", "values": [1]}]}"#,
        );
        assert_eq!(e.path, "sweep[1].param");
        assert!(e.message.contains("duplicate"), "{e}");
    }

    #[test]
    fn values_and_range_both_rejected() {
        let e = err_of(
            r#"{"name": "t", "workload": {"kind": "gd", "preset": "fig2"},
                "sweep": [{"param": "jitter", "values": [1],
                           "range": {"from": 0, "to": 1, "step": 1}}]}"#,
        );
        assert_eq!(e.path, "sweep[0]");
        assert!(e.message.contains("not both"), "{e}");
    }

    #[test]
    fn integer_range_expands_inclusively() {
        let spec = parse(
            r#"{"name": "t", "workload": {"kind": "gd", "preset": "fig2"},
                "sweep": [{"param": "backup_k", "range": {"from": 0, "to": 6, "step": 2}},
                          {"param": "jitter", "values": [0.5]}]}"#,
        )
        .unwrap();
        assert_eq!(
            spec.sweep[0].values,
            vec![
                AxisValue::Int(0),
                AxisValue::Int(2),
                AxisValue::Int(4),
                AxisValue::Int(6)
            ]
        );
    }

    #[test]
    fn huge_range_rejected_not_wrapped() {
        // ((to-from)/step) overflows usize; the size check must happen in
        // float space, not after a saturating cast that wraps to a silent
        // 0-point axis.
        let e = err_of(
            r#"{"name": "t", "workload": {"kind": "gd", "preset": "fig2"},
                "sweep": [{"param": "jitter", "range": {"from": 0, "to": 1e30, "step": 1}}]}"#,
        );
        assert_eq!(e.path, "sweep[0].range");
        assert!(e.message.contains("limit"), "{e}");
    }

    #[test]
    fn duplicate_json_keys_rejected() {
        // The vendored parser keeps both entries of a duplicated key;
        // first-wins resolution would silently sweep a stale value.
        let e = err_of(
            r#"{"name": "t",
                "workload": {"kind": "gd", "preset": "fig2", "max_n": 8, "max_n": 32}}"#,
        );
        assert_eq!(e.path, "workload.max_n");
        assert!(e.message.contains("more than once"), "{e}");
        let e =
            err_of(r#"{"name": "a", "name": "b", "workload": {"kind": "exhibit", "id": "fig1"}}"#);
        assert_eq!(e.path, "name");
    }

    #[test]
    fn backwards_range_is_an_empty_axis() {
        let e = err_of(
            r#"{"name": "t", "workload": {"kind": "gd", "preset": "fig2"},
                "sweep": [{"param": "jitter", "range": {"from": 5, "to": 1, "step": 1}}]}"#,
        );
        assert_eq!(e.path, "sweep[0].range");
        assert!(e.message.contains("empty grid axis"), "{e}");
    }

    #[test]
    fn grid_point_deep_in_the_grid_is_validated_up_front() {
        // backup_k = 8 at max_n = 8 only arises for the last grid point;
        // validate() must reject the document before any evaluation.
        let e = err_of(
            r#"{"name": "t",
                "workload": {"kind": "gd", "preset": "fig2", "max_n": 8,
                             "straggler": {"kind": "exp", "mean": 1.0}},
                "sweep": [{"param": "backup_k", "values": [0, 2, 8]}]}"#,
        );
        assert!(e.path.contains("grid point t-p002"), "{e}");
        assert!(
            e.message.contains("backup_k") || e.path.contains("backup_k"),
            "{e}"
        );
    }

    #[test]
    fn expansion_is_odometer_ordered() {
        let spec = parse(
            r#"{"name": "g",
                "workload": {"kind": "gd", "params": 1e6, "cost_per_example": 1e6,
                             "batch": 10, "flops": 1e9},
                "sweep": [{"param": "latency", "values": [0.0, 0.5]},
                          {"param": "comm", "values": ["tree", "ring", "halving"]}]}"#,
        )
        .unwrap();
        let points = spec.expand().unwrap();
        assert_eq!(points.len(), 6);
        let labels: Vec<String> = points.iter().map(GridPoint::label).collect();
        assert_eq!(labels[0], "latency=0, comm=tree");
        assert_eq!(labels[1], "latency=0, comm=ring");
        assert_eq!(labels[2], "latency=0, comm=halving");
        assert_eq!(labels[3], "latency=0.5, comm=tree");
        assert_eq!(points[5].id, "g-p005");
    }

    #[test]
    fn jitter_axis_conflicts_with_exp_straggler() {
        let e = err_of(
            r#"{"name": "t",
                "workload": {"kind": "gd", "preset": "fig2",
                             "straggler": {"kind": "exp", "mean": 1.0}},
                "sweep": [{"param": "jitter", "values": [0.0, 1.0]}]}"#,
        );
        assert!(e.message.contains("jitter axis conflicts"), "{e}");
    }

    #[test]
    fn exhibit_with_sweep_rejected() {
        let e = err_of(
            r#"{"name": "t", "workload": {"kind": "exhibit", "id": "fig1"},
                "sweep": [{"param": "max_n", "values": [8]}]}"#,
        );
        assert_eq!(e.path, "sweep");
    }

    #[test]
    fn unknown_exhibit_rejected() {
        let e = err_of(r#"{"name": "t", "workload": {"kind": "exhibit", "id": "fig9"}}"#);
        assert_eq!(e.path, "workload.id");
        assert!(e.message.contains("fig9"), "{e}");
    }

    #[test]
    fn resolved_point_applies_overrides() {
        let spec = parse(
            r#"{"name": "g",
                "workload": {"kind": "gd", "params": 1e6, "cost_per_example": 1e6,
                             "batch": 10, "flops": 1e9, "max_n": 8},
                "sweep": [{"param": "latency", "values": [0.0, 2.5e-4]}]}"#,
        )
        .unwrap();
        let points = spec.expand().unwrap();
        match spec.resolve(&points[1]).unwrap() {
            ResolvedWorkload::Gd(gd) => assert_eq!(gd.latency, Some(2.5e-4)),
            other => panic!("wrong workload: {other:?}"),
        }
    }

    #[test]
    fn bp_spec_parses_and_validates() {
        let spec = parse(
            r#"{"name": "b",
                "workload": {"kind": "bp", "vertices": 16259, "edges": 99785, "max_n": 8}}"#,
        )
        .unwrap();
        match &spec.workload {
            WorkloadSpec::Bp(bp) => {
                assert_eq!(bp.states, 2);
                assert_eq!(bp.max_n, 8);
            }
            other => panic!("wrong workload: {other:?}"),
        }
        let e = err_of(r#"{"name": "b", "workload": {"kind": "bp", "vertices": 100}}"#);
        assert_eq!(e.path, "workload.edges");
    }

    #[test]
    fn point_id_width_scales() {
        assert_eq!(point_id_width(1), 3);
        assert_eq!(point_id_width(999), 3);
        assert_eq!(point_id_width(1000), 3);
        assert_eq!(point_id_width(1001), 4);
    }

    #[test]
    fn grid_iter_matches_expand_lazily() {
        let spec = parse(
            r#"{"name": "g",
                "workload": {"kind": "gd", "params": 1e6, "cost_per_example": 1e6,
                             "batch": 10, "flops": 1e9},
                "sweep": [{"param": "latency", "values": [0.0, 0.5]},
                          {"param": "comm", "values": ["tree", "ring", "halving"]}]}"#,
        )
        .unwrap();
        let iter = spec.grid_iter().unwrap();
        assert_eq!(iter.len(), 6);
        let streamed: Vec<GridPoint> = iter.collect();
        assert_eq!(streamed, spec.expand().unwrap());
        assert_eq!(spec.grid_len().unwrap(), 6);
    }

    #[test]
    fn adaptive_flag_parses_and_needs_a_sweep() {
        let spec = parse(
            r#"{"name": "t", "adaptive": true,
                "workload": {"kind": "gd", "preset": "fig2", "max_n": 8},
                "sweep": [{"param": "jitter", "values": [0.0, 0.1]}]}"#,
        )
        .unwrap();
        assert!(spec.adaptive);
        assert!(!parse(MINIMAL_GD).unwrap().adaptive, "defaults to false");
        let e = err_of(
            r#"{"name": "t", "adaptive": true,
                "workload": {"kind": "gd", "preset": "fig2", "max_n": 8}}"#,
        );
        assert_eq!(e.path, "adaptive");
        assert!(e.message.contains("non-empty sweep"), "{e}");
    }

    #[test]
    fn over_cap_max_n_axis_is_screened_before_expansion() {
        // The bad value sits at the *end* of a grid whose dry run would
        // otherwise resolve thousands of points first; the screen must
        // name the axis value and report the expanded point count.
        let e = err_of(
            r#"{"name": "t",
                "workload": {"kind": "gd", "params": 1e6, "cost_per_example": 1e6,
                             "batch": 10, "flops": 1e9},
                "sweep": [{"param": "latency", "range": {"from": 0, "to": 0.1, "step": 1e-4}},
                          {"param": "max_n", "values": [8, 20000]}]}"#,
        );
        assert_eq!(e.path, "sweep[1].values[1]");
        assert!(e.message.contains("dense-mode limit"), "{e}");
        assert!(e.message.contains("2002-point grid"), "{e}");
    }

    #[test]
    fn over_cap_max_n_axis_with_log_points_passes_the_screen() {
        parse(
            r#"{"name": "t",
                "workload": {"kind": "gd", "params": 1e6, "cost_per_example": 1e6,
                             "batch": 10, "flops": 1e9, "log_points": 50},
                "sweep": [{"param": "max_n", "values": [8, 20000]}]}"#,
        )
        .expect("log_points lifts the dense cap for swept max_n too");
    }
}
