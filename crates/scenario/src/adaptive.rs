//! Adaptive sweeps: refine the grid around the Pareto frontier instead
//! of evaluating every point.
//!
//! The paper's provisioning question — which configurations are worth
//! buying? — is answered by the Pareto frontier of (cost, expected
//! time), and on a large grid almost every point is nowhere near it.
//! [`run_adaptive`] evaluates a coarse, evenly-spaced sub-grid first,
//! computes the frontier of what it has seen, and then repeatedly
//! proposes the axis-wise neighbours of frontier points at a per-axis
//! stride that starts at the coarse spacing and halves whenever a round
//! proposes nothing new (the ladder-then-refine shape of
//! [`Planner::new_log`](mlscale_core::planner::Planner::new_log), lifted
//! from one axis to the whole grid). The loop ends when the stride is 1
//! and the frontier's whole unit neighbourhood has been evaluated, so
//! every frontier point of the *evaluated* set is a local optimum of the
//! full grid along each axis.
//!
//! Every point is evaluated by exactly the engine the exhaustive path
//! uses ([`eval_pending`]), so an adaptive sweep's per-point results are
//! bit-identical to the same points of an exhaustive sweep — the
//! property tests compare the two frontiers' (cost, time) values on
//! whole small grids. No randomness anywhere: batches are sorted index
//! sets, so the evaluation trace is deterministic.
//!
//! Objectives per point: time is the `time at optimum s` stat; cost is
//! `cheapest cost` when the spec carries a provisioning plan, otherwise
//! the `optimal n × time` proxy (node-seconds at the optimum — what an
//! hourly price would multiply).

use crate::run::{build_rollup, eval_pending, stat_of};
use crate::spec::{
    point_id_width, GridPoint, ResolvedWorkload, ScenarioSpec, SpecError, WorkloadSpec,
};
use mlscale_core::planner::pareto_frontier;
use mlscale_core::straggler::OrderStatCachePool;
use mlscale_workloads::ExperimentResult;
use std::collections::{BTreeMap, BTreeSet};

/// One point of the adaptive frontier.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierPoint {
    /// The grid point's result id.
    pub id: String,
    /// Cost objective (`cheapest cost`, or the `optimal n × time` proxy).
    pub cost: f64,
    /// Expected time objective (`time at optimum s`).
    pub time: f64,
}

/// What an adaptive sweep produced.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveSweep {
    /// The evaluated subset as a normal sweep outcome (points in grid
    /// order, roll-up over the evaluated subset) — [`write_outcome`]
    /// (crate::write_outcome) accepts it unchanged.
    pub outcome: crate::run::SweepOutcome,
    /// Full grid size (of which only `outcome.points.len()` were
    /// evaluated).
    pub grid_points: usize,
    /// The Pareto frontier of the evaluated set, in grid order.
    pub frontier: Vec<FrontierPoint>,
}

/// Runs an adaptive sweep with a fresh order-statistic cache pool.
pub fn run_adaptive(spec: &ScenarioSpec) -> Result<AdaptiveSweep, SpecError> {
    run_adaptive_pooled(spec, &OrderStatCachePool::new())
}

/// [`run_adaptive`] with a caller-owned cache pool (the serve daemon's).
pub fn run_adaptive_pooled(
    spec: &ScenarioSpec,
    pool: &OrderStatCachePool,
) -> Result<AdaptiveSweep, SpecError> {
    if matches!(spec.workload, WorkloadSpec::Exhibit(_)) {
        return Err(SpecError::new(
            "adaptive",
            "exhibit scenarios reproduce fixed figures — there is no grid to refine",
        ));
    }
    if spec.sweep.is_empty() {
        return Err(SpecError::new(
            "adaptive",
            "adaptive refinement needs a non-empty sweep (there is no grid to refine)",
        ));
    }
    let total = spec.grid_len()?;
    let width = point_id_width(total);
    let lens: Vec<usize> = spec.sweep.iter().map(|a| a.values.len()).collect();

    // Grid index -> (point, result, (cost, time)), ordered by index.
    let mut evaluated: BTreeMap<usize, (GridPoint, ExperimentResult, (f64, f64))> = BTreeMap::new();

    // Round 0: the coarse sub-grid. Short axes are taken whole (their
    // refinement would cost more than just evaluating them); long axes
    // get ~√len evenly spaced picks, so a d-axis grid opens with
    // ~√(total) evaluations.
    let coarse: Vec<Vec<usize>> = lens.iter().map(|&len| coarse_picks(len)).collect();
    let mut steps: Vec<usize> = coarse
        .iter()
        .zip(&lens)
        .map(|(picks, &len)| initial_step(picks, len))
        .collect();
    let mut batch = cartesian(&coarse, &lens);

    loop {
        batch.retain(|index| !evaluated.contains_key(index));
        if !batch.is_empty() {
            eval_batch(spec, pool, width, &batch, &mut evaluated)?;
        }
        // The frontier of everything seen so far, then its axis-wise
        // neighbours at the current strides.
        let keys: Vec<usize> = evaluated.keys().copied().collect();
        let objectives: Vec<(f64, f64)> = keys.iter().map(|k| evaluated[k].2).collect();
        let frontier: Vec<usize> = pareto_frontier(&objectives)
            .into_iter()
            .map(|i| keys[i])
            .collect();
        let mut proposals: BTreeSet<usize> = BTreeSet::new();
        for &index in &frontier {
            let coords = coords_of(index, &lens);
            for (axis, &len) in lens.iter().enumerate() {
                for direction in [-1i64, 1] {
                    let c = coords[axis] as i64 + steps[axis] as i64 * direction;
                    if c < 0 || c as usize >= len {
                        continue;
                    }
                    let mut next = coords.clone();
                    next[axis] = c as usize;
                    let next_index = index_of(&next, &lens);
                    if !evaluated.contains_key(&next_index) {
                        proposals.insert(next_index);
                    }
                }
            }
        }
        if proposals.is_empty() {
            if steps.iter().all(|&s| s <= 1) {
                break;
            }
            for s in &mut steps {
                *s = (*s / 2).max(1);
            }
            continue;
        }
        batch = proposals.into_iter().collect();
    }

    // Assemble in grid order. The roll-up is the standard one over the
    // evaluated subset, annotated with what adaptive mode skipped.
    let keys: Vec<usize> = evaluated.keys().copied().collect();
    let objectives: Vec<(f64, f64)> = keys.iter().map(|k| evaluated[k].2).collect();
    let frontier: Vec<FrontierPoint> = pareto_frontier(&objectives)
        .into_iter()
        .map(|i| FrontierPoint {
            id: evaluated[&keys[i]].0.id.clone(),
            cost: objectives[i].0,
            time: objectives[i].1,
        })
        .collect();
    let mut grid = Vec::with_capacity(evaluated.len());
    let mut points = Vec::with_capacity(evaluated.len());
    for (_, (point, result, _)) in evaluated {
        grid.push(point);
        points.push(result);
    }
    let mut rollup = build_rollup(spec, &grid, &points)
        .with_stat("full grid points", total as f64, None)
        .with_stat("evaluated points", points.len() as f64, None)
        .with_stat("frontier points", frontier.len() as f64, None)
        .with_note(format!(
            "adaptive sweep: evaluated {} of {} grid points around the (cost, time) Pareto frontier",
            points.len(),
            total
        ));
    for fp in &frontier {
        rollup = rollup.with_note(format!(
            "frontier: {} (cost {}, time {} s)",
            fp.id, fp.cost, fp.time
        ));
    }
    Ok(AdaptiveSweep {
        outcome: crate::run::SweepOutcome {
            name: spec.name.clone(),
            grid,
            points,
            rollup,
        },
        grid_points: total,
        frontier,
    })
}

/// The (cost, time) objectives of one evaluated point.
pub(crate) fn objectives_of(result: &ExperimentResult) -> Option<(f64, f64)> {
    let time = stat_of(result, "time at optimum s")?;
    let cost = match stat_of(result, "cheapest cost") {
        Some(cost) => cost,
        None => stat_of(result, "optimal n")? * time,
    };
    Some((cost, time))
}

/// Coarse per-axis index picks: whole axes up to 6 values, ~√len evenly
/// spaced picks (always including both ends) beyond.
fn coarse_picks(len: usize) -> Vec<usize> {
    if len <= 6 {
        return (0..len).collect();
    }
    let k = (len as f64).sqrt().ceil().max(3.0) as usize;
    let mut picks: Vec<usize> = (0..k)
        .map(|j| (j as f64 * (len - 1) as f64 / (k - 1) as f64).round() as usize)
        .collect();
    picks.dedup();
    picks
}

/// The refinement loop's opening stride for one axis: the widest gap the
/// coarse picks left uncovered (1 on fully-covered axes).
fn initial_step(picks: &[usize], len: usize) -> usize {
    let max_gap = picks.windows(2).map(|w| w[1] - w[0]).max().unwrap_or(len);
    max_gap.max(1)
}

/// Grid index -> per-axis value indices (odometer order, last axis
/// fastest — the inverse of [`index_of`], matching
/// [`ScenarioSpec::point_at`]).
fn coords_of(index: usize, lens: &[usize]) -> Vec<usize> {
    let mut rem = index;
    let mut coords = vec![0; lens.len()];
    for (axis, &len) in lens.iter().enumerate().rev() {
        coords[axis] = rem % len;
        rem /= len;
    }
    coords
}

/// Per-axis value indices -> grid index.
fn index_of(coords: &[usize], lens: &[usize]) -> usize {
    coords
        .iter()
        .zip(lens)
        .fold(0, |acc, (&c, &len)| acc * len + c)
}

/// The cross product of the coarse picks, as sorted grid indices.
fn cartesian(coarse: &[Vec<usize>], lens: &[usize]) -> Vec<usize> {
    let mut out = Vec::new();
    let mut coords = vec![0usize; coarse.len()];
    build_product(coarse, lens, 0, &mut coords, &mut out);
    out.sort_unstable();
    out
}

fn build_product(
    coarse: &[Vec<usize>],
    lens: &[usize],
    axis: usize,
    coords: &mut Vec<usize>,
    out: &mut Vec<usize>,
) {
    if axis == coarse.len() {
        out.push(index_of(coords, lens));
        return;
    }
    for &pick in &coarse[axis] {
        coords[axis] = pick;
        build_product(coarse, lens, axis + 1, coords, out);
    }
}

/// Evaluates a sorted batch of grid indices through the exhaustive
/// engine's evaluator — bit-identical to the same points of a full
/// sweep.
fn eval_batch(
    spec: &ScenarioSpec,
    pool: &OrderStatCachePool,
    width: usize,
    batch: &[usize],
    evaluated: &mut BTreeMap<usize, (GridPoint, ExperimentResult, (f64, f64))>,
) -> Result<(), SpecError> {
    let points: Vec<GridPoint> = batch.iter().map(|&i| spec.point_at(i, width)).collect();
    let resolved: Vec<ResolvedWorkload> = points
        .iter()
        .map(|p| spec.resolve(p))
        .collect::<Result<_, _>>()?;
    let pending: Vec<usize> = (0..points.len()).collect();
    let mut results: Vec<Option<ExperimentResult>> = vec![None; points.len()];
    eval_pending(spec, &points, &resolved, pool, &pending, &mut |i, r| {
        results[i] = Some(r);
        Ok(())
    })?;
    for ((index, point), result) in batch.iter().zip(points).zip(results) {
        let result = result.ok_or_else(|| {
            SpecError::new(
                format!("sweep point {index}"),
                "never evaluated — internal scheduling bug",
            )
        })?;
        let objectives = objectives_of(&result).ok_or_else(|| {
            SpecError::new(
                format!("grid point {}", result.id),
                "no (cost, time) objectives in the result — internal engine bug",
            )
        })?;
        evaluated.insert(*index, (point, result, objectives));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::run;

    #[test]
    fn coords_roundtrip_matches_point_at_order() {
        let lens = [2usize, 3, 4];
        for index in 0..24 {
            let coords = coords_of(index, &lens);
            assert_eq!(index_of(&coords, &lens), index);
        }
        // Last axis fastest: index 1 bumps the last coordinate.
        assert_eq!(coords_of(1, &lens), vec![0, 0, 1]);
        assert_eq!(coords_of(4, &lens), vec![0, 1, 0]);
    }

    #[test]
    fn coarse_picks_cover_short_axes_and_bracket_long_ones() {
        assert_eq!(coarse_picks(4), vec![0, 1, 2, 3]);
        let picks = coarse_picks(100);
        assert_eq!(picks.first(), Some(&0));
        assert_eq!(picks.last(), Some(&99));
        assert!(picks.len() <= 12, "~sqrt(100) picks, got {picks:?}");
        assert!(picks.windows(2).all(|w| w[0] < w[1]), "sorted: {picks:?}");
    }

    #[test]
    fn adaptive_agrees_with_exhaustive_on_a_small_grid_and_evaluates_less() {
        // 16×11 = 176 points, one smooth numeric axis each way: adaptive
        // must find exactly the exhaustive frontier from a fraction of
        // the evaluations.
        let json = r#"{"name": "af",
            "workload": {"kind": "gd", "params": 12e6, "cost_per_example": 72e6,
                         "batch": 60000, "flops": 84.48e9, "max_n": 24,
                         "plan": {"iterations": 500, "price": 2.0}},
            "sweep": [{"param": "latency", "range": {"from": 0.0, "to": 7.5e-4, "step": 5e-5}},
                      {"param": "bandwidth", "range": {"from": 1e9, "to": 11e9, "step": 1e9}}]}"#;
        let spec = ScenarioSpec::from_json(json).unwrap();
        let exhaustive = run(&spec).unwrap();
        assert_eq!(exhaustive.points.len(), 176);
        let objectives: Vec<(f64, f64)> = exhaustive
            .points
            .iter()
            .map(|p| objectives_of(p).unwrap())
            .collect();
        let mut expected: Vec<(f64, f64)> = pareto_frontier(&objectives)
            .into_iter()
            .map(|i| objectives[i])
            .collect();
        expected.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));

        let adaptive = run_adaptive(&spec).unwrap();
        let mut got: Vec<(f64, f64)> = adaptive.frontier.iter().map(|f| (f.cost, f.time)).collect();
        got.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));
        assert_eq!(got, expected, "frontier values must agree exactly");
        assert!(
            adaptive.outcome.points.len() < exhaustive.points.len(),
            "adaptive evaluated {} of {} — no saving",
            adaptive.outcome.points.len(),
            exhaustive.points.len()
        );
        // Evaluated points are bit-identical to the exhaustive run's.
        for (point, result) in adaptive.outcome.grid.iter().zip(&adaptive.outcome.points) {
            assert_eq!(&exhaustive.points[point.index], result, "{}", point.id);
        }
        assert_eq!(adaptive.grid_points, 176);
    }

    #[test]
    fn adaptive_refuses_specs_with_nothing_to_refine() {
        let flat = ScenarioSpec::from_json(
            r#"{"name": "flat", "workload": {"kind": "gd", "preset": "fig2", "max_n": 8}}"#,
        )
        .unwrap();
        let err = run_adaptive(&flat).expect_err("no sweep");
        assert_eq!(err.path, "adaptive");
        assert!(err.message.contains("non-empty sweep"), "{}", err.message);

        let exhibit = ScenarioSpec::from_json(
            r#"{"name": "ex", "workload": {"kind": "exhibit", "id": "fig1"}}"#,
        )
        .unwrap();
        let err = run_adaptive(&exhibit).expect_err("exhibits are fixed");
        assert_eq!(err.path, "adaptive");
        assert!(err.message.contains("no grid to refine"), "{}", err.message);
    }
}
