//! Sharded append-only result store for large sweeps.
//!
//! At 10⁶ grid points, one pretty-printed JSON file per point is wrong
//! twice over: a million inodes, and a million results resident in
//! memory before anything is written. This module stores big sweeps as
//! **shards** — `<name>-shard-KKKK.ndjson` files of newline-delimited
//! compact point records, each shard covering a fixed, contiguous range
//! of grid slots *in grid order* (shard `k` holds slots
//! `[k·S, (k+1)·S)`). The runner evaluates one shard's worth of points
//! at a time, buffers at most one shard of encoded records (enforced by
//! the telemetry counters below), and publishes each shard with the same
//! atomic temp-file + rename pattern the per-point path uses — a crash
//! can orphan a `.tmp`, never tear a shard.
//!
//! Because records sit at fixed offsets of a shard written in one atomic
//! step, resume verification is whole-shard: a journaled shard is reused
//! only if its byte length matches the journal and every line
//! re-serialises compactly to exactly itself with the grid's expected id
//! — anything else re-evaluates the whole shard. That granularity is the
//! price of streaming (a crash loses at most one shard of re-evaluable
//! work) and the reason a resumed sharded sweep is byte-identical to an
//! uninterrupted one.

use mlscale_core::faultpoint;
use mlscale_workloads::ExperimentResult;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Grids up to this many points keep the per-point-file layout (one
/// pretty-printed `<id>.json` each, as every release so far has written);
/// larger grids stream through shards of exactly this many records.
/// `--per-point-max` overrides it — tests use tiny values to exercise
/// many shards cheaply.
pub const DEFAULT_PER_POINT_MAX: usize = 2048;

/// Encoded point records currently buffered (process-wide, across all
/// stores). The streaming property test reads the peak: a sweep through
/// this store must never hold more than one shard of records, no matter
/// how large the grid.
static LIVE_BUFFERED: AtomicUsize = AtomicUsize::new(0);
static PEAK_BUFFERED: AtomicUsize = AtomicUsize::new(0);

/// Resets the buffered-record telemetry (call before the measured sweep).
pub fn reset_buffer_telemetry() {
    LIVE_BUFFERED.store(0, Ordering::SeqCst);
    PEAK_BUFFERED.store(0, Ordering::SeqCst);
}

/// The high-water mark of buffered records since the last
/// [`reset_buffer_telemetry`].
pub fn peak_buffered_records() -> usize {
    PEAK_BUFFERED.load(Ordering::SeqCst)
}

fn note_buffered() {
    let live = LIVE_BUFFERED.fetch_add(1, Ordering::SeqCst) + 1;
    PEAK_BUFFERED.fetch_max(live, Ordering::SeqCst);
}

fn note_flushed(n: usize) {
    // Saturating: a reset mid-sweep must not wrap the live counter.
    let _ = LIVE_BUFFERED.fetch_update(Ordering::SeqCst, Ordering::SeqCst, |live| {
        Some(live.saturating_sub(n))
    });
}

/// `<name>-shard-KKKK.ndjson`. Four digits cover the worst case —
/// [`crate::spec::MAX_GRID_POINTS`] points at the smallest useful shard
/// size still sorts lexicographically — and wider indices simply widen.
pub fn shard_file_name(name: &str, index: usize) -> String {
    format!("{name}-shard-{index:04}.ndjson")
}

/// How many shards a `total`-point grid needs at `shard_size` records
/// per shard.
pub fn shard_count(total: usize, shard_size: usize) -> usize {
    total.div_ceil(shard_size.max(1))
}

/// Whether `file_name` is a shard (or orphaned shard temp file) of the
/// named scenario: `<name>-shard-<digits>.ndjson` or `…​.ndjson.tmp`.
pub(crate) fn is_shard_file(file_name: &str, name: &str) -> bool {
    let Some(rest) = file_name
        .strip_prefix(name)
        .and_then(|r| r.strip_prefix("-shard-"))
    else {
        return false;
    };
    let digits = rest.len() - rest.trim_start_matches(|c: char| c.is_ascii_digit()).len();
    let suffix = &rest[digits..];
    digits > 0 && (suffix == ".ndjson" || suffix == ".ndjson.tmp")
}

/// Removes shard files (and orphaned `.tmp` files) of the named scenario
/// whose file names are not in `fresh` — the sharded sibling of
/// [`crate::run::clean_stale_points`], and called with an empty set by
/// the per-point path so switching a scenario between layouts never
/// leaves the old layout's files beside the new roll-up.
pub(crate) fn clean_stale_shards(
    dir: &Path,
    name: &str,
    fresh: &std::collections::HashSet<String>,
) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let Ok(file_name) = entry.file_name().into_string() else {
            continue;
        };
        if is_shard_file(&file_name, name) && !fresh.contains(&file_name) {
            std::fs::remove_file(entry.path())?;
        }
    }
    Ok(())
}

/// One scenario's shard writer: buffers encoded records for the shard in
/// progress (never more than one shard's worth) and publishes each full
/// shard atomically.
#[derive(Debug)]
pub struct ShardedStore {
    dir: PathBuf,
    name: String,
    shard_size: usize,
    slots: Vec<Option<String>>,
    buffered: usize,
}

impl ShardedStore {
    /// A store writing shards of `shard_size` records (at least 1) into
    /// `dir` under the scenario's name.
    pub fn new(dir: &Path, name: &str, shard_size: usize) -> Self {
        let shard_size = shard_size.max(1);
        ShardedStore {
            dir: dir.to_path_buf(),
            name: name.to_string(),
            shard_size,
            slots: vec![None; shard_size],
            buffered: 0,
        }
    }

    /// Records per shard (the `--per-point-max` threshold).
    pub fn shard_size(&self) -> usize {
        self.shard_size
    }

    /// Where shard `index` lives on disk.
    pub fn shard_path(&self, index: usize) -> PathBuf {
        self.dir.join(shard_file_name(&self.name, index))
    }

    /// Encodes one evaluated point into the in-progress shard at
    /// `slot` (its offset within the shard, *not* the grid). Results may
    /// arrive in any evaluation order; slots pin them back to grid order.
    pub fn buffer(&mut self, slot: usize, result: &ExperimentResult) -> std::io::Result<()> {
        let cell = self.slots.get_mut(slot).ok_or_else(|| {
            std::io::Error::other(format!(
                "shard slot {slot} out of range (shard size {}) — internal scheduling bug",
                self.shard_size
            ))
        })?;
        if cell.is_some() {
            return Err(std::io::Error::other(format!(
                "shard slot {slot} evaluated twice — internal scheduling bug"
            )));
        }
        *cell = Some(serde_json::to_string(result).map_err(std::io::Error::other)?);
        self.buffered += 1;
        note_buffered();
        Ok(())
    }

    /// Atomically publishes the buffered records as shard `index`
    /// (`records` of them — the last shard of a grid is short) and clears
    /// the buffer. The `sweep.write_shard` fault point sits between the
    /// temp-file write and the rename, exactly like the per-point path's
    /// `sweep.write_point`. Returns the shard's byte length for the
    /// journal.
    pub fn write_shard(&mut self, index: usize, records: usize) -> std::io::Result<u64> {
        let mut text = String::new();
        for (slot, cell) in self.slots.iter().take(records).enumerate() {
            let line = cell.as_ref().ok_or_else(|| {
                std::io::Error::other(format!(
                    "shard {index} slot {slot} never evaluated — internal scheduling bug"
                ))
            })?;
            text.push_str(line);
            text.push('\n');
        }
        let path = self.shard_path(index);
        let tmp = self
            .dir
            .join(format!("{}.tmp", shard_file_name(&self.name, index)));
        // lint: allow(atomic-results-io): this is the temp-file half of the rename pattern
        std::fs::write(&tmp, &text)?;
        faultpoint::hit(faultpoint::points::SWEEP_WRITE_SHARD)?;
        std::fs::rename(&tmp, &path)?;
        self.clear();
        Ok(text.len() as u64)
    }

    /// Drops any buffered records (also runs on `Drop`, so an errored
    /// sweep does not leave the telemetry counting ghosts).
    fn clear(&mut self) {
        for cell in &mut self.slots {
            *cell = None;
        }
        note_flushed(self.buffered);
        self.buffered = 0;
    }

    /// Reads shard `index` back and accepts it only if everything checks
    /// out: on-disk byte length equals the journaled `expected_bytes`,
    /// exactly one line per expected record, every line parses, carries
    /// the grid's expected id, and re-serialises compactly to exactly
    /// itself. Any failure returns `None` and the caller re-evaluates the
    /// whole shard — the sharded analogue of the per-point path's
    /// round-trip verification.
    pub fn read_verified_shard(
        &self,
        index: usize,
        expected_ids: &[String],
        expected_bytes: u64,
    ) -> Option<Vec<ExperimentResult>> {
        let text = std::fs::read_to_string(self.shard_path(index)).ok()?;
        if text.len() as u64 != expected_bytes || !text.ends_with('\n') {
            return None;
        }
        let lines: Vec<&str> = text.lines().collect();
        if lines.len() != expected_ids.len() {
            return None;
        }
        let mut records = Vec::with_capacity(lines.len());
        for (line, expected_id) in lines.iter().zip(expected_ids) {
            let result: ExperimentResult = serde_json::from_str(line).ok()?;
            if result.id != *expected_id || serde_json::to_string(&result).ok()? != *line {
                return None;
            }
            records.push(result);
        }
        Some(records)
    }
}

impl Drop for ShardedStore {
    fn drop(&mut self) {
        self.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlscale_workloads::Series;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mlscale-store-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn point(id: &str) -> ExperimentResult {
        ExperimentResult::new(id.to_string(), format!("store test {id}"))
            .with_stat("optimal n", 4.0, None)
            .with_series(Series::new("time s", vec![(1usize, 2.0), (2, 1.25)]))
    }

    #[test]
    fn shard_names_match_and_sort() {
        assert_eq!(shard_file_name("big", 0), "big-shard-0000.ndjson");
        assert_eq!(shard_file_name("big", 12), "big-shard-0012.ndjson");
        assert!(is_shard_file("big-shard-0000.ndjson", "big"));
        assert!(is_shard_file("big-shard-0012.ndjson.tmp", "big"));
        assert!(!is_shard_file("big-shard-.ndjson", "big"));
        assert!(!is_shard_file("big-p000.json", "big"));
        assert!(!is_shard_file("other-shard-0000.ndjson", "big"));
        assert_eq!(shard_count(10, 4), 3);
        assert_eq!(shard_count(8, 4), 2);
        assert_eq!(shard_count(1, 0), 1, "shard size clamps to 1");
    }

    #[test]
    fn write_then_read_verifies_and_roundtrips() {
        let dir = temp_dir("roundtrip");
        let mut store = ShardedStore::new(&dir, "rt", 3);
        let ids: Vec<String> = (0..3).map(|i| format!("rt-p00{i}")).collect();
        // Out-of-order arrival: slots pin records back to grid order.
        for slot in [2usize, 0, 1] {
            store.buffer(slot, &point(&ids[slot])).unwrap();
        }
        let bytes = store.write_shard(0, 3).unwrap();
        assert!(!store.shard_path(0).with_extension("ndjson.tmp").exists());
        let back = store.read_verified_shard(0, &ids, bytes).expect("verifies");
        assert_eq!(back.len(), 3);
        assert_eq!(back[0], point("rt-p000"));
        assert_eq!(back[2], point("rt-p002"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn verification_rejects_tampering_and_mismatches() {
        let dir = temp_dir("verify");
        let mut store = ShardedStore::new(&dir, "v", 2);
        let ids: Vec<String> = vec!["v-p000".into(), "v-p001".into()];
        store.buffer(0, &point(&ids[0])).unwrap();
        store.buffer(1, &point(&ids[1])).unwrap();
        let bytes = store.write_shard(0, 2).unwrap();

        assert!(
            store.read_verified_shard(0, &ids, bytes + 1).is_none(),
            "wrong byte length"
        );
        let wrong_ids = vec!["v-p000".to_string(), "v-p999".to_string()];
        assert!(
            store.read_verified_shard(0, &wrong_ids, bytes).is_none(),
            "wrong id"
        );
        assert!(
            store.read_verified_shard(0, &ids[..1], bytes).is_none(),
            "wrong record count"
        );

        let text = std::fs::read_to_string(store.shard_path(0)).unwrap();
        // Same byte length, different spacing: must fail the compact
        // re-serialisation check.
        let tampered = text
            .replacen("\"id\":", "\"id\" :", 1)
            .replacen("  ", " ", 0);
        if tampered.len() == text.len() {
            std::fs::write(store.shard_path(0), &tampered).unwrap();
            assert!(
                store.read_verified_shard(0, &ids, bytes).is_none(),
                "tampered spacing"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn write_shard_faultpoint_leaves_only_a_temp_file() {
        let dir = temp_dir("fault");
        let result = mlscale_core::faultpoint::scoped("sweep.write_shard:1=err", || {
            let mut store = ShardedStore::new(&dir, "f", 1);
            store.buffer(0, &point("f-p000")).unwrap();
            store.write_shard(0, 1)
        })
        .expect("valid fault spec");
        let err = result.expect_err("fault must surface");
        assert!(err.to_string().contains("sweep.write_shard"), "{err}");
        assert!(
            dir.join("f-shard-0000.ndjson.tmp").exists(),
            "temp left behind"
        );
        assert!(
            !dir.join("f-shard-0000.ndjson").exists(),
            "shard never torn"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn telemetry_tracks_peak_buffered_records() {
        let dir = temp_dir("telemetry");
        reset_buffer_telemetry();
        let mut store = ShardedStore::new(&dir, "t", 4);
        for slot in 0..4 {
            store.buffer(slot, &point(&format!("t-p00{slot}"))).unwrap();
        }
        assert_eq!(peak_buffered_records(), 4);
        store.write_shard(0, 4).unwrap();
        for slot in 0..2 {
            store
                .buffer(slot, &point(&format!("t-p00{}", 4 + slot)))
                .unwrap();
        }
        store.write_shard(1, 2).unwrap();
        assert_eq!(
            peak_buffered_records(),
            4,
            "never more than one shard buffered"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_shard_cleanup_respects_the_fresh_set() {
        let dir = temp_dir("clean");
        for index in 0..3 {
            std::fs::write(dir.join(shard_file_name("c", index)), b"{}\n").unwrap();
        }
        std::fs::write(dir.join("c-shard-0009.ndjson.tmp"), b"{").unwrap();
        std::fs::write(dir.join("other-shard-0000.ndjson"), b"{}\n").unwrap();
        let fresh: std::collections::HashSet<String> =
            [shard_file_name("c", 0), shard_file_name("c", 1)]
                .into_iter()
                .collect();
        clean_stale_shards(&dir, "c", &fresh).unwrap();
        let mut names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        names.sort();
        assert_eq!(
            names,
            vec![
                "c-shard-0000.ndjson",
                "c-shard-0001.ndjson",
                "other-shard-0000.ndjson"
            ]
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
