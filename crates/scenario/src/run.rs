//! The batch sweep engine: expands a scenario's grid, evaluates every
//! point, and assembles per-point results plus a roll-up report.
//!
//! Evaluation strategy:
//!
//! * **deterministic** gd points (no straggler tail) fan out across
//!   threads through [`mlscale_core::par`] — each point's curve sweep
//!   additionally parallelises over `n` internally;
//! * **stochastic** gd points are grouped by their delay distribution and
//!   served from one shared [`OrderStatCache`] per distinct distribution,
//!   so a grid that revisits the same `(n, k)` order statistics (sweeping
//!   latency, collectives, rack shapes under one straggler regime) runs
//!   each quadrature exactly once — bit-identical to evaluating every
//!   point in isolation;
//! * **exhibit** scenarios call the same experiment definitions as the
//!   `exp-*`/`ext-*` binaries with the same defaults and seeds, so their
//!   output is byte-identical to the binaries' golden fixtures.

use crate::spec::{
    BpSpec, ExhibitSpec, GdSpec, GridPoint, ResolvedWorkload, ScenarioSpec, SpecError, WorkloadSpec,
};
use mlscale_core::models::graphinf::{
    bp_cost_per_edge, max_edges_monte_carlo, EdgeLoad, GraphInferenceModel,
};
use mlscale_core::planner::Pricing;
use mlscale_core::speedup::log_spaced_ns;
use mlscale_core::straggler::{OrderStatCache, OrderStatCachePool};
use mlscale_core::units::{BitsPerSec, FlopsRate, Seconds};
use mlscale_core::{par, SpeedupCurve};
use mlscale_graph::sampling::zipf_weights;
use mlscale_workloads::experiments::extensions::hierarchical_comm;
use mlscale_workloads::experiments::{fig1, fig2, fig3, fig4, stragglers, table1, DnsScale};
use mlscale_workloads::{ExperimentResult, Series};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Value;
use std::path::{Path, PathBuf};

/// Everything one `mlscale sweep` run produced, in grid order.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepOutcome {
    /// The scenario name (results-file prefix).
    pub name: String,
    /// The expanded grid, aligned with `points` (callers label rows from
    /// here instead of re-expanding the spec).
    pub grid: Vec<GridPoint>,
    /// One result per grid point, in expansion order.
    pub points: Vec<ExperimentResult>,
    /// The roll-up report over all points.
    pub rollup: ExperimentResult,
}

/// Expands and evaluates a validated scenario.
///
/// Returns an error only for grid/spec problems (all of which
/// [`ScenarioSpec::from_json`] already screens — an error out of
/// evaluation itself signals a parse/validation desync, named by key
/// path rather than panicking).
pub fn run(spec: &ScenarioSpec) -> Result<SweepOutcome, SpecError> {
    run_pooled(spec, &OrderStatCachePool::new())
}

/// [`run`] with the stochastic points' order-statistic caches drawn from
/// a caller-owned pool. A long-lived caller (`mlscale serve`) holds one
/// pool for the life of the process, so repeated requests over the same
/// straggler regime reuse each other's quadrature work; results are
/// bit-identical to [`run`] with a fresh pool.
pub fn run_pooled(
    spec: &ScenarioSpec,
    pool: &OrderStatCachePool,
) -> Result<SweepOutcome, SpecError> {
    let grid = spec.expand()?;
    let resolved: Vec<ResolvedWorkload> = grid
        .iter()
        .map(|p| spec.resolve(p))
        .collect::<Result<_, _>>()?;
    let n_points = expected_point_ids(spec, &grid).len();
    let pending: Vec<usize> = (0..n_points).collect();
    let mut results: Vec<Option<ExperimentResult>> = vec![None; n_points];
    eval_pending(spec, &grid, &resolved, pool, &pending, &mut |i, result| {
        results[i] = Some(result);
        Ok(())
    })?;
    let points = collect_complete(results)?;
    let rollup = build_rollup(spec, &grid, &points);
    Ok(SweepOutcome {
        name: spec.name.clone(),
        grid,
        points,
        rollup,
    })
}

/// The result ids a sweep will produce, aligned with its point slots.
/// Gd/bp points are named by the grid; an exhibit keeps its binary's own
/// id (one point, byte-identical to the golden fixture) — the
/// checkpointing runner needs these *before* evaluating anything.
pub(crate) fn expected_point_ids(spec: &ScenarioSpec, grid: &[GridPoint]) -> Vec<String> {
    match &spec.workload {
        WorkloadSpec::Exhibit(ex) => vec![ex.id.clone()],
        _ => grid.iter().map(|p| p.id.clone()).collect(),
    }
}

/// Evaluates the `pending` subset of point slots, delivering each result
/// through `sink` as soon as the engine has it (deterministic order:
/// deterministic gd points first, then stochastic points grouped by
/// delay distribution). The checkpointing runner journals from the sink;
/// [`run_pooled`] just collects. Results are bit-identical regardless of
/// which subset is pending — shared caches only memoise pure
/// quadratures.
pub(crate) fn eval_pending(
    spec: &ScenarioSpec,
    grid: &[GridPoint],
    resolved: &[ResolvedWorkload],
    pool: &OrderStatCachePool,
    pending: &[usize],
    sink: &mut dyn FnMut(usize, ExperimentResult) -> Result<(), SpecError>,
) -> Result<(), SpecError> {
    match &spec.workload {
        WorkloadSpec::Gd(_) => eval_gd_pending(spec, grid, resolved, pool, pending, sink),
        WorkloadSpec::Bp(_) => eval_bp_pending(spec, grid, resolved, pending, sink),
        WorkloadSpec::Exhibit(ex) => {
            for &i in pending {
                sink(i, run_exhibit(ex)?)?;
            }
            Ok(())
        }
    }
}

/// Unwraps the per-slot results, naming any slot the scheduler skipped
/// (an internal bug, reported rather than panicked).
fn collect_complete(
    results: Vec<Option<ExperimentResult>>,
) -> Result<Vec<ExperimentResult>, SpecError> {
    results
        .into_iter()
        .enumerate()
        .map(|(i, r)| {
            r.ok_or_else(|| {
                SpecError::new(
                    format!("sweep point {i}"),
                    "never evaluated — internal scheduling bug",
                )
            })
        })
        .collect()
}

/// Serialises every point result plus the roll-up into `dir` as
/// `<id>.json`, atomically (temp file + rename, like the exhibit
/// binaries' `emit`): an interrupted sweep never leaves a truncated
/// results file behind. Point files from a previous, larger run of the
/// same scenario (`<name>-pNNN.json` ids not in the current expansion,
/// plus orphaned `.tmp` files) are removed, so the directory always
/// reflects exactly the grid that was just swept — re-running a shrunk
/// grid never leaves stale points beside the fresh roll-up. Files not
/// matching this scenario's point-id pattern are untouched. Returns the
/// written paths in grid order (roll-up last).
pub fn write_outcome(outcome: &SweepOutcome, dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let mut paths = Vec::with_capacity(outcome.points.len() + 1);
    for result in outcome
        .points
        .iter()
        .chain(std::iter::once(&outcome.rollup))
    {
        let path = dir.join(format!("{}.json", result.id));
        let tmp = dir.join(format!("{}.json.tmp", result.id));
        let json = serde_json::to_string_pretty(result).map_err(std::io::Error::other)?;
        // lint: allow(atomic-results-io): this is the temp-file half of the rename pattern
        std::fs::write(&tmp, json)?;
        std::fs::rename(&tmp, &path)?;
        paths.push(path);
    }
    let fresh: std::collections::HashSet<String> = outcome
        .points
        .iter()
        .map(|r| format!("{}.json", r.id))
        .collect();
    clean_stale_points(dir, &outcome.name, &fresh)?;
    // Per-point layout is authoritative for this run: shards from a
    // previous sharded run of the same scenario are stale.
    crate::store::clean_stale_shards(dir, &outcome.name, &std::collections::HashSet::new())?;
    Ok(paths)
}

/// Removes point files (and orphaned `.tmp` files) of the named scenario
/// whose file names are not in `fresh` — shared by [`write_outcome`] and
/// the checkpointing runner so both leave the directory reflecting
/// exactly the grid that was just swept.
pub(crate) fn clean_stale_points(
    dir: &Path,
    name: &str,
    fresh: &std::collections::HashSet<String>,
) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let Ok(file_name) = entry.file_name().into_string() else {
            continue;
        };
        if is_point_file(&file_name, name) && !fresh.contains(&file_name) {
            std::fs::remove_file(entry.path())?;
        }
    }
    Ok(())
}

/// Whether `file_name` is a point output (or orphaned temp file) of the
/// named scenario: `<name>-p<digits>.json` or `…​.json.tmp`.
fn is_point_file(file_name: &str, name: &str) -> bool {
    let Some(rest) = file_name
        .strip_prefix(name)
        .and_then(|r| r.strip_prefix("-p"))
    else {
        return false;
    };
    let digits = rest.len() - rest.trim_start_matches(|c: char| c.is_ascii_digit()).len();
    let suffix = &rest[digits..];
    digits > 0 && (suffix == ".json" || suffix == ".json.tmp")
}

// ---------------------------------------------------------------------------
// Gradient descent
// ---------------------------------------------------------------------------

fn try_gd_of(workload: &ResolvedWorkload, point: usize) -> Result<&GdSpec, SpecError> {
    match workload {
        ResolvedWorkload::Gd(gd) => Ok(gd),
        other => Err(SpecError::new(
            format!("sweep point {point}"),
            format!("gd grid resolved to a non-gd workload ({other:?}) — internal resolver bug"),
        )),
    }
}

fn eval_gd_pending(
    spec: &ScenarioSpec,
    grid: &[GridPoint],
    resolved: &[ResolvedWorkload],
    pool: &OrderStatCachePool,
    pending: &[usize],
    sink: &mut dyn FnMut(usize, ExperimentResult) -> Result<(), SpecError>,
) -> Result<(), SpecError> {
    let gds: Vec<&GdSpec> = resolved
        .iter()
        .enumerate()
        .map(|(i, w)| try_gd_of(w, i))
        .collect::<Result<_, _>>()?;

    // Deterministic points: pure functions of the spec, fanned out across
    // threads (each curve additionally parallelises over n internally).
    let det: Vec<usize> = pending
        .iter()
        .copied()
        .filter(|&i| gds[i].straggler_model().is_zero())
        .collect();
    for (&i, result) in det
        .iter()
        .zip(par::map(&det, |&i| eval_gd(spec, &grid[i], gds[i], None)))
    {
        sink(i, result?)?;
    }

    // Stochastic points: group by delay distribution, one shared
    // order-statistic cache per distinct distribution (drawn from the
    // caller's pool, so a daemon reuses them across requests). Each
    // distinct backup_k in a group gets one shared-grid warm pass sized
    // to the group's widest sweep; every curve then reads memo hits.
    let mut stochastic: Vec<usize> = pending
        .iter()
        .copied()
        .filter(|&i| !gds[i].straggler_model().is_zero())
        .collect();
    while let Some(&first) = stochastic.first() {
        let model = gds[first].straggler_model();
        let (group, rest): (Vec<usize>, Vec<usize>) = stochastic
            .iter()
            .partition(|&&i| gds[i].straggler_model() == model);
        stochastic = rest;
        let cache = pool.cache_for(model);
        let mut warmed: Vec<(usize, usize)> = Vec::new(); // (backup_k, n_max)
        for &i in &group {
            let gd = gds[i];
            // Log-spaced points skip the dense warm pass: warming 1..=max_n
            // at extreme scale is exactly the O(max_n) cost the ladder
            // avoids, and per-call memoisation covers the few rungs touched.
            if gd.log_points.is_some() {
                continue;
            }
            match warmed.iter_mut().find(|(k, _)| *k == gd.backup_k) {
                Some((_, n_max)) => *n_max = (*n_max).max(gd.max_n),
                None => warmed.push((gd.backup_k, gd.max_n)),
            }
        }
        for &(backup_k, n_max) in &warmed {
            cache.warm(n_max, backup_k);
        }
        for &i in &group {
            sink(i, eval_gd(spec, &grid[i], gds[i], Some(&cache))?)?;
        }
    }
    Ok(())
}

fn eval_gd(
    spec: &ScenarioSpec,
    point: &GridPoint,
    gd: &GdSpec,
    cache: Option<&OrderStatCache>,
) -> Result<ExperimentResult, SpecError> {
    let model = gd.build()?;
    let ns: Vec<usize> = match gd.log_points {
        Some(points) => log_spaced_ns(gd.max_n, points),
        None => (1..=gd.max_n).collect(),
    };
    let curve = match (gd.weak, cache) {
        (false, Some(cache)) => model.strong_curve_cached(ns, cache),
        (false, None) => model.strong_curve(ns),
        (true, Some(cache)) => model.weak_curve_cached(ns, cache),
        (true, None) => model.weak_curve(ns),
    };
    let mut result = point_result(spec, point).with_note(if gd.weak {
        "weak scaling: expected per-instance time, speedup relative to n = 1"
    } else {
        "strong scaling: expected per-iteration time, speedup relative to n = 1"
    });
    result = with_curve(result, &curve)?;
    if let Some(plan) = &gd.plan {
        let pricing = Pricing::hourly(plan.price);
        let planner = match gd.log_points {
            Some(points) => model.planner_log(plan.iterations, gd.max_n, pricing, points),
            None => model.planner(plan.iterations, gd.max_n, pricing),
        };
        let fastest = planner.fastest();
        let cheapest = planner.cheapest();
        result = result
            .with_stat("fastest n", fastest.n as f64, None)
            .with_stat("fastest time s", fastest.time.as_secs(), None)
            .with_stat("fastest cost", fastest.cost, None)
            .with_stat("cheapest n", cheapest.n as f64, None)
            .with_stat("cheapest time s", cheapest.time.as_secs(), None)
            .with_stat("cheapest cost", cheapest.cost, None);
        if let Some(deadline) = plan.deadline {
            result = match planner.cheapest_within_deadline(Seconds::new(deadline)) {
                Some(p) => result
                    .with_stat("cheapest n within deadline", p.n as f64, None)
                    .with_stat("cheapest cost within deadline", p.cost, None),
                None => result.with_note(format!(
                    "no configuration up to max_n meets the {deadline} s deadline"
                )),
            };
        }
        if let Some(budget) = plan.budget {
            result = match planner.fastest_within_budget(budget) {
                Some(p) => result
                    .with_stat("fastest n within budget", p.n as f64, None)
                    .with_stat("fastest time s within budget", p.time.as_secs(), None),
                None => result.with_note(format!("even one node exceeds the budget of {budget}")),
            };
        }
    }
    Ok(result)
}

// ---------------------------------------------------------------------------
// Belief propagation
// ---------------------------------------------------------------------------

fn eval_bp_pending(
    spec: &ScenarioSpec,
    grid: &[GridPoint],
    resolved: &[ResolvedWorkload],
    pending: &[usize],
    sink: &mut dyn FnMut(usize, ExperimentResult) -> Result<(), SpecError>,
) -> Result<(), SpecError> {
    let evaluated = par::map(pending, |&i| {
        let ResolvedWorkload::Bp(bp) = &resolved[i] else {
            return Err(SpecError::new(
                format!("sweep point {i}"),
                format!(
                    "bp grid resolved to a non-bp workload ({:?}) — internal resolver bug",
                    resolved[i]
                ),
            ));
        };
        eval_bp(spec, &grid[i], bp)
    });
    for (&i, result) in pending.iter().zip(evaluated) {
        sink(i, result?)?;
    }
    Ok(())
}

/// Evaluates one bp grid point with the same defaults, degree model and
/// Monte-Carlo seed as `mlscale bp` — a 1-point grid matches the CLI.
fn eval_bp(
    spec: &ScenarioSpec,
    point: &GridPoint,
    bp: &BpSpec,
) -> Result<ExperimentResult, SpecError> {
    let d_max = bp
        .max_degree
        .unwrap_or((2.0 * bp.edges / bp.vertices * 10.0).max(4.0));
    let bandwidth = BitsPerSec::new(bp.bandwidth.unwrap_or(f64::INFINITY));
    let (weights, gamma) = zipf_weights(bp.vertices as usize, d_max, 2.0 * bp.edges);
    let degrees: Vec<u32> = weights.iter().map(|&w| w.round().max(1.0) as u32).collect();
    let mut rng = StdRng::seed_from_u64(0xC11);
    let loads: Vec<f64> = (1..=bp.max_n)
        .map(|n| max_edges_monte_carlo(&degrees, n, 3, &mut rng))
        .collect();
    let model = GraphInferenceModel {
        vertices: bp.vertices,
        edges: bp.edges,
        states: bp.states,
        cost_per_edge: bp_cost_per_edge(bp.states),
        flops: FlopsRate::new(bp.flops),
        bandwidth,
        replication: bp.replication,
        edge_load: EdgeLoad::PerWorkerMax(loads),
    };
    let curve = model.curve(1..=bp.max_n);
    Ok(with_curve(point_result(spec, point), &curve)?
        .with_stat("zipf gamma", gamma, None)
        .with_note(
            "degree sequence from the calibrated Zipf weights, per-worker max edge \
             load by Monte-Carlo (seed 0xC11), as in `mlscale bp`",
        ))
}

// ---------------------------------------------------------------------------
// Exhibits
// ---------------------------------------------------------------------------

/// Reproduces a named exhibit with exactly the arguments its binary uses,
/// so the emitted JSON is byte-identical to the golden fixture.
fn run_exhibit(ex: &ExhibitSpec) -> Result<ExperimentResult, SpecError> {
    Ok(match ex.id.as_str() {
        "table1" => table1(),
        "fig1" => fig1(),
        "fig2" => fig2(ex.max_n.unwrap_or(16)),
        "fig3" => fig3(),
        "fig4-small" => fig4(DnsScale::Small, &[1, 2, 4, 8, 16, 24, 32, 48, 64, 80]),
        "ext-stragglers" => stragglers(ex.max_n.unwrap_or(16)),
        "ext-hierarchical-comm" => hierarchical_comm(ex.max_n.unwrap_or(64)),
        other => {
            return Err(SpecError::new(
                "workload.id",
                format!("exhibit {other:?} escaped spec validation — internal resolver bug"),
            ))
        }
    })
}

// ---------------------------------------------------------------------------
// Result assembly
// ---------------------------------------------------------------------------

/// The empty per-point result: id from the grid point, title carrying the
/// axis assignments, numeric assignments echoed as stats (symbolic ones
/// live in the title/notes).
fn point_result(spec: &ScenarioSpec, point: &GridPoint) -> ExperimentResult {
    let title = if point.assignments.is_empty() {
        spec.display_title().to_string()
    } else {
        format!("{} [{}]", spec.display_title(), point.label())
    };
    let mut result = ExperimentResult::new(point.id.clone(), title);
    for (param, value) in &point.assignments {
        match value {
            crate::spec::AxisValue::Num(x) => {
                result = result.with_stat(format!("axis {param}"), *x, None);
            }
            crate::spec::AxisValue::Int(n) => {
                result = result.with_stat(format!("axis {param}"), *n as f64, None);
            }
            crate::spec::AxisValue::Str(s) => {
                result = result.with_note(format!("axis {param} = {s}"));
            }
        }
    }
    result
}

/// Attaches the evaluated curve: time and speedup series plus the
/// optimum/baseline stats every roll-up reads. A curve whose optimum is
/// not among its own samples signals an engine desync — reported against
/// the point id, never a panic (the serve daemon runs this path).
fn with_curve(
    result: ExperimentResult,
    curve: &SpeedupCurve,
) -> Result<ExperimentResult, SpecError> {
    let times: Vec<(usize, f64)> = curve
        .ns()
        .iter()
        .zip(curve.times())
        .map(|(&n, t)| (n, t.as_secs()))
        .collect();
    let (n_opt, s_opt) = curve.optimal();
    let t_opt = curve
        .time_at(n_opt)
        .ok_or_else(|| {
            SpecError::new(
                format!("grid point {}", result.id),
                format!("optimum n = {n_opt} is not among the sampled worker counts"),
            )
        })?
        .as_secs();
    let (_, t1) = curve.baseline();
    Ok(result
        .with_series(Series::new("time s", times))
        .with_series(Series::new("speedup", curve.speedups()))
        .with_stat("optimal n", n_opt as f64, None)
        .with_stat("peak speedup", s_opt, None)
        .with_stat("time at optimum s", t_opt, None)
        .with_stat("baseline time s", t1.as_secs(), None))
}

/// Reads a stat back out of a point result (roll-up assembly and the
/// adaptive runner's objective extraction).
pub(crate) fn stat_of(result: &ExperimentResult, label: &str) -> Option<f64> {
    result
        .stats
        .iter()
        .find(|s| s.label == label)
        .map(|s| s.value)
}

/// The only stats a roll-up reads from a point, in series order.
pub(crate) const ROLLUP_STAT_LABELS: [&str; 4] = [
    "optimal n",
    "peak speedup",
    "time at optimum s",
    "cheapest cost",
];

/// The slice of a point result the roll-up needs. Streaming sweeps keep
/// one of these per point (a few dozen bytes) instead of the full result
/// (curves over every `n`), which is what lets a 10⁶-point sweep build
/// the same roll-up as the in-memory path without holding 10⁶ curves.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct PointSummary {
    /// The point's result id (grid id, or the exhibit's own id).
    pub id: String,
    /// The grid point's axis label, `None` when it has no assignments.
    pub label: Option<String>,
    /// The point's values for [`ROLLUP_STAT_LABELS`] (absent stats
    /// omitted).
    pub stats: Vec<(&'static str, f64)>,
}

impl PointSummary {
    fn stat(&self, label: &str) -> Option<f64> {
        self.stats
            .iter()
            .find(|(l, _)| *l == label)
            .map(|&(_, v)| v)
    }
}

/// Distils one evaluated point down to what [`build_rollup_from`] reads.
pub(crate) fn summarize_point(point: &GridPoint, result: &ExperimentResult) -> PointSummary {
    PointSummary {
        id: result.id.clone(),
        label: (!point.assignments.is_empty()).then(|| point.label()),
        stats: ROLLUP_STAT_LABELS
            .iter()
            .filter_map(|&label| stat_of(result, label).map(|v| (label, v)))
            .collect(),
    }
}

/// The roll-up report: per-point optima as series over the point index
/// (1-based), the best point, and one note per point mapping its id to
/// its axis assignments.
pub(crate) fn build_rollup(
    spec: &ScenarioSpec,
    grid: &[GridPoint],
    points: &[ExperimentResult],
) -> ExperimentResult {
    let summaries: Vec<PointSummary> = grid
        .iter()
        .zip(points)
        .map(|(g, p)| summarize_point(g, p))
        .collect();
    build_rollup_from(spec, &summaries)
}

/// [`build_rollup`] from point summaries instead of full results — the
/// one implementation behind both the per-point-file and sharded store
/// paths, so their roll-ups are byte-identical by construction.
pub(crate) fn build_rollup_from(
    spec: &ScenarioSpec,
    summaries: &[PointSummary],
) -> ExperimentResult {
    let mut result = ExperimentResult::new(
        format!("{}-rollup", spec.name),
        format!("{} — sweep roll-up", spec.display_title()),
    )
    .with_stat("grid points", summaries.len() as f64, None);
    for (i, axis) in spec.sweep.iter().enumerate() {
        result = result.with_note(format!(
            "axis {}: {} ({} values)",
            i,
            axis.param,
            axis.values.len()
        ));
    }
    let series_of = |label: &str| -> Option<Series> {
        let pts: Vec<(usize, f64)> = summaries
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.stat(label).map(|v| (i + 1, v)))
            .collect();
        (pts.len() == summaries.len()).then(|| Series::new(format!("{label} per point"), pts))
    };
    let mut best: Option<(usize, f64)> = None;
    for label in ROLLUP_STAT_LABELS {
        if let Some(s) = series_of(label) {
            if label == "peak speedup" {
                best = s.argmax();
            }
            result = result.with_series(s);
        }
    }
    if let Some((point, speedup)) = best {
        let summary = &summaries[point - 1];
        result = result
            .with_stat("best point", point as f64, None)
            .with_stat("best peak speedup", speedup, None)
            .with_stat(
                "best point optimal n",
                summary.stat("optimal n").unwrap_or(f64::NAN),
                None,
            )
            .with_note(format!(
                "best point: {} ({})",
                summary.id,
                summary.label.as_deref().unwrap_or("no axes")
            ));
    }
    for summary in summaries {
        result = result.with_note(format!(
            "{}: {}",
            summary.id,
            summary.label.as_deref().unwrap_or("single configuration")
        ));
    }
    result
}

/// The machine-readable sweep summary the CLI prints as one
/// `summary {json}` stdout line — scripts and CI parse this instead of
/// the human prose around it.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSummary {
    /// Scenario name.
    pub name: String,
    /// `"per-point"`, `"sharded"` or `"adaptive"`.
    pub mode: &'static str,
    /// Full grid size.
    pub grid_points: usize,
    /// Points with results this run (evaluated + restored). Equals
    /// `grid_points` except in adaptive mode.
    pub evaluated: usize,
    /// Points restored from the journal instead of evaluated.
    pub resumed: usize,
    /// Result files written or reused (shards or per-point files, plus
    /// the roll-up).
    pub files: usize,
    /// Shard count (sharded mode only, else 0).
    pub shards: usize,
    /// The `(cost, time)` Pareto frontier (adaptive mode only).
    pub frontier: Vec<(f64, f64)>,
}

impl SweepSummary {
    /// One-line compact JSON. Mode-specific fields (`shards`,
    /// `frontier`) appear only in their mode, so parsers can key off
    /// presence.
    pub fn to_json(&self) -> Result<String, SpecError> {
        let mut fields = vec![
            ("name".to_string(), Value::Str(self.name.clone())),
            ("mode".to_string(), Value::Str(self.mode.to_string())),
            (
                "grid_points".to_string(),
                Value::U64(self.grid_points as u64),
            ),
            ("evaluated".to_string(), Value::U64(self.evaluated as u64)),
            ("resumed".to_string(), Value::U64(self.resumed as u64)),
            ("files".to_string(), Value::U64(self.files as u64)),
        ];
        if self.mode == "sharded" {
            fields.push(("shards".to_string(), Value::U64(self.shards as u64)));
        }
        if self.mode == "adaptive" {
            fields.push((
                "frontier".to_string(),
                Value::Seq(
                    self.frontier
                        .iter()
                        .map(|&(cost, time)| Value::Seq(vec![Value::F64(cost), Value::F64(time)]))
                        .collect(),
                ),
            ));
        }
        serde_json::to_string(&Value::Map(fields))
            .map_err(|e| SpecError::new("summary", format!("cannot render summary JSON: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_json(json: &str) -> SweepOutcome {
        let spec = ScenarioSpec::from_json(json).expect("spec parses");
        run(&spec).expect("sweep runs")
    }

    #[test]
    fn one_point_grid_matches_direct_model_bit_for_bit() {
        let outcome = run_json(
            r#"{"name": "single",
                "workload": {"kind": "gd", "preset": "fig2", "max_n": 13}}"#,
        );
        assert_eq!(outcome.points.len(), 1);
        let point = &outcome.points[0];
        assert_eq!(point.id, "single-p000");
        // Bit-identical to the paper's Fig 2 model evaluated directly.
        let direct = mlscale_workloads::experiments::figures::fig2_model().strong_curve(1..=13);
        let times = point.series("time s").expect("time series");
        for (&(n, t), (dn, dt)) in times.points.iter().zip(
            direct
                .ns()
                .iter()
                .zip(direct.times())
                .map(|(&n, t)| (n, t.as_secs())),
        ) {
            assert_eq!(n, dn);
            assert_eq!(t, dt, "time at n={n} must be bit-identical");
        }
        assert_eq!(stat_of(point, "optimal n"), Some(9.0));
    }

    #[test]
    fn grid_results_follow_expansion_order() {
        let outcome = run_json(
            r#"{"name": "g",
                "workload": {"kind": "gd", "params": 12e6, "cost_per_example": 72e6,
                             "batch": 60000, "flops": 84.48e9, "max_n": 8},
                "sweep": [{"param": "comm", "values": ["tree", "ring"]},
                          {"param": "latency", "values": [0.0, 1e-4, 1e-3]}]}"#,
        );
        assert_eq!(outcome.points.len(), 6);
        assert_eq!(outcome.points[0].id, "g-p000");
        assert_eq!(outcome.points[5].id, "g-p005");
        assert_eq!(stat_of(&outcome.rollup, "grid points"), Some(6.0));
        // Latency only hurts: at fixed comm, peak speedup is non-increasing
        // along the latency axis.
        let s = |i: usize| stat_of(&outcome.points[i], "peak speedup").unwrap();
        assert!(
            s(0) >= s(1) && s(1) >= s(2),
            "tree: {} {} {}",
            s(0),
            s(1),
            s(2)
        );
        assert!(
            s(3) >= s(4) && s(4) >= s(5),
            "ring: {} {} {}",
            s(3),
            s(4),
            s(5)
        );
    }

    #[test]
    fn shared_cache_matches_isolated_evaluation() {
        // A straggler grid served by the shared cache must equal each
        // point evaluated in isolation, bit for bit.
        let json = r#"{"name": "s",
            "workload": {"kind": "gd", "params": 12e6, "cost_per_example": 72e6,
                         "batch": 60000, "flops": 84.48e9, "max_n": 10,
                         "straggler": {"kind": "exp", "mean": 4.0}},
            "sweep": [{"param": "comm", "values": ["tree", "ring", "spark"]},
                      {"param": "backup_k", "values": [0, 2]}]}"#;
        let spec = ScenarioSpec::from_json(json).unwrap();
        let outcome = run(&spec).unwrap();
        for (point, result) in spec.expand().unwrap().iter().zip(&outcome.points) {
            let ResolvedWorkload::Gd(gd) = spec.resolve(point).unwrap() else {
                unreachable!()
            };
            let isolated = gd.build().unwrap().strong_curve(1..=gd.max_n);
            let times = result.series("time s").unwrap();
            for (&(n, t), expected) in times.points.iter().zip(isolated.times()) {
                assert_eq!(t, expected.as_secs(), "point {} n={n}", result.id);
            }
        }
    }

    #[test]
    fn plan_spec_reports_provisioning_stats() {
        let outcome = run_json(
            r#"{"name": "p",
                "workload": {"kind": "gd", "preset": "fig2", "max_n": 16,
                             "plan": {"iterations": 1000, "price": 2.0, "deadline": 1e6}}}"#,
        );
        let point = &outcome.points[0];
        assert!(stat_of(point, "fastest n").is_some());
        assert!(stat_of(point, "cheapest cost").is_some());
        assert!(stat_of(point, "cheapest n within deadline").is_some());
        // Rollup picks the cheapest-cost series up when present.
        assert!(outcome.rollup.series("cheapest cost per point").is_some());
    }

    #[test]
    fn bp_point_evaluates() {
        let outcome = run_json(
            r#"{"name": "b",
                "workload": {"kind": "bp", "vertices": 16259, "edges": 99785,
                             "max_degree": 1100, "max_n": 8}}"#,
        );
        let point = &outcome.points[0];
        assert!(stat_of(point, "optimal n").unwrap() >= 1.0);
        assert!(stat_of(point, "zipf gamma").is_some());
    }

    #[test]
    fn weak_scaling_grid_runs() {
        let outcome = run_json(
            r#"{"name": "w",
                "workload": {"kind": "gd", "preset": "fig3", "weak": true, "max_n": 16,
                             "straggler": {"kind": "jitter", "spread": 0.1}}}"#,
        );
        assert!(stat_of(&outcome.points[0], "peak speedup").unwrap() > 1.0);
    }

    #[test]
    fn exhibit_scenario_reproduces_fig1() {
        let outcome =
            run_json(r#"{"name": "fig1", "workload": {"kind": "exhibit", "id": "fig1"}}"#);
        assert_eq!(outcome.points.len(), 1);
        let direct = fig1();
        assert_eq!(
            outcome.points[0], direct,
            "must equal the exhibit function output"
        );
        assert_eq!(outcome.rollup.id, "fig1-rollup");
    }

    #[test]
    fn write_outcome_is_atomic_and_complete() {
        let outcome = run_json(
            r#"{"name": "wr",
                "workload": {"kind": "gd", "preset": "fig2", "max_n": 4},
                "sweep": [{"param": "jitter", "values": [0.0, 1.0]}]}"#,
        );
        let dir = std::env::temp_dir().join(format!("mlscale-sweep-test-{}", std::process::id()));
        let paths = write_outcome(&outcome, &dir).expect("write");
        assert_eq!(paths.len(), 3, "two points + rollup");
        for path in &paths {
            let json = std::fs::read_to_string(path).unwrap();
            let back: ExperimentResult = serde_json::from_str(&json).unwrap();
            assert!(!back.id.is_empty());
            assert!(!path.with_extension("json.tmp").exists());
        }
        assert!(paths[2].ends_with("wr-rollup.json"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rerun_with_shrunk_grid_clears_stale_points() {
        // 24-point sweep, then a 4-point re-run of the same scenario name
        // into the same directory: the 20 stale point files (and an
        // orphaned temp file) must be gone, unrelated files untouched.
        let wide = run_json(
            r#"{"name": "shrink",
                "workload": {"kind": "gd", "preset": "fig2", "max_n": 4},
                "sweep": [{"param": "jitter", "values": [0.0, 0.1, 0.2, 0.4, 0.8, 1.6]},
                          {"param": "comm", "values": ["tree", "ring", "spark", "halving"]}]}"#,
        );
        assert_eq!(wide.points.len(), 24);
        let dir = std::env::temp_dir().join(format!("mlscale-sweep-shrink-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        write_outcome(&wide, &dir).expect("wide write");
        std::fs::write(dir.join("shrink-p099.json.tmp"), b"{").unwrap();
        std::fs::write(dir.join("unrelated-p000.json"), b"{}").unwrap();
        std::fs::write(dir.join("notes.txt"), b"keep me").unwrap();

        let narrow = run_json(
            r#"{"name": "shrink",
                "workload": {"kind": "gd", "preset": "fig2", "max_n": 4},
                "sweep": [{"param": "comm", "values": ["tree", "ring", "spark", "halving"]}]}"#,
        );
        assert_eq!(narrow.points.len(), 4);
        let paths = write_outcome(&narrow, &dir).expect("narrow write");
        assert_eq!(paths.len(), 5);

        let mut names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        names.sort();
        assert_eq!(
            names,
            vec![
                "notes.txt",
                "shrink-p000.json",
                "shrink-p001.json",
                "shrink-p002.json",
                "shrink-p003.json",
                "shrink-rollup.json",
                "unrelated-p000.json",
            ],
            "stale shrink-p004..p023 and the orphaned temp must be removed"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pooled_run_is_bit_identical_to_fresh_run() {
        let json = r#"{"name": "pool",
            "workload": {"kind": "gd", "preset": "fig2", "max_n": 10,
                         "straggler": {"kind": "exp", "mean": 2.0}},
            "sweep": [{"param": "backup_k", "values": [0, 1, 2]}]}"#;
        let spec = ScenarioSpec::from_json(json).unwrap();
        let fresh = run(&spec).unwrap();
        let pool = OrderStatCachePool::new();
        // Two pooled runs: the second reuses the warmed caches.
        let first = run_pooled(&spec, &pool).unwrap();
        let second = run_pooled(&spec, &pool).unwrap();
        assert_eq!(pool.len(), 1, "one distinct delay model");
        assert_eq!(fresh, first);
        assert_eq!(fresh, second);
    }
}
