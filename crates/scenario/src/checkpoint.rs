//! Crash-safe sweeps: journal every completed grid point, resume later.
//!
//! [`run_checkpointed`] is the durable sibling of
//! [`run_pooled`](crate::run_pooled): instead of evaluating the whole
//! grid in memory and writing files at the end, it writes each point's
//! `<id>.json` atomically (temp file + rename) *as soon as it is
//! evaluated* and records the completion in an append-only journal,
//! `<dir>/<name>.manifest`:
//!
//! ```text
//! mlscale sweep journal v1
//! spec 9f3a6c21d4b07e58
//! point latency-grid-p000
//! point latency-grid-p001
//! …
//! ```
//!
//! The `spec` line is an FNV-1a fingerprint of the fully-parsed scenario,
//! so a resume against an edited spec is refused with a named
//! diagnostic instead of silently mixing results from two different
//! grids. On `resume = true` every journaled point whose file still
//! round-trips byte-identically is reused; everything else (missing
//! files, torn manifest tail lines, files that no longer re-serialise to
//! their own bytes) is re-evaluated. Because evaluation is deterministic
//! and the shared order-statistic caches only memoise pure quadratures,
//! a resumed sweep's points and roll-up are **byte-identical** to an
//! uninterrupted run — property-tested in this module and crash-tested
//! for real (the process killed at an injected fault point) in
//! `tests/crash_resume.rs`.
//!
//! Two [`mlscale_core::faultpoint`] hooks thread through the write path:
//! `sweep.write_point` between a point's temp-file write and its rename
//! (a kill there leaves only a `.tmp`, never a torn JSON) and
//! `sweep.after_point` after a completion is journaled.

use crate::run::{
    build_rollup, build_rollup_from, clean_stale_points, eval_pending, expected_point_ids,
    summarize_point, PointSummary, SweepOutcome,
};
use crate::spec::{
    point_id_width, GridPoint, ResolvedWorkload, ScenarioSpec, SpecError, WorkloadSpec,
};
use crate::store::{self, ShardedStore};
use mlscale_core::faultpoint;
use mlscale_core::straggler::OrderStatCachePool;
use mlscale_workloads::ExperimentResult;
use std::collections::{HashMap, HashSet};
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// First line of every journal this version reads or writes.
const MANIFEST_VERSION: &str = "mlscale sweep journal v1";

/// What a checkpointed sweep produced.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointedSweep {
    /// The full outcome, exactly as an uninterrupted run reports it.
    pub outcome: SweepOutcome,
    /// Written (or reused) result paths in grid order, roll-up last.
    pub paths: Vec<PathBuf>,
    /// How many points were restored from the journal instead of
    /// evaluated (0 on a fresh run).
    pub resumed: usize,
}

/// Runs a sweep with per-point checkpointing into `dir` (a fresh
/// order-statistic cache pool; see [`run_checkpointed_pooled`]).
pub fn run_checkpointed(
    spec: &ScenarioSpec,
    dir: &Path,
    resume: bool,
) -> Result<CheckpointedSweep, SpecError> {
    run_checkpointed_pooled(spec, &OrderStatCachePool::new(), dir, resume)
}

/// [`run_checkpointed`] with a caller-owned cache pool.
///
/// With `resume = false` any previous journal for this scenario is
/// discarded and every point evaluated. With `resume = true` the journal
/// in `dir` is required (a missing one is a named error, not a silent
/// fresh start) and verified-complete points are skipped.
pub fn run_checkpointed_pooled(
    spec: &ScenarioSpec,
    pool: &OrderStatCachePool,
    dir: &Path,
    resume: bool,
) -> Result<CheckpointedSweep, SpecError> {
    let grid = spec.expand()?;
    let resolved: Vec<ResolvedWorkload> = grid
        .iter()
        .map(|p| spec.resolve(p))
        .collect::<Result<_, _>>()?;
    let ids = expected_point_ids(spec, &grid);
    let fingerprint = spec_fingerprint(spec);
    let manifest = manifest_path(dir, &spec.name);
    std::fs::create_dir_all(dir).map_err(|e| io_spec_error(dir, "cannot create", &e))?;

    let mut results: Vec<Option<ExperimentResult>> = if resume {
        restore(dir, &manifest, fingerprint, &ids)?
    } else {
        vec![None; ids.len()]
    };
    let resumed = results.iter().filter(|r| r.is_some()).count();

    // (Re)write the manifest: header plus one line per verified-complete
    // point. On a fresh run this truncates any stale journal; on resume
    // it compacts duplicates and drops any torn tail line.
    let restored_ids: Vec<&str> = ids
        .iter()
        .zip(&results)
        .filter_map(|(id, r)| r.is_some().then_some(id.as_str()))
        .collect();
    write_manifest(&manifest, fingerprint, &restored_ids)
        .map_err(|e| io_spec_error(&manifest, "cannot write", &e))?;

    let pending: Vec<usize> = results
        .iter()
        .enumerate()
        .filter_map(|(i, r)| r.is_none().then_some(i))
        .collect();
    {
        let mut record = |i: usize, result: ExperimentResult| -> Result<(), SpecError> {
            write_point(dir, &result).map_err(|e| io_spec_error(dir, "cannot write point", &e))?;
            append_point(&manifest, &result.id)
                .map_err(|e| io_spec_error(&manifest, "cannot append", &e))?;
            faultpoint::hit(faultpoint::points::SWEEP_AFTER_POINT)
                .map_err(|f| SpecError::new("sweep", f.to_string()))?;
            results[i] = Some(result);
            Ok(())
        };
        eval_pending(spec, &grid, &resolved, pool, &pending, &mut record)?;
    }

    let points: Vec<ExperimentResult> = results
        .into_iter()
        .enumerate()
        .map(|(i, r)| {
            r.ok_or_else(|| {
                SpecError::new(
                    format!("sweep point {i}"),
                    "never evaluated — internal scheduling bug",
                )
            })
        })
        .collect::<Result<_, _>>()?;
    let rollup = build_rollup(spec, &grid, &points);
    write_point(dir, &rollup).map_err(|e| io_spec_error(dir, "cannot write roll-up", &e))?;

    // The directory now reflects exactly this grid: stale points from a
    // previous larger run, orphaned temp files (including any a crash
    // at sweep.write_point left behind) and shards from a previous
    // sharded run of this scenario are removed.
    let fresh: HashSet<String> = ids.iter().map(|id| format!("{id}.json")).collect();
    clean_stale_points(dir, &spec.name, &fresh)
        .map_err(|e| io_spec_error(dir, "cannot clean stale points in", &e))?;
    store::clean_stale_shards(dir, &spec.name, &HashSet::new())
        .map_err(|e| io_spec_error(dir, "cannot clean stale shards in", &e))?;

    let mut paths: Vec<PathBuf> = ids
        .iter()
        .map(|id| dir.join(format!("{id}.json")))
        .collect();
    paths.push(dir.join(format!("{}.json", rollup.id)));
    Ok(CheckpointedSweep {
        outcome: SweepOutcome {
            name: spec.name.clone(),
            grid,
            points,
            rollup,
        },
        paths,
        resumed,
    })
}

/// What a sharded, checkpointed sweep produced. Unlike
/// [`CheckpointedSweep`] there is no full [`SweepOutcome`]: the whole
/// point of the sharded store is that 10⁶ results never sit in memory at
/// once — per-point data lives in the shard files, and only the roll-up
/// (built from streaming [`PointSummary`] extracts, byte-identical to
/// the per-point path's) is returned.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedSweep {
    /// The scenario name (results-file prefix).
    pub name: String,
    /// Expanded grid size.
    pub grid_points: usize,
    /// How many shard files the grid spans.
    pub shards: usize,
    /// The roll-up report over all points.
    pub rollup: ExperimentResult,
    /// Shard paths in index order, roll-up path last.
    pub paths: Vec<PathBuf>,
    /// How many points were restored from verified shards instead of
    /// evaluated (0 on a fresh run).
    pub resumed: usize,
}

/// Runs a sweep through the sharded store with per-shard checkpointing
/// into `dir` (fresh cache pool; see [`run_sharded_pooled`]).
pub fn run_sharded(
    spec: &ScenarioSpec,
    dir: &Path,
    resume: bool,
    shard_size: usize,
) -> Result<ShardedSweep, SpecError> {
    run_sharded_pooled(spec, &OrderStatCachePool::new(), dir, resume, shard_size)
}

/// The streaming sibling of [`run_checkpointed_pooled`] for grids past
/// the per-point-file threshold: grid points are generated lazily
/// (never materialising the cross product), evaluated one shard-sized
/// chunk at a time, and published as atomic NDJSON shards
/// (`crate::store`). The journal records one `shard <k> <records>
/// <bytes>` line per published shard; on `resume = true` every journaled
/// shard that verifies byte-exactly is reused whole and everything else
/// is re-evaluated, so a resumed sweep's shards and roll-up are
/// byte-identical to an uninterrupted run — the same promise the
/// per-point path makes, at shard granularity.
pub fn run_sharded_pooled(
    spec: &ScenarioSpec,
    pool: &OrderStatCachePool,
    dir: &Path,
    resume: bool,
    shard_size: usize,
) -> Result<ShardedSweep, SpecError> {
    if matches!(spec.workload, WorkloadSpec::Exhibit(_)) {
        return Err(SpecError::new(
            "workload",
            "exhibit scenarios are single-point — the sharded store only serves gd/bp grids",
        ));
    }
    let shard_size = shard_size.max(1);
    let total = spec.grid_len()?;
    let width = point_id_width(total);
    let shards = store::shard_count(total, shard_size);
    let fingerprint = spec_fingerprint(spec);
    let manifest = manifest_path(dir, &spec.name);
    std::fs::create_dir_all(dir).map_err(|e| io_spec_error(dir, "cannot create", &e))?;
    let mut sharded = ShardedStore::new(dir, &spec.name, shard_size);

    // Which journaled shards survive strict verification: byte length
    // matches the journal, every record re-serialises to itself under
    // the grid's expected id. Restored points are summarised one shard
    // at a time — memory stays bounded by one shard throughout.
    let chunk_points = |k: usize| -> Vec<GridPoint> {
        let lo = k * shard_size;
        let hi = (lo + shard_size).min(total);
        (lo..hi).map(|slot| spec.point_at(slot, width)).collect()
    };
    let mut summaries: Vec<Option<PointSummary>> = vec![None; total];
    let mut verified: Vec<Option<(usize, u64)>> = vec![None; shards];
    let mut resumed = 0;
    if resume {
        let journaled = restore_shards(&manifest, fingerprint, shard_size, shards)?;
        for (k, meta) in journaled.into_iter().enumerate() {
            let Some((records, bytes)) = meta else {
                continue;
            };
            let points = chunk_points(k);
            if records != points.len() {
                continue; // journal disagrees with the grid: re-evaluate
            }
            let ids: Vec<String> = points.iter().map(|p| p.id.clone()).collect();
            if let Some(results) = sharded.read_verified_shard(k, &ids, bytes) {
                for (offset, (point, result)) in points.iter().zip(&results).enumerate() {
                    summaries[k * shard_size + offset] = Some(summarize_point(point, result));
                }
                verified[k] = Some((records, bytes));
                resumed += records;
            }
        }
    }

    // (Re)write the manifest: header, the pinned shard size, one line per
    // verified shard. On a fresh run this truncates any stale journal.
    write_shard_manifest(&manifest, fingerprint, shard_size, &verified)
        .map_err(|e| io_spec_error(&manifest, "cannot write", &e))?;

    // Evaluate the incomplete shards chunk by chunk: each chunk resolves
    // its own points, buffers at most one shard of encoded records, and
    // publishes atomically before the next chunk starts. Evaluation is
    // deterministic and the shared caches memoise pure quadratures, so
    // chunked results are bit-identical to a whole-grid pass.
    for k in 0..shards {
        if verified[k].is_some() {
            continue;
        }
        let points = chunk_points(k);
        let resolved: Vec<ResolvedWorkload> = points
            .iter()
            .map(|p| spec.resolve(p))
            .collect::<Result<_, _>>()?;
        let pending: Vec<usize> = (0..points.len()).collect();
        let mut chunk_summaries: Vec<Option<PointSummary>> = vec![None; points.len()];
        {
            let sharded = &mut sharded;
            let mut record = |i: usize, result: ExperimentResult| -> Result<(), SpecError> {
                sharded
                    .buffer(i, &result)
                    .map_err(|e| io_spec_error(dir, "cannot buffer point for", &e))?;
                chunk_summaries[i] = Some(summarize_point(&points[i], &result));
                Ok(())
            };
            eval_pending(spec, &points, &resolved, pool, &pending, &mut record)?;
        }
        let bytes = sharded
            .write_shard(k, points.len())
            .map_err(|e| io_spec_error(dir, "cannot write shard in", &e))?;
        append_shard(&manifest, k, points.len(), bytes)
            .map_err(|e| io_spec_error(&manifest, "cannot append", &e))?;
        faultpoint::hit(faultpoint::points::SWEEP_AFTER_SHARD)
            .map_err(|f| SpecError::new("sweep", f.to_string()))?;
        for (offset, summary) in chunk_summaries.into_iter().enumerate() {
            summaries[k * shard_size + offset] = summary;
        }
    }

    let summaries: Vec<PointSummary> = summaries
        .into_iter()
        .enumerate()
        .map(|(i, s)| {
            s.ok_or_else(|| {
                SpecError::new(
                    format!("sweep point {i}"),
                    "never evaluated — internal scheduling bug",
                )
            })
        })
        .collect::<Result<_, _>>()?;
    let rollup = build_rollup_from(spec, &summaries);
    write_point(dir, &rollup).map_err(|e| io_spec_error(dir, "cannot write roll-up", &e))?;

    // Sharded layout is authoritative: per-point files of this scenario
    // (from a previous per-point run), shards beyond the current count
    // and orphaned temp files are all stale.
    clean_stale_points(dir, &spec.name, &HashSet::new())
        .map_err(|e| io_spec_error(dir, "cannot clean stale points in", &e))?;
    let fresh: HashSet<String> = (0..shards)
        .map(|k| store::shard_file_name(&spec.name, k))
        .collect();
    store::clean_stale_shards(dir, &spec.name, &fresh)
        .map_err(|e| io_spec_error(dir, "cannot clean stale shards in", &e))?;

    let mut paths: Vec<PathBuf> = (0..shards).map(|k| sharded.shard_path(k)).collect();
    paths.push(dir.join(format!("{}.json", rollup.id)));
    Ok(ShardedSweep {
        name: spec.name.clone(),
        grid_points: total,
        shards,
        rollup,
        paths,
        resumed,
    })
}

/// `<dir>/<name>.manifest` — never matches the `<name>-pNNN.json` point
/// pattern, so stale-point cleanup leaves the journal alone.
fn manifest_path(dir: &Path, name: &str) -> PathBuf {
    dir.join(format!("{name}.manifest"))
}

/// FNV-1a 64 over the spec's `Debug` rendering. The derived `Debug` of a
/// fully-parsed spec is a pure function of its fields (plain structs,
/// `Vec`s and scalars — no addresses, no hash-ordered maps), so the
/// fingerprint is stable across processes and runs; any semantic edit to
/// the scenario changes it.
fn spec_fingerprint(spec: &ScenarioSpec) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in format!("{spec:?}").bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn io_spec_error(path: &Path, what: &str, e: &std::io::Error) -> SpecError {
    SpecError::new("sweep", format!("{what} {}: {e}", path.display()))
}

/// Atomically writes one result as `<id>.json` (temp file + rename),
/// with the `sweep.write_point` fault point between the two steps — a
/// crash there leaves only the `.tmp`, never a torn JSON.
fn write_point(dir: &Path, result: &ExperimentResult) -> std::io::Result<PathBuf> {
    let path = dir.join(format!("{}.json", result.id));
    let tmp = dir.join(format!("{}.json.tmp", result.id));
    let json = serde_json::to_string_pretty(result).map_err(std::io::Error::other)?;
    // lint: allow(atomic-results-io): this is the temp-file half of the rename pattern
    std::fs::write(&tmp, json)?;
    faultpoint::hit(faultpoint::points::SWEEP_WRITE_POINT)?;
    std::fs::rename(&tmp, &path)?;
    Ok(path)
}

/// Atomically rewrites the whole manifest (header + completed lines).
fn write_manifest(path: &Path, fingerprint: u64, completed: &[&str]) -> std::io::Result<()> {
    let mut text = format!("{MANIFEST_VERSION}\nspec {fingerprint:016x}\n");
    for id in completed {
        text.push_str("point ");
        text.push_str(id);
        text.push('\n');
    }
    let tmp = path.with_extension("manifest.tmp");
    // lint: allow(atomic-results-io): this is the temp-file half of the rename pattern
    std::fs::write(&tmp, text)?;
    std::fs::rename(&tmp, path)
}

/// Appends one completion line to the journal. This is the one
/// deliberately non-atomic write in the sweep path: a crash mid-append
/// can tear the *last line only*, and [`restore`] discards a torn tail
/// (the point is simply re-evaluated), so durability is never worse than
/// losing the most recent completion record.
fn append_point(path: &Path, id: &str) -> std::io::Result<()> {
    // lint: allow(atomic-results-io): append-only journal — a torn tail line is detected and re-evaluated on resume; the results JSON itself goes through temp+rename
    let mut file = std::fs::OpenOptions::new().append(true).open(path)?;
    file.write_all(format!("point {id}\n").as_bytes())?;
    file.flush()
}

/// Reads the journal, checks its version line and spec fingerprint, and
/// returns the body lines with any torn tail (crash mid-append) already
/// dropped — shared by the per-point and sharded restore paths.
fn manifest_body(manifest: &Path, fingerprint: u64) -> Result<Vec<String>, SpecError> {
    let text = match std::fs::read_to_string(manifest) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Err(SpecError::new(
                "--resume",
                format!(
                    "no sweep journal at {} — run `mlscale sweep` without --resume first",
                    manifest.display()
                ),
            ))
        }
        Err(e) => return Err(io_spec_error(manifest, "cannot read", &e)),
    };
    let mut lines = text.lines();
    if lines.next() != Some(MANIFEST_VERSION) {
        return Err(SpecError::new(
            "--resume",
            format!(
                "{} is not a sweep journal this version understands (expected {MANIFEST_VERSION:?} on line 1)",
                manifest.display()
            ),
        ));
    }
    let journaled = lines
        .next()
        .and_then(|l| l.strip_prefix("spec "))
        .and_then(|hex| u64::from_str_radix(hex.trim(), 16).ok())
        .ok_or_else(|| {
            SpecError::new(
                "--resume",
                format!(
                    "{} is missing its spec fingerprint line — journal corrupt, rerun without --resume",
                    manifest.display()
                ),
            )
        })?;
    if journaled != fingerprint {
        return Err(SpecError::new(
            "--resume",
            format!(
                "the scenario changed since this journal was written (spec fingerprint \
                 {fingerprint:016x}, journal has {journaled:016x}) — a resumed sweep would mix \
                 results from two different grids; rerun without --resume to start over"
            ),
        ));
    }
    let mut body: Vec<String> = text.lines().skip(2).map(str::to_string).collect();
    if !text.ends_with('\n') {
        body.pop(); // torn tail line from a crash mid-append: re-evaluate
    }
    Ok(body)
}

/// Loads the journal and returns, per point slot, the restored result if
/// its completion line and on-disk file both check out.
fn restore(
    dir: &Path,
    manifest: &Path,
    fingerprint: u64,
    ids: &[String],
) -> Result<Vec<Option<ExperimentResult>>, SpecError> {
    let index_of: HashMap<&str, usize> = ids
        .iter()
        .enumerate()
        .map(|(i, id)| (id.as_str(), i))
        .collect();
    let mut restored: Vec<Option<ExperimentResult>> = vec![None; ids.len()];
    for line in manifest_body(manifest, fingerprint)? {
        let Some(id) = line.strip_prefix("point ") else {
            continue; // unknown journal line: ignore, never trust it
        };
        let Some(&i) = index_of.get(id) else {
            continue; // not a point of this grid (corruption): re-evaluate
        };
        restored[i] = verified_point(dir, id);
    }
    Ok(restored)
}

/// Loads a sharded journal and returns, per shard index, the journaled
/// `(records, bytes)` of every completed shard. The journal must have
/// been written by the sharded path at the same shard size — the grid
/// slots a shard covers depend on it, so resuming across a shard-size
/// change (or from a per-point journal) is refused with instructions
/// rather than silently mixing layouts.
fn restore_shards(
    manifest: &Path,
    fingerprint: u64,
    shard_size: usize,
    shards: usize,
) -> Result<Vec<Option<(usize, u64)>>, SpecError> {
    let body = manifest_body(manifest, fingerprint)?;
    let journaled_size = body
        .iter()
        .find_map(|line| line.strip_prefix("shard-size "))
        .and_then(|s| s.trim().parse::<usize>().ok());
    match journaled_size {
        None => {
            return Err(SpecError::new(
                "--resume",
                format!(
                    "{} is a per-point sweep journal, but this grid streams through the sharded \
                     store — rerun without --resume to start a sharded sweep",
                    manifest.display()
                ),
            ))
        }
        Some(journaled) if journaled != shard_size => {
            return Err(SpecError::new(
                "--resume",
                format!(
                    "this journal was written with {journaled} records per shard, but the \
                     current run uses {shard_size} — shard boundaries would not line up; rerun \
                     without --resume or pass --per-point-max {journaled}"
                ),
            ))
        }
        Some(_) => {}
    }
    let mut restored: Vec<Option<(usize, u64)>> = vec![None; shards];
    for line in body {
        let Some(rest) = line.strip_prefix("shard ") else {
            continue; // unknown journal line: ignore, never trust it
        };
        let mut fields = rest.split_ascii_whitespace();
        let (Some(k), Some(records), Some(bytes), None) = (
            fields.next().and_then(|f| f.parse::<usize>().ok()),
            fields.next().and_then(|f| f.parse::<usize>().ok()),
            fields.next().and_then(|f| f.parse::<u64>().ok()),
            fields.next(),
        ) else {
            continue; // malformed line (corruption): re-evaluate that shard
        };
        if k < shards {
            restored[k] = Some((records, bytes));
        }
    }
    Ok(restored)
}

/// Atomically rewrites a sharded journal (header, shard size, one line
/// per verified shard).
fn write_shard_manifest(
    path: &Path,
    fingerprint: u64,
    shard_size: usize,
    verified: &[Option<(usize, u64)>],
) -> std::io::Result<()> {
    let mut text =
        format!("{MANIFEST_VERSION}\nspec {fingerprint:016x}\nshard-size {shard_size}\n");
    for (k, meta) in verified.iter().enumerate() {
        if let Some((records, bytes)) = meta {
            text.push_str(&format!("shard {k} {records} {bytes}\n"));
        }
    }
    let tmp = path.with_extension("manifest.tmp");
    // lint: allow(atomic-results-io): this is the temp-file half of the rename pattern
    std::fs::write(&tmp, text)?;
    std::fs::rename(&tmp, path)
}

/// Appends one shard-completion line to the journal — same torn-tail
/// contract as [`append_point`]: a crash mid-append loses at most this
/// one record, and the shard is simply re-evaluated on resume.
fn append_shard(path: &Path, k: usize, records: usize, bytes: u64) -> std::io::Result<()> {
    // lint: allow(atomic-results-io): append-only journal — a torn tail line is detected and re-evaluated on resume; the shard itself goes through temp+rename
    let mut file = std::fs::OpenOptions::new().append(true).open(path)?;
    file.write_all(format!("shard {k} {records} {bytes}\n").as_bytes())?;
    file.flush()
}

/// Reads `<id>.json` back and accepts it only if it re-serialises to
/// exactly its own bytes — the guarantee that lets a resumed sweep
/// promise byte-identical output without re-evaluating the point.
fn verified_point(dir: &Path, id: &str) -> Option<ExperimentResult> {
    let json = std::fs::read_to_string(dir.join(format!("{id}.json"))).ok()?;
    let result: ExperimentResult = serde_json::from_str(&json).ok()?;
    if result.id != id {
        return None;
    }
    let rendered = serde_json::to_string_pretty(&result).ok()?;
    (rendered == json).then_some(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::{run, write_outcome};

    fn spec(json: &str) -> ScenarioSpec {
        ScenarioSpec::from_json(json).expect("spec parses")
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("mlscale-checkpoint-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    const GRID: &str = r#"{"name": "ckpt",
        "workload": {"kind": "gd", "preset": "fig2", "max_n": 6,
                     "straggler": {"kind": "exp", "mean": 2.0}},
        "sweep": [{"param": "backup_k", "values": [0, 1]},
                  {"param": "comm", "values": ["tree", "ring", "spark"]}]}"#;

    #[test]
    fn fresh_checkpointed_run_matches_run_and_write_outcome_bytes() {
        let spec = spec(GRID);
        let plain = run(&spec).unwrap();
        let plain_dir = temp_dir("plain");
        let plain_paths = write_outcome(&plain, &plain_dir).unwrap();

        let ckpt_dir = temp_dir("fresh");
        let swept = run_checkpointed(&spec, &ckpt_dir, false).unwrap();
        assert_eq!(swept.resumed, 0);
        assert_eq!(swept.outcome, plain);
        assert_eq!(swept.paths.len(), plain_paths.len());
        for (ours, theirs) in swept.paths.iter().zip(&plain_paths) {
            assert_eq!(
                std::fs::read(ours).unwrap(),
                std::fs::read(theirs).unwrap(),
                "{} must be byte-identical to the write_outcome file",
                ours.display()
            );
        }
        let manifest = std::fs::read_to_string(manifest_path(&ckpt_dir, "ckpt")).unwrap();
        assert!(manifest.starts_with(MANIFEST_VERSION));
        assert_eq!(manifest.matches("point ").count(), 6);
        std::fs::remove_dir_all(&plain_dir).ok();
        std::fs::remove_dir_all(&ckpt_dir).ok();
    }

    #[test]
    fn resume_after_err_fault_at_every_point_is_byte_identical() {
        // Property over crash sites: inject an `err` fault at the k-th
        // write for every k, then resume; points and roll-up must be
        // byte-identical to an uninterrupted run, and the interrupted
        // directory must never contain a torn JSON.
        let spec = spec(GRID);
        let clean_dir = temp_dir("clean");
        let clean = run_checkpointed(&spec, &clean_dir, false).unwrap();

        for k in 1..=6 {
            let dir = temp_dir(&format!("crash-{k}"));
            let interrupted = faultpoint::scoped(&format!("sweep.write_point:{k}=err"), || {
                run_checkpointed(&spec, &dir, false)
            })
            .expect("valid fault spec");
            let err = interrupted.expect_err("fault must surface");
            assert!(err.message.contains("sweep.write_point"), "{err:?}");

            // Every completed file parses; the faulted point left a .tmp.
            for entry in std::fs::read_dir(&dir).unwrap() {
                let path = entry.unwrap().path();
                if path.extension().is_some_and(|e| e == "json") {
                    let text = std::fs::read_to_string(&path).unwrap();
                    serde_json::from_str::<ExperimentResult>(&text)
                        .unwrap_or_else(|e| panic!("torn JSON at {}: {e:?}", path.display()));
                }
            }

            let resumed = run_checkpointed(&spec, &dir, true).unwrap();
            assert_eq!(resumed.resumed, k - 1, "crash site {k}");
            assert_eq!(resumed.outcome, clean.outcome, "crash site {k}");
            for (ours, theirs) in resumed.paths.iter().zip(&clean.paths) {
                assert_eq!(
                    std::fs::read(ours).unwrap(),
                    std::fs::read(theirs).unwrap(),
                    "crash site {k}: {} differs from the clean run",
                    ours.display()
                );
                assert!(
                    !ours.with_extension("json.tmp").exists(),
                    "crash site {k}: resume must clean the orphaned temp file"
                );
            }
            std::fs::remove_dir_all(&dir).ok();
        }
        std::fs::remove_dir_all(&clean_dir).ok();
    }

    #[test]
    fn resume_refuses_a_changed_spec() {
        let original = spec(GRID);
        let dir = temp_dir("changed");
        let _ = faultpoint::scoped("sweep.after_point:2=err", || {
            run_checkpointed(&original, &dir, false)
        })
        .expect("valid fault spec");

        let edited = spec(&GRID.replace("\"max_n\": 6", "\"max_n\": 7"));
        let err = run_checkpointed(&edited, &dir, true).expect_err("must refuse");
        assert_eq!(err.path, "--resume");
        assert!(err.message.contains("scenario changed"), "{}", err.message);
        assert!(err.message.contains("fingerprint"), "{}", err.message);

        // The unchanged spec still resumes fine.
        let resumed = run_checkpointed(&original, &dir, true).unwrap();
        assert_eq!(resumed.resumed, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_without_a_journal_is_a_named_error() {
        let spec = spec(GRID);
        let dir = temp_dir("nojournal");
        let err = run_checkpointed(&spec, &dir, true).expect_err("must refuse");
        assert_eq!(err.path, "--resume");
        assert!(err.message.contains("no sweep journal"), "{}", err.message);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_manifest_tail_and_tampered_point_are_reevaluated() {
        let spec = spec(GRID);
        let dir = temp_dir("torn");
        let clean = run_checkpointed(&spec, &dir, false).unwrap();

        // Tear the journal's last line (simulates a crash mid-append) and
        // tamper with a completed point file.
        let manifest = manifest_path(&dir, "ckpt");
        let text = std::fs::read_to_string(&manifest).unwrap();
        std::fs::write(&manifest, &text[..text.len() - 3]).unwrap();
        let victim = dir.join("ckpt-p001.json");
        let tampered = std::fs::read_to_string(&victim).unwrap().replace(' ', "  ");
        std::fs::write(&victim, tampered).unwrap();

        let resumed = run_checkpointed(&spec, &dir, true).unwrap();
        assert_eq!(
            resumed.resumed, 4,
            "6 points minus the torn tail and the tampered file"
        );
        assert_eq!(resumed.outcome, clean.outcome);
        // The tampered file was re-evaluated and rewritten: it must
        // round-trip byte-identically again.
        let json = std::fs::read_to_string(&victim).unwrap();
        let back: ExperimentResult = serde_json::from_str(&json).unwrap();
        assert_eq!(serde_json::to_string_pretty(&back).unwrap(), json);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_of_a_finished_sweep_reuses_every_point() {
        let spec = spec(
            r#"{"name": "done", "workload": {"kind": "gd", "preset": "fig2", "max_n": 5},
                "sweep": [{"param": "jitter", "values": [0.0, 0.5]}]}"#,
        );
        let dir = temp_dir("done");
        let first = run_checkpointed(&spec, &dir, false).unwrap();
        let again = run_checkpointed(&spec, &dir, true).unwrap();
        assert_eq!(again.resumed, 2, "both points reused");
        assert_eq!(again.outcome, first.outcome);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpointed_exhibit_reuses_the_binary_id() {
        let spec = spec(r#"{"name": "fig1-ckpt", "workload": {"kind": "exhibit", "id": "fig1"}}"#);
        let dir = temp_dir("exhibit");
        let swept = run_checkpointed(&spec, &dir, false).unwrap();
        assert!(swept.paths[0].ends_with("fig1.json"));
        let again = run_checkpointed(&spec, &dir, true).unwrap();
        assert_eq!(again.resumed, 1);
        assert_eq!(again.outcome, swept.outcome);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sharded_rollup_is_byte_identical_to_the_per_point_rollup() {
        let spec = spec(GRID);
        let point_dir = temp_dir("shard-vs-point");
        let per_point = run_checkpointed(&spec, &point_dir, false).unwrap();

        let shard_dir = temp_dir("shard-fresh");
        let sharded = run_sharded(&spec, &shard_dir, false, 4).unwrap();
        assert_eq!(sharded.grid_points, 6);
        assert_eq!(sharded.shards, 2, "6 points at 4 per shard");
        assert_eq!(sharded.resumed, 0);
        assert_eq!(sharded.rollup, per_point.outcome.rollup);
        assert_eq!(
            std::fs::read(sharded.paths.last().unwrap()).unwrap(),
            std::fs::read(per_point.paths.last().unwrap()).unwrap(),
            "roll-up files must be byte-identical across store layouts"
        );
        // The shard records are the per-point results, compactly encoded,
        // in grid order.
        let mut records = Vec::new();
        for path in &sharded.paths[..2] {
            let text = std::fs::read_to_string(path).unwrap();
            for line in text.lines() {
                records.push(serde_json::from_str::<ExperimentResult>(line).unwrap());
            }
        }
        assert_eq!(records, per_point.outcome.points);
        // No per-point files in the sharded layout.
        for id in per_point.outcome.points.iter().map(|p| &p.id) {
            assert!(!shard_dir.join(format!("{id}.json")).exists(), "{id}");
        }
        std::fs::remove_dir_all(&point_dir).ok();
        std::fs::remove_dir_all(&shard_dir).ok();
    }

    #[test]
    fn sharded_resume_after_shard_fault_is_byte_identical() {
        let spec = spec(GRID);
        let clean_dir = temp_dir("shard-clean");
        let clean = run_sharded(&spec, &clean_dir, false, 2).unwrap();
        assert_eq!(clean.shards, 3);

        for k in 1..=3 {
            let dir = temp_dir(&format!("shard-crash-{k}"));
            let interrupted = faultpoint::scoped(&format!("sweep.write_shard:{k}=err"), || {
                run_sharded(&spec, &dir, false, 2)
            })
            .expect("valid fault spec");
            let err = interrupted.expect_err("fault must surface");
            assert!(err.message.contains("sweep.write_shard"), "{err:?}");
            // The faulted shard left only a temp file, never a torn shard.
            assert!(dir
                .join(format!("ckpt-shard-{:04}.ndjson.tmp", k - 1))
                .exists());
            assert!(!dir.join(format!("ckpt-shard-{:04}.ndjson", k - 1)).exists());

            let resumed = run_sharded(&spec, &dir, true, 2).unwrap();
            assert_eq!(resumed.resumed, (k - 1) * 2, "crash site {k}");
            assert_eq!(resumed.rollup, clean.rollup, "crash site {k}");
            for (ours, theirs) in resumed.paths.iter().zip(&clean.paths) {
                assert_eq!(
                    std::fs::read(ours).unwrap(),
                    std::fs::read(theirs).unwrap(),
                    "crash site {k}: {} differs from the clean run",
                    ours.display()
                );
            }
            assert!(
                !dir.join(format!("ckpt-shard-{:04}.ndjson.tmp", k - 1))
                    .exists(),
                "crash site {k}: resume must clean the orphaned shard temp"
            );
            std::fs::remove_dir_all(&dir).ok();
        }
        std::fs::remove_dir_all(&clean_dir).ok();
    }

    #[test]
    fn sharded_resume_reuses_verified_shards_and_reevaluates_tampered_ones() {
        let spec = spec(GRID);
        let dir = temp_dir("shard-tamper");
        let clean = run_sharded(&spec, &dir, false, 2).unwrap();

        // Tamper shard 1 without changing its byte length: the record
        // still parses and round-trips, but its id no longer matches the
        // grid slot, so only that shard is re-evaluated.
        let victim = dir.join("ckpt-shard-0001.ndjson");
        let text = std::fs::read_to_string(&victim).unwrap();
        let tampered = text.replacen("ckpt-p002", "ckpt-p202", 1);
        assert_ne!(text, tampered, "record format changed — update the tamper");
        std::fs::write(&victim, &tampered).unwrap();

        let resumed = run_sharded(&spec, &dir, true, 2).unwrap();
        assert_eq!(resumed.resumed, 4, "shards 0 and 2 reused, shard 1 redone");
        assert_eq!(resumed.rollup, clean.rollup);
        assert_eq!(
            std::fs::read_to_string(&victim).unwrap(),
            text,
            "the tampered shard must be rewritten byte-identically"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sharded_resume_refuses_layout_changes() {
        let spec = spec(GRID);
        let dir = temp_dir("shard-size-change");
        run_sharded(&spec, &dir, false, 2).unwrap();
        let err = run_sharded(&spec, &dir, true, 3).expect_err("must refuse");
        assert_eq!(err.path, "--resume");
        assert!(
            err.message.contains("2 records per shard"),
            "{}",
            err.message
        );
        assert!(err.message.contains("--per-point-max 2"), "{}", err.message);
        std::fs::remove_dir_all(&dir).ok();

        // A per-point journal cannot seed a sharded resume either.
        let dir = temp_dir("shard-from-point");
        run_checkpointed(&spec, &dir, false).unwrap();
        let err = run_sharded(&spec, &dir, true, 2).expect_err("must refuse");
        assert_eq!(err.path, "--resume");
        assert!(
            err.message.contains("per-point sweep journal"),
            "{}",
            err.message
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn switching_store_layouts_cleans_the_other_layouts_files() {
        let spec = spec(GRID);
        let dir = temp_dir("layout-switch");
        let per_point = run_checkpointed(&spec, &dir, false).unwrap();
        assert!(dir.join("ckpt-p000.json").exists());

        let sharded = run_sharded(&spec, &dir, false, 4).unwrap();
        assert!(
            !dir.join("ckpt-p000.json").exists(),
            "per-point files cleaned"
        );
        assert!(dir.join("ckpt-shard-0000.ndjson").exists());

        let back = run_checkpointed(&spec, &dir, false).unwrap();
        assert!(
            !dir.join("ckpt-shard-0000.ndjson").exists(),
            "shards cleaned"
        );
        assert!(dir.join("ckpt-p000.json").exists());
        assert_eq!(back.outcome.rollup, sharded.rollup);
        assert_eq!(back.outcome, per_point.outcome);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shrunk_grid_fresh_run_clears_stale_points_and_old_journal() {
        // The checkpointed sibling of the write_outcome shrink test: a
        // fresh (non-resume) run over a narrower grid must clear the wide
        // run's extra point files and start a new journal.
        let wide = spec(
            r#"{"name": "shrinkc", "workload": {"kind": "gd", "preset": "fig2", "max_n": 4},
                "sweep": [{"param": "jitter", "values": [0.0, 0.1, 0.2]}]}"#,
        );
        let dir = temp_dir("shrink");
        run_checkpointed(&wide, &dir, false).unwrap();
        std::fs::write(dir.join("shrinkc-p099.json.tmp"), b"{").unwrap();

        let narrow = spec(
            r#"{"name": "shrinkc", "workload": {"kind": "gd", "preset": "fig2", "max_n": 4},
                "sweep": [{"param": "jitter", "values": [0.0]}]}"#,
        );
        let swept = run_checkpointed(&narrow, &dir, false).unwrap();
        assert_eq!(swept.resumed, 0);
        let mut names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        names.sort();
        assert_eq!(
            names,
            vec![
                "shrinkc-p000.json",
                "shrinkc-rollup.json",
                "shrinkc.manifest",
            ],
            "stale points, orphaned temp and old journal lines must be gone"
        );
        let manifest = std::fs::read_to_string(manifest_path(&dir, "shrinkc")).unwrap();
        assert_eq!(manifest.matches("point ").count(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
