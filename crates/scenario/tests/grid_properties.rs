//! Property-based tests over the sweep grid: expansion is order-stable
//! and exactly the cross product of its axes, and a degenerate 1-point
//! grid prices the same model, bit for bit, as evaluating the equivalent
//! single `mlscale gd`-style invocation directly.

use mlscale_core::hardware::{ClusterSpec, LinkSpec, NodeSpec, RackSpec};
use mlscale_core::models::gd::{GdComm, GradientDescentModel};
use mlscale_core::straggler::{StragglerGdModel, StragglerModel};
use mlscale_core::units::{BitsPerSec, FlopCount, FlopsRate, Seconds};
use mlscale_scenario::{run, AxisValue, ResolvedWorkload, ScenarioSpec};
use proptest::prelude::*;

/// A random sweep document over jitter/backup_k/comm axes with the given
/// per-axis value counts.
fn grid_json(lens: &[usize]) -> String {
    let axes: Vec<String> = lens
        .iter()
        .enumerate()
        .map(|(i, &len)| match i {
            0 => {
                let values: Vec<String> = (0..len).map(|v| format!("{}.5", v)).collect();
                format!(
                    r#"{{"param": "jitter", "values": [{}]}}"#,
                    values.join(", ")
                )
            }
            1 => format!(
                r#"{{"param": "max_n", "range": {{"from": 8, "to": {}, "step": 1}}}}"#,
                8 + len - 1
            ),
            _ => {
                let all = ["tree", "spark", "linear", "ring", "halving"];
                let values: Vec<String> = all[..len].iter().map(|c| format!("{c:?}")).collect();
                format!(r#"{{"param": "comm", "values": [{}]}}"#, values.join(", "))
            }
        })
        .collect();
    format!(
        r#"{{"name": "prop",
            "workload": {{"kind": "gd", "params": 12e6, "cost_per_example": 72e6,
                          "batch": 60000, "flops": 84.48e9, "max_n": 8}},
            "sweep": [{}]}}"#,
        axes.join(", ")
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Grid size is exactly the product of the axis lengths, and the
    /// expansion is order-stable: expanding twice yields the identical
    /// point list, and the points enumerate the cross product in odometer
    /// order (last axis fastest).
    #[test]
    fn expansion_size_and_order(lens in proptest::collection::vec(1usize..5, 1..4)) {
        let spec = ScenarioSpec::from_json(&grid_json(&lens)).expect("valid grid");
        let points = spec.expand().expect("expands");
        let expected: usize = lens.iter().product();
        prop_assert_eq!(points.len(), expected);

        // Order-stable: a second expansion is identical.
        prop_assert_eq!(&points, &spec.expand().expect("expands again"));

        // Odometer order: point index re-derives each assignment.
        let axis_lens: Vec<usize> = spec.sweep.iter().map(|a| a.values.len()).collect();
        for (index, point) in points.iter().enumerate() {
            prop_assert_eq!(point.index, index);
            let mut stride: usize = axis_lens.iter().product();
            let mut rem = index;
            for (axis_i, len) in axis_lens.iter().enumerate() {
                stride /= len;
                let expected_value = &spec.sweep[axis_i].values[rem / stride];
                prop_assert_eq!(&point.assignments[axis_i].1, expected_value);
                rem %= stride;
            }
        }
    }

    /// Point ids are zero-padded so lexicographic file order equals grid
    /// order.
    #[test]
    fn point_ids_sort_like_the_grid(lens in proptest::collection::vec(1usize..5, 1..4)) {
        let spec = ScenarioSpec::from_json(&grid_json(&lens)).expect("valid grid");
        let points = spec.expand().expect("expands");
        let mut ids: Vec<&str> = points.iter().map(|p| p.id.as_str()).collect();
        let in_grid_order = ids.clone();
        ids.sort_unstable();
        prop_assert_eq!(ids, in_grid_order);
    }

    /// A 1-point grid reproduces the equivalent direct model evaluation
    /// bit-identically: same per-n times as building the
    /// GradientDescentModel / StragglerGdModel by hand, exactly as the
    /// `mlscale gd` CLI does.
    #[test]
    fn one_point_grid_is_bit_identical_to_direct_evaluation(
        params in 1e5f64..1e8,
        cost in 1e5f64..1e9,
        batch in 1.0f64..1e5,
        flops in 1e9f64..1e13,
        bandwidth in 1e8f64..1e11,
        latency in 0.0f64..1e-3,
        comm_i in 0usize..5,
        jitter in 0.0f64..4.0,
        racked_i in 0usize..2,
        max_n in 2usize..24,
    ) {
        let racked = racked_i == 1;
        let comm_names = ["tree", "spark", "linear", "ring", "halving"];
        let comm_kinds = [
            GdComm::TwoStageTree,
            GdComm::Spark,
            GdComm::LinearFlat,
            GdComm::Ring,
            GdComm::HalvingDoubling,
        ];
        let rack_json = if racked {
            r#""rack_size": 8, "uplink_bandwidth": 1e9, "uplink_latency": 1e-4,"#
        } else {
            ""
        };
        let json = format!(
            r#"{{"name": "one",
                "workload": {{"kind": "gd", "params": {params}, "cost_per_example": {cost},
                              "batch": {batch}, "flops": {flops}, "bandwidth": {bandwidth},
                              "latency": {latency}, {rack_json} "comm": "{comm}",
                              "max_n": {max_n}}},
                "sweep": [{{"param": "jitter", "values": [{jitter}]}}]}}"#,
            comm = comm_names[comm_i],
        );
        let spec = ScenarioSpec::from_json(&json).expect("valid single-point spec");
        let points = spec.expand().expect("expands");
        prop_assert_eq!(points.len(), 1);

        // The resolved workload builds exactly the hand-built model.
        let mut cluster = ClusterSpec::new(
            NodeSpec::new(FlopsRate::new(flops), 1.0),
            LinkSpec::new(BitsPerSec::new(bandwidth), Seconds::new(latency)),
        );
        if racked {
            cluster = cluster.with_racks(RackSpec::new(
                8,
                LinkSpec::new(BitsPerSec::new(1e9), Seconds::new(1e-4)),
            ));
        }
        let direct = StragglerGdModel {
            straggler: StragglerModel::BoundedJitter { spread: jitter },
            ..StragglerGdModel::deterministic(GradientDescentModel {
                cost_per_example: FlopCount::new(cost),
                batch_size: batch,
                params,
                bits_per_param: 32,
                cluster,
                comm: comm_kinds[comm_i],
            })
        };
        match spec.resolve(&points[0]).expect("resolves") {
            ResolvedWorkload::Gd(gd) => prop_assert_eq!(&gd.build().expect("builds"), &direct),
            other => prop_assert!(false, "wrong workload {:?}", other),
        }

        // And the engine's reported times are bit-identical to the direct
        // curve evaluation.
        let outcome = run(&spec).expect("runs");
        let expected = direct.strong_curve(1..=max_n);
        let times = outcome.points[0].series("time s").expect("time series");
        for ((n, t), (en, et)) in times.points.iter().zip(
            expected.ns().iter().zip(expected.times()).map(|(&n, t)| (n, t.as_secs())),
        ) {
            prop_assert_eq!(*n, en);
            prop_assert_eq!(*t, et, "time at n={} drifted", n);
        }
    }
}

/// Axis values survive the round trip into resolved specs for every
/// shape (list, integer range, string list) — deterministic spot check
/// complementing the proptests above.
#[test]
fn assignments_match_axis_values() {
    let spec = ScenarioSpec::from_json(
        r#"{"name": "t",
            "workload": {"kind": "gd", "params": 1e6, "cost_per_example": 1e6,
                         "batch": 10, "flops": 1e9, "max_n": 8,
                         "straggler": {"kind": "exp", "mean": 1.0}},
            "sweep": [{"param": "backup_k", "range": {"from": 0, "to": 2, "step": 1}},
                      {"param": "comm", "values": ["tree", "ring"]}]}"#,
    )
    .unwrap();
    let points = spec.expand().unwrap();
    assert_eq!(points.len(), 6);
    for point in &points {
        let ResolvedWorkload::Gd(gd) = spec.resolve(point).unwrap() else {
            unreachable!()
        };
        match &point.assignments[0].1 {
            AxisValue::Int(k) => assert_eq!(gd.backup_k, *k),
            other => panic!("backup_k axis must be integer, got {other:?}"),
        }
        match &point.assignments[1].1 {
            AxisValue::Str(c) => assert_eq!(gd.comm.as_deref(), Some(c.as_str())),
            other => panic!("comm axis must be string, got {other:?}"),
        }
    }
}
