//! Belief-propagation workload driver: the Fig 4 pipeline.
//!
//! The *model* side uses the paper's Monte-Carlo estimator over the degree
//! sequence (`max_i(E_i)` with the `E_dup` correction). The *experimental*
//! side actually partitions the generated graph, measures exact per-worker
//! incident-edge counts and the replication factor, and executes the
//! resulting per-worker loads on the simulated cluster with an
//! execution-overhead model — reproducing the phenomenology the paper
//! reports: "random vertex assignment turns out to be a conservative
//! estimate for configurations with few workers. However, execution
//! overhead takes over with larger number of workers."

use mlscale_core::hardware::{ClusterSpec, LinkSpec, NodeSpec};
use mlscale_core::models::graphinf::{
    bp_cost_per_edge, max_edges_monte_carlo, EdgeLoad, GraphInferenceModel,
};
use mlscale_core::speedup::SpeedupCurve;
use mlscale_core::units::{BitsPerSec, FlopsRate, Seconds};
use mlscale_graph::csr::CsrGraph;
use mlscale_graph::partition::{Partition, PartitionStats};
use mlscale_sim::bsp::{simulate, BspConfig, BspProgram, CommPhase, SuperstepSpec};
use mlscale_sim::overhead::OverheadModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A BP workload over a concrete graph.
#[derive(Debug)]
pub struct BpWorkload<'a> {
    /// The (generated or measured) graph.
    pub graph: &'a CsrGraph,
    /// Number of variable states `S` (the paper's DNS experiment uses 2).
    pub states: usize,
    /// Effective per-worker compute rate.
    pub flops: FlopsRate,
    /// Link bandwidth (`f64::INFINITY` bits/s = shared memory, as in
    /// Fig 4).
    pub bandwidth: BitsPerSec,
    /// Execution-overhead model for the simulated runs.
    pub overhead: OverheadModel,
    /// Monte-Carlo trials for the model estimate.
    pub trials: usize,
    /// Simulated iterations to average over.
    pub iterations: usize,
    /// Determinism seed.
    pub seed: u64,
}

impl<'a> BpWorkload<'a> {
    /// A shared-memory workload with paper-like defaults (`S = 2`).
    pub fn shared_memory(graph: &'a CsrGraph, flops: FlopsRate) -> Self {
        Self {
            graph,
            states: 2,
            flops,
            bandwidth: BitsPerSec::new(f64::INFINITY),
            overhead: OverheadModel::None,
            trials: 3,
            iterations: 3,
            seed: 0xBEEF,
        }
    }

    /// The paper's model curve: `max_i(E_i)` from the Monte-Carlo
    /// estimator (degree sequence only), `t = max_i(E_i)·c(S)/F + t_cm`.
    pub fn model(&self, max_n: usize) -> GraphInferenceModel {
        let degrees = self.graph.degree_sequence();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let loads: Vec<f64> = (1..=max_n)
            .map(|n| max_edges_monte_carlo(&degrees, n, self.trials, &mut rng))
            .collect();
        GraphInferenceModel {
            vertices: self.graph.vertices() as f64,
            edges: self.graph.edges() as f64,
            states: self.states,
            cost_per_edge: bp_cost_per_edge(self.states),
            flops: self.flops,
            bandwidth: self.bandwidth,
            // The model uses a pessimistic constant replication estimate;
            // the simulated side measures the real one per n.
            replication: 0.5,
            edge_load: EdgeLoad::PerWorkerMax(loads),
        }
    }

    /// Model speedup curve over `ns` (requires `max(ns)` loads).
    pub fn model_curve(&self, ns: &[usize]) -> SpeedupCurve {
        // lint: allow(panic-free-lib): documented contract — model_curve requires a non-empty ns slice
        let max_n = ns.iter().copied().max().expect("non-empty ns");
        let model = self.model(max_n);
        SpeedupCurve::from_fn(ns.iter().copied(), |n| model.iteration_time(n))
    }

    fn cluster_spec(&self) -> ClusterSpec {
        ClusterSpec::new(
            // `flops` is already the effective rate.
            NodeSpec::new(self.flops, 1.0),
            LinkSpec::bandwidth_only(self.bandwidth),
        )
    }

    /// Builds the BSP program for one worker count from a *real* partition
    /// of the graph: per-worker loads are exact incident-edge counts times
    /// `c(S)`, and the replica exchange volume uses the measured
    /// replication factor.
    pub fn program_for(&self, n: usize, rng: &mut StdRng) -> BspProgram {
        let partition = Partition::random(self.graph.vertices(), n, rng);
        let stats = PartitionStats::compute(self.graph, &partition);
        let c = bp_cost_per_edge(self.states).get();
        let loads: Vec<f64> = stats.incident_edges.iter().map(|&e| e as f64 * c).collect();
        let replica_bits = 32.0 * stats.replicas as f64 * self.states as f64;
        BspProgram {
            supersteps: vec![SuperstepSpec {
                loads,
                comm: CommPhase::SharedMedium {
                    total_bits: replica_bits,
                },
            }],
            iterations: self.iterations,
        }
    }

    /// Simulated ("experimental") mean iteration time at `n` workers.
    pub fn simulate(&self, n: usize) -> Seconds {
        let mut rng = StdRng::seed_from_u64(self.seed ^ (n as u64).wrapping_mul(0x9E37));
        let program = self.program_for(n, &mut rng);
        let config = BspConfig {
            cluster: self.cluster_spec(),
            overhead: self.overhead,
            seed: self.seed,
        };
        simulate(&program, &config, n).mean_iteration()
    }

    /// Simulated speedup curve over `ns`, with the per-`n` runs fanned out
    /// across threads: [`Self::simulate`] derives an independent seed per
    /// worker count, so the parallel sweep is bit-identical to a serial
    /// loop. (The *model* curve stays serial on purpose — its Monte-Carlo
    /// trials share one RNG stream across `n`, and splitting that stream
    /// would change the published numbers.)
    pub fn simulated_curve(&self, ns: &[usize]) -> SpeedupCurve {
        let times = mlscale_core::par::map(ns, |&n| self.simulate(n));
        SpeedupCurve::from_samples(ns.iter().copied().zip(times))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlscale_core::metrics::Comparison;
    use mlscale_graph::generators::{dns_like, gnm, DnsGraphSpec};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(404)
    }

    fn small_power_law() -> CsrGraph {
        dns_like(
            DnsGraphSpec {
                vertices: 4000,
                edges: 24_000,
                max_degree: 600,
            },
            &mut rng(),
        )
    }

    #[test]
    fn model_and_sim_agree_without_overhead() {
        // With zero overhead and shared memory both sides reduce to
        // max-edges/(F); they differ only in MC-estimate vs exact-partition
        // noise. The paper's own MAPEs here are 19–26 %.
        let g = small_power_law();
        let w = BpWorkload::shared_memory(&g, FlopsRate::giga(1.0));
        let ns = [1usize, 2, 4, 8, 16];
        let model = w.model_curve(&ns);
        let sim = w.simulated_curve(&ns);
        let cmp = Comparison::join(&model.speedups(), &sim.speedups());
        assert!(cmp.mape() < 30.0, "MAPE {:.1}% too high", cmp.mape());
    }

    #[test]
    fn single_worker_time_is_full_edge_cost() {
        let g = gnm(1000, 6000, &mut rng());
        let w = BpWorkload::shared_memory(&g, FlopsRate::giga(1.0));
        let t = w.simulate(1).as_secs();
        let expected = 6000.0 * 14.0 / 1e9; // E · c(2) / F
        assert!((t - expected).abs() / expected < 1e-9);
    }

    #[test]
    fn speedup_is_sublinear_on_skewed_graph() {
        let g = small_power_law();
        let w = BpWorkload::shared_memory(&g, FlopsRate::giga(1.0));
        let sim = w.simulated_curve(&[1, 4, 16]);
        let s16 = sim.speedup_at(16).unwrap();
        assert!(s16 > 2.0, "still scalable: {s16}");
        assert!(s16 < 16.0, "but sublinear: {s16}");
    }

    #[test]
    fn overhead_takes_over_at_large_n() {
        // The Fig 4 crossover: with per-worker-linear overhead the speedup
        // peaks and then declines.
        let g = small_power_law();
        let mut w = BpWorkload::shared_memory(&g, FlopsRate::giga(1.0));
        w.overhead = OverheadModel::PerWorkerLinear {
            base: 1e-6,
            per_worker: 2e-6,
        };
        let ns: Vec<usize> = vec![1, 2, 4, 8, 16, 32, 64];
        let sim = w.simulated_curve(&ns);
        let (n_opt, _) = sim.optimal();
        assert!(n_opt < 64, "overhead must cap scaling, peak at {n_opt}");
        assert!(n_opt > 1, "but some scaling must exist");
    }

    #[test]
    fn networked_bp_pays_replica_traffic() {
        let g = gnm(2000, 12_000, &mut rng());
        let mut w = BpWorkload::shared_memory(&g, FlopsRate::giga(1.0));
        let shared = w.simulate(8);
        w.bandwidth = BitsPerSec::mega(10.0);
        let networked = w.simulate(8);
        assert!(
            networked > shared,
            "replica exchange must cost time on a network"
        );
    }

    #[test]
    fn program_loads_cover_all_edges_at_least_once() {
        let g = gnm(500, 3000, &mut rng());
        let w = BpWorkload::shared_memory(&g, FlopsRate::giga(1.0));
        let program = w.program_for(4, &mut rng());
        let c = bp_cost_per_edge(2).get();
        let total_edges: f64 = program.supersteps[0].loads.iter().map(|l| l / c).sum();
        // Σ incident edges = E + cut ≥ E.
        assert!(total_edges >= 3000.0 - 1e-6);
        assert!(total_edges <= 2.0 * 3000.0 + 1e-6);
    }

    #[test]
    fn deterministic() {
        let g = small_power_law();
        let w = BpWorkload::shared_memory(&g, FlopsRate::giga(1.0));
        assert_eq!(w.simulate(8), w.simulate(8));
    }
}
