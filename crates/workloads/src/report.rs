//! Experiment result containers: named series over worker counts, summary
//! statistics, and paper-style text rendering. Every exhibit reproduction
//! (`fig1` … `fig4`, Table I, ablations) returns an [`ExperimentResult`]
//! that the bench binaries print and serialise to JSON.

use mlscale_core::metrics::Comparison;
use serde::{Deserialize, Serialize};

/// A named series of `(n, value)` points (speedups, times, edge counts…).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Display name, e.g. "model" or "simulated".
    pub name: String,
    /// `(worker count, value)` samples.
    pub points: Vec<(usize, f64)>,
}

impl Series {
    /// Builds a series.
    pub fn new(name: impl Into<String>, points: Vec<(usize, f64)>) -> Self {
        Self {
            name: name.into(),
            points,
        }
    }

    /// The point with the maximum value (ties to the smaller `n`).
    pub fn argmax(&self) -> Option<(usize, f64)> {
        self.points
            .iter()
            .copied()
            .fold(None, |best: Option<(usize, f64)>, (n, v)| match best {
                Some((_, bv)) if bv >= v => best,
                _ => Some((n, v)),
            })
    }

    /// Value at a given `n`, if sampled.
    pub fn at(&self, n: usize) -> Option<f64> {
        self.points.iter().find(|&&(m, _)| m == n).map(|&(_, v)| v)
    }
}

/// A scalar reported alongside the series (MAPE, optimum, totals…).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Stat {
    /// Label, e.g. "MAPE %" or "optimal n (model)".
    pub label: String,
    /// Value.
    pub value: f64,
    /// Corresponding value reported in the paper, when one exists.
    pub paper: Option<f64>,
}

/// One reproduced exhibit: identifying metadata, the series that would be
/// plotted, and summary statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// Short id: "table1", "fig1" … "fig4", "ablation-comm".
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Plotted series.
    pub series: Vec<Series>,
    /// Summary statistics (MAPE, optima, …).
    pub stats: Vec<Stat>,
    /// Free-form notes (substitutions, conventions).
    pub notes: Vec<String>,
}

impl ExperimentResult {
    /// Creates an empty result with metadata.
    pub fn new(id: impl Into<String>, title: impl Into<String>) -> Self {
        Self {
            id: id.into(),
            title: title.into(),
            series: Vec::new(),
            stats: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Adds a series.
    #[must_use]
    pub fn with_series(mut self, s: Series) -> Self {
        self.series.push(s);
        self
    }

    /// Adds a stat.
    #[must_use]
    pub fn with_stat(mut self, label: impl Into<String>, value: f64, paper: Option<f64>) -> Self {
        self.stats.push(Stat {
            label: label.into(),
            value,
            paper,
        });
        self
    }

    /// Adds a note.
    #[must_use]
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }

    /// Finds a series by name.
    pub fn series(&self, name: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.name == name)
    }

    /// MAPE between two named series on their shared worker counts.
    ///
    /// # Panics
    /// Panics when either series is missing or they share no points.
    pub fn mape_between(&self, predicted: &str, reference: &str) -> f64 {
        // lint: allow(panic-free-lib): documented # Panics contract — mape_between requires both named series
        let p = self.series(predicted).expect("predicted series missing");
        // lint: allow(panic-free-lib): documented # Panics contract — mape_between requires both named series
        let r = self.series(reference).expect("reference series missing");
        Comparison::join(&p.points, &r.points).mape()
    }

    /// Paper-style text block: aligned columns, one row per worker count,
    /// stats and notes below.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "=== {} — {} ===", self.id, self.title);
        if !self.series.is_empty() {
            // Union of worker counts across series, in order.
            let mut ns: Vec<usize> = self
                .series
                .iter()
                .flat_map(|s| s.points.iter().map(|&(n, _)| n))
                .collect();
            ns.sort_unstable();
            ns.dedup();
            let _ = write!(out, "{:>8}", "n");
            for s in &self.series {
                let _ = write!(out, " {:>16}", s.name);
            }
            let _ = writeln!(out);
            for n in ns {
                let _ = write!(out, "{n:>8}");
                for s in &self.series {
                    match s.at(n) {
                        Some(v) => {
                            let _ = write!(out, " {v:>16.4}");
                        }
                        None => {
                            let _ = write!(out, " {:>16}", "-");
                        }
                    }
                }
                let _ = writeln!(out);
            }
        }
        for stat in &self.stats {
            match stat.paper {
                Some(p) => {
                    let _ = writeln!(out, "{}: {:.3}   (paper: {:.3})", stat.label, stat.value, p);
                }
                None => {
                    let _ = writeln!(out, "{}: {:.3}", stat.label, stat.value);
                }
            }
        }
        for note in &self.notes {
            let _ = writeln!(out, "note: {note}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ExperimentResult {
        ExperimentResult::new("figX", "demo")
            .with_series(Series::new("model", vec![(1, 1.0), (2, 1.8), (4, 3.0)]))
            .with_series(Series::new("sim", vec![(1, 1.0), (2, 1.7), (4, 2.8)]))
            .with_stat("MAPE %", 5.0, Some(13.7))
            .with_note("synthetic data")
    }

    #[test]
    fn argmax_ties_to_smaller_n() {
        let s = Series::new("s", vec![(1, 1.0), (2, 3.0), (4, 3.0)]);
        assert_eq!(s.argmax(), Some((2, 3.0)));
    }

    #[test]
    fn argmax_empty_is_none() {
        assert_eq!(Series::new("s", vec![]).argmax(), None);
    }

    #[test]
    fn at_finds_points() {
        let s = Series::new("s", vec![(2, 5.0)]);
        assert_eq!(s.at(2), Some(5.0));
        assert_eq!(s.at(3), None);
    }

    #[test]
    fn mape_between_series() {
        let r = sample();
        let mape = r.mape_between("model", "sim");
        assert!(mape > 0.0 && mape < 10.0);
    }

    #[test]
    fn text_contains_everything() {
        let text = sample().to_text();
        assert!(text.contains("figX"));
        assert!(text.contains("model"));
        assert!(text.contains("sim"));
        assert!(text.contains("MAPE"));
        assert!(text.contains("paper: 13.7"));
        assert!(text.contains("note: synthetic data"));
    }

    #[test]
    fn text_handles_missing_points() {
        let r = ExperimentResult::new("x", "t")
            .with_series(Series::new("a", vec![(1, 1.0)]))
            .with_series(Series::new("b", vec![(2, 2.0)]));
        let text = r.to_text();
        assert!(text.contains('-'), "missing samples render as dashes");
    }

    #[test]
    fn json_roundtrip() {
        let r = sample();
        let json = serde_json::to_string(&r).unwrap();
        let back: ExperimentResult = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    #[should_panic(expected = "missing")]
    fn mape_between_missing_series_panics() {
        let _ = sample().mape_between("model", "nope");
    }
}
