//! Parallelization–convergence trade-off — the paper's second future-work
//! item: "gradient descent parallelization techniques pay for parallelism
//! with algorithmically slower convergence or convergence to a worse local
//! optimum."
//!
//! Weak-scaling synchronous SGD grows the *effective batch* with the
//! worker count (`S·n` examples per update). Each update gets cheaper per
//! example, but large batches make less progress per example processed.
//! This experiment measures that effect with the **real** mini-MLP trainer
//! — epochs to reach a target loss as a function of effective batch size —
//! and combines it with the time model into the metric a practitioner
//! actually cares about: *time to target loss* vs cluster size. The result
//! is a second, convergence-aware optimum that can sit far below the
//! throughput optimum.

use crate::report::{ExperimentResult, Series};
use mlscale_core::models::gd::GradientDescentModel;
use mlscale_nn::tensor::Matrix;
use mlscale_nn::train::{synthetic_blobs, MlpTrainer};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Measured convergence behaviour at one effective batch size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConvergencePoint {
    /// Effective batch size (per-worker batch × workers).
    pub effective_batch: usize,
    /// Updates needed to reach the target loss (capped at the budget).
    pub updates_to_target: usize,
    /// Examples processed to reach the target (`updates × batch`).
    pub examples_to_target: usize,
    /// Whether the target was reached within the update budget.
    pub reached: bool,
}

/// Trains a fresh model with mini-batch SGD at the given effective batch
/// size and returns the number of updates needed to reach `target_loss`
/// (up to `max_updates`). The dataset, architecture and initialisation are
/// held fixed across batch sizes so the *only* variable is the batch.
pub fn updates_to_target(
    x: &Matrix,
    y: &Matrix,
    reference: &MlpTrainer,
    effective_batch: usize,
    lr: f32,
    target_loss: f32,
    max_updates: usize,
) -> ConvergencePoint {
    assert!(effective_batch >= 1);
    let mut trainer = reference.clone();
    let mut updates = 0;
    let rows = x.rows();
    let mut reached = false;
    'outer: while updates < max_updates {
        let mut start = 0;
        while start < rows {
            let len = effective_batch.min(rows - start);
            let (xs, ys) = slice_pair(x, y, start, len);
            trainer.train_step(&xs, &ys, lr);
            updates += 1;
            start += len;
            if trainer.loss(x, y) <= target_loss {
                reached = true;
                break 'outer;
            }
            if updates >= max_updates {
                break 'outer;
            }
        }
    }
    ConvergencePoint {
        effective_batch,
        updates_to_target: updates,
        examples_to_target: updates * effective_batch,
        reached,
    }
}

fn slice_pair(x: &Matrix, y: &Matrix, start: usize, len: usize) -> (Matrix, Matrix) {
    let xs = Matrix::from_vec(
        len,
        x.cols(),
        x.data()[start * x.cols()..(start + len) * x.cols()].to_vec(),
    );
    let ys = Matrix::from_vec(
        len,
        y.cols(),
        y.data()[start * y.cols()..(start + len) * y.cols()].to_vec(),
    );
    (xs, ys)
}

/// The full trade-off experiment: measure updates-to-target at each
/// worker count's effective batch (`per_worker_batch · n`), then price
/// each update with the weak-scaling time model and report *time to
/// target* alongside raw throughput.
pub fn convergence_tradeoff(
    model: &GradientDescentModel,
    ns: &[usize],
    per_worker_batch: usize,
    seed: u64,
) -> ExperimentResult {
    let mut rng = StdRng::seed_from_u64(seed);
    // A fixed synthetic task, sized so the largest effective batch still
    // fits several updates per epoch.
    // lint: allow(panic-free-lib): ns is the experiment's fixed non-empty worker grid
    let max_batch = per_worker_batch * ns.iter().copied().max().expect("non-empty ns");
    let examples = (max_batch * 4).max(512);
    let (x, y) = synthetic_blobs(examples, 16, 4, &mut rng);
    let reference = MlpTrainer::new(&[16, 32, 4], &mut rng);
    let target = 0.35f32;
    let max_updates = 4000;

    let mut updates_series = Vec::with_capacity(ns.len());
    let mut examples_series = Vec::with_capacity(ns.len());
    let mut time_series = Vec::with_capacity(ns.len());
    let mut throughput_series = Vec::with_capacity(ns.len());
    for &n in ns {
        let point = updates_to_target(
            &x,
            &y,
            &reference,
            per_worker_batch * n,
            0.5,
            target,
            max_updates,
        );
        // Weak-scaling iteration time prices one update at n workers.
        let iter_time = {
            let m = GradientDescentModel {
                batch_size: per_worker_batch as f64,
                ..*model
            };
            m.weak_iteration_time(n).as_secs()
        };
        let time_to_target = point.updates_to_target as f64 * iter_time;
        updates_series.push((n, point.updates_to_target as f64));
        examples_series.push((n, point.examples_to_target as f64));
        time_series.push((n, time_to_target));
        throughput_series.push((n, (per_worker_batch * n) as f64 / iter_time));
    }
    let best_time = time_series
        .iter()
        .copied()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        // lint: allow(panic-free-lib): the time series was just built with one point per n and ns is non-empty
        .expect("non-empty");
    let best_throughput = throughput_series
        .iter()
        .copied()
        .max_by(|a, b| a.1.total_cmp(&b.1))
        // lint: allow(panic-free-lib): the throughput series was just built with one point per n and ns is non-empty
        .expect("non-empty");
    ExperimentResult::new(
        "ext-convergence",
        "Parallelization vs convergence: time-to-target-loss under weak scaling (real trainer)",
    )
    .with_series(Series::new("updates to target", updates_series))
    .with_series(Series::new("examples to target", examples_series))
    .with_series(Series::new("time to target s", time_series))
    .with_series(Series::new("instances/s", throughput_series))
    .with_stat("best n (time to target)", best_time.0 as f64, None)
    .with_stat("best time to target s", best_time.1, None)
    .with_stat("best n (raw throughput)", best_throughput.0 as f64, None)
    .with_note(
        "raw throughput keeps improving with n (weak scaling), but reaching the \
         target costs at least as many *updates* at a larger effective batch \
         (and strictly more examples), while each update also gets slower — so \
         the convergence-aware optimum sits below the throughput optimum: \
         parallelism bought instances/s, not time-to-accuracy",
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlscale_core::hardware::presets;
    use mlscale_core::models::gd::GdComm;
    use mlscale_core::units::FlopCount;

    fn model() -> GradientDescentModel {
        use mlscale_core::hardware::{ClusterSpec, LinkSpec};
        use mlscale_core::units::BitsPerSec;
        // Compute-heavy enough (MNIST-FC per-example cost, 10 Gbit/s
        // links) that weak-scaling throughput genuinely improves with n —
        // otherwise the convergence question never arises.
        GradientDescentModel {
            cost_per_example: FlopCount::new(6.0 * 12e6),
            batch_size: 16.0,
            params: 1e6,
            bits_per_param: 32,
            cluster: ClusterSpec::new(
                presets::xeon_e3_1240_double(),
                LinkSpec::bandwidth_only(BitsPerSec::giga(10.0)),
            ),
            comm: GdComm::TwoStageTree,
        }
    }

    #[test]
    fn small_batches_need_fewer_examples() {
        // The core convergence fact the experiment rests on: at a fixed
        // learning rate, reaching the target costs more *examples* with a
        // huge batch than with a small one.
        let mut rng = StdRng::seed_from_u64(42);
        let (x, y) = synthetic_blobs(1024, 16, 4, &mut rng);
        let reference = MlpTrainer::new(&[16, 32, 4], &mut rng);
        let small = updates_to_target(&x, &y, &reference, 32, 0.5, 0.35, 4000);
        let large = updates_to_target(&x, &y, &reference, 1024, 0.5, 0.35, 4000);
        assert!(small.reached, "small batch must reach the target");
        assert!(
            large.examples_to_target > small.examples_to_target,
            "large batch {} examples vs small batch {}",
            large.examples_to_target,
            small.examples_to_target
        );
    }

    #[test]
    fn tradeoff_experiment_shows_two_optima() {
        let ns = [1usize, 2, 4, 8, 16];
        let r = convergence_tradeoff(&model(), &ns, 16, 7);
        let best_time = r
            .stats
            .iter()
            .find(|s| s.label == "best n (time to target)")
            .unwrap()
            .value;
        let best_thr = r
            .stats
            .iter()
            .find(|s| s.label == "best n (raw throughput)")
            .unwrap()
            .value;
        // Throughput always favours the largest cluster under weak
        // scaling with log-tree comm; time-to-target must not.
        assert_eq!(best_thr, 16.0);
        assert!(
            best_time < best_thr,
            "convergence-aware optimum {best_time} must undercut throughput optimum {best_thr}"
        );
        // Updates-to-target grows (weakly) with effective batch.
        let updates = r.series("updates to target").unwrap();
        assert!(updates.at(16).unwrap() >= updates.at(1).unwrap());
    }

    #[test]
    fn convergence_point_accounting() {
        let mut rng = StdRng::seed_from_u64(3);
        let (x, y) = synthetic_blobs(256, 16, 4, &mut rng);
        let reference = MlpTrainer::new(&[16, 32, 4], &mut rng);
        let p = updates_to_target(&x, &y, &reference, 64, 0.5, 0.35, 500);
        assert_eq!(p.examples_to_target, p.updates_to_target * 64);
        assert_eq!(p.effective_batch, 64);
    }
}
