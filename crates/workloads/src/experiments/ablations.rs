//! Ablation experiments for the design choices the paper discusses in
//! prose: communication architecture, weak-scaling communication shape
//! (finite vs infinite scaling), batch size, parameter precision,
//! partitioning strategy, and the Amdahl-fraction treatment of framework
//! overhead (Schreiber's argument).

use crate::report::{ExperimentResult, Series};
use mlscale_core::comp::{AmdahlFraction, CompModel};
use mlscale_core::models::gd::{GdComm, GradientDescentModel};
use mlscale_core::units::{FlopCount, FlopsRate};
use mlscale_graph::csr::CsrGraph;
use mlscale_graph::partition::{Partition, PartitionStats};
use rand::rngs::StdRng;
use rand::SeedableRng;

use super::figures::{fig2_model, fig3_model};

/// Communication-architecture ablation on the Fig 2 configuration: how the
/// optimal cluster size and peak speedup move across Spark's mechanism,
/// the generic two-stage tree, flat (linear) exchange and ring all-reduce.
pub fn comm_architectures(max_n: usize) -> ExperimentResult {
    let kinds = [
        ("spark", GdComm::Spark),
        ("two-stage-tree", GdComm::TwoStageTree),
        ("linear-flat", GdComm::LinearFlat),
        ("ring", GdComm::Ring),
    ];
    let ns: Vec<usize> = (1..=max_n).collect();
    let mut result = ExperimentResult::new(
        "ablation-comm",
        "Gradient exchange architecture vs strong-scaling speedup (Fig 2 config)",
    );
    for (name, comm) in kinds {
        let model = GradientDescentModel {
            comm,
            ..fig2_model()
        };
        let curve = model.strong_curve(ns.iter().copied());
        let (n_opt, s_opt) = curve.optimal();
        result = result
            .with_series(Series::new(name, curve.speedups()))
            .with_stat(format!("optimal n ({name})"), n_opt as f64, None)
            .with_stat(format!("peak speedup ({name})"), s_opt, None);
    }
    result.with_note(
        "the paper's criticism of linear-communication models (Sparks et al.) \
         in one plot: flat exchange caps the optimum far earlier than tree or \
         √n architectures; ring all-reduce dominates at scale",
    )
}

/// Weak-scaling communication-shape ablation on the Fig 3 configuration:
/// logarithmic aggregation allows *infinite* weak scaling while the linear
/// model saturates — the paper's Section V-A discussion.
pub fn weak_scaling_comm(max_n: usize) -> ExperimentResult {
    let ns: Vec<usize> = (1..=max_n).filter(|n| n.is_power_of_two()).collect();
    let mut result = ExperimentResult::new(
        "ablation-weak-comm",
        "Per-instance weak-scaling speedup: logarithmic vs linear communication",
    );
    for (name, comm) in [
        ("log-tree", GdComm::TwoStageTree),
        ("linear", GdComm::LinearFlat),
    ] {
        let model = GradientDescentModel {
            comm,
            ..fig3_model()
        };
        let curve = model.weak_curve(ns.iter().copied());
        result = result.with_series(Series::new(name, curve.speedups()));
    }
    let log_s = result
        .series("log-tree")
        // lint: allow(panic-free-lib): the log-tree series is inserted a few lines above
        .expect("built above")
        .points
        .clone();
    // lint: allow(panic-free-lib): the linear series is inserted a few lines above
    let lin_s = result.series("linear").expect("built above").points.clone();
    // lint: allow(panic-free-lib): both series sample every n in a multi-point grid, so len() >= 2
    let log_gain = log_s.last().unwrap().1 / log_s[log_s.len() - 2].1;
    // lint: allow(panic-free-lib): both series sample every n in a multi-point grid, so len() >= 2
    let lin_gain = lin_s.last().unwrap().1 / lin_s[lin_s.len() - 2].1;
    result
        .with_stat("last-doubling gain (log)", log_gain, None)
        .with_stat("last-doubling gain (linear)", lin_gain, None)
        .with_note(
            "\"Such assumption allows infinite weak scaling … The linear \
             communication model allows only finite scaling: after enough \
             workers added, the speedup remains constant.\"",
        )
}

/// Batch-size ablation on the Fig 2 configuration: larger batches shift
/// the computation/communication balance and move the optimum outward.
pub fn batch_size(max_n: usize) -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "ablation-batch",
        "Batch size vs optimal worker count (Fig 2 config)",
    );
    let ns: Vec<usize> = (1..=max_n).collect();
    for batch in [6_000.0, 60_000.0, 600_000.0] {
        let model = GradientDescentModel {
            batch_size: batch,
            ..fig2_model()
        };
        let curve = model.strong_curve(ns.iter().copied());
        let (n_opt, s_opt) = curve.optimal();
        let label = format!("S={batch:.0}");
        result = result
            .with_series(Series::new(label.clone(), curve.speedups()))
            .with_stat(format!("optimal n ({label})"), n_opt as f64, None)
            .with_stat(format!("peak speedup ({label})"), s_opt, None);
    }
    result.with_note(
        "more computation per exchanged gradient (larger S) pushes the \
         communication crossover — and the optimal cluster size — outward",
    )
}

/// Parameter-precision ablation: Spark's 64-bit doubles halve the
/// communication budget available to the same network.
pub fn precision(max_n: usize) -> ExperimentResult {
    let ns: Vec<usize> = (1..=max_n).collect();
    let mut result = ExperimentResult::new(
        "ablation-precision",
        "Parameter width (32 vs 64 bit) vs strong-scaling speedup (Fig 2 config)",
    );
    for bits in [32u32, 64] {
        let model = GradientDescentModel {
            bits_per_param: bits,
            ..fig2_model()
        };
        let curve = model.strong_curve(ns.iter().copied());
        let (n_opt, s_opt) = curve.optimal();
        result = result
            .with_series(Series::new(format!("{bits}-bit"), curve.speedups()))
            .with_stat(format!("optimal n ({bits}-bit)"), n_opt as f64, None)
            .with_stat(format!("peak speedup ({bits}-bit)"), s_opt, None);
    }
    result
}

/// Partitioning-strategy ablation for the BP workload: the paper's random
/// assignment vs deterministic hashing vs greedy degree balancing, by
/// exact max-edges load at a sweep of worker counts.
pub fn partitioning(graph: &CsrGraph, ns: &[usize], seed: u64) -> ExperimentResult {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut random = Vec::new();
    let mut hashed = Vec::new();
    let mut greedy = Vec::new();
    let mut repl = Vec::new();
    for &n in ns {
        let p_rand = Partition::random(graph.vertices(), n, &mut rng);
        let s_rand = PartitionStats::compute(graph, &p_rand);
        random.push((n, s_rand.max_incident_edges() as f64));
        repl.push((n, s_rand.replication_factor()));
        let p_hash = Partition::hashed(graph.vertices(), n);
        hashed.push((
            n,
            PartitionStats::compute(graph, &p_hash).max_incident_edges() as f64,
        ));
        let p_greedy = Partition::greedy_balanced(graph, n);
        greedy.push((
            n,
            PartitionStats::compute(graph, &p_greedy).max_incident_edges() as f64,
        ));
    }
    let last = ns.len() - 1;
    let gain = random[last].1 / greedy[last].1;
    ExperimentResult::new(
        "ablation-partition",
        "Partitioning strategy vs max per-worker edge load (BP workload)",
    )
    .with_series(Series::new("random max-edges", random))
    .with_series(Series::new("hashed max-edges", hashed))
    .with_series(Series::new("greedy max-edges", greedy))
    .with_series(Series::new("replication r (random)", repl))
    .with_stat("random/greedy load ratio at max n", gain, None)
    .with_note(
        "the paper's feedback-loop future-work item: random assignment is a \
         conservative model input; degree-aware placement shrinks max_i(E_i) \
         substantially on power-law graphs",
    )
}

/// Network ablation for the BP workload: the Fig 4 experiment assumes
/// shared memory (`t_cm ≈ 0`); this sweep prices the *same* partitioned
/// workload on distributed clusters, where the paper's linear replica
/// exchange `t_cm = 32/B·r·V·S` (with the replication factor measured
/// from the actual partition) throttles scaling.
pub fn bp_network(graph: &CsrGraph, ns: &[usize], seed: u64) -> ExperimentResult {
    use mlscale_core::units::{BitsPerSec, FlopsRate};
    let flops = FlopsRate::giga(7.6);
    let mut result = ExperimentResult::new(
        "ablation-bp-network",
        "BP speedup: shared memory vs networked replica exchange (measured r)",
    );
    let mut optima = Vec::new();
    for (name, bandwidth) in [
        ("shared-memory", BitsPerSec::new(f64::INFINITY)),
        ("10 Gbit/s", BitsPerSec::giga(10.0)),
        ("1 Gbit/s", BitsPerSec::giga(1.0)),
    ] {
        let workload = crate::bp::BpWorkload {
            graph,
            states: 2,
            flops,
            bandwidth,
            overhead: mlscale_sim::overhead::OverheadModel::None,
            trials: 3,
            iterations: 3,
            seed,
        };
        let curve = workload.simulated_curve(ns);
        let (n_opt, s_opt) = curve.optimal();
        optima.push((name, n_opt, s_opt));
        result = result
            .with_series(Series::new(name, curve.speedups()))
            .with_stat(format!("optimal n ({name})"), n_opt as f64, None)
            .with_stat(format!("peak speedup ({name})"), s_opt, None);
    }
    result.with_note(
        "the shared-memory assumption is what lets Fig 4 scale: on a network \
         the linear replica exchange is a constant floor per iteration that \
         parallel computation cannot amortise",
    )
}

/// The Schreiber point: a fixed Amdahl serial fraction caps speedup at
/// `1/serial`, but if the framework overhead declines with `n` the cap
/// disappears — "one could make it decline with increasing n, so that the
/// sequential piece is irrelevant to scaling."
pub fn amdahl(max_n: usize) -> ExperimentResult {
    let work = FlopCount::giga(100.0);
    let rate = FlopsRate::giga(1.0);
    let serial = 0.05;
    let fixed = AmdahlFraction::new(work, rate, serial);
    let ns: Vec<usize> = (1..=max_n).filter(|n| n.is_power_of_two()).collect();
    let fixed_series: Vec<(usize, f64)> = ns
        .iter()
        .map(|&n| (n, fixed.time(1).as_secs() / fixed.time(n).as_secs()))
        .collect();
    // Declining overhead: the serial piece shrinks as serial/√n.
    let declining_time = |n: usize| {
        let t1 = (work / rate).as_secs();
        t1 * (serial / (n as f64).sqrt() + (1.0 - serial) / n as f64)
    };
    let declining_series: Vec<(usize, f64)> = ns
        .iter()
        .map(|&n| (n, declining_time(1) / declining_time(n)))
        .collect();
    let cap = 1.0 / serial;
    ExperimentResult::new(
        "ablation-amdahl",
        "Fixed Amdahl fraction vs declining framework overhead (Schreiber)",
    )
    .with_series(Series::new("fixed serial 5%", fixed_series.clone()))
    .with_series(Series::new("declining serial", declining_series.clone()))
    .with_stat("Amdahl cap (1/serial)", cap, None)
    .with_stat(
        "fixed speedup at max n",
        // lint: allow(panic-free-lib): the fixed series is built over the non-empty ns above
        fixed_series.last().unwrap().1,
        None,
    )
    .with_stat(
        "declining speedup at max n",
        // lint: allow(panic-free-lib): the declining series is built over the non-empty ns above
        declining_series.last().unwrap().1,
        None,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlscale_graph::generators::{dns_like, DnsGraphSpec};

    #[test]
    fn comm_ablation_orders_architectures() {
        let r = comm_architectures(32);
        let opt = |name: &str| {
            r.stats
                .iter()
                .find(|s| s.label == format!("optimal n ({name})"))
                .unwrap()
                .value
        };
        // Flat linear exchange must cap out earlier than the tree; ring
        // must dominate everything.
        assert!(opt("linear-flat") < opt("two-stage-tree"));
        assert!(opt("ring") >= opt("spark"));
        let peak = |name: &str| {
            r.stats
                .iter()
                .find(|s| s.label == format!("peak speedup ({name})"))
                .unwrap()
                .value
        };
        assert!(peak("ring") > peak("linear-flat"));
    }

    #[test]
    fn weak_comm_ablation_shows_saturation() {
        let r = weak_scaling_comm(256);
        let log_gain = r
            .stats
            .iter()
            .find(|s| s.label == "last-doubling gain (log)")
            .unwrap()
            .value;
        let lin_gain = r
            .stats
            .iter()
            .find(|s| s.label == "last-doubling gain (linear)")
            .unwrap()
            .value;
        assert!(log_gain > 1.2, "log comm keeps gaining, got {log_gain}");
        assert!(lin_gain < 1.1, "linear comm saturates, got {lin_gain}");
    }

    #[test]
    fn batch_ablation_moves_optimum_outward() {
        let r = batch_size(64);
        let opt = |s: &str| {
            r.stats
                .iter()
                .find(|st| st.label == format!("optimal n (S={s})"))
                .unwrap()
                .value
        };
        assert!(opt("6000") < opt("60000"));
        assert!(opt("60000") <= opt("600000"));
    }

    #[test]
    fn precision_ablation_prefers_narrow_params() {
        let r = precision(32);
        let peak32 = r
            .stats
            .iter()
            .find(|s| s.label == "peak speedup (32-bit)")
            .unwrap()
            .value;
        let peak64 = r
            .stats
            .iter()
            .find(|s| s.label == "peak speedup (64-bit)")
            .unwrap()
            .value;
        assert!(
            peak32 > peak64,
            "half the traffic must help: {peak32} vs {peak64}"
        );
    }

    #[test]
    fn partition_ablation_greedy_wins() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = dns_like(
            DnsGraphSpec {
                vertices: 3000,
                edges: 18_000,
                max_degree: 500,
            },
            &mut rng,
        );
        let r = partitioning(&g, &[2, 4, 8, 16], 9);
        let ratio = r
            .stats
            .iter()
            .find(|s| s.label == "random/greedy load ratio at max n")
            .unwrap()
            .value;
        assert!(ratio > 1.0, "greedy must beat random, ratio {ratio}");
        // Replication factor grows with n.
        let repl = r.series("replication r (random)").unwrap();
        assert!(repl.at(16).unwrap() > repl.at(2).unwrap());
    }

    #[test]
    fn bp_network_ablation_orders_bandwidths() {
        let mut rng = StdRng::seed_from_u64(8);
        let g = dns_like(
            DnsGraphSpec {
                vertices: 4000,
                edges: 24_000,
                max_degree: 600,
            },
            &mut rng,
        );
        let r = bp_network(&g, &[1, 2, 4, 8, 16], 13);
        let peak = |name: &str| {
            r.stats
                .iter()
                .find(|s| s.label == format!("peak speedup ({name})"))
                .unwrap()
                .value
        };
        assert!(peak("shared-memory") > peak("10 Gbit/s"));
        assert!(peak("10 Gbit/s") >= peak("1 Gbit/s"));
        // On 1 Gbit/s the replica floor dominates: barely scalable.
        assert!(peak("1 Gbit/s") < 0.6 * peak("shared-memory"));
    }

    #[test]
    fn amdahl_ablation_breaks_the_cap() {
        let r = amdahl(1024);
        let cap = r
            .stats
            .iter()
            .find(|s| s.label == "Amdahl cap (1/serial)")
            .unwrap()
            .value;
        let fixed = r
            .stats
            .iter()
            .find(|s| s.label == "fixed speedup at max n")
            .unwrap()
            .value;
        let declining = r
            .stats
            .iter()
            .find(|s| s.label == "declining speedup at max n")
            .unwrap()
            .value;
        assert!(fixed < cap);
        assert!(
            declining > cap,
            "declining overhead must beat the Amdahl cap"
        );
    }
}
