//! Per-exhibit experiment definitions: every table and figure of the
//! paper's evaluation ([`figures`]) plus ablations over the design choices
//! the paper discusses in prose ([`ablations`]). The bench binaries in
//! `mlscale-bench` are thin wrappers printing these results.

pub mod ablations;
pub mod convergence;
pub mod extensions;
pub mod figures;
pub mod stragglers;

pub use figures::{fig1, fig2, fig3, fig4, table1, DnsScale};
pub use stragglers::stragglers;
