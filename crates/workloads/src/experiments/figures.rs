//! Reproductions of the paper's numbered exhibits: Fig 1 (example speedup),
//! Table I (network configurations), Fig 2 (Spark FC-ANN), Fig 3
//! (Inception-v3 weak scaling) and Fig 4 (belief propagation).
//!
//! Each function returns an [`ExperimentResult`] with the same series the
//! paper plots plus model-vs-"experiment" MAPE, where the experiment side
//! is the discrete-event simulation described in DESIGN.md.

use crate::bp::BpWorkload;
use crate::gd::GdWorkload;
use crate::report::{ExperimentResult, Series};
use mlscale_core::hardware::{presets, ClusterSpec, LinkSpec, NodeSpec};
use mlscale_core::models::gd::{GdComm, GradientDescentModel};
use mlscale_core::units::{BitsPerSec, FlopCount, FlopsRate};
use mlscale_graph::generators::{dns_like, DnsGraphSpec};
use mlscale_sim::overhead::OverheadModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The graph scale for the Fig 4 reproduction. The paper reports the 16M
/// graph in the figure and MAPEs for the three smaller ones in the text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DnsScale {
    /// 16,259 vertices (paper MAPE 23.5 %).
    Tiny,
    /// 165,000 vertices (paper MAPE 19.6 %).
    Small,
    /// 1.63M vertices (paper MAPE 26 %).
    Medium,
    /// The full 16.26M-vertex graph of Fig 4 (paper MAPE 25.4 %);
    /// needs ≈ 1 GB and a few minutes to generate.
    Full,
}

impl DnsScale {
    /// The generator spec for this scale.
    pub fn spec(self) -> DnsGraphSpec {
        match self {
            DnsScale::Tiny => DnsGraphSpec::tiny(),
            DnsScale::Small => DnsGraphSpec::small(),
            DnsScale::Medium => DnsGraphSpec::medium(),
            DnsScale::Full => DnsGraphSpec::full(),
        }
    }

    /// The MAPE the paper reports for this scale.
    pub fn paper_mape(self) -> f64 {
        match self {
            DnsScale::Tiny => 23.5,
            DnsScale::Small => 19.6,
            DnsScale::Medium => 26.0,
            DnsScale::Full => 25.4,
        }
    }
}

/// The Fig 2 model configuration: the Table I fully-connected MNIST
/// network trained with batch gradient descent on the Spark cluster.
pub fn fig2_model() -> GradientDescentModel {
    GradientDescentModel {
        cost_per_example: FlopCount::new(6.0 * 12e6), // 6·W flops
        batch_size: 60_000.0,                         // full MNIST dataset
        params: 12e6,
        bits_per_param: 64, // Spark's doubles
        cluster: presets::spark_cluster(),
        comm: GdComm::Spark,
    }
}

/// The Fig 3 model configuration: Inception v3 with synchronous mini-batch
/// SGD on a K40 cluster (Chen et al.'s setting).
pub fn fig3_model() -> GradientDescentModel {
    GradientDescentModel {
        cost_per_example: FlopCount::new(3.0 * 5e9), // C = 3·5·10⁹
        batch_size: 128.0,                           // per-worker batch
        params: 25e6,
        bits_per_param: 32,
        cluster: presets::gpu_cluster(),
        comm: GdComm::TwoStageTree, // logarithmic aggregation assumption
    }
}

/// The Fig 1 model configuration: the introductory example, calibrated so
/// `t(n) = 1/n + 2·(32W/B)·log₂ n` peaks at n = 14 (the continuous
/// optimum of `1/n + c·log₂ n` sits at `n* = ln 2 / c`, so
/// `c = 2·(32·W/B) = ln 2 / 14`).
pub fn fig1_model() -> GradientDescentModel {
    let cluster = ClusterSpec::new(
        NodeSpec::new(FlopsRate::giga(100.0), 1.0),
        LinkSpec::bandwidth_only(BitsPerSec::giga(1.0)),
    );
    let params = (2f64).ln() / 28.0 * 1e9 / 32.0;
    GradientDescentModel {
        cost_per_example: FlopCount::new(1e7),
        batch_size: 1e4, // C·S/F = 1 s at n = 1
        params,
        bits_per_param: 32,
        cluster,
        comm: GdComm::TwoStageTree,
    }
}

/// **Fig 1** — the introductory example: computation shrinking as `1/n`
/// against tree communication growing as `log₂ n`, with the speedup
/// peaking "at around 14 nodes".
pub fn fig1() -> ExperimentResult {
    let model = fig1_model();
    let curve = model.strong_curve(1..=32);
    let (n_opt, s_opt) = curve.optimal();
    let comp = Series::new(
        "compute s",
        (1..=32)
            .map(|n| (n, model.strong_comp_time(n).as_secs()))
            .collect(),
    );
    let comm = Series::new(
        "comm s",
        (1..=32)
            .map(|n| (n, model.comm_time(n).as_secs()))
            .collect(),
    );
    ExperimentResult::new("fig1", "Example of the speedup (Section III)")
        .with_series(Series::new("speedup", curve.speedups()))
        .with_series(comp)
        .with_series(comm)
        .with_stat("optimal n", n_opt as f64, Some(14.0))
        .with_stat("peak speedup", s_opt, None)
        .with_note(
            "per-node computation falls as 1/n while tree communication grows as \
             log2(n); the total time reaches its minimum at the peak",
        )
}

/// **Table I** — network configurations: parameters and forward-pass
/// computations of the fully-connected MNIST network and Inception v3,
/// computed from the layer cost algebra.
pub fn table1() -> ExperimentResult {
    let fc = mlscale_nn::zoo::mnist_fc();
    let inception = mlscale_nn::zoo::inception_v3();
    ExperimentResult::new("table1", "Network configurations")
        .with_stat("FC (MNIST) parameters", fc.params() as f64, Some(12e6))
        .with_stat(
            "FC (MNIST) computations (2 ops/weight)",
            fc.forward_flops() as f64,
            Some(24e6),
        )
        .with_stat(
            "Inception v3 parameters",
            inception.params() as f64,
            Some(25e6),
        )
        .with_stat(
            "Inception v3 computations (madds)",
            inception.forward_madds() as f64,
            Some(5e9),
        )
        .with_note(
            "the paper's FC row counts multiply and add separately (2·W) while \
             its Inception row counts multiply-add pairs; both conventions are \
             reproduced from the same layer algebra",
        )
        .with_note(
            "our Inception count covers the main tower (no auxiliary head, no \
             batch-norm parameters), hence 23.8e6 vs the paper's rounded 25e6",
        )
}

/// **Fig 2** — speedup of one training iteration of the fully-connected
/// ANN on Spark: analytic model vs simulated experiment (Spark-like task
/// overhead + jitter on the simulated cluster). Paper: optimum at nine
/// workers, MAPE 13.7 %.
pub fn fig2(max_n: usize) -> ExperimentResult {
    let workload = GdWorkload {
        // Spark task-launch cost plus scheduling jitter — the source of
        // the paper's model-vs-experiment gap beyond ~5 workers.
        overhead: OverheadModel::ConstantPlusJitter {
            seconds: 0.3,
            jitter_mean: 0.3,
        },
        iterations: 5,
        seed: 2017,
        ..GdWorkload::ideal(fig2_model())
    };
    let ns: Vec<usize> = (1..=max_n).collect();
    let (model, sim) = workload.strong_curves(&ns);
    let result = ExperimentResult::new(
        "fig2",
        "Speedup of one iteration for fully connected ANN training (Spark)",
    )
    .with_series(Series::new("model", model.speedups()))
    .with_series(Series::new("simulated", sim.speedups()));
    let mape = result.mape_between("model", "simulated");
    // The paper plots n up to ~13 and reads the optimum (9) there; past
    // that the ⌈√n⌉ staircase produces a plateau with marginally higher
    // points, which we report separately.
    let plotted = max_n.min(13);
    let (n_plotted, _) = fig2_model().strong_curve(1..=plotted).optimal();
    let (n_model, s_model) = model.optimal();
    let (n_sim, s_sim) = sim.optimal();
    result
        .with_stat("MAPE %", mape, Some(13.7))
        .with_stat(
            format!("optimal n (model, n<={plotted})"),
            n_plotted as f64,
            Some(9.0),
        )
        .with_stat("optimal n (model, full range)", n_model as f64, None)
        .with_stat("optimal n (simulated)", n_sim as f64, None)
        .with_stat("peak speedup (model)", s_model, None)
        .with_stat("peak speedup (simulated)", s_sim, None)
        .with_note(
            "simulated experiment = same schedule on the discrete-event cluster \
             with Spark-like per-task overhead (paper used a real Spark cluster \
             of Xeon E3-1240 nodes)",
        )
        .with_note(
            "the model's ⌈√n⌉ aggregation staircase makes s(n) near-flat from 9 \
             to 16 workers; within the paper's plotted range the argmax is 9",
        )
}

/// **Fig 3** — speedup of processing time per training instance for
/// convolutional ANN training (weak scaling, relative to 50 nodes).
/// Paper: MAPE 1.2 % against Chen et al.'s measurements.
pub fn fig3() -> ExperimentResult {
    let workload = GdWorkload {
        // The GPU cluster measurements sit very close to the model; a
        // small constant per-step overhead reproduces that regime.
        overhead: OverheadModel::Constant { seconds: 0.01 },
        iterations: 3,
        seed: 2016,
        ..GdWorkload::ideal(fig3_model())
    };
    let ns: Vec<usize> = vec![10, 25, 50, 100, 150, 200];
    let (model, sim) = workload.weak_curves(&ns, 50);
    let result = ExperimentResult::new(
        "fig3",
        "Per-instance speedup for convolutional ANN training (weak scaling, rel. 50 nodes)",
    )
    .with_series(Series::new("model", model.speedups()))
    .with_series(Series::new("simulated", sim.speedups()));
    let mape = result.mape_between("model", "simulated");
    result
        .with_stat("MAPE %", mape, Some(1.2))
        .with_stat(
            "speedup at 100 vs 50 (model)",
            // lint: allow(panic-free-lib): the weak-scaling curve samples n = 100, so speedup_at(100) is Some
            model.speedup_at(100).expect("sampled"),
            None,
        )
        .with_note(
            "weak scaling: every worker keeps a 128-example batch; logarithmic \
             aggregation keeps per-instance speedup growing without bound \
             (infinite weak scaling)",
        )
        .with_note(
            "paper compared against Chen et al.'s TensorFlow K40 measurements; \
             we compare against the simulated GPU cluster",
        )
}

/// **Fig 4** — speedup of loopy BP over the DNS-like graph: Monte-Carlo
/// model vs simulated experiment (exact random partitions + execution
/// overhead growing with the worker count) on the shared-memory machine.
pub fn fig4(scale: DnsScale, ns: &[usize]) -> ExperimentResult {
    let spec = scale.spec();
    let mut rng = StdRng::seed_from_u64(0xD45);
    let graph = dns_like(spec, &mut rng);
    let flops = presets::dl980_core().effective();
    // GraphLab-style execution overhead: a contention term growing with
    // the worker count that eventually takes over — the paper's Fig 4
    // phenomenology ("execution overhead takes over with larger number of
    // workers"). Contention pressure scales with the data the workers
    // fight over, so the term is calibrated against the single-worker
    // iteration time t(1) = E·c(S)/F.
    let t1 = graph.edges() as f64 * 14.0 / flops.get();
    let workload = BpWorkload {
        graph: &graph,
        states: 2,
        flops,
        bandwidth: BitsPerSec::new(f64::INFINITY),
        overhead: OverheadModel::PerWorkerLinear {
            base: 2e-5 * t1,
            per_worker: 5e-4 * t1,
        },
        trials: 3,
        iterations: 3,
        seed: 0xF16,
    };
    let model = workload.model_curve(ns);
    let sim = workload.simulated_curve(ns);
    let scale_tag = match scale {
        DnsScale::Tiny => "tiny",
        DnsScale::Small => "small",
        DnsScale::Medium => "medium",
        DnsScale::Full => "full",
    };
    let result = ExperimentResult::new(
        format!("fig4-{scale_tag}"),
        format!(
            "Speedup of the BP algorithm, DNS-like graph with {} vertexes / {} edges",
            spec.vertices, spec.edges
        ),
    )
    .with_series(Series::new("model", model.speedups()))
    .with_series(Series::new("simulated", sim.speedups()));
    let mape = result.mape_between("model", "simulated");
    let (n_model, _) = model.optimal();
    let (n_sim, _) = sim.optimal();
    result
        .with_stat("MAPE %", mape, Some(scale.paper_mape()))
        .with_stat("optimal n (model)", n_model as f64, None)
        .with_stat("optimal n (simulated)", n_sim as f64, None)
        .with_stat("max degree", f64::from(graph.max_degree()), None)
        .with_note(
            "graph: Chung-Lu power law calibrated to the paper's proprietary DNS \
             graph statistics (V, E, max degree); communication is free (shared \
             memory), computation gated by the most-loaded worker",
        )
        .with_note(
            "model = paper's Monte-Carlo estimate with E_dup correction; \
             simulated = exact per-partition edge counts + per-worker-linear \
             execution overhead",
        )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_peaks_near_fourteen() {
        let r = fig1();
        let opt = r.stats.iter().find(|s| s.label == "optimal n").unwrap();
        assert!(
            (13.0..=15.0).contains(&opt.value),
            "Fig 1 example should peak near 14, got {}",
            opt.value
        );
        // Compute falls, comm rises.
        let comp = r.series("compute s").unwrap();
        let comm = r.series("comm s").unwrap();
        assert!(comp.at(32).unwrap() < comp.at(1).unwrap());
        assert!(comm.at(32).unwrap() > comm.at(2).unwrap());
    }

    #[test]
    fn table1_values_near_paper() {
        let r = table1();
        for stat in &r.stats {
            let paper = stat.paper.expect("all Table I rows have paper values");
            let ratio = stat.value / paper;
            assert!(
                (0.8..1.25).contains(&ratio),
                "{}: {} vs paper {paper}",
                stat.label,
                stat.value
            );
        }
    }

    #[test]
    fn fig2_reproduces_shape() {
        let r = fig2(13);
        let mape = r.stats.iter().find(|s| s.label == "MAPE %").unwrap().value;
        assert!(mape < 30.0, "model-vs-sim MAPE {mape:.1}% out of band");
        let n_model = r
            .stats
            .iter()
            .find(|s| s.label.starts_with("optimal n (model, n<="))
            .unwrap()
            .value;
        assert_eq!(n_model, 9.0, "paper: optimum at nine workers");
        // The simulated curve must be scalable and peak in a similar region.
        let sim = r.series("simulated").unwrap();
        let (n_sim, s_sim) = sim.argmax().unwrap();
        assert!(s_sim > 2.0, "simulated cluster must show real speedup");
        assert!((5..=13).contains(&n_sim), "simulated peak at {n_sim}");
    }

    #[test]
    fn fig3_close_match_and_monotone() {
        let r = fig3();
        let mape = r.stats.iter().find(|s| s.label == "MAPE %").unwrap().value;
        assert!(mape < 5.0, "Fig 3 regime is a close match, got {mape:.2}%");
        let model = r.series("model").unwrap();
        // Weak scaling with log comm: monotone increasing speedup.
        let vals: Vec<f64> = model.points.iter().map(|&(_, v)| v).collect();
        for pair in vals.windows(2) {
            assert!(pair[1] > pair[0]);
        }
        // Normalised at 50.
        assert!((model.at(50).unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fig4_tiny_reproduces_band() {
        let ns = [1usize, 2, 4, 8, 16, 32];
        let r = fig4(DnsScale::Tiny, &ns);
        let mape = r.stats.iter().find(|s| s.label == "MAPE %").unwrap().value;
        // The paper's own model error band is ~20-26 %; accept anything
        // comparable for the simulated reproduction.
        assert!(mape < 45.0, "MAPE {mape:.1}% far out of the paper's band");
        let sim = r.series("simulated").unwrap();
        let (_, s_max) = sim.argmax().unwrap();
        assert!(s_max > 1.5, "BP must scale at least somewhat");
    }
}
