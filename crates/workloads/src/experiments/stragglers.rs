//! The straggler extension exhibit: how the paper's Fig 1/Fig 2 optima
//! (14/9 workers) move once per-worker runtime variability is priced in.
//!
//! The paper's deterministic framework assumes every superstep ends when
//! `t_cp + t_cm` says it does; with stochastic per-worker delays the
//! barrier instead waits for the *maximum* of `n` draws, a term that grows
//! with `n` and therefore pushes the speedup optimum toward smaller
//! clusters as the tail gets heavier. The drop-slowest-k (backup worker)
//! mitigation claws part of the lost scaling range back. The analytic
//! order-statistic curves are cross-validated against the discrete-event
//! straggler simulator on the same schedule.

use crate::gd::GdWorkload;
use crate::report::{ExperimentResult, Series};
use mlscale_core::hardware::Heterogeneity;
use mlscale_core::metrics::Comparison;
use mlscale_core::straggler::{StragglerGdModel, StragglerModel};

/// Wraps the Fig 2 model in a straggler scenario.
fn fig2_with(straggler: StragglerModel, backup_k: usize) -> StragglerGdModel {
    StragglerGdModel {
        straggler,
        backup_k,
        ..StragglerGdModel::deterministic(super::figures::fig2_model())
    }
}

/// **Stragglers and heterogeneity** — expected speedup of the paper's two
/// introductory configurations under growing straggler tails, the
/// drop-slowest-k mitigation, and a mixed-generation cluster.
pub fn stragglers(max_n: usize) -> ExperimentResult {
    let ns: Vec<usize> = (1..=max_n).collect();

    // Fig 2 (MNIST on Spark, optimum 9): growing exponential tails.
    let det = fig2_with(StragglerModel::Deterministic, 0);
    let light = fig2_with(StragglerModel::ExponentialTail { mean: 1.0 }, 0);
    let heavy = fig2_with(StragglerModel::ExponentialTail { mean: 8.0 }, 0);
    let lognormal = fig2_with(
        StragglerModel::LogNormalTail {
            mu: 0.33,
            sigma: 1.2,
        },
        0,
    );
    let mitigated = fig2_with(StragglerModel::ExponentialTail { mean: 8.0 }, 2);
    let hetero = StragglerGdModel {
        hetero: Heterogeneity::SlowWorkers {
            count: 2,
            factor: 0.5,
        },
        ..det
    };

    let det_curve = det.strong_curve(ns.iter().copied());
    let light_curve = light.strong_curve(ns.iter().copied());
    let heavy_curve = heavy.strong_curve(ns.iter().copied());
    let lognormal_curve = lognormal.strong_curve(ns.iter().copied());
    let mitigated_curve = mitigated.strong_curve(ns.iter().copied());
    let hetero_curve = hetero.strong_curve(ns.iter().copied());

    // Cross-validate the heavy-tail analytic curve against the
    // discrete-event straggler simulator (many seeded replications). The
    // halving/doubling collective is used on power-of-two points because
    // its simulator twin matches the analytic form exactly — so the
    // comparison isolates the order-statistic barrier term instead of
    // collective discretisation.
    let sim_ns: Vec<usize> = ns
        .iter()
        .copied()
        .filter(|&n| n.is_power_of_two())
        .collect();
    let sim_model = mlscale_core::models::gd::GradientDescentModel {
        comm: mlscale_core::models::gd::GdComm::HalvingDoubling,
        ..super::figures::fig2_model()
    };
    let mut workload = GdWorkload::ideal(sim_model).with_stragglers(
        StragglerModel::ExponentialTail { mean: 8.0 },
        Heterogeneity::Uniform,
        0,
    );
    workload.iterations = 600;
    workload.seed = 0x57A6;
    let (heavy_model, heavy_sim) = workload.expected_strong_curves(&sim_ns);
    let mape = Comparison::join(&heavy_model.speedups(), &heavy_sim.speedups()).mape();

    // Fig 1 (introductory example, optimum 14): the optimum slides down
    // as the exponential tail grows relative to the 1 s single-node time.
    let fig1 = super::figures::fig1_model();
    let fig1_optima: Vec<(usize, f64)> = [0.0, 0.01, 0.03, 0.1]
        .iter()
        .enumerate()
        .map(|(i, &mean)| {
            let m = StragglerGdModel {
                straggler: StragglerModel::ExponentialTail { mean },
                ..StragglerGdModel::deterministic(fig1)
            };
            let (n_opt, _) = m.strong_curve(1..=32).optimal();
            (i, n_opt as f64)
        })
        .collect();

    let opt = |c: &mlscale_core::SpeedupCurve| c.optimal();
    // The paper's Fig 2 optimum (9) holds over its plotted 1..=13 range;
    // past it the ⌈√n⌉ staircase plateaus, so the headline stat is pinned
    // to the paper's range while the series span the requested one.
    let (n_det, s_det) = det.strong_curve(1..=max_n.min(13)).optimal();
    let (n_light, _) = opt(&light_curve);
    let (n_heavy, s_heavy) = opt(&heavy_curve);
    let (n_ln, _) = opt(&lognormal_curve);
    let (n_mit, s_mit) = opt(&mitigated_curve);
    let (n_het, _) = opt(&hetero_curve);
    let (n_fig1_det, _) = StragglerGdModel::deterministic(fig1)
        .strong_curve(1..=32)
        .optimal();

    ExperimentResult::new(
        "ext-stragglers",
        "Stragglers bend the speedup curve: expected optima under runtime variability (MNIST/Spark job)",
    )
    .with_series(Series::new("deterministic", det_curve.speedups()))
    .with_series(Series::new("exp tail 1s", light_curve.speedups()))
    .with_series(Series::new("exp tail 8s", heavy_curve.speedups()))
    .with_series(Series::new("lognormal tail", lognormal_curve.speedups()))
    .with_series(Series::new("exp 8s drop-2", mitigated_curve.speedups()))
    .with_series(Series::new("2x half-speed nodes", hetero_curve.speedups()))
    .with_series(Series::new("exp 8s simulated", heavy_sim.speedups()))
    .with_series(Series::new("fig1 optimum vs tail", fig1_optima))
    .with_stat("optimal n (deterministic)", n_det as f64, Some(9.0))
    .with_stat("peak speedup (deterministic)", s_det, None)
    .with_stat("optimal n (exp 1s)", n_light as f64, None)
    .with_stat("optimal n (exp 8s)", n_heavy as f64, None)
    .with_stat("peak speedup (exp 8s)", s_heavy, None)
    .with_stat("optimal n (lognormal)", n_ln as f64, None)
    .with_stat("optimal n (exp 8s, drop-2)", n_mit as f64, None)
    .with_stat("peak speedup (exp 8s, drop-2)", s_mit, None)
    .with_stat("optimal n (2x half-speed)", n_het as f64, None)
    .with_stat("fig1 optimal n (deterministic)", n_fig1_det as f64, Some(14.0))
    .with_stat("straggler model-vs-sim MAPE %", mape, None)
    .with_note(
        "E[barrier] = E[(n-k)-th order statistic of {t_cp/s_i + X_i}]: exact \
         harmonic-number form for exponential tails, deterministic quadrature \
         for lognormal and heterogeneous clusters",
    )
    .with_note(
        "the deterministic rows reproduce the paper's optima bit-identically \
         (Fig 2: 9 workers, Fig 1: 14); growing tails pull the optimum in, \
         drop-slowest-k pushes it partway back out",
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    /// The exhibit re-runs the 600-replication simulation; compute it once
    /// and share it across the assertions below.
    fn result() -> &'static ExperimentResult {
        static RESULT: OnceLock<ExperimentResult> = OnceLock::new();
        RESULT.get_or_init(|| stragglers(16))
    }

    #[test]
    fn zero_jitter_reproduces_paper_optima() {
        let r = result();
        let stat = |label: &str| r.stats.iter().find(|s| s.label == label).unwrap().value;
        assert_eq!(stat("optimal n (deterministic)"), 9.0);
        assert_eq!(stat("fig1 optimal n (deterministic)"), 14.0);
    }

    #[test]
    fn heavier_tails_pull_the_optimum_in() {
        let r = result();
        let stat = |label: &str| r.stats.iter().find(|s| s.label == label).unwrap().value;
        assert!(stat("optimal n (exp 8s)") <= stat("optimal n (exp 1s)"));
        assert!(stat("optimal n (exp 1s)") <= stat("optimal n (deterministic)"));
        assert!(
            stat("optimal n (exp 8s)") < stat("optimal n (deterministic)"),
            "a 4 s tail must visibly shift the Fig 2 optimum"
        );
        // Fig 1's optimum decays monotonically along the tail grid.
        let fig1 = r.series("fig1 optimum vs tail").unwrap();
        for pair in fig1.points.windows(2) {
            assert!(pair[1].1 <= pair[0].1, "fig1 optimum must not grow");
        }
    }

    #[test]
    fn mitigation_recovers_speedup() {
        let r = result();
        let stat = |label: &str| r.stats.iter().find(|s| s.label == label).unwrap().value;
        assert!(stat("peak speedup (exp 8s, drop-2)") >= stat("peak speedup (exp 8s)"));
    }

    #[test]
    fn analytic_tracks_straggler_simulation() {
        let r = result();
        let mape = r
            .stats
            .iter()
            .find(|s| s.label == "straggler model-vs-sim MAPE %")
            .unwrap()
            .value;
        assert!(
            mape < 5.0,
            "order-statistic model must track the simulator: {mape:.2}%"
        );
    }
}
