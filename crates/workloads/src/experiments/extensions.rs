//! Extension experiments beyond the paper's exhibits, carrying out its
//! future-work directions: an analytic model for asynchronous gradient
//! descent validated against the event-level parameter-server simulation,
//! a Gibbs-vs-BP inference cost comparison, scalability of the wider
//! architecture zoo, cost/deadline provisioning with the planner, and the
//! latency/topology-aware communication study (flat α–β collectives vs a
//! two-tier rack hierarchy).

use crate::gd::GdWorkload;
use crate::report::{ExperimentResult, Series};
use mlscale_core::hardware::{presets, ClusterSpec, LinkSpec, NodeSpec};
use mlscale_core::metrics::Comparison;
use mlscale_core::models::asyncgd::AsyncGdModel;
use mlscale_core::models::gd::{GdComm, GradientDescentModel};
use mlscale_core::models::graphinf::bp_cost_per_edge;
use mlscale_core::planner::{Planner, Pricing};
use mlscale_core::units::{Bits, BitsPerSec, FlopCount, FlopsRate, Seconds};
use mlscale_graph::gibbs::gibbs_cost_per_edge;
use mlscale_sim::overhead::OverheadModel;
use mlscale_sim::paramserver::{simulate_async, ParamServerConfig};

/// **Async gradient descent** (paper future work): the closed-form
/// throughput model `X(n) = min(n/t_cycle, 1/t_srv)` against the
/// discrete-event parameter-server simulation.
pub fn async_gd(ns: &[usize], updates: usize) -> ExperimentResult {
    let cluster = ClusterSpec::new(
        NodeSpec::new(FlopsRate::giga(10.0), 1.0),
        LinkSpec::bandwidth_only(BitsPerSec::giga(10.0)),
    );
    let model = AsyncGdModel {
        grad_work: FlopCount::giga(3.2),
        worker_flops: cluster.flops(),
        server_flops: cluster.flops(),
        apply_work: FlopCount::new(1e7),
        payload: Bits::new(32.0 * 10e6),
        bandwidth: cluster.bandwidth(),
        latency: cluster.link.latency,
    };
    let sim_config = ParamServerConfig {
        cluster,
        grad_flops: model.grad_work.get(),
        payload_bits: model.payload.get(),
        apply_flops: model.apply_work.get(),
        overhead: OverheadModel::None,
        seed: 77,
    };
    let model_series: Vec<(usize, f64)> = ns.iter().map(|&n| (n, model.throughput(n))).collect();
    let sim_series: Vec<(usize, f64)> = ns
        .iter()
        .map(|&n| (n, simulate_async(&sim_config, n, updates).throughput))
        .collect();
    let staleness_model: Vec<(usize, f64)> = ns
        .iter()
        .map(|&n| (n, model.expected_staleness(n)))
        .collect();
    let staleness_sim: Vec<(usize, f64)> = ns
        .iter()
        .map(|&n| (n, simulate_async(&sim_config, n, updates).mean_staleness))
        .collect();
    let mape = Comparison::join(&model_series, &sim_series).mape();
    ExperimentResult::new(
        "ext-async-gd",
        "Asynchronous SGD: analytic throughput model vs parameter-server simulation",
    )
    .with_series(Series::new("model upd/s", model_series))
    .with_series(Series::new("simulated upd/s", sim_series))
    .with_series(Series::new("model staleness", staleness_model))
    .with_series(Series::new("simulated staleness", staleness_sim))
    .with_stat("throughput MAPE %", mape, None)
    .with_stat(
        "saturation point (model)",
        model.saturation_point() as f64,
        None,
    )
    .with_note(
        "the paper's future-work item: X(n) = min(n/t_cycle, 1/t_srv); staleness \
         ≈ n−1 before the server NIC saturates",
    )
}

/// **Gibbs vs BP**: the per-edge cost models of the paper's two named
/// inference algorithms across state counts, and the resulting
/// computation-ratio at the Fig 4 configuration.
pub fn inference_costs(max_states: usize) -> ExperimentResult {
    let states: Vec<usize> = (2..=max_states).collect();
    let bp: Vec<(usize, f64)> = states
        .iter()
        .map(|&s| (s, bp_cost_per_edge(s).get()))
        .collect();
    let gibbs: Vec<(usize, f64)> = states
        .iter()
        .map(|&s| (s, gibbs_cost_per_edge(s).get()))
        .collect();
    let ratio_at_2 = bp[0].1 / gibbs[0].1;
    let last = states.len() - 1;
    let ratio_at_max = bp[last].1 / gibbs[last].1;
    ExperimentResult::new(
        "ext-inference-costs",
        "Per-edge cost c(S): loopy BP (S + 2(S+S²)) vs Gibbs sweep (2S)",
    )
    .with_series(Series::new("bp c(S)", bp))
    .with_series(Series::new("gibbs c(S)", gibbs))
    .with_stat("bp/gibbs ratio at S=2", ratio_at_2, None)
    .with_stat(
        format!("bp/gibbs ratio at S={max_states}"),
        ratio_at_max,
        None,
    )
    .with_note(
        "BP pays an S² marginalisation per message; Gibbs only accumulates S \
         conditional terms per edge — the gap widens linearly in S, trading \
         per-sweep cost against slower Monte-Carlo convergence",
    )
}

/// **Architecture zoo scalability**: strong-scaling optima of the era's
/// standard networks on the K40 GPU cluster. The parameter-per-madd ratio
/// `W/C` (communication per unit computation) dictates the ordering:
/// AlexNet (dense-head-heavy) stops scaling long before VGG-16 and
/// Inception v3.
pub fn zoo_scalability(max_n: usize, total_batch: f64) -> ExperimentResult {
    let nets = [
        mlscale_nn::zoo::alexnet(),
        mlscale_nn::zoo::vgg16(),
        mlscale_nn::zoo::inception_v3(),
        mlscale_nn::zoo::resnet50(),
        mlscale_nn::zoo::mnist_fc(),
    ];
    let ns: Vec<usize> = (1..=max_n).collect();
    let mut result = ExperimentResult::new(
        "ext-zoo",
        "Strong-scaling optima across architectures (K40 cluster, fixed total batch)",
    );
    for net in &nets {
        let model = GradientDescentModel {
            cost_per_example: FlopCount::new(3.0 * net.forward_madds() as f64),
            batch_size: total_batch,
            params: net.params() as f64,
            bits_per_param: 32,
            cluster: presets::gpu_cluster(),
            comm: GdComm::TwoStageTree,
        };
        let curve = model.strong_curve(ns.iter().copied());
        let (n_opt, s_opt) = curve.optimal();
        let w_over_c = net.params() as f64 / net.forward_madds() as f64;
        result = result
            .with_series(Series::new(net.name.clone(), curve.speedups()))
            .with_stat(format!("optimal n ({})", net.name), n_opt as f64, None)
            .with_stat(format!("peak speedup ({})", net.name), s_opt, None)
            .with_stat(format!("W/C ratio ({})", net.name), w_over_c, None);
    }
    result.with_note(
        "higher parameters-per-computation (W/C) means more communication per \
         unit of parallelisable work and an earlier optimum — the architecture \
         axis of the paper's computation/communication trade-off",
    )
}

/// **Provisioning with the planner**: cheapest-within-deadline and
/// fastest-within-budget answers for the Fig 2 training job (1000
/// iterations), the "back-of-the-envelope estimations should precede
/// distributed implementations" workflow.
pub fn provisioning(iterations: f64, node_hour_price: f64) -> ExperimentResult {
    let model = super::figures::fig2_model();
    let job_time = move |n: usize| model.strong_iteration_time(n) * iterations;
    let planner = Planner::new(job_time, 64, Pricing::hourly(node_hour_price));
    let fastest = planner.fastest();
    let cheapest = planner.cheapest();
    let costs: Vec<(usize, f64)> = planner.table().iter().map(|p| (p.n, p.cost)).collect();
    let times: Vec<(usize, f64)> = planner
        .table()
        .iter()
        .map(|p| (p.n, p.time.as_secs()))
        .collect();
    let mut result = ExperimentResult::new(
        "ext-provisioning",
        format!("Provisioning the Fig 2 job ({iterations:.0} iterations) under price {node_hour_price}/node-hour"),
    )
    .with_series(Series::new("job time s", times))
    .with_series(Series::new("job cost", costs))
    .with_stat("fastest n", fastest.n as f64, None)
    .with_stat("fastest time s", fastest.time.as_secs(), None)
    .with_stat("cheapest n", cheapest.n as f64, None)
    .with_stat("cheapest cost", cheapest.cost, None);
    // A deadline halfway between fastest and single-node time.
    let t1 = job_time(1).as_secs();
    let deadline = Seconds::new((t1 + fastest.time.as_secs()) / 2.0);
    match planner.cheapest_within_deadline(deadline) {
        Some(plan) => {
            result = result
                .with_stat("deadline s", deadline.as_secs(), None)
                .with_stat("cheapest n within deadline", plan.n as f64, None)
                .with_stat("cost within deadline", plan.cost, None);
        }
        None => {
            result = result.with_note("midpoint deadline infeasible (unexpected)");
        }
    }
    result.with_note(
        "cost ∝ n·t(n): the cheapest configuration sits where parallel \
         efficiency is highest, not where speedup peaks",
    )
}

/// **Flat vs hierarchical communication** (the latency/topology extension):
/// the paper's MNIST training job on (a) its original flat gigabit cluster
/// with Spark's mechanism, (b) the same flat network with a latency-aware
/// tree exchange, and (c) a two-tier rack pod with the hierarchical
/// collective. The flat bandwidth-only model caps the job at a handful of
/// workers; the rack topology keeps most hops on fast intra-rack links and
/// pushes the optimum out by roughly the rack size. The hierarchical
/// analytic curve is cross-validated against the discrete-event simulator
/// on the same racked cluster.
pub fn hierarchical_comm(max_n: usize) -> ExperimentResult {
    let flat = super::figures::fig2_model();
    let flat_tree = GradientDescentModel {
        comm: GdComm::TwoStageTree,
        ..flat
    };
    let hier = GradientDescentModel {
        cluster: presets::two_tier_pod(),
        comm: GdComm::Hierarchical,
        ..flat
    };
    let ns: Vec<usize> = (1..=max_n).collect();
    let flat_curve = flat.strong_curve(ns.iter().copied());
    let tree_curve = flat_tree.strong_curve(ns.iter().copied());
    let hier_curve = hier.strong_curve(ns.iter().copied());
    let (n_flat, s_flat) = flat_curve.optimal();
    let (n_tree, s_tree) = tree_curve.optimal();
    let (n_hier, s_hier) = hier_curve.optimal();

    // Cross-validate the hierarchical analytic model against the
    // discrete-event twin executing the same schedule on the racked pod.
    let sim_ns: Vec<usize> = ns
        .iter()
        .copied()
        .filter(|&n| n % 8 == 0 || n == 1)
        .collect();
    let workload = GdWorkload::ideal(hier);
    let (hier_model, hier_sim) = workload.strong_curves(&sim_ns);
    let mape = Comparison::join(&hier_model.speedups(), &hier_sim.speedups()).mape();

    ExperimentResult::new(
        "ext-hierarchical-comm",
        "Flat vs two-tier hierarchical gradient exchange (MNIST job, strong scaling)",
    )
    .with_series(Series::new("flat spark", flat_curve.speedups()))
    .with_series(Series::new("flat tree", tree_curve.speedups()))
    .with_series(Series::new("hierarchical", hier_curve.speedups()))
    .with_series(Series::new("hierarchical sim", hier_sim.speedups()))
    .with_stat("optimal n (flat spark)", n_flat as f64, None)
    .with_stat("peak speedup (flat spark)", s_flat, None)
    .with_stat("optimal n (flat tree)", n_tree as f64, None)
    .with_stat("peak speedup (flat tree)", s_tree, None)
    .with_stat("optimal n (hierarchical)", n_hier as f64, None)
    .with_stat("peak speedup (hierarchical)", s_hier, None)
    .with_stat("hierarchical model-vs-sim MAPE %", mape, None)
    .with_note(
        "t_cm = rounds·α + volume/B per tier: the uplink carries only r−1 \
         leader hops of M/r chunks, so the cross-rack wall moves out by \
         about the rack size — invisible to any flat f_cm(M, n)",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn async_model_tracks_simulation() {
        let r = async_gd(&[1, 2, 4, 8, 16, 32, 64], 128);
        let mape = r
            .stats
            .iter()
            .find(|s| s.label == "throughput MAPE %")
            .unwrap()
            .value;
        assert!(
            mape < 15.0,
            "async model must track the event simulation: {mape:.1}%"
        );
        // Staleness ≈ n−1 in both.
        let sim_st = r.series("simulated staleness").unwrap();
        assert!((sim_st.at(8).unwrap() - 7.0).abs() < 1.5);
        let model_st = r.series("model staleness").unwrap();
        assert!((model_st.at(8).unwrap() - 7.0).abs() < 1e-6);
    }

    #[test]
    fn inference_cost_gap_widens() {
        let r = inference_costs(16);
        let at2 = r
            .stats
            .iter()
            .find(|s| s.label.contains("S=2"))
            .unwrap()
            .value;
        let at16 = r
            .stats
            .iter()
            .find(|s| s.label.contains("S=16"))
            .unwrap()
            .value;
        assert!((at2 - 14.0 / 4.0).abs() < 1e-12);
        assert!(at16 > at2, "S² term must widen the gap");
    }

    #[test]
    fn zoo_ordering_follows_w_over_c() {
        let r = zoo_scalability(64, 4096.0);
        let opt = |name: &str| {
            r.stats
                .iter()
                .find(|s| s.label == format!("optimal n ({name})"))
                .unwrap()
                .value
        };
        // Parameter-heavy AlexNet must cap out before the conv-heavy nets.
        assert!(
            opt("alexnet") < opt("vgg16"),
            "alexnet {} vgg {}",
            opt("alexnet"),
            opt("vgg16")
        );
        assert!(opt("alexnet") < opt("inception-v3"));
        // The MNIST FC net (W/C = 1/2) is the most communication-bound of
        // all at this batch size.
        assert!(opt("mnist-fc") <= opt("alexnet"));
    }

    #[test]
    fn hierarchical_extends_the_scaling_range() {
        let r = hierarchical_comm(64);
        let stat = |label: &str| r.stats.iter().find(|s| s.label == label).unwrap().value;
        assert!(
            stat("optimal n (hierarchical)") > stat("optimal n (flat spark)"),
            "rack topology must push the optimum out"
        );
        assert!(stat("peak speedup (hierarchical)") > stat("peak speedup (flat spark)"));
        assert!(
            stat("hierarchical model-vs-sim MAPE %") < 5.0,
            "analytic hierarchical model must track its simulator twin: {}",
            stat("hierarchical model-vs-sim MAPE %")
        );
    }

    #[test]
    fn provisioning_trade_off_present() {
        let r = provisioning(1000.0, 2.0);
        let fastest_n = r
            .stats
            .iter()
            .find(|s| s.label == "fastest n")
            .unwrap()
            .value;
        let cheapest_n = r
            .stats
            .iter()
            .find(|s| s.label == "cheapest n")
            .unwrap()
            .value;
        assert!(
            fastest_n > cheapest_n,
            "speed costs money: {fastest_n} vs {cheapest_n}"
        );
        let within = r
            .stats
            .iter()
            .find(|s| s.label == "cheapest n within deadline")
            .expect("deadline feasible")
            .value;
        assert!(within >= cheapest_n && within <= fastest_n);
    }
}
