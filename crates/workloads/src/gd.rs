//! Gradient-descent workload driver: turns a [`GradientDescentModel`]
//! configuration into (a) the analytic speedup curve and (b) a simulated
//! "experimental" curve produced by executing the same schedule — real
//! shard sizes, real payload, chosen collective — on the discrete-event
//! cluster with overhead injection.

use mlscale_core::hardware::Heterogeneity;
use mlscale_core::models::gd::{GdComm, GradientDescentModel};
use mlscale_core::par;
use mlscale_core::speedup::SpeedupCurve;
use mlscale_core::straggler::{StragglerGdModel, StragglerModel};
use mlscale_core::units::Seconds;
use mlscale_sim::bsp::{
    simulate_with_stragglers, BspConfig, BspProgram, CommPhase, StragglerSim, SuperstepSpec,
};
use mlscale_sim::collectives::{BroadcastKind, ReduceKind};
use mlscale_sim::overhead::OverheadModel;

/// A gradient-descent workload: the analytic model plus the simulation
/// knobs (overhead, seed, iterations to average over) and the straggler
/// scenario (delay distribution, heterogeneity, backup workers) shared by
/// the analytic twin and the simulator.
#[derive(Debug, Clone, Copy)]
pub struct GdWorkload {
    /// The analytic model configuration (also defines the simulated
    /// schedule: cost per example, batch, payload, cluster, collective).
    pub model: GradientDescentModel,
    /// Overhead injected per worker-task in the simulation.
    pub overhead: OverheadModel,
    /// Simulated iterations to average over.
    pub iterations: usize,
    /// Determinism seed.
    pub seed: u64,
    /// Per-worker per-superstep straggler delay distribution.
    pub straggler: StragglerModel,
    /// Compute-speed heterogeneity across workers.
    pub hetero: Heterogeneity,
    /// Drop the slowest `k` workers each superstep (backup mitigation).
    pub backup_k: usize,
}

impl GdWorkload {
    /// A workload with no overhead and no stragglers (simulation should
    /// match the model).
    pub fn ideal(model: GradientDescentModel) -> Self {
        Self {
            model,
            overhead: OverheadModel::None,
            iterations: 3,
            seed: 0xC0FFEE,
            straggler: StragglerModel::Deterministic,
            hetero: Heterogeneity::Uniform,
            backup_k: 0,
        }
    }

    /// Adds a straggler scenario to the workload.
    #[must_use]
    pub fn with_stragglers(
        mut self,
        straggler: StragglerModel,
        hetero: Heterogeneity,
        backup_k: usize,
    ) -> Self {
        self.straggler = straggler;
        self.hetero = hetero;
        self.backup_k = backup_k;
        self
    }

    /// The analytic order-statistic twin of this workload's straggler
    /// scenario.
    pub fn straggler_model(&self) -> StragglerGdModel {
        StragglerGdModel {
            inner: self.model,
            straggler: self.straggler,
            hetero: self.hetero,
            backup_k: self.backup_k,
        }
    }

    /// The simulator communication phase matching the model's collective.
    fn comm_phase(&self) -> CommPhase {
        let bits = self.model.param_volume().get();
        match self.model.comm {
            GdComm::Spark => CommPhase::GradientExchange {
                bits,
                broadcast: BroadcastKind::Torrent,
                reduce: ReduceKind::TwoWave,
            },
            GdComm::TwoStageTree => CommPhase::GradientExchange {
                bits,
                broadcast: BroadcastKind::Tree,
                reduce: ReduceKind::Tree,
            },
            GdComm::LinearFlat => CommPhase::GradientExchange {
                bits,
                broadcast: BroadcastKind::Flat,
                reduce: ReduceKind::Flat,
            },
            GdComm::Ring => CommPhase::RingAllReduce { bits },
            GdComm::HalvingDoubling => CommPhase::HalvingDoubling { bits },
            GdComm::Hierarchical => CommPhase::Hierarchical { bits },
            GdComm::None => CommPhase::None,
        }
    }

    /// Real shard sizes of a batch of `total` examples over `n` workers:
    /// `total/n` each with the remainder spread over the first shards —
    /// exactly what [`mlscale_nn::train::shard_rows`] produces.
    fn shard_loads(&self, total: u64, n: usize) -> Vec<f64> {
        let base = total / n as u64;
        let rem = (total % n as u64) as usize;
        (0..n)
            .map(|w| {
                let examples = base + u64::from(w < rem);
                examples as f64 * self.model.cost_per_example.get()
            })
            .collect()
    }

    /// BSP program for one strong-scaling configuration: the fixed batch
    /// is split across `n` workers.
    pub fn strong_program(&self, n: usize) -> BspProgram {
        BspProgram {
            supersteps: vec![SuperstepSpec {
                loads: self.shard_loads(self.model.batch_size as u64, n),
                comm: self.comm_phase(),
            }],
            iterations: self.iterations,
        }
    }

    /// BSP program for one weak-scaling configuration: every worker keeps
    /// a full per-worker batch.
    pub fn weak_program(&self, n: usize) -> BspProgram {
        let per_worker = self.model.batch_size * self.model.cost_per_example.get();
        BspProgram {
            supersteps: vec![SuperstepSpec {
                loads: vec![per_worker; n],
                comm: self.comm_phase(),
            }],
            iterations: self.iterations,
        }
    }

    fn config(&self) -> BspConfig {
        BspConfig {
            cluster: self.model.cluster,
            overhead: self.overhead,
            seed: self.seed,
        }
    }

    /// The simulator's straggler knobs for this workload.
    fn straggler_sim(&self) -> StragglerSim {
        StragglerSim {
            model: self.straggler,
            backup_k: self.backup_k,
        }
    }

    /// Simulated mean iteration time at `n` workers (strong scaling).
    pub fn simulate_strong(&self, n: usize) -> Seconds {
        simulate_with_stragglers(
            &self.strong_program(n),
            &self.config(),
            n,
            &self.hetero.speed_factors(&self.model.cluster, n),
            &self.straggler_sim(),
        )
        .mean_iteration()
    }

    /// Simulated per-instance time at `n` workers (weak scaling): the mean
    /// iteration time divided by `n` (per-worker batch constant, so
    /// instances processed per iteration grow as `S·n`).
    pub fn simulate_weak_per_instance(&self, n: usize) -> Seconds {
        simulate_with_stragglers(
            &self.weak_program(n),
            &self.config(),
            n,
            &self.hetero.speed_factors(&self.model.cluster, n),
            &self.straggler_sim(),
        )
        .mean_iteration()
            / n as f64
    }

    /// Simulated strong-scaling times over `ns`, fanned out across
    /// threads: each [`Self::simulate_strong`] call seeds its own RNG, so
    /// the per-`n` runs are independent and the parallel sweep is
    /// bit-identical to a serial loop.
    fn simulated_strong_curve(&self, ns: &[usize]) -> SpeedupCurve {
        let times = par::map(ns, |&n| self.simulate_strong(n));
        SpeedupCurve::from_samples(ns.iter().copied().zip(times))
    }

    /// Analytic and simulated strong-scaling speedup curves over `ns`.
    pub fn strong_curves(&self, ns: &[usize]) -> (SpeedupCurve, SpeedupCurve) {
        let model =
            SpeedupCurve::from_fn(ns.iter().copied(), |n| self.model.strong_iteration_time(n));
        (model, self.simulated_strong_curve(ns))
    }

    /// *Expected*-analytic (order-statistic) and simulated strong-scaling
    /// speedup curves over `ns` under the straggler scenario. With the
    /// scenario disabled this coincides with [`Self::strong_curves`].
    pub fn expected_strong_curves(&self, ns: &[usize]) -> (SpeedupCurve, SpeedupCurve) {
        let twin = self.straggler_model();
        let model = twin.strong_curve(ns.iter().copied());
        (model, self.simulated_strong_curve(ns))
    }

    /// Analytic and simulated weak-scaling per-instance curves over `ns`,
    /// both rebased at `baseline_n` (the paper's Fig 3 uses 50). The
    /// simulated sweep is parallel, like [`Self::strong_curves`].
    pub fn weak_curves(&self, ns: &[usize], baseline_n: usize) -> (SpeedupCurve, SpeedupCurve) {
        let model =
            SpeedupCurve::from_fn(ns.iter().copied(), |n| self.model.weak_per_instance_time(n))
                .rebased(baseline_n);
        let sim_times = par::map(ns, |&n| self.simulate_weak_per_instance(n));
        let sim = SpeedupCurve::from_samples(ns.iter().copied().zip(sim_times)).rebased(baseline_n);
        (model, sim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlscale_core::hardware::presets;
    use mlscale_core::metrics::Comparison;
    use mlscale_core::units::FlopCount;

    fn fig2_workload() -> GdWorkload {
        GdWorkload::ideal(GradientDescentModel {
            cost_per_example: FlopCount::new(6.0 * 12e6),
            batch_size: 60_000.0,
            params: 12e6,
            bits_per_param: 64,
            cluster: presets::spark_cluster(),
            comm: GdComm::Spark,
        })
    }

    #[test]
    fn shard_loads_conserve_batch() {
        let w = fig2_workload();
        for n in [1usize, 3, 7, 16] {
            let loads = w.shard_loads(60_000, n);
            let total: f64 = loads.iter().sum();
            assert!((total - 60_000.0 * w.model.cost_per_example.get()).abs() < 1.0);
            assert_eq!(loads.len(), n);
        }
    }

    #[test]
    fn ideal_simulation_tracks_model_closely() {
        // Without overhead the simulator's schedule should land within a
        // few percent of the closed-form model (they differ only in
        // collective discretisation: binomial tree vs log₂ n, group
        // assignment of the two-wave pattern).
        let w = fig2_workload();
        let ns: Vec<usize> = (1..=12).collect();
        let (model, sim) = w.strong_curves(&ns);
        let cmp = Comparison::join(&model.speedups(), &sim.speedups());
        assert!(
            cmp.mape() < 20.0,
            "ideal sim should be near the model, MAPE = {:.1}%",
            cmp.mape()
        );
        // And identical at n = 1 (no communication, no overhead).
        assert!((model.time_at(1).unwrap() / sim.time_at(1).unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn overhead_slows_simulation_down() {
        let mut w = fig2_workload();
        let ideal = w.simulate_strong(8);
        w.overhead = OverheadModel::Constant { seconds: 1.0 };
        let with_overhead = w.simulate_strong(8);
        assert!(with_overhead > ideal + Seconds::new(0.9));
    }

    #[test]
    fn weak_per_instance_improves_with_workers() {
        let w = GdWorkload::ideal(GradientDescentModel {
            cost_per_example: FlopCount::new(3.0 * 5e9),
            batch_size: 128.0,
            params: 25e6,
            bits_per_param: 32,
            cluster: presets::gpu_cluster(),
            comm: GdComm::TwoStageTree,
        });
        let t8 = w.simulate_weak_per_instance(8);
        let t32 = w.simulate_weak_per_instance(32);
        assert!(t32 < t8, "weak scaling with tree comm keeps improving");
    }

    #[test]
    fn weak_curves_rebase_at_baseline() {
        let w = fig2_workload();
        let (model, sim) = w.weak_curves(&[2, 4, 8], 4);
        assert!((model.speedup_at(4).unwrap() - 1.0).abs() < 1e-12);
        assert!((sim.speedup_at(4).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ring_workload_runs() {
        let mut w = fig2_workload();
        w.model.comm = GdComm::Ring;
        let t = w.simulate_strong(4);
        assert!(t.as_secs() > 0.0);
    }

    #[test]
    fn halving_doubling_sim_matches_model_exactly() {
        let mut w = fig2_workload();
        w.model.comm = GdComm::HalvingDoubling;
        for n in [2usize, 4, 8, 16] {
            let model = w.model.strong_iteration_time(n).as_secs();
            let sim = w.simulate_strong(n).as_secs();
            assert!(
                (model - sim).abs() / model < 1e-9,
                "n={n}: model {model} vs sim {sim}"
            );
        }
    }

    #[test]
    fn hierarchical_workload_tracks_model_on_racked_cluster() {
        let mut w = fig2_workload();
        w.model.cluster = presets::two_tier_pod();
        w.model.comm = GdComm::Hierarchical;
        for n in [8usize, 16, 32, 64] {
            let model = w.model.strong_iteration_time(n).as_secs();
            let sim = w.simulate_strong(n).as_secs();
            assert!(
                (model - sim).abs() / model < 0.05,
                "n={n}: model {model} vs sim {sim}"
            );
        }
    }

    #[test]
    fn deterministic_across_calls() {
        let mut w = fig2_workload();
        w.overhead = OverheadModel::Exponential { mean: 0.2 };
        assert_eq!(w.simulate_strong(6), w.simulate_strong(6));
    }

    #[test]
    fn straggler_scenario_slows_the_simulation() {
        let base = fig2_workload();
        let straggled = base.with_stragglers(
            StragglerModel::ExponentialTail { mean: 5.0 },
            Heterogeneity::Uniform,
            0,
        );
        for n in [2usize, 8] {
            assert!(
                straggled.simulate_strong(n) > base.simulate_strong(n),
                "stragglers must slow iteration at n={n}"
            );
        }
    }

    #[test]
    fn hetero_workload_routes_speed_factors_to_the_simulator() {
        let base = fig2_workload();
        let hetero = base.with_stragglers(
            StragglerModel::Deterministic,
            Heterogeneity::SlowWorkers {
                count: 1,
                factor: 0.5,
            },
            0,
        );
        let n = 4;
        // The analytic expected barrier and the simulated compute phase
        // both double when one worker runs at half speed.
        let twin = hetero.straggler_model();
        assert!(
            twin.expected_strong_comp_time(n).as_secs()
                > base.model.strong_comp_time(n).as_secs() * 1.99
        );
        assert!(hetero.simulate_strong(n) > base.simulate_strong(n) * 1.5);
    }

    #[test]
    fn expected_curves_coincide_with_plain_curves_when_disabled() {
        let w = fig2_workload();
        let ns: Vec<usize> = (1..=8).collect();
        let (plain, _) = w.strong_curves(&ns);
        let (expected, _) = w.expected_strong_curves(&ns);
        for n in &ns {
            assert_eq!(plain.time_at(*n), expected.time_at(*n));
        }
    }
}
