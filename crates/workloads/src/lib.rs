//! # mlscale-workloads — end-to-end workload drivers and paper experiments
//!
//! Binds the analytic models (`mlscale-core`), the substrates
//! (`mlscale-nn`, `mlscale-graph`) and the simulator (`mlscale-sim`) into
//! runnable reproductions of every exhibit in the paper's evaluation:
//!
//! * [`gd`] — gradient-descent driver: analytic curve + simulated
//!   "experimental" curve from the same schedule (real shard sizes, real
//!   payloads, chosen collective, overhead injection);
//! * [`bp`] — belief-propagation driver: Monte-Carlo model estimate vs
//!   exact-partition simulation on the shared-memory cluster;
//! * [`experiments`] — `table1`, `fig1` … `fig4` and the ablations, each
//!   returning a serialisable [`report::ExperimentResult`];
//! * [`report`] — result containers with paper-style text rendering.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod bp;
pub mod experiments;
pub mod gd;
pub mod report;

pub use report::{ExperimentResult, Series, Stat};
