//! Regenerates Fig 1: the introductory speedup example with the optimum
//! near 14 nodes.

#![forbid(unsafe_code)]

fn main() {
    let result = mlscale_workloads::experiments::fig1();
    mlscale_bench::emit(&result);
}
