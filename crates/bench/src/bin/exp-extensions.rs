//! Runs the extension experiments: async-SGD model vs simulation, the
//! Gibbs-vs-BP inference cost comparison, architecture-zoo scalability,
//! cost/deadline provisioning, and the flat-vs-hierarchical communication
//! study.

#![forbid(unsafe_code)]

use mlscale_workloads::experiments::extensions;

fn main() {
    mlscale_bench::emit(&extensions::async_gd(&[1, 2, 4, 8, 16, 32, 64, 128], 192));
    mlscale_bench::emit(&extensions::inference_costs(16));
    mlscale_bench::emit(&extensions::zoo_scalability(64, 4096.0));
    mlscale_bench::emit(&extensions::provisioning(1000.0, 2.0));
    mlscale_bench::emit(&extensions::hierarchical_comm(64));
    mlscale_bench::emit(
        &mlscale_workloads::experiments::convergence::convergence_tradeoff(
            &convergence_model(),
            &[1, 2, 4, 8, 16],
            16,
            7,
        ),
    );
}

/// Convergence-experiment model: compute-heavy enough that weak-scaling
/// throughput genuinely improves with the worker count.
fn convergence_model() -> mlscale_core::models::gd::GradientDescentModel {
    use mlscale_core::hardware::{presets, ClusterSpec, LinkSpec};
    use mlscale_core::models::gd::{GdComm, GradientDescentModel};
    use mlscale_core::units::{BitsPerSec, FlopCount};
    GradientDescentModel {
        cost_per_example: FlopCount::new(6.0 * 12e6),
        batch_size: 16.0,
        params: 1e6,
        bits_per_param: 32,
        cluster: ClusterSpec::new(
            presets::xeon_e3_1240_double(),
            LinkSpec::bandwidth_only(BitsPerSec::giga(10.0)),
        ),
        comm: GdComm::TwoStageTree,
    }
}
