//! Regenerates Table I (network configurations) from the layer cost algebra.

#![forbid(unsafe_code)]

fn main() {
    let result = mlscale_workloads::experiments::table1();
    mlscale_bench::emit(&result);
    // Also print the full per-layer cost breakdown of both networks.
    println!("{}", mlscale_nn::zoo::mnist_fc().cost_table());
    println!("{}", mlscale_nn::zoo::inception_v3().cost_table());
}
