//! Regenerates Fig 2: strong-scaling speedup of one training iteration of
//! the fully-connected MNIST network on the (simulated) Spark cluster,
//! model vs experiment.
//!
//! Usage: exp-fig2 [MAX_N]   (default 16)

#![forbid(unsafe_code)]

fn main() {
    let max_n = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("MAX_N must be an integer"))
        .unwrap_or(16);
    let result = mlscale_workloads::experiments::fig2(max_n);
    mlscale_bench::emit(&result);
}
