//! Runs every exhibit reproduction (Fig 4 at the small scale) and writes
//! all JSON results under `results/`. This regenerates the numbers
//! recorded in EXPERIMENTS.md.
//!
//! The exhibits are independent, so they fan out across threads
//! ([`mlscale_core::par`], `MLSCALE_THREADS` to override) and each result
//! is emitted — printed and atomically written to `results/<id>.json` —
//! the moment its exhibit completes, rather than serially after all of
//! them have run. Completion order (and therefore stdout order) varies
//! with the thread count; every emitted file is byte-identical to a
//! serial run's.

#![forbid(unsafe_code)]

use mlscale_workloads::experiments::{
    ablations, extensions, fig1, fig2, fig3, fig4, table1, DnsScale,
};

/// One exhibit: computes its result(s) and emits them on completion.
type Exhibit = Box<dyn Fn() + Send + Sync>;

fn main() {
    let ns: Vec<usize> = vec![1, 2, 4, 8, 16, 24, 32, 48, 64, 80];
    let ns4 = ns.clone();
    let exhibits: Vec<Exhibit> = vec![
        Box::new(|| {
            mlscale_bench::emit(&table1());
        }),
        Box::new(|| {
            mlscale_bench::emit(&fig1());
        }),
        Box::new(|| {
            mlscale_bench::emit(&fig2(16));
        }),
        Box::new(|| {
            mlscale_bench::emit(&fig3());
        }),
        Box::new(move || {
            mlscale_bench::emit(&fig4(DnsScale::Tiny, &ns));
        }),
        Box::new(move || {
            mlscale_bench::emit(&fig4(DnsScale::Small, &ns4));
        }),
        Box::new(|| {
            mlscale_bench::emit(&ablations::comm_architectures(32));
        }),
        Box::new(|| {
            mlscale_bench::emit(&ablations::weak_scaling_comm(256));
        }),
        Box::new(|| {
            mlscale_bench::emit(&ablations::batch_size(64));
        }),
        Box::new(|| {
            mlscale_bench::emit(&ablations::precision(32));
        }),
        Box::new(|| {
            let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
            let graph = mlscale_graph::generators::dns_like(
                mlscale_graph::generators::DnsGraphSpec {
                    vertices: 20_000,
                    edges: 120_000,
                    max_degree: 2_000,
                },
                &mut rng,
            );
            mlscale_bench::emit(&ablations::partitioning(&graph, &[2, 4, 8, 16, 32], 11));
        }),
        Box::new(|| {
            mlscale_bench::emit(&ablations::amdahl(1024));
        }),
        Box::new(|| {
            mlscale_bench::emit(&extensions::async_gd(&[1, 2, 4, 8, 16, 32, 64, 128], 192));
        }),
        Box::new(|| {
            mlscale_bench::emit(&extensions::inference_costs(16));
        }),
        Box::new(|| {
            mlscale_bench::emit(&extensions::zoo_scalability(64, 4096.0));
        }),
        Box::new(|| {
            mlscale_bench::emit(&extensions::provisioning(1000.0, 2.0));
        }),
        Box::new(|| {
            mlscale_bench::emit(&extensions::hierarchical_comm(64));
        }),
        Box::new(|| {
            mlscale_bench::emit(&mlscale_workloads::experiments::stragglers(16));
        }),
        Box::new(|| {
            mlscale_bench::emit(
                &mlscale_workloads::experiments::convergence::convergence_tradeoff(
                    &convergence_model(),
                    &[1, 2, 4, 8, 16],
                    16,
                    7,
                ),
            );
        }),
    ];
    mlscale_core::par::map(&exhibits, |exhibit| exhibit());
    eprintln!(
        "all results written to {}",
        mlscale_bench::results_dir().display()
    );
}

/// Convergence-experiment model: compute-heavy enough that weak-scaling
/// throughput genuinely improves with the worker count.
fn convergence_model() -> mlscale_core::models::gd::GradientDescentModel {
    use mlscale_core::hardware::{presets, ClusterSpec, LinkSpec};
    use mlscale_core::models::gd::{GdComm, GradientDescentModel};
    use mlscale_core::units::{BitsPerSec, FlopCount};
    GradientDescentModel {
        cost_per_example: FlopCount::new(6.0 * 12e6),
        batch_size: 16.0,
        params: 1e6,
        bits_per_param: 32,
        cluster: ClusterSpec::new(
            presets::xeon_e3_1240_double(),
            LinkSpec::bandwidth_only(BitsPerSec::giga(10.0)),
        ),
        comm: GdComm::TwoStageTree,
    }
}
