//! Load generator for the `mlscale serve` daemon: starts the server
//! in-process on a loopback socket, hammers `POST /sweep` with the
//! checked-in `scenarios/fig2.json` preset from concurrent clients, and
//! records throughput plus client-side p50/p95/p99 latency and the
//! server-side handling time (`x-mlscale-micros`) for the cold
//! evaluation vs the cached repeat. Results land in `BENCH_serve.json`
//! at the repo root.
//!
//! Run from the workspace root:
//!
//! ```text
//! cargo run --release -p mlscale-bench --bin bench-serve
//! ```

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Value;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

const CLIENTS: usize = 8;
const REQUESTS_PER_CLIENT: usize = 250;

/// Retry budget per request: the daemon sheds with `503 Retry-After`
/// under overload and may drop a keep-alive connection mid-stream when
/// draining or fault-injected, so the client retries with jittered
/// exponential backoff (start [`BACKOFF_BASE_MS`], double to
/// [`BACKOFF_CAP_MS`], plus a uniform jitter of up to the current delay
/// so `CLIENTS` shed peers do not stampede back in lockstep).
const MAX_ATTEMPTS: u32 = 8;
const BACKOFF_BASE_MS: u64 = 5;
const BACKOFF_CAP_MS: u64 = 200;

fn main() {
    let scenario = find_scenario();
    let body = std::fs::read_to_string(&scenario)
        .unwrap_or_else(|e| panic!("read {}: {e}", scenario.display()));
    let threads = std::thread::available_parallelism().map_or(1, usize::from);
    let addr = mlscale_serve::Server::bind("127.0.0.1:0", threads)
        .expect("bind loopback")
        .start()
        .expect("start server");

    // Server-side handling time: one cold evaluation, then cached repeats.
    let cold = post(addr, &body);
    assert_eq!(cold.status, 200, "cold request failed: {}", cold.body);
    assert_eq!(cold.cache.as_deref(), Some("miss"));
    let mut warm_micros = Vec::new();
    let mut warm_reply = None;
    for _ in 0..50 {
        let warm = post(addr, &body);
        assert_eq!(warm.status, 200);
        assert_eq!(warm.cache.as_deref(), Some("hit"));
        assert_eq!(warm.body, cold.body, "cached repeat must be byte-identical");
        warm_micros.push(warm.micros);
        warm_reply = Some(warm);
    }
    warm_micros.sort_unstable();
    let warm_median = warm_micros[warm_micros.len() / 2];
    drop(warm_reply);

    // Hot-cache load: every client repeats the same preset body.
    let hot = load(
        addr,
        &(0..CLIENTS).map(|_| body.clone()).collect::<Vec<_>>(),
    );

    // Cold load: every request body is unique (a distinct scenario
    // name), so no request can hit the response LRU — each one runs the
    // sweep engine.
    let cold_bodies: Vec<String> = (0..CLIENTS * REQUESTS_PER_CLIENT)
        .map(|i| body.replacen("\"fig2\"", &format!("\"fig2-cold{i:04}\""), 1))
        .collect();
    let cold_load = load(addr, &cold_bodies);
    assert_eq!(
        cold_load.cache_hits, 0,
        "cold phase bodies are unique; the LRU must not answer any of them"
    );

    let report = Value::Map(vec![
        ("id".into(), Value::Str("BENCH_serve".into())),
        (
            "title".into(),
            Value::Str("mlscale serve planner daemon: loopback load generator (PR 6)".into()),
        ),
        (
            "runner".into(),
            Value::Map(vec![
                ("cpus_available".into(), Value::U64(threads as u64)),
                ("server_threads".into(), Value::U64(threads as u64)),
                ("clients".into(), Value::U64(CLIENTS as u64)),
                (
                    "toolchain".into(),
                    Value::Str(
                        "rustc from rust-toolchain.toml, cargo run --release, vendored \
                         dependency-free HTTP layer over std::net"
                            .into(),
                    ),
                ),
            ]),
        ),
        (
            "method".into(),
            Value::Str(format!(
                "in-process Server::bind on 127.0.0.1:0; scenario body = scenarios/fig2.json; \
                 server-side micros read from the x-mlscale-micros response header; load phases \
                 run {CLIENTS} client threads x {REQUESTS_PER_CLIENT} keep-alive requests each; \
                 the cold phase gives every request a unique scenario name so none can hit \
                 the response LRU — each runs the sweep engine"
            )),
        ),
        (
            "results".into(),
            Value::Seq(vec![
                Value::Map(vec![
                    (
                        "path".into(),
                        Value::Str("cold /sweep evaluation, scenarios/fig2.json".into()),
                    ),
                    ("server_micros".into(), Value::U64(cold.micros)),
                    (
                        "note".into(),
                        Value::Str(
                            "first sighting: spec validation + sweep engine + render".into(),
                        ),
                    ),
                ]),
                Value::Map(vec![
                    (
                        "path".into(),
                        Value::Str("cached /sweep repeat, scenarios/fig2.json".into()),
                    ),
                    ("server_micros".into(), Value::U64(warm_median)),
                    ("samples".into(), Value::U64(warm_micros.len() as u64)),
                    (
                        "note".into(),
                        Value::Str(
                            "median server-side handling of a response-LRU hit; byte-identical \
                             to the cold body"
                                .into(),
                        ),
                    ),
                ]),
                phase_result("hot-cache load (every client repeats the preset)", &hot),
                phase_result("cold load (every body unique, zero LRU hits)", &cold_load),
            ]),
        ),
        (
            "determinism".into(),
            Value::Str(
                "every cached response is byte-identical to its cold evaluation (asserted per \
                 request); the served JSON is byte-identical to the files `mlscale sweep` \
                 writes (tests/serve.rs parity suite)"
                    .into(),
            ),
        ),
    ]);
    let out = "BENCH_serve.json";
    let rendered = serde_json::to_string_pretty(&report).expect("render") + "\n";
    let tmp = format!("{out}.tmp");
    // lint: allow(atomic-results-io): this is the temp-file half of the rename pattern
    std::fs::write(&tmp, rendered)
        .and_then(|()| std::fs::rename(&tmp, out))
        .unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!(
        "cold {} us | cached median {} us | hot {:.0} req/s (p99 {:.2} ms) | cold-load {:.0} req/s \
         | retries {} | shed {}",
        cold.micros,
        warm_median,
        hot.throughput_rps,
        hot.p99_ms,
        cold_load.throughput_rps,
        hot.retries + cold_load.retries,
        hot.shed_503 + cold_load.shed_503
    );
    println!("wrote {out}");
    assert!(
        warm_median < 1_000,
        "cached repeat took {warm_median} us server-side; the acceptance bar is sub-millisecond"
    );
}

/// One measured load phase.
struct Phase {
    requests: u64,
    cache_hits: u64,
    retries: u64,
    shed_503: u64,
    throughput_rps: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
}

fn phase_result(path: &str, phase: &Phase) -> Value {
    Value::Map(vec![
        ("path".into(), Value::Str(path.into())),
        ("requests".into(), Value::U64(phase.requests)),
        ("cache_hits".into(), Value::U64(phase.cache_hits)),
        ("retries".into(), Value::U64(phase.retries)),
        ("shed_503".into(), Value::U64(phase.shed_503)),
        (
            "throughput_rps".into(),
            Value::F64(round2(phase.throughput_rps)),
        ),
        ("p50_ms".into(), Value::F64(round3(phase.p50_ms))),
        ("p95_ms".into(), Value::F64(round3(phase.p95_ms))),
        ("p99_ms".into(), Value::F64(round3(phase.p99_ms))),
    ])
}

fn round2(x: f64) -> f64 {
    (x * 100.0).round() / 100.0
}

fn round3(x: f64) -> f64 {
    (x * 1000.0).round() / 1000.0
}

/// Runs `CLIENTS` threads of `REQUESTS_PER_CLIENT` keep-alive requests;
/// client `c` cycles through `bodies[c % bodies.len()]`-style rotation.
fn load(addr: SocketAddr, bodies: &[String]) -> Phase {
    // lint: allow(determinism): a latency benchmark measures the wall clock by design
    let start = Instant::now();
    // lint: allow(par-only-threads): the load generator must drive the server from outside its own par pool to measure it
    let per_client: Vec<(Vec<Duration>, ClientStats)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|client| {
                // lint: allow(par-only-threads): per-client socket threads are the measurement harness, not model evaluation
                scope.spawn(move || {
                    let mut samples = Vec::with_capacity(REQUESTS_PER_CLIENT);
                    let mut stats = ClientStats::default();
                    // Jitter stream seeded per client: runs are repeatable
                    // and no two clients share a backoff schedule.
                    let mut rng = StdRng::seed_from_u64(0xBEEF ^ client as u64);
                    let mut conn = Some(Conn::open(addr).expect("initial connect"));
                    for round in 0..REQUESTS_PER_CLIENT {
                        let body = &bodies[(client + round * CLIENTS) % bodies.len()];
                        // lint: allow(determinism): per-request latency sample — this benchmark exists to time requests
                        let sent = Instant::now();
                        let reply = post_with_retry(addr, &mut conn, body, &mut rng, &mut stats)
                            .unwrap_or_else(|e| panic!("client {client} round {round}: {e}"));
                        samples.push(sent.elapsed());
                        stats.hits += u64::from(reply.cache.as_deref() == Some("hit"));
                        assert_eq!(
                            reply.status, 200,
                            "client {client} round {round}: {}",
                            reply.body
                        );
                    }
                    (samples, stats)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    let wall = start.elapsed();
    let cache_hits = per_client.iter().map(|(_, s)| s.hits).sum();
    let retries = per_client.iter().map(|(_, s)| s.retries).sum();
    let shed_503 = per_client.iter().map(|(_, s)| s.shed_503).sum();
    let mut latencies: Vec<Duration> = per_client
        .into_iter()
        .flat_map(|(samples, _)| samples)
        .collect();
    latencies.sort_unstable();
    let pct = |p: f64| -> f64 {
        let i = ((latencies.len() as f64 - 1.0) * p).round() as usize;
        latencies[i].as_secs_f64() * 1e3
    };
    Phase {
        requests: latencies.len() as u64,
        cache_hits,
        retries,
        shed_503,
        throughput_rps: latencies.len() as f64 / wall.as_secs_f64(),
        p50_ms: pct(0.50),
        p95_ms: pct(0.95),
        p99_ms: pct(0.99),
    }
}

/// Per-client tallies beyond latency samples.
#[derive(Default)]
struct ClientStats {
    hits: u64,
    retries: u64,
    shed_503: u64,
}

/// A keep-alive connection: paired write half and buffered read half.
struct Conn {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Conn {
    fn open(addr: SocketAddr) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(60)))?;
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone()?;
        Ok(Self {
            writer,
            reader: BufReader::new(stream),
        })
    }

    fn exchange(&mut self, body: &str) -> std::io::Result<Reply> {
        write!(
            self.writer,
            "POST /sweep HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )?;
        try_read_reply(&mut self.reader)
    }
}

/// One request with the retry policy a real daemon client needs: a
/// `503` shed, a dropped keep-alive connection (drain, injected fault,
/// reset), or a failed reconnect all back off with seeded jitter and try
/// again, reconnecting on any I/O error. Gives up (with the last error)
/// after [`MAX_ATTEMPTS`].
fn post_with_retry(
    addr: SocketAddr,
    conn: &mut Option<Conn>,
    body: &str,
    rng: &mut StdRng,
    stats: &mut ClientStats,
) -> std::io::Result<Reply> {
    let mut delay_ms = BACKOFF_BASE_MS;
    let mut last_err = None;
    for attempt in 0..MAX_ATTEMPTS {
        if attempt > 0 {
            stats.retries += 1;
            let jitter = rng.gen_range(0..=delay_ms);
            std::thread::sleep(Duration::from_millis(delay_ms + jitter));
            delay_ms = (delay_ms * 2).min(BACKOFF_CAP_MS);
        }
        let attempt_result = match conn.as_mut() {
            Some(live) => live.exchange(body),
            None => match Conn::open(addr) {
                Ok(mut fresh) => {
                    let result = fresh.exchange(body);
                    *conn = Some(fresh);
                    result
                }
                Err(e) => Err(e),
            },
        };
        match attempt_result {
            Ok(reply) if reply.status == 503 => {
                // Shed under load: the server answered and closed; honor
                // Retry-After by backing off and reconnecting.
                stats.shed_503 += 1;
                *conn = None;
                last_err = Some(std::io::Error::other("server shed the request with 503"));
            }
            Ok(reply) => return Ok(reply),
            Err(e) => {
                *conn = None;
                last_err = Some(e);
            }
        }
    }
    Err(last_err.unwrap_or_else(|| std::io::Error::other("retry budget exhausted")))
}

struct Reply {
    status: u16,
    micros: u64,
    cache: Option<String>,
    body: String,
}

fn connect(addr: SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("read timeout");
    stream.set_nodelay(true).ok();
    stream
}

fn write_post<W: Write>(writer: &mut W, body: &str) {
    write!(
        writer,
        "POST /sweep HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("write request");
}

fn post(addr: SocketAddr, body: &str) -> Reply {
    let stream = connect(addr);
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    write_post(&mut writer, body);
    read_reply(&mut reader)
}

fn read_reply(reader: &mut BufReader<TcpStream>) -> Reply {
    try_read_reply(reader).expect("read reply")
}

/// Reads one response, surfacing short reads and malformed framing as
/// `Err` so the load clients can treat a dropped keep-alive connection
/// as retryable instead of panicking.
fn try_read_reply(reader: &mut BufReader<TcpStream>) -> std::io::Result<Reply> {
    let malformed = |what: String| std::io::Error::new(std::io::ErrorKind::InvalidData, what);
    let mut status_line = String::new();
    if reader.read_line(&mut status_line)? == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "connection closed before a status line",
        ));
    }
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| malformed(format!("bad status line {status_line:?}")))?;
    let (mut length, mut micros, mut cache) = (0usize, 0u64, None);
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed mid-headers",
            ));
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| malformed(format!("bad header line {line:?}")))?;
        let value = value.trim();
        match name.to_ascii_lowercase().as_str() {
            "content-length" => {
                length = value
                    .parse()
                    .map_err(|_| malformed(format!("bad Content-Length {value:?}")))?;
            }
            "x-mlscale-micros" => {
                micros = value
                    .parse()
                    .map_err(|_| malformed(format!("bad x-mlscale-micros {value:?}")))?;
            }
            "x-mlscale-cache" => cache = Some(value.to_string()),
            _ => {}
        }
    }
    let mut body = vec![0u8; length];
    reader.read_exact(&mut body)?;
    Ok(Reply {
        status,
        micros,
        cache,
        body: String::from_utf8(body)
            .map_err(|_| malformed("response body is not UTF-8".into()))?,
    })
}

/// The fig2 scenario, whether run from the workspace root or the bench
/// crate directory.
fn find_scenario() -> std::path::PathBuf {
    for candidate in ["scenarios/fig2.json", "../../scenarios/fig2.json"] {
        let path = std::path::PathBuf::from(candidate);
        if path.exists() {
            return path;
        }
    }
    panic!("scenarios/fig2.json not found; run from the workspace root");
}
