//! Load generator for the `mlscale serve` daemon: starts the server
//! in-process on a loopback socket, hammers `POST /sweep` with the
//! checked-in `scenarios/fig2.json` preset from concurrent clients, and
//! records throughput plus client-side p50/p95/p99 latency and the
//! server-side handling time (`x-mlscale-micros`) for the cold
//! evaluation vs the cached repeat. Results land in `BENCH_serve.json`
//! at the repo root.
//!
//! Run from the workspace root:
//!
//! ```text
//! cargo run --release -p mlscale-bench --bin bench-serve
//! ```

#![forbid(unsafe_code)]

use serde::Value;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

const CLIENTS: usize = 8;
const REQUESTS_PER_CLIENT: usize = 250;

fn main() {
    let scenario = find_scenario();
    let body = std::fs::read_to_string(&scenario)
        .unwrap_or_else(|e| panic!("read {}: {e}", scenario.display()));
    let threads = std::thread::available_parallelism().map_or(1, usize::from);
    let addr = mlscale_serve::Server::bind("127.0.0.1:0", threads)
        .expect("bind loopback")
        .start()
        .expect("start server");

    // Server-side handling time: one cold evaluation, then cached repeats.
    let cold = post(addr, &body);
    assert_eq!(cold.status, 200, "cold request failed: {}", cold.body);
    assert_eq!(cold.cache.as_deref(), Some("miss"));
    let mut warm_micros = Vec::new();
    let mut warm_reply = None;
    for _ in 0..50 {
        let warm = post(addr, &body);
        assert_eq!(warm.status, 200);
        assert_eq!(warm.cache.as_deref(), Some("hit"));
        assert_eq!(warm.body, cold.body, "cached repeat must be byte-identical");
        warm_micros.push(warm.micros);
        warm_reply = Some(warm);
    }
    warm_micros.sort_unstable();
    let warm_median = warm_micros[warm_micros.len() / 2];
    drop(warm_reply);

    // Hot-cache load: every client repeats the same preset body.
    let hot = load(
        addr,
        &(0..CLIENTS).map(|_| body.clone()).collect::<Vec<_>>(),
    );

    // Cold load: every request body is unique (a distinct scenario
    // name), so no request can hit the response LRU — each one runs the
    // sweep engine.
    let cold_bodies: Vec<String> = (0..CLIENTS * REQUESTS_PER_CLIENT)
        .map(|i| body.replacen("\"fig2\"", &format!("\"fig2-cold{i:04}\""), 1))
        .collect();
    let cold_load = load(addr, &cold_bodies);
    assert_eq!(
        cold_load.cache_hits, 0,
        "cold phase bodies are unique; the LRU must not answer any of them"
    );

    let report = Value::Map(vec![
        ("id".into(), Value::Str("BENCH_serve".into())),
        (
            "title".into(),
            Value::Str("mlscale serve planner daemon: loopback load generator (PR 6)".into()),
        ),
        (
            "runner".into(),
            Value::Map(vec![
                ("cpus_available".into(), Value::U64(threads as u64)),
                ("server_threads".into(), Value::U64(threads as u64)),
                ("clients".into(), Value::U64(CLIENTS as u64)),
                (
                    "toolchain".into(),
                    Value::Str(
                        "rustc from rust-toolchain.toml, cargo run --release, vendored \
                         dependency-free HTTP layer over std::net"
                            .into(),
                    ),
                ),
            ]),
        ),
        (
            "method".into(),
            Value::Str(format!(
                "in-process Server::bind on 127.0.0.1:0; scenario body = scenarios/fig2.json; \
                 server-side micros read from the x-mlscale-micros response header; load phases \
                 run {CLIENTS} client threads x {REQUESTS_PER_CLIENT} keep-alive requests each; \
                 the cold phase gives every request a unique scenario name so none can hit \
                 the response LRU — each runs the sweep engine"
            )),
        ),
        (
            "results".into(),
            Value::Seq(vec![
                Value::Map(vec![
                    (
                        "path".into(),
                        Value::Str("cold /sweep evaluation, scenarios/fig2.json".into()),
                    ),
                    ("server_micros".into(), Value::U64(cold.micros)),
                    (
                        "note".into(),
                        Value::Str(
                            "first sighting: spec validation + sweep engine + render".into(),
                        ),
                    ),
                ]),
                Value::Map(vec![
                    (
                        "path".into(),
                        Value::Str("cached /sweep repeat, scenarios/fig2.json".into()),
                    ),
                    ("server_micros".into(), Value::U64(warm_median)),
                    ("samples".into(), Value::U64(warm_micros.len() as u64)),
                    (
                        "note".into(),
                        Value::Str(
                            "median server-side handling of a response-LRU hit; byte-identical \
                             to the cold body"
                                .into(),
                        ),
                    ),
                ]),
                phase_result("hot-cache load (every client repeats the preset)", &hot),
                phase_result("cold load (every body unique, zero LRU hits)", &cold_load),
            ]),
        ),
        (
            "determinism".into(),
            Value::Str(
                "every cached response is byte-identical to its cold evaluation (asserted per \
                 request); the served JSON is byte-identical to the files `mlscale sweep` \
                 writes (tests/serve.rs parity suite)"
                    .into(),
            ),
        ),
    ]);
    let out = "BENCH_serve.json";
    let rendered = serde_json::to_string_pretty(&report).expect("render") + "\n";
    let tmp = format!("{out}.tmp");
    // lint: allow(atomic-results-io): this is the temp-file half of the rename pattern
    std::fs::write(&tmp, rendered)
        .and_then(|()| std::fs::rename(&tmp, out))
        .unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!(
        "cold {} us | cached median {} us | hot {:.0} req/s (p99 {:.2} ms) | cold-load {:.0} req/s",
        cold.micros, warm_median, hot.throughput_rps, hot.p99_ms, cold_load.throughput_rps
    );
    println!("wrote {out}");
    assert!(
        warm_median < 1_000,
        "cached repeat took {warm_median} us server-side; the acceptance bar is sub-millisecond"
    );
}

/// One measured load phase.
struct Phase {
    requests: u64,
    cache_hits: u64,
    throughput_rps: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
}

fn phase_result(path: &str, phase: &Phase) -> Value {
    Value::Map(vec![
        ("path".into(), Value::Str(path.into())),
        ("requests".into(), Value::U64(phase.requests)),
        ("cache_hits".into(), Value::U64(phase.cache_hits)),
        (
            "throughput_rps".into(),
            Value::F64(round2(phase.throughput_rps)),
        ),
        ("p50_ms".into(), Value::F64(round3(phase.p50_ms))),
        ("p95_ms".into(), Value::F64(round3(phase.p95_ms))),
        ("p99_ms".into(), Value::F64(round3(phase.p99_ms))),
    ])
}

fn round2(x: f64) -> f64 {
    (x * 100.0).round() / 100.0
}

fn round3(x: f64) -> f64 {
    (x * 1000.0).round() / 1000.0
}

/// Runs `CLIENTS` threads of `REQUESTS_PER_CLIENT` keep-alive requests;
/// client `c` cycles through `bodies[c % bodies.len()]`-style rotation.
fn load(addr: SocketAddr, bodies: &[String]) -> Phase {
    // lint: allow(determinism): a latency benchmark measures the wall clock by design
    let start = Instant::now();
    // lint: allow(par-only-threads): the load generator must drive the server from outside its own par pool to measure it
    let per_client: Vec<(Vec<Duration>, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|client| {
                // lint: allow(par-only-threads): per-client socket threads are the measurement harness, not model evaluation
                scope.spawn(move || {
                    let mut samples = Vec::with_capacity(REQUESTS_PER_CLIENT);
                    let mut hits = 0u64;
                    let stream = connect(addr);
                    let mut writer = stream.try_clone().expect("clone stream");
                    let mut reader = BufReader::new(stream);
                    for round in 0..REQUESTS_PER_CLIENT {
                        let body = &bodies[(client + round * CLIENTS) % bodies.len()];
                        // lint: allow(determinism): per-request latency sample — this benchmark exists to time requests
                        let sent = Instant::now();
                        write_post(&mut writer, body);
                        let reply = read_reply(&mut reader);
                        samples.push(sent.elapsed());
                        hits += u64::from(reply.cache.as_deref() == Some("hit"));
                        assert_eq!(
                            reply.status, 200,
                            "client {client} round {round}: {}",
                            reply.body
                        );
                    }
                    (samples, hits)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    let wall = start.elapsed();
    let cache_hits = per_client.iter().map(|(_, hits)| hits).sum();
    let mut latencies: Vec<Duration> = per_client
        .into_iter()
        .flat_map(|(samples, _)| samples)
        .collect();
    latencies.sort_unstable();
    let pct = |p: f64| -> f64 {
        let i = ((latencies.len() as f64 - 1.0) * p).round() as usize;
        latencies[i].as_secs_f64() * 1e3
    };
    Phase {
        requests: latencies.len() as u64,
        cache_hits,
        throughput_rps: latencies.len() as f64 / wall.as_secs_f64(),
        p50_ms: pct(0.50),
        p95_ms: pct(0.95),
        p99_ms: pct(0.99),
    }
}

struct Reply {
    status: u16,
    micros: u64,
    cache: Option<String>,
    body: String,
}

fn connect(addr: SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("read timeout");
    stream.set_nodelay(true).ok();
    stream
}

fn write_post<W: Write>(writer: &mut W, body: &str) {
    write!(
        writer,
        "POST /sweep HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("write request");
}

fn post(addr: SocketAddr, body: &str) -> Reply {
    let stream = connect(addr);
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    write_post(&mut writer, body);
    read_reply(&mut reader)
}

fn read_reply(reader: &mut BufReader<TcpStream>) -> Reply {
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line {status_line:?}"));
    let (mut length, mut micros, mut cache) = (0usize, 0u64, None);
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header line");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        let (name, value) = line.split_once(':').expect("header");
        let value = value.trim();
        match name.to_ascii_lowercase().as_str() {
            "content-length" => length = value.parse().expect("length"),
            "x-mlscale-micros" => micros = value.parse().expect("micros"),
            "x-mlscale-cache" => cache = Some(value.to_string()),
            _ => {}
        }
    }
    let mut body = vec![0u8; length];
    reader.read_exact(&mut body).expect("body");
    Reply {
        status,
        micros,
        cache,
        body: String::from_utf8(body).expect("UTF-8 body"),
    }
}

/// The fig2 scenario, whether run from the workspace root or the bench
/// crate directory.
fn find_scenario() -> std::path::PathBuf {
    for candidate in ["scenarios/fig2.json", "../../scenarios/fig2.json"] {
        let path = std::path::PathBuf::from(candidate);
        if path.exists() {
            return path;
        }
    }
    panic!("scenarios/fig2.json not found; run from the workspace root");
}
