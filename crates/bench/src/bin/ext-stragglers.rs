//! Runs the straggler extension exhibit: expected Fig 1/Fig 2 optima
//! under growing straggler tails, heterogeneous hardware and the
//! drop-slowest-k mitigation, cross-validated against the discrete-event
//! straggler simulator.
//!
//! Usage: ext-stragglers [MAX_N]   (default 16)

#![forbid(unsafe_code)]

fn main() {
    let max_n = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("MAX_N must be an integer"))
        .unwrap_or(16);
    let result = mlscale_workloads::experiments::stragglers(max_n);
    mlscale_bench::emit(&result);
}
