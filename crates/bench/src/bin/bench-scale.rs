//! Extreme-scale ceiling benchmark: measures where the analytic order
//! statistics, log-spaced curves, and sparse planner now stand at
//! n = 10⁵–10⁶ workers — wall time per call, asymptotic-vs-exact relative
//! error at and above the crossover, end-to-end curve/planner latency,
//! and a Monte-Carlo cross-check of the analytic expected iteration time
//! against `simulate_with_stragglers` at sparse large n. Results land in
//! `BENCH_scale.json` at the repo root.
//!
//! Run from the workspace root:
//!
//! ```text
//! cargo run --release -p mlscale-bench --bin bench-scale
//! ```

#![forbid(unsafe_code)]

use mlscale_core::planner::Pricing;
use mlscale_core::straggler::{StragglerGdModel, StragglerModel};
use mlscale_workloads::experiments::figures::fig2_model;
use mlscale_workloads::gd::GdWorkload;
use serde::Value;
use std::time::Instant;

/// Tail variants with an asymptotic regime, under the names the report
/// uses.
fn tail_variants() -> Vec<(&'static str, StragglerModel)> {
    vec![
        (
            "exponential mean 0.05 s",
            StragglerModel::ExponentialTail { mean: 0.05 },
        ),
        (
            "lognormal mu -2 sigma 0.8",
            StragglerModel::LogNormalTail {
                mu: -2.0,
                sigma: 0.8,
            },
        ),
    ]
}

fn rel_err(a: f64, b: f64) -> f64 {
    (a - b).abs() / b.abs().max(1e-300)
}

/// Wall time of `f` in microseconds (median of `reps` runs), plus the
/// last value — enough precision for calls in the sub-ms to seconds range.
fn time_us<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    assert!(reps >= 1);
    let mut samples = Vec::with_capacity(reps);
    let mut last = None;
    for _ in 0..reps {
        // lint: allow(determinism): a wall-time benchmark measures the clock by design
        let start = Instant::now();
        let v = f();
        samples.push(start.elapsed().as_secs_f64() * 1e6);
        last = Some(v);
    }
    samples.sort_by(f64::total_cmp);
    (samples[samples.len() / 2], last.expect("reps >= 1"))
}

fn crossover_rows() -> Vec<Value> {
    let mut rows = Vec::new();
    for (name, model) in tail_variants() {
        let cross = model
            .asymptotic_crossover()
            .expect("tail variants have a crossover");
        for k in [0usize, 3] {
            let asym = model.expected_order_stat(cross + 1, k);
            let exact = model.expected_order_stat_exact(cross + 1, k);
            rows.push(Value::Map(vec![
                ("variant".into(), Value::Str(name.into())),
                ("crossover_n".into(), Value::U64(cross as u64)),
                ("drop_k".into(), Value::U64(k as u64)),
                ("asymptotic".into(), Value::F64(asym)),
                ("exact".into(), Value::F64(exact)),
                ("rel_err".into(), Value::F64(rel_err(asym, exact))),
            ]));
        }
    }
    rows
}

fn large_n_rows() -> Vec<Value> {
    let mut rows = Vec::new();
    for (name, model) in tail_variants() {
        for n in [100_000usize, 1_000_000] {
            let (wall_us, v) = time_us(5, || model.expected_order_stat(n, 0));
            let mut row = vec![
                ("variant".into(), Value::Str(name.into())),
                ("n".into(), Value::U64(n as u64)),
                ("expected_max_s".into(), Value::F64(v)),
                ("wall_us".into(), Value::F64(wall_us)),
            ];
            // The exact path stays tractable at 10⁵ (O(n) harmonic sum /
            // full-support quadrature) — record the asymptotic error
            // against it; at 10⁶ only the wall time is interesting.
            if n == 100_000 {
                let (exact_us, exact) = time_us(3, || model.expected_order_stat_exact(n, 0));
                row.push(("exact_s".into(), Value::F64(exact)));
                row.push(("exact_wall_us".into(), Value::F64(exact_us)));
                row.push(("rel_err_vs_exact".into(), Value::F64(rel_err(v, exact))));
            }
            rows.push(Value::Map(row));
        }
    }
    rows
}

fn gd(model: StragglerModel) -> StragglerGdModel {
    StragglerGdModel {
        straggler: model,
        backup_k: 1,
        ..StragglerGdModel::deterministic(fig2_model())
    }
}

fn curve_and_planner_rows() -> Vec<Value> {
    const MAX_N: usize = 1_000_000;
    const POINTS: usize = 200;
    let mut rows = Vec::new();
    for (name, model) in tail_variants() {
        let m = gd(model);
        let (curve_us, curve) = time_us(3, || m.strong_curve_log(MAX_N, POINTS));
        let (n_opt, s_opt) = curve.optimal();
        let (plan_us, planner) = time_us(3, || {
            m.planner_log(100.0, MAX_N, Pricing::hourly(2.0), POINTS)
        });
        let fastest = planner.fastest();
        let cheapest = planner.cheapest();
        // The two remaining verbs answer from the same cached table.
        let deadline = mlscale_core::units::Seconds::new(fastest.time.as_secs() * 2.0);
        let (verbs_us, _) = time_us(3, || {
            (
                planner.cheapest_within_deadline(deadline).map(|p| p.n),
                planner
                    .fastest_within_budget(fastest.cost * 2.0)
                    .map(|p| p.n),
            )
        });
        rows.push(Value::Map(vec![
            ("variant".into(), Value::Str(name.into())),
            ("max_n".into(), Value::U64(MAX_N as u64)),
            ("log_points".into(), Value::U64(POINTS as u64)),
            ("strong_curve_wall_us".into(), Value::F64(curve_us)),
            ("curve_optimal_n".into(), Value::U64(n_opt as u64)),
            ("curve_optimal_speedup".into(), Value::F64(s_opt)),
            ("planner_wall_us".into(), Value::F64(plan_us)),
            ("deadline_budget_verbs_wall_us".into(), Value::F64(verbs_us)),
            ("fastest_n".into(), Value::U64(fastest.n as u64)),
            ("fastest_time_s".into(), Value::F64(fastest.time.as_secs())),
            ("cheapest_n".into(), Value::U64(cheapest.n as u64)),
            ("cheapest_cost".into(), Value::F64(cheapest.cost)),
        ]));
    }
    rows
}

fn monte_carlo_rows() -> Vec<Value> {
    let mut rows = Vec::new();
    for (name, model) in tail_variants() {
        let m = gd(model);
        let workload = GdWorkload::ideal(fig2_model()).with_stragglers(model, m.hetero, m.backup_k);
        for n in [10_000usize, 100_000] {
            let analytic = m.expected_strong_iteration_time(n).as_secs();
            let (sim_us, sim) = time_us(1, || workload.simulate_strong(n).as_secs());
            rows.push(Value::Map(vec![
                ("variant".into(), Value::Str(name.into())),
                ("n".into(), Value::U64(n as u64)),
                ("analytic_iteration_s".into(), Value::F64(analytic)),
                ("simulated_iteration_s".into(), Value::F64(sim)),
                ("rel_diff".into(), Value::F64(rel_err(sim, analytic))),
                ("sim_wall_us".into(), Value::F64(sim_us)),
            ]));
        }
    }
    rows
}

fn main() {
    let report = Value::Map(vec![
        ("id".into(), Value::Str("BENCH_scale".into())),
        (
            "title".into(),
            Value::Str(
                "extreme-scale order statistics: asymptotic tails, log-spaced curves, \
                 sparse planner (PR 8)"
                    .into(),
            ),
        ),
        (
            "runner".into(),
            Value::Map(vec![
                (
                    "cpus_available".into(),
                    Value::U64(std::thread::available_parallelism().map_or(1, usize::from) as u64),
                ),
                (
                    "toolchain".into(),
                    Value::Str("rustc from rust-toolchain.toml, cargo run --release".into()),
                ),
            ]),
        ),
        (
            "method".into(),
            Value::Str(
                "crossover rows compare the Gumbel/Euler-Maclaurin asymptotic against the \
                 exact shared-grid/harmonic path one past each variant's crossover n; \
                 large-n rows time a single expected-order-stat call (median of 5); curve \
                 and planner rows time a 200-point log-ladder strong curve and sparse \
                 planner (all four verbs) at max_n = 10^6 on the Fig 2 job with backup_k \
                 = 1; Monte-Carlo rows cross-check the analytic expected iteration time \
                 against simulate_with_stragglers at sparse large n (3 simulated \
                 iterations, fixed seed)"
                    .into(),
            ),
        ),
        ("crossover".into(), Value::Seq(crossover_rows())),
        ("large_n".into(), Value::Seq(large_n_rows())),
        (
            "curve_and_planner".into(),
            Value::Seq(curve_and_planner_rows()),
        ),
        (
            "monte_carlo_cross_check".into(),
            Value::Seq(monte_carlo_rows()),
        ),
        (
            "determinism".into(),
            Value::Str(
                "every analytic number here is deterministic (quadrature and closed forms, \
                 no sampling) and bit-identical run to run; only the wall-time fields and \
                 the seeded Monte-Carlo cross-check vary with the machine"
                    .into(),
            ),
        ),
    ]);
    let out = "BENCH_scale.json";
    let rendered = serde_json::to_string_pretty(&report).expect("render") + "\n";
    let tmp = format!("{out}.tmp");
    // lint: allow(atomic-results-io): this is the temp-file half of the rename pattern
    std::fs::write(&tmp, rendered)
        .and_then(|()| std::fs::rename(&tmp, out))
        .unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!("wrote {out}");
}
