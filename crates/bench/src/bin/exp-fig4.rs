//! Regenerates Fig 4: loopy-BP speedup over the DNS-like power-law graph
//! on the (simulated) 80-core shared-memory machine, Monte-Carlo model vs
//! exact-partition experiment.
//!
//! Usage: exp-fig4 [tiny|small|medium|full|--all-scales]
//! Default scale: small (paper MAPE 19.6%). `full` materialises the
//! 16.26M-vertex / 99.85M-edge graph (~1 GB, minutes).

#![forbid(unsafe_code)]

use mlscale_workloads::experiments::{fig4, DnsScale};

fn run(scale: DnsScale) {
    let ns: Vec<usize> = vec![1, 2, 4, 8, 16, 24, 32, 48, 64, 80];
    let result = fig4(scale, &ns);
    mlscale_bench::emit(&result);
}

fn main() {
    match std::env::args().nth(1).as_deref() {
        None | Some("small") => run(DnsScale::Small),
        Some("tiny") => run(DnsScale::Tiny),
        Some("medium") => run(DnsScale::Medium),
        Some("full") => run(DnsScale::Full),
        Some("--all-scales") => {
            for scale in [DnsScale::Tiny, DnsScale::Small, DnsScale::Medium] {
                run(scale);
            }
            eprintln!("(run `exp-fig4 full` separately for the 16M-vertex graph)");
        }
        Some(other) => {
            eprintln!("unknown scale {other:?}; use tiny|small|medium|full|--all-scales");
            std::process::exit(2);
        }
    }
}
