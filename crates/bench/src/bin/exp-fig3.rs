//! Regenerates Fig 3: weak-scaling per-instance speedup of Inception v3
//! training on the (simulated) K40 cluster, relative to 50 nodes.

#![forbid(unsafe_code)]

fn main() {
    let result = mlscale_workloads::experiments::fig3();
    mlscale_bench::emit(&result);
}
