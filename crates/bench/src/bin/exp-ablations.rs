//! Runs the ablation experiments over the design choices the paper
//! discusses: communication architecture, weak-scaling communication
//! shape, batch size, parameter precision, partitioning strategy, and the
//! Amdahl-fraction treatment of overhead.

#![forbid(unsafe_code)]

use mlscale_workloads::experiments::ablations;

fn main() {
    mlscale_bench::emit(&ablations::comm_architectures(32));
    mlscale_bench::emit(&ablations::weak_scaling_comm(256));
    mlscale_bench::emit(&ablations::batch_size(64));
    mlscale_bench::emit(&ablations::precision(32));
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
    let graph = mlscale_graph::generators::dns_like(
        mlscale_graph::generators::DnsGraphSpec {
            vertices: 20_000,
            edges: 120_000,
            max_degree: 2_000,
        },
        &mut rng,
    );
    mlscale_bench::emit(&ablations::partitioning(&graph, &[2, 4, 8, 16, 32], 11));
    mlscale_bench::emit(&ablations::amdahl(1024));
}
