//! # mlscale-bench — experiment binaries and criterion benchmarks
//!
//! One binary per paper exhibit (`exp-table1`, `exp-fig1` … `exp-fig4`,
//! `exp-ablations`, `exp-all`): each prints the exhibit's series in the
//! paper's terms and writes the structured result to `results/<id>.json`.
//! The criterion benches in `benches/` time the hot paths behind each
//! exhibit (model evaluation, the Monte-Carlo estimator, partitioning, BP
//! iterations, the simulator, the layer cost algebra).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

use mlscale_workloads::ExperimentResult;
use std::path::{Path, PathBuf};

/// Directory the experiment binaries write JSON results into (created on
/// demand): `results/` under the workspace root.
pub fn results_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench; the workspace root is two up.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."));
    root.join("results")
}

/// Prints an experiment result and persists it as JSON. Returns the path
/// written, or `None` (with a warning on stderr) when persisting failed —
/// printing always succeeds.
///
/// The write is atomic: the JSON goes to a `.json.tmp` sibling first and
/// is renamed into place, so an interrupted `exp-*` run (ctrl-C, OOM kill
/// mid-`exp-all`) can never leave a truncated `results/<id>.json` behind —
/// readers see either the previous complete file or the new one.
pub fn emit(result: &ExperimentResult) -> Option<PathBuf> {
    println!("{}", result.to_text());
    let dir = results_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return None;
    }
    let path = dir.join(format!("{}.json", result.id));
    let tmp = dir.join(format!("{}.json.tmp", result.id));
    match serde_json::to_string_pretty(result) {
        Ok(json) => {
            // lint: allow(atomic-results-io): this is the temp-file half of the rename pattern
            if let Err(e) = std::fs::write(&tmp, json) {
                eprintln!("warning: cannot write {}: {e}", tmp.display());
                return None;
            }
            if let Err(e) = std::fs::rename(&tmp, &path) {
                eprintln!("warning: cannot move {} into place: {e}", tmp.display());
                let _ = std::fs::remove_file(&tmp);
                return None;
            }
            Some(path)
        }
        Err(e) => {
            eprintln!("warning: cannot serialise result: {e}");
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlscale_workloads::Series;

    #[test]
    fn results_dir_is_under_workspace_root() {
        let dir = results_dir();
        assert!(dir.ends_with("results"));
    }

    #[test]
    fn emit_writes_json() {
        let result = ExperimentResult::new("selftest", "emit test")
            .with_series(Series::new("s", vec![(1, 1.0)]));
        let path = emit(&result).expect("emit must persist");
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("selftest"));
        // The staging file must not survive a successful emit.
        assert!(!path.with_extension("json.tmp").exists());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn emit_replaces_existing_file_whole() {
        let big = ExperimentResult::new("selftest-atomic", "first")
            .with_series(Series::new("s", (1..200).map(|n| (n, n as f64)).collect()));
        let path = emit(&big).expect("emit must persist");
        let small = ExperimentResult::new("selftest-atomic", "second");
        let path2 = emit(&small).expect("emit must persist");
        assert_eq!(path, path2);
        // Rename-over semantics: the shorter result fully replaces the
        // longer one, no stale tail bytes, valid JSON throughout.
        let json = std::fs::read_to_string(&path).unwrap();
        let back: ExperimentResult = serde_json::from_str(&json).unwrap();
        assert_eq!(back.title, "second");
        assert!(back.series.is_empty());
        let _ = std::fs::remove_file(path);
    }
}
