//! # mlscale-bench — experiment binaries and criterion benchmarks
//!
//! One binary per paper exhibit (`exp-table1`, `exp-fig1` … `exp-fig4`,
//! `exp-ablations`, `exp-all`): each prints the exhibit's series in the
//! paper's terms and writes the structured result to `results/<id>.json`.
//! The criterion benches in `benches/` time the hot paths behind each
//! exhibit (model evaluation, the Monte-Carlo estimator, partitioning, BP
//! iterations, the simulator, the layer cost algebra).

#![warn(missing_docs)]
#![warn(clippy::all)]

use mlscale_workloads::ExperimentResult;
use std::path::{Path, PathBuf};

/// Directory the experiment binaries write JSON results into (created on
/// demand): `results/` under the workspace root.
pub fn results_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench; the workspace root is two up.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."));
    root.join("results")
}

/// Prints an experiment result and persists it as JSON. Returns the path
/// written, or `None` (with a warning on stderr) when persisting failed —
/// printing always succeeds.
pub fn emit(result: &ExperimentResult) -> Option<PathBuf> {
    println!("{}", result.to_text());
    let dir = results_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return None;
    }
    let path = dir.join(format!("{}.json", result.id));
    match serde_json::to_string_pretty(result) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("warning: cannot write {}: {e}", path.display());
                return None;
            }
            Some(path)
        }
        Err(e) => {
            eprintln!("warning: cannot serialise result: {e}");
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlscale_workloads::Series;

    #[test]
    fn results_dir_is_under_workspace_root() {
        let dir = results_dir();
        assert!(dir.ends_with("results"));
    }

    #[test]
    fn emit_writes_json() {
        let result = ExperimentResult::new("selftest", "emit test")
            .with_series(Series::new("s", vec![(1, 1.0)]));
        let path = emit(&result).expect("emit must persist");
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("selftest"));
        let _ = std::fs::remove_file(path);
    }
}
