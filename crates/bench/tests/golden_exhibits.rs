//! Golden-snapshot tests for the exhibit binaries: every `exp-*`/`ext-*`
//! binary runs with its fixed built-in seeds, and the `results/<id>.json`
//! it emits must match the checked-in fixture under
//! `crates/bench/tests/golden/` — so any drift in a model, the simulator,
//! an experiment definition or the report serialisation is caught by
//! tier-1 instead of silently changing the published numbers.
//!
//! To refresh the fixtures after an *intentional* change:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test -p mlscale-bench --test golden_exhibits
//! ```
//!
//! then commit the updated files with a note on what moved and why.
//! (`exp-all` is deliberately not snapshotted: it is the concatenation of
//! the other binaries and would only re-run the same exhibits, racing
//! with them on the shared `results/` files.)

use mlscale_workloads::ExperimentResult;
use std::path::{Path, PathBuf};
use std::process::Command;

/// `crates/bench/tests/golden/` — the fixture directory.
fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// Runs one exhibit binary and checks each emitted results file against
/// its fixture (or rewrites the fixtures under `UPDATE_GOLDEN=1`).
fn check(bin: &str, exe: &str, ids: &[&str]) {
    let out = Command::new(exe)
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn {bin}: {e}"));
    assert!(
        out.status.success(),
        "{bin} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let update = std::env::var_os("UPDATE_GOLDEN").is_some();
    for id in ids {
        let produced_path = mlscale_bench::results_dir().join(format!("{id}.json"));
        let produced_json = std::fs::read_to_string(&produced_path)
            .unwrap_or_else(|e| panic!("{bin} did not produce {}: {e}", produced_path.display()));
        let produced: ExperimentResult = serde_json::from_str(&produced_json)
            .unwrap_or_else(|e| panic!("{bin} wrote invalid JSON for {id}: {e}"));
        let fixture_path = golden_dir().join(format!("{id}.json"));
        if update {
            std::fs::create_dir_all(golden_dir()).expect("create golden dir");
            std::fs::write(&fixture_path, &produced_json)
                .unwrap_or_else(|e| panic!("cannot write fixture {id}: {e}"));
            continue;
        }
        let fixture_json = std::fs::read_to_string(&fixture_path).unwrap_or_else(|e| {
            panic!(
                "missing golden fixture {} ({e}); generate it with \
                 `UPDATE_GOLDEN=1 cargo test -p mlscale-bench --test golden_exhibits`",
                fixture_path.display()
            )
        });
        let expected: ExperimentResult =
            serde_json::from_str(&fixture_json).expect("fixture JSON parses");
        assert_eq!(
            produced, expected,
            "{bin}: results/{id}.json drifted from its golden fixture; if the \
             change is intentional, refresh with `UPDATE_GOLDEN=1 cargo test \
             -p mlscale-bench --test golden_exhibits` and commit the diff"
        );
    }
}

#[test]
fn golden_exp_table1() {
    check("exp-table1", env!("CARGO_BIN_EXE_exp-table1"), &["table1"]);
}

#[test]
fn golden_exp_fig1() {
    check("exp-fig1", env!("CARGO_BIN_EXE_exp-fig1"), &["fig1"]);
}

#[test]
fn golden_exp_fig2() {
    check("exp-fig2", env!("CARGO_BIN_EXE_exp-fig2"), &["fig2"]);
}

#[test]
fn golden_exp_fig3() {
    check("exp-fig3", env!("CARGO_BIN_EXE_exp-fig3"), &["fig3"]);
}

#[test]
fn golden_exp_fig4() {
    check("exp-fig4", env!("CARGO_BIN_EXE_exp-fig4"), &["fig4-small"]);
}

#[test]
fn golden_exp_ablations() {
    check(
        "exp-ablations",
        env!("CARGO_BIN_EXE_exp-ablations"),
        &[
            "ablation-comm",
            "ablation-weak-comm",
            "ablation-batch",
            "ablation-precision",
            "ablation-partition",
            "ablation-amdahl",
        ],
    );
}

#[test]
fn golden_exp_extensions() {
    check(
        "exp-extensions",
        env!("CARGO_BIN_EXE_exp-extensions"),
        &[
            "ext-async-gd",
            "ext-inference-costs",
            "ext-zoo",
            "ext-provisioning",
            "ext-hierarchical-comm",
            "ext-convergence",
        ],
    );
}

#[test]
fn golden_ext_stragglers() {
    check(
        "ext-stragglers",
        env!("CARGO_BIN_EXE_ext-stragglers"),
        &["ext-stragglers"],
    );
}
