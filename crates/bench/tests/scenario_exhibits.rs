//! Cross-validation of the declarative scenario layer against the golden
//! exhibit fixtures: every exhibit-kind scenario checked in under
//! `scenarios/` must drive the sweep engine to output that is
//! **byte-identical** to the corresponding `exp-*`/`ext-*` binary's
//! fixture in `crates/bench/tests/golden/` — the scenario file is then a
//! faithful, data-only re-expression of the exhibit, not a lookalike.
//!
//! Also a repo-level guard: every file in `scenarios/` must parse,
//! validate and expand, so a broken checked-in scenario fails tier-1
//! rather than only the CI sweep-smoke job.

use mlscale_scenario::{run, ScenarioSpec, WorkloadSpec};
use std::path::{Path, PathBuf};

/// The workspace root (two up from `crates/bench`).
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf()
}

fn scenario_files() -> Vec<PathBuf> {
    let dir = workspace_root().join("scenarios");
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", dir.display()))
        .map(|entry| entry.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "no scenario files checked in");
    files
}

fn load(path: &Path) -> ScenarioSpec {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    ScenarioSpec::from_json(&text)
        .unwrap_or_else(|e| panic!("{} does not validate: {e}", path.display()))
}

#[test]
fn every_checked_in_scenario_validates_and_expands() {
    for path in scenario_files() {
        let spec = load(&path);
        let points = spec.expand().unwrap_or_else(|e| {
            panic!("{} does not expand: {e}", path.display());
        });
        assert!(!points.is_empty(), "{}: empty grid", path.display());
        // The file is named after the scenario, so sweep outputs are
        // discoverable from the file name alone.
        assert_eq!(
            path.file_stem().and_then(|s| s.to_str()),
            Some(spec.name.as_str()),
            "{}: file name and scenario name disagree",
            path.display()
        );
    }
}

#[test]
fn at_least_four_exhibits_are_reexpressed_as_scenarios() {
    let exhibit_ids: Vec<String> = scenario_files()
        .iter()
        .filter_map(|path| match load(path).workload {
            WorkloadSpec::Exhibit(ex) => Some(ex.id),
            _ => None,
        })
        .collect();
    assert!(
        exhibit_ids.len() >= 4,
        "expected at least 4 exhibit scenarios, found {exhibit_ids:?}"
    );
    for required in ["fig1", "fig2", "ext-hierarchical-comm", "ext-stragglers"] {
        assert!(
            exhibit_ids.iter().any(|id| id == required),
            "exhibit {required} is not re-expressed as a scenario (found {exhibit_ids:?})"
        );
    }
}

#[test]
fn exhibit_scenarios_reproduce_golden_fixtures_byte_identically() {
    let golden_dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    let mut checked = 0usize;
    for path in scenario_files() {
        let spec = load(&path);
        let WorkloadSpec::Exhibit(_) = &spec.workload else {
            continue;
        };
        let outcome = run(&spec).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert_eq!(
            outcome.points.len(),
            1,
            "{}: one exhibit result",
            path.display()
        );
        let produced = serde_json::to_string_pretty(&outcome.points[0]).expect("serialises");
        let fixture_path = golden_dir.join(format!("{}.json", outcome.points[0].id));
        let fixture = std::fs::read_to_string(&fixture_path).unwrap_or_else(|e| {
            panic!(
                "{}: exhibit scenario has no golden fixture {} ({e})",
                path.display(),
                fixture_path.display()
            )
        });
        assert!(
            produced == fixture,
            "{}: scenario-driven output is not byte-identical to {}",
            path.display(),
            fixture_path.display()
        );
        checked += 1;
    }
    assert!(
        checked >= 4,
        "only {checked} exhibit scenarios cross-validated"
    );
}
