//! Criterion benchmarks, one group per paper exhibit: times the code path
//! that regenerates each table/figure so regressions in the reproduction
//! pipeline are visible. Sample counts are kept small — these paths run
//! full experiment pipelines, not micro-operations.

use criterion::{criterion_group, criterion_main, Criterion};
use mlscale_core::models::gd::GradientDescentModel;
use mlscale_core::models::graphinf::max_edges_monte_carlo;
use mlscale_core::units::FlopsRate;
use mlscale_graph::generators::{dns_like, DnsGraphSpec};
use mlscale_graph::partition::{Partition, PartitionStats};
use mlscale_sim::overhead::OverheadModel;
use mlscale_workloads::bp::BpWorkload;
use mlscale_workloads::experiments::figures::{fig2_model, fig3_model};
use mlscale_workloads::gd::GdWorkload;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1");
    g.bench_function("mnist_fc_cost", |b| {
        b.iter(|| {
            let net = mlscale_nn::zoo::mnist_fc();
            black_box((net.params(), net.forward_madds()))
        })
    });
    g.bench_function("inception_v3_cost", |b| {
        b.iter(|| {
            let net = mlscale_nn::zoo::inception_v3();
            black_box((net.params(), net.forward_madds()))
        })
    });
    g.finish();
}

fn bench_fig1(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1");
    g.bench_function("example_speedup_curve", |b| {
        b.iter(|| black_box(mlscale_workloads::experiments::fig1()))
    });
    g.finish();
}

fn bench_fig2(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2");
    let model: GradientDescentModel = fig2_model();
    g.bench_function("model_curve_1_to_16", |b| {
        b.iter(|| black_box(model.strong_curve(1..=16)))
    });
    let workload = GdWorkload {
        model,
        overhead: OverheadModel::ConstantPlusJitter {
            seconds: 0.3,
            jitter_mean: 0.3,
        },
        iterations: 5,
        seed: 2017,
        ..GdWorkload::ideal(model)
    };
    g.bench_function("simulated_iteration_n9", |b| {
        b.iter(|| black_box(workload.simulate_strong(9)))
    });
    g.finish();
}

fn bench_fig3(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3");
    let model = fig3_model();
    g.bench_function("weak_model_curve_to_200", |b| {
        b.iter(|| black_box(model.weak_curve(1..=200)))
    });
    let workload = GdWorkload::ideal(model);
    g.bench_function("simulated_weak_n100", |b| {
        b.iter(|| black_box(workload.simulate_weak_per_instance(100)))
    });
    g.finish();
}

fn bench_fig4(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4");
    g.sample_size(10);
    let mut rng = StdRng::seed_from_u64(7);
    let spec = DnsGraphSpec {
        vertices: 16_259,
        edges: 99_854,
        max_degree: 1_750,
    };
    let graph = dns_like(spec, &mut rng);
    let degrees = graph.degree_sequence();
    g.bench_function("graph_generation_16k", |b| {
        b.iter(|| {
            let mut r = StdRng::seed_from_u64(7);
            black_box(dns_like(spec, &mut r))
        })
    });
    g.bench_function("monte_carlo_estimator_n16", |b| {
        b.iter(|| {
            let mut r = StdRng::seed_from_u64(5);
            black_box(max_edges_monte_carlo(&degrees, 16, 3, &mut r))
        })
    });
    g.bench_function("exact_partition_stats_n16", |b| {
        b.iter(|| {
            let mut r = StdRng::seed_from_u64(5);
            let p = Partition::random(graph.vertices(), 16, &mut r);
            black_box(PartitionStats::compute(&graph, &p))
        })
    });
    let workload = BpWorkload::shared_memory(&graph, FlopsRate::giga(7.6));
    g.bench_function("bp_simulated_point_n16", |b| {
        b.iter(|| black_box(workload.simulate(16)))
    });
    g.finish();
}

criterion_group!(
    exhibits,
    bench_table1,
    bench_fig1,
    bench_fig2,
    bench_fig3,
    bench_fig4
);
criterion_main!(exhibits);
