//! Micro-benchmarks of the substrates the exhibit pipelines are built
//! from: the real BP engine, the mini-NN trainer, the simulator's
//! collectives, the alias sampler and the CSR builders.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mlscale_core::hardware::{ClusterSpec, LinkSpec, NodeSpec, RackSpec};
use mlscale_core::units::{BitsPerSec, FlopsRate, Seconds};
use mlscale_graph::generators::{gnm, grid2d};
use mlscale_graph::mrf::{BeliefPropagation, PairwiseMrf, PairwisePotential};
use mlscale_graph::sampling::AliasTable;
use mlscale_nn::tensor::Matrix;
use mlscale_nn::train::{synthetic_blobs, MlpTrainer};
use mlscale_sim::cluster::SimCluster;
use mlscale_sim::collectives::{
    broadcast, halving_doubling_all_reduce, hierarchical_all_reduce, reduce, ring_all_reduce,
    BroadcastKind, ReduceKind,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_bp_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("bp_engine");
    let graph = grid2d(60, 60);
    let edges = graph.edges();
    let mrf = PairwiseMrf::uniform(
        graph,
        2,
        PairwisePotential::Potts {
            same: 1.5,
            diff: 0.7,
        },
    );
    g.throughput(Throughput::Elements(edges));
    g.bench_function("sync_iteration_grid_60x60_s2", |b| {
        let mut bp = BeliefPropagation::new(&mrf);
        b.iter(|| black_box(bp.iterate()))
    });
    let graph5 = grid2d(30, 30);
    let edges5 = graph5.edges();
    let mrf5 = PairwiseMrf::uniform(
        graph5,
        5,
        PairwisePotential::Potts {
            same: 1.5,
            diff: 0.7,
        },
    );
    g.throughput(Throughput::Elements(edges5));
    g.bench_function("sync_iteration_grid_30x30_s5", |b| {
        let mut bp = BeliefPropagation::new(&mrf5);
        b.iter(|| black_box(bp.iterate()))
    });
    g.finish();
}

fn bench_trainer(c: &mut Criterion) {
    let mut g = c.benchmark_group("mini_nn");
    let mut rng = StdRng::seed_from_u64(3);
    let (x, y) = synthetic_blobs(64, 32, 4, &mut rng);
    let trainer = MlpTrainer::new(&[32, 64, 4], &mut rng);
    g.bench_function("gradient_batch64", |b| {
        b.iter(|| black_box(trainer.gradients(&x, &y)))
    });
    g.bench_function("data_parallel_step_4_shards", |b| {
        let mut t = trainer.clone();
        b.iter(|| black_box(t.train_step_data_parallel(&x, &y, 4, 0.1)))
    });
    let a = Matrix::random(64, 128, 0.5, &mut rng);
    let bm = Matrix::random(128, 64, 0.5, &mut rng);
    g.bench_function("gemm_64x128x64", |b| b.iter(|| black_box(a.matmul(&bm))));
    g.finish();
}

fn bench_collectives(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_collectives");
    let spec = ClusterSpec::new(
        NodeSpec::new(FlopsRate::giga(1.0), 1.0),
        LinkSpec::bandwidth_only(BitsPerSec::giga(1.0)),
    );
    for n in [16usize, 64] {
        g.bench_function(format!("tree_broadcast_n{n}"), |b| {
            b.iter(|| {
                let mut cluster = SimCluster::new(spec, n);
                black_box(broadcast(
                    &mut cluster,
                    BroadcastKind::Tree,
                    1e9,
                    Seconds::zero(),
                ))
            })
        });
        g.bench_function(format!("two_wave_reduce_n{n}"), |b| {
            let ready = vec![Seconds::zero(); n];
            b.iter(|| {
                let mut cluster = SimCluster::new(spec, n);
                black_box(reduce(&mut cluster, ReduceKind::TwoWave, 1e9, &ready))
            })
        });
        g.bench_function(format!("ring_all_reduce_n{n}"), |b| {
            let ready = vec![Seconds::zero(); n];
            b.iter(|| {
                let mut cluster = SimCluster::new(spec, n);
                black_box(ring_all_reduce(&mut cluster, 1e9, &ready))
            })
        });
        g.bench_function(format!("halving_doubling_n{n}"), |b| {
            let ready = vec![Seconds::zero(); n];
            b.iter(|| {
                let mut cluster = SimCluster::new(spec, n);
                black_box(halving_doubling_all_reduce(&mut cluster, 1e9, &ready))
            })
        });
    }
    let racked = ClusterSpec::new(
        NodeSpec::new(FlopsRate::giga(1.0), 1.0),
        LinkSpec::bandwidth_only(BitsPerSec::giga(10.0)),
    )
    .with_racks(RackSpec::new(
        16,
        LinkSpec::bandwidth_only(BitsPerSec::giga(1.0)),
    ));
    for n in [16usize, 64] {
        g.bench_function(format!("hierarchical_all_reduce_n{n}"), |b| {
            let ready = vec![Seconds::zero(); n];
            b.iter(|| {
                let mut cluster = SimCluster::new(racked, n);
                black_box(hierarchical_all_reduce(&mut cluster, 1e9, &ready))
            })
        });
    }
    g.finish();
}

fn bench_graph_infra(c: &mut Criterion) {
    let mut g = c.benchmark_group("graph_infra");
    let mut rng = StdRng::seed_from_u64(9);
    g.bench_function("gnm_10k_60k", |b| {
        b.iter(|| {
            let mut r = StdRng::seed_from_u64(9);
            black_box(gnm(10_000, 60_000, &mut r))
        })
    });
    let weights: Vec<f64> = (1..=100_000).map(|i| 1.0 / i as f64).collect();
    let table = AliasTable::new(&weights);
    g.throughput(Throughput::Elements(1));
    g.bench_function("alias_sample", |b| {
        b.iter(|| black_box(table.sample(&mut rng)))
    });
    g.finish();
}

fn bench_stragglers(c: &mut Criterion) {
    use mlscale_core::straggler::StragglerModel;
    use mlscale_sim::bsp::{
        simulate_with_stragglers, BspConfig, BspProgram, CommPhase, StragglerSim, SuperstepSpec,
    };
    use mlscale_sim::overhead::OverheadModel;
    let mut g = c.benchmark_group("stragglers");
    // The analytic order-statistic quadratures: the planner's inner loop.
    let lognormal = StragglerModel::LogNormalTail {
        mu: -1.5,
        sigma: 1.0,
    };
    g.throughput(Throughput::Elements(1));
    g.bench_function("expected_max_lognormal_n64", |b| {
        b.iter(|| black_box(lognormal.expected_max(black_box(64))))
    });
    let exp = StragglerModel::ExponentialTail { mean: 0.3 };
    let bases: Vec<f64> = (0..64)
        .map(|w| if w % 3 == 0 { 1.5 } else { 1.0 })
        .collect();
    g.bench_function("expected_barrier_hetero_drop2_n64", |b| {
        b.iter(|| black_box(exp.expected_barrier(black_box(&bases), 2)))
    });
    // The stochastic simulator twin: one 64-worker superstep per iter.
    let config = BspConfig {
        cluster: ClusterSpec::new(
            NodeSpec::new(FlopsRate::giga(50.0), 1.0),
            LinkSpec::bandwidth_only(BitsPerSec::giga(1.0)),
        ),
        overhead: OverheadModel::None,
        seed: 9,
    };
    let program = BspProgram {
        supersteps: vec![SuperstepSpec::even(64.0 * 50e9, 64, CommPhase::None)],
        iterations: 1,
    };
    let speeds = vec![1.0; 64];
    g.throughput(Throughput::Elements(64));
    g.bench_function("simulate_straggler_superstep_n64", |b| {
        b.iter(|| {
            black_box(simulate_with_stragglers(
                &program,
                &config,
                64,
                &speeds,
                &StragglerSim {
                    model: exp,
                    backup_k: 2,
                },
            ))
        })
    });
    g.finish();
}

fn bench_parallel_hot_paths(c: &mut Criterion) {
    use mlscale_core::planner::{Planner, Pricing};
    use mlscale_core::straggler::{StragglerGdModel, StragglerModel};
    use mlscale_core::SpeedupCurve;
    let mut g = c.benchmark_group("hot_paths");
    let lognormal = StragglerModel::LogNormalTail {
        mu: -1.5,
        sigma: 1.0,
    };
    // The shared-grid order-statistic table vs the per-n quadrature loop
    // it replaced: O(grid) vs O(grid·n_max) CDF evaluations.
    g.throughput(Throughput::Elements(64));
    g.bench_function("order_stats_shared_grid_n64", |b| {
        b.iter(|| black_box(lognormal.expected_order_stats(64, 0)))
    });
    g.bench_function("order_stats_per_n_n64", |b| {
        b.iter(|| {
            black_box(
                (1..=64usize)
                    .map(|n| lognormal.expected_order_stat(n, 0))
                    .collect::<Vec<f64>>(),
            )
        })
    });
    // Curve generation through the table + parallel map vs the per-n
    // singles path (the pre-rewrite implementation, still exposed).
    let twin = StragglerGdModel {
        straggler: lognormal,
        ..StragglerGdModel::deterministic(mlscale_workloads::experiments::figures::fig2_model())
    };
    g.bench_function("straggler_curve_shared_n64", |b| {
        b.iter(|| black_box(twin.strong_curve(1..=64)))
    });
    g.bench_function("straggler_curve_per_n_n64", |b| {
        b.iter(|| {
            black_box(SpeedupCurve::from_fn(1..=64, |n| {
                twin.expected_strong_iteration_time(n)
            }))
        })
    });
    // The planner's cached sweep answering all four verbs vs one sweep
    // per verb (what the query methods used to cost).
    let verbs = |p: &Planner| {
        black_box(p.fastest());
        black_box(p.cheapest());
        black_box(p.cheapest_within_deadline(Seconds::new(3.0e5)));
        black_box(p.fastest_within_budget(500.0));
    };
    g.bench_function("planner_cached_4_verbs_n64", |b| {
        b.iter(|| verbs(&twin.planner(1000.0, 64, Pricing::hourly(2.0))))
    });
    g.bench_function("planner_resweep_4_verbs_n64", |b| {
        b.iter(|| {
            // One full sweep per verb — the pre-cache cost profile.
            for _ in 0..4 {
                let p = Planner::new(
                    |n| twin.expected_strong_iteration_time(n) * 1000.0,
                    64,
                    Pricing::hourly(2.0),
                );
                black_box(p.fastest());
            }
        })
    });
    // Blocked/parallel gemm at a size past the parallel threshold.
    let mut rng = StdRng::seed_from_u64(41);
    let a = Matrix::random(256, 256, 0.5, &mut rng);
    let bm = Matrix::random(256, 256, 0.5, &mut rng);
    g.throughput(Throughput::Elements(256 * 256 * 256));
    g.bench_function("gemm_256x256x256", |b| b.iter(|| black_box(a.matmul(&bm))));
    g.bench_function("gemm_t_256x256x256", |b| {
        b.iter(|| black_box(a.t_matmul(&bm)))
    });
    g.finish();
}

criterion_group!(
    substrates,
    bench_bp_engine,
    bench_trainer,
    bench_collectives,
    bench_graph_infra,
    bench_stragglers,
    bench_parallel_hot_paths
);
criterion_main!(substrates);
