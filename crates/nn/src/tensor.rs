//! A minimal row-major `f32` matrix with the handful of operations the
//! runnable mini-NN trainer needs: gemm (plain, transposed-left and
//! transposed-right), elementwise maps and row/column reductions.
//!
//! This is deliberately simple, allocation-conscious code — the trainer
//! exists to prove the modelled gradient-descent schedule corresponds to a
//! real computation, not to compete with BLAS. The gemm kernels are
//! blocked by output row and fan contiguous row blocks out across threads
//! ([`mlscale_core::par`]) once the multiply-add volume is worth a spawn;
//! the transposed-left product packs `selfᵀ` first so every inner loop
//! streams contiguous memory. Each output element accumulates its
//! products in the same order on every path, so results are bit-identical
//! regardless of the thread count.

use mlscale_core::par;
use rand::Rng;

/// Multiply-add volume below which the gemm kernels stay serial — under
/// this, thread-spawn overhead dominates the product itself.
const GEMM_PAR_MIN_MADDS: usize = 1 << 16;

/// Fills `rows` output rows of width `cols`, fanning contiguous row
/// blocks out across threads when `madds` (the total multiply-add count)
/// is large enough. Each row is produced by `fill(i, row)` exactly as in
/// a serial loop, so the assembled matrix is bit-identical either way.
fn fill_rows(
    rows: usize,
    cols: usize,
    madds: usize,
    fill: impl Fn(usize, &mut [f32]) + Sync,
) -> Vec<f32> {
    let threads = par::thread_count();
    let mut data = vec![0.0f32; rows * cols];
    if threads <= 1 || rows < 2 || madds < GEMM_PAR_MIN_MADDS {
        for (i, row) in data.chunks_mut(cols).enumerate() {
            fill(i, row);
        }
        return data;
    }
    // Workers write disjoint row blocks of the one output allocation —
    // every element is written exactly once, no reassembly copy.
    let block = rows.div_ceil(threads);
    par::for_each_chunk_mut(&mut data, block * cols, |bi, chunk| {
        for (local, row) in chunk.chunks_mut(cols).enumerate() {
            fill(bi * block + local, row);
        }
    });
    data
}

/// Row-major matrix of `f32`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Zero-filled matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics when `data.len() != rows·cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must equal rows·cols");
        Self { rows, cols, data }
    }

    /// Matrix with entries drawn uniformly from `[-scale, scale]` —
    /// the usual small-random weight initialisation.
    pub fn random<R: Rng + ?Sized>(rows: usize, cols: usize, scale: f32, rng: &mut R) -> Self {
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-scale..=scale))
            .collect();
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Underlying row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable underlying data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// `self` in column-major order (`cols × rows`, each source column
    /// contiguous) — the packed operand of [`Self::t_matmul`].
    fn packed_transpose(&self) -> Vec<f32> {
        let mut packed = vec![0.0f32; self.rows * self.cols];
        for r in 0..self.rows {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            for (c, &v) in row.iter().enumerate() {
                packed[c * self.rows + r] = v;
            }
        }
        packed
    }

    /// `self · other` (ikj-ordered gemm, row-blocked and parallel).
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "inner dimensions must agree");
        let (inner, ocols) = (self.cols, other.cols);
        let data = fill_rows(self.rows, ocols, self.rows * inner * ocols, |i, out_row| {
            for k in 0..inner {
                let a = self.data[i * inner + k];
                if a == 0.0 {
                    continue;
                }
                let orow = &other.data[k * ocols..(k + 1) * ocols];
                for (o, &b) in out_row.iter_mut().zip(orow) {
                    *o += a * b;
                }
            }
        });
        Matrix::from_vec(self.rows, ocols, data)
    }

    /// `selfᵀ · other`, with `selfᵀ` packed contiguously first so the
    /// per-output-row loop streams both operands instead of striding down
    /// a column.
    pub fn t_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "row counts must agree for AᵀB");
        let packed = self.packed_transpose();
        let (inner, ocols) = (self.rows, other.cols);
        let data = fill_rows(self.cols, ocols, self.cols * inner * ocols, |i, out_row| {
            let acol = &packed[i * inner..(i + 1) * inner];
            for (r, &a) in acol.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let brow = &other.data[r * ocols..(r + 1) * ocols];
                for (o, &b) in out_row.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        });
        Matrix::from_vec(self.cols, ocols, data)
    }

    /// `self · otherᵀ` without materialising the transpose (both operands
    /// already stream row-contiguously; row-blocked and parallel).
    pub fn matmul_t(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "column counts must agree for ABᵀ");
        let inner = self.cols;
        let data = fill_rows(
            self.rows,
            other.rows,
            self.rows * inner * other.rows,
            |i, out_row| {
                let arow = &self.data[i * inner..(i + 1) * inner];
                for (j, o) in out_row.iter_mut().enumerate() {
                    let brow = &other.data[j * inner..(j + 1) * inner];
                    *o = arow.iter().zip(brow).map(|(&a, &b)| a * b).sum();
                }
            },
        );
        Matrix::from_vec(self.rows, other.rows, data)
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Elementwise product in place: `self[i] *= other[i]`.
    pub fn hadamard_inplace(&mut self, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a *= b;
        }
    }

    /// `self += alpha · other`.
    pub fn axpy(&mut self, alpha: f32, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Adds `row` to every row of `self` (bias broadcast).
    pub fn add_row_broadcast(&mut self, row: &[f32]) {
        assert_eq!(row.len(), self.cols);
        for r in 0..self.rows {
            let dst = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (d, &b) in dst.iter_mut().zip(row) {
                *d += b;
            }
        }
    }

    /// Column sums (used for bias gradients).
    pub fn col_sums(&self) -> Vec<f32> {
        let mut sums = vec![0.0f32; self.cols];
        for r in 0..self.rows {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            for (s, &v) in sums.iter_mut().zip(row) {
                *s += v;
            }
        }
        sums
    }

    /// Softmax applied per row, in place (numerically stabilised).
    pub fn softmax_rows_inplace(&mut self) {
        for r in 0..self.rows {
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            for v in row.iter_mut() {
                *v /= sum;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn a() -> Matrix {
        Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
    }

    fn b() -> Matrix {
        Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0])
    }

    #[test]
    fn matmul_hand_checked() {
        let c = a().matmul(&b());
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
        assert_eq!((c.rows(), c.cols()), (2, 2));
    }

    #[test]
    fn t_matmul_equals_explicit_transpose() {
        // aᵀ is 3x2; aᵀ·a is 3x3.
        let m = a();
        let explicit = {
            let mut t = Matrix::zeros(3, 2);
            for r in 0..2 {
                for c in 0..3 {
                    t.set(c, r, m.get(r, c));
                }
            }
            t.matmul(&m)
        };
        assert_eq!(m.t_matmul(&m), explicit);
    }

    #[test]
    fn matmul_t_equals_explicit_transpose() {
        let m = a(); // 2x3; m·mᵀ is 2x2.
        let expected = Matrix::from_vec(2, 2, vec![14.0, 32.0, 32.0, 77.0]);
        assert_eq!(m.matmul_t(&m), expected);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, -1.0, 0.0, 100.0]);
        m.softmax_rows_inplace();
        for r in 0..2 {
            let s: f32 = (0..3).map(|c| m.get(r, c)).sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
        // Large logit dominates without overflow.
        assert!(m.get(1, 2) > 0.99);
    }

    #[test]
    fn axpy_and_hadamard() {
        let mut m = a();
        m.axpy(2.0, &a());
        assert_eq!(m.get(0, 0), 3.0);
        let mut h = a();
        h.hadamard_inplace(&a());
        assert_eq!(h.get(1, 2), 36.0);
    }

    #[test]
    fn bias_broadcast_and_col_sums() {
        let mut m = Matrix::zeros(2, 3);
        m.add_row_broadcast(&[1.0, 2.0, 3.0]);
        assert_eq!(m.col_sums(), vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn random_within_scale() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = Matrix::random(10, 10, 0.5, &mut rng);
        assert!(m.data().iter().all(|&v| (-0.5..=0.5).contains(&v)));
    }

    #[test]
    fn gemm_bit_identical_across_thread_counts() {
        // Big enough to clear GEMM_PAR_MIN_MADDS, odd shapes so the row
        // blocks are uneven.
        let mut rng = StdRng::seed_from_u64(17);
        let a = Matrix::random(67, 45, 1.0, &mut rng);
        let b = Matrix::random(45, 53, 1.0, &mut rng);
        let c = Matrix::random(67, 53, 1.0, &mut rng);
        let serial = mlscale_core::par::with_thread_count(1, || {
            (a.matmul(&b), a.t_matmul(&c), c.matmul_t(&c))
        });
        for threads in [2usize, 7] {
            let par = mlscale_core::par::with_thread_count(threads, || {
                (a.matmul(&b), a.t_matmul(&c), c.matmul_t(&c))
            });
            // Matrix PartialEq is exact f32 equality — bit-identity for
            // non-NaN data.
            assert_eq!(serial.0, par.0, "matmul drifted at {threads} threads");
            assert_eq!(serial.1, par.1, "t_matmul drifted at {threads} threads");
            assert_eq!(serial.2, par.2, "matmul_t drifted at {threads} threads");
        }
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn mismatched_matmul_panics() {
        let _ = a().matmul(&a());
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn bad_from_vec_panics() {
        let _ = Matrix::from_vec(2, 2, vec![1.0]);
    }
}
