//! Tensor shapes and convolution output-size arithmetic.
//!
//! The paper computes the number of sliding windows of a convolutional
//! layer as `c = (l − k + b)/s + 1` where `l` is one side of the input,
//! `k` the kernel side, `b` the border (total padding) and `s` the stride,
//! with `/` integer division. [`conv_out`] implements exactly that formula;
//! [`Padding`] maps the usual `valid`/`same` conventions onto `b`.

use serde::{Deserialize, Serialize};

/// Shape of the data flowing between layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Shape {
    /// A flat feature vector of the given length.
    Flat(usize),
    /// An image tensor: height × width × channels.
    Image {
        /// Height in pixels.
        h: usize,
        /// Width in pixels.
        w: usize,
        /// Number of channels (the paper's input "depth" `d`).
        c: usize,
    },
}

impl Shape {
    /// Convenience constructor for image shapes.
    pub const fn image(h: usize, w: usize, c: usize) -> Self {
        Shape::Image { h, w, c }
    }

    /// Total number of elements.
    pub fn elements(&self) -> usize {
        match *self {
            Shape::Flat(n) => n,
            Shape::Image { h, w, c } => h * w * c,
        }
    }

    /// Flattened view of this shape.
    pub fn flattened(&self) -> Shape {
        Shape::Flat(self.elements())
    }

    /// The channel count for image shapes (`None` for flat ones).
    pub fn channels(&self) -> Option<usize> {
        match *self {
            Shape::Image { c, .. } => Some(c),
            Shape::Flat(_) => None,
        }
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Shape::Flat(n) => write!(f, "{n}"),
            Shape::Image { h, w, c } => write!(f, "{h}x{w}x{c}"),
        }
    }
}

/// Spatial padding convention of a convolution or pooling window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Padding {
    /// No padding: the window stays inside the input (`b = 0`).
    Valid,
    /// "Same" padding: `b = k − 1`, so a stride-1 window preserves the
    /// input size.
    Same,
}

impl Padding {
    /// Total border `b` added around an input for a window of side `k`.
    pub fn border(&self, k: usize) -> usize {
        match self {
            Padding::Valid => 0,
            Padding::Same => k - 1,
        }
    }
}

/// Output side length of a sliding window: the paper's
/// `c = (l − k + b)/s + 1` (integer division).
///
/// # Panics
/// Panics when the (padded) window does not fit the input or the stride is
/// zero — a mis-specified architecture should fail loudly.
pub fn conv_out(l: usize, k: usize, padding: Padding, s: usize) -> usize {
    assert!(s > 0, "stride must be positive");
    let b = padding.border(k);
    assert!(
        l + b >= k,
        "window k={k} with border {b} does not fit input side {l}"
    );
    (l - k + b) / s + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_stride1_shrinks_by_k_minus_1() {
        assert_eq!(conv_out(147, 3, Padding::Valid, 1), 145);
    }

    #[test]
    fn same_stride1_preserves_size() {
        for l in [7usize, 35, 147, 299] {
            for k in [1usize, 3, 5, 7] {
                assert_eq!(conv_out(l, k, Padding::Same, 1), l, "l={l}, k={k}");
            }
        }
    }

    #[test]
    fn inception_stem_sizes() {
        // The Inception v3 stem: 299 →(3x3/2 v) 149 →(3x3/1 v) 147.
        assert_eq!(conv_out(299, 3, Padding::Valid, 2), 149);
        assert_eq!(conv_out(149, 3, Padding::Valid, 1), 147);
        // maxpool 3x3/2 valid: 147 → 73.
        assert_eq!(conv_out(147, 3, Padding::Valid, 2), 73);
        // conv 3x3/1 v: 73 → 71; pool 3x3/2: 71 → 35.
        assert_eq!(conv_out(73, 3, Padding::Valid, 1), 71);
        assert_eq!(conv_out(71, 3, Padding::Valid, 2), 35);
    }

    #[test]
    fn same_stride2_halves_rounding_up() {
        assert_eq!(conv_out(35, 3, Padding::Same, 2), 18);
        assert_eq!(conv_out(36, 3, Padding::Same, 2), 18);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_window_panics() {
        let _ = conv_out(2, 5, Padding::Valid, 1);
    }

    #[test]
    #[should_panic(expected = "stride")]
    fn zero_stride_panics() {
        let _ = conv_out(10, 3, Padding::Valid, 0);
    }

    #[test]
    fn shape_elements() {
        assert_eq!(Shape::Flat(784).elements(), 784);
        assert_eq!(Shape::image(299, 299, 3).elements(), 299 * 299 * 3);
    }

    #[test]
    fn flatten_roundtrip() {
        let s = Shape::image(8, 8, 2048);
        assert_eq!(s.flattened(), Shape::Flat(8 * 8 * 2048));
        assert_eq!(s.channels(), Some(2048));
        assert_eq!(s.flattened().channels(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Shape::Flat(10).to_string(), "10");
        assert_eq!(Shape::image(35, 35, 288).to_string(), "35x35x288");
    }
}
