//! Primitive layer operations and their parameter / computation costs.
//!
//! Cost conventions (see the crate docs for the paper's mixed usage):
//!
//! * `forward_madds` counts **multiply-add pairs**: a dense layer with
//!   weight matrix `n×m` costs `n·m`; a convolutional layer costs
//!   `n_f·(k_h·k_w·d)·(c_h·c_w)` — the paper's `n·(k·k·d·c·c)`.
//! * `forward_flops = 2 · forward_madds` (multiply and add counted
//!   separately — the convention behind the paper's `2·n_i·m_i` per dense
//!   layer and the `6·W` training cost).
//! * Training (forward + error back-propagation + gradient computation)
//!   costs three passes: `train_madds = 3 · forward_madds`.

use crate::shape::{conv_out, Padding, Shape};
use serde::{Deserialize, Serialize};

/// Elementwise activation function kinds (cost: one op per element, no
/// parameters — negligible next to the matrix work, but tracked).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// Logistic sigmoid.
    Sigmoid,
    /// Rectified linear unit.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Softmax over the feature dimension.
    Softmax,
}

/// Pooling flavours.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PoolKind {
    /// Max pooling.
    Max,
    /// Average pooling.
    Avg,
}

/// A primitive network operation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Op {
    /// Fully-connected layer `in → out` with optional bias.
    Dense {
        /// Output width.
        out: usize,
        /// Whether a bias vector is used.
        bias: bool,
    },
    /// 2-D convolution with `out_channels` feature maps of size
    /// `kh × kw` over the input depth.
    Conv2d {
        /// Number of feature maps (`n` in the paper's formula).
        out_channels: usize,
        /// Kernel height.
        kh: usize,
        /// Kernel width.
        kw: usize,
        /// Stride (same in both dimensions).
        stride: usize,
        /// Padding convention.
        padding: Padding,
        /// Whether per-channel bias is used ("bias … is not commonly used
        /// for convolutional layers" — default false in the builders).
        bias: bool,
    },
    /// Spatial pooling window.
    Pool {
        /// Max or average.
        kind: PoolKind,
        /// Window side.
        k: usize,
        /// Stride.
        stride: usize,
        /// Padding convention.
        padding: Padding,
    },
    /// Global average pooling: collapses `h × w × c` to `1 × 1 × c`.
    GlobalAvgPool,
    /// Elementwise activation.
    Act(Activation),
    /// Flattens an image shape into a vector.
    Flatten,
    /// Dropout — no parameters, no inference cost (identity at cost level).
    Dropout,
}

impl Op {
    /// Output shape of the op applied to `input`.
    ///
    /// # Panics
    /// Panics when the op cannot accept the input shape (dense on image
    /// input must be explicitly flattened first; conv/pool need image
    /// input) — architecture bugs should fail loudly at build time.
    pub fn out_shape(&self, input: Shape) -> Shape {
        match *self {
            Op::Dense { out, .. } => match input {
                Shape::Flat(_) => Shape::Flat(out),
                Shape::Image { .. } => {
                    // lint: allow(panic-free-lib): shape contract — out_shape panics on malformed network descriptions at build time, before any evaluation
                    panic!("Dense requires a flat input; insert Op::Flatten before it")
                }
            },
            Op::Conv2d {
                out_channels,
                kh,
                kw,
                stride,
                padding,
                ..
            } => match input {
                Shape::Image { h, w, .. } => Shape::Image {
                    h: conv_out(h, kh, padding, stride),
                    w: conv_out(w, kw, padding, stride),
                    c: out_channels,
                },
                // lint: allow(panic-free-lib): shape contract — out_shape panics on malformed network descriptions at build time, before any evaluation
                Shape::Flat(_) => panic!("Conv2d requires an image input"),
            },
            Op::Pool {
                k, stride, padding, ..
            } => match input {
                Shape::Image { h, w, c } => Shape::Image {
                    h: conv_out(h, k, padding, stride),
                    w: conv_out(w, k, padding, stride),
                    c,
                },
                // lint: allow(panic-free-lib): shape contract — out_shape panics on malformed network descriptions at build time, before any evaluation
                Shape::Flat(_) => panic!("Pool requires an image input"),
            },
            Op::GlobalAvgPool => match input {
                Shape::Image { c, .. } => Shape::Image { h: 1, w: 1, c },
                // lint: allow(panic-free-lib): shape contract — out_shape panics on malformed network descriptions at build time, before any evaluation
                Shape::Flat(_) => panic!("GlobalAvgPool requires an image input"),
            },
            Op::Act(_) | Op::Dropout => input,
            Op::Flatten => input.flattened(),
        }
    }

    /// Number of trainable parameters.
    pub fn params(&self, input: Shape) -> u64 {
        match *self {
            Op::Dense { out, bias } => {
                let inp = input.elements() as u64;
                inp * out as u64 + if bias { out as u64 } else { 0 }
            }
            Op::Conv2d {
                out_channels,
                kh,
                kw,
                bias,
                ..
            } => {
                // lint: allow(panic-free-lib): out_shape has already rejected flat inputs to Conv2d, so channels() is Some
                let d = input.channels().expect("Conv2d requires an image input") as u64;
                // Paper: weights of a convolutional layer = n·(k·k·d);
                // optional bias adds one constant per output element of a
                // feature map (the paper's `c·c` term, "not commonly used").
                let weights = out_channels as u64 * (kh as u64 * kw as u64 * d);
                if bias {
                    let out = self.out_shape(input);
                    let (ch, cw) = match out {
                        Shape::Image { h, w, .. } => (h as u64, w as u64),
                        // lint: allow(panic-free-lib): the Conv2d arm of out_shape always returns Shape::Image
                        Shape::Flat(_) => unreachable!(),
                    };
                    weights + ch * cw
                } else {
                    weights
                }
            }
            Op::Pool { .. } | Op::GlobalAvgPool | Op::Act(_) | Op::Flatten | Op::Dropout => 0,
        }
    }

    /// Forward multiply-add pairs for one example.
    pub fn forward_madds(&self, input: Shape) -> u64 {
        match *self {
            Op::Dense { out, .. } => input.elements() as u64 * out as u64,
            Op::Conv2d {
                out_channels,
                kh,
                kw,
                ..
            } => {
                // lint: allow(panic-free-lib): out_shape has already rejected flat inputs to Conv2d, so channels() is Some
                let d = input.channels().expect("Conv2d requires an image input") as u64;
                let out = self.out_shape(input);
                let (ch, cw) = match out {
                    Shape::Image { h, w, .. } => (h as u64, w as u64),
                    // lint: allow(panic-free-lib): the Conv2d/Pool arms of out_shape always return Shape::Image
                    Shape::Flat(_) => unreachable!(),
                };
                // Paper: n·(k·k·d·c·c), generalised to rectangular kernels.
                out_channels as u64 * kh as u64 * kw as u64 * d * ch * cw
            }
            // One op per output element for pooling/activation; counted as
            // madd-equivalents (they are additions/comparisons).
            Op::Pool { k, .. } => {
                let out = self.out_shape(input).elements() as u64;
                out * (k as u64 * k as u64)
            }
            Op::GlobalAvgPool => input.elements() as u64,
            Op::Act(_) => input.elements() as u64,
            Op::Flatten | Op::Dropout => 0,
        }
    }

    /// Forward floating-point operations (2 per multiply-add pair).
    pub fn forward_flops(&self, input: Shape) -> u64 {
        2 * self.forward_madds(input)
    }

    /// Training multiply-adds: forward + backward + gradient ≈ 3 passes.
    pub fn train_madds(&self, input: Shape) -> u64 {
        3 * self.forward_madds(input)
    }

    /// Short label used in cost tables.
    pub fn label(&self) -> String {
        match *self {
            Op::Dense { out, .. } => format!("dense({out})"),
            Op::Conv2d {
                out_channels,
                kh,
                kw,
                stride,
                padding,
                ..
            } => format!(
                "conv{kh}x{kw}/{stride}{} ({out_channels})",
                match padding {
                    Padding::Valid => "v",
                    Padding::Same => "s",
                }
            ),
            Op::Pool {
                kind, k, stride, ..
            } => format!(
                "{}pool{k}x{k}/{stride}",
                match kind {
                    PoolKind::Max => "max",
                    PoolKind::Avg => "avg",
                }
            ),
            Op::GlobalAvgPool => "gavgpool".to_string(),
            Op::Act(a) => format!("{a:?}").to_lowercase(),
            Op::Flatten => "flatten".to_string(),
            Op::Dropout => "dropout".to_string(),
        }
    }
}

/// Builder shorthands used heavily by the model zoo.
pub mod dsl {
    use super::*;

    /// Dense layer with bias.
    pub fn dense(out: usize) -> Op {
        Op::Dense { out, bias: true }
    }

    /// Dense layer without bias.
    pub fn dense_nobias(out: usize) -> Op {
        Op::Dense { out, bias: false }
    }

    /// Square convolution without bias (the common case: batch-norm nets).
    pub fn conv(out_channels: usize, k: usize, stride: usize, padding: Padding) -> Op {
        Op::Conv2d {
            out_channels,
            kh: k,
            kw: k,
            stride,
            padding,
            bias: false,
        }
    }

    /// Rectangular convolution (the factorised 1×7 / 7×1 Inception kernels).
    pub fn conv_rect(out_channels: usize, kh: usize, kw: usize, padding: Padding) -> Op {
        Op::Conv2d {
            out_channels,
            kh,
            kw,
            stride: 1,
            padding,
            bias: false,
        }
    }

    /// Max pooling.
    pub fn maxpool(k: usize, stride: usize, padding: Padding) -> Op {
        Op::Pool {
            kind: PoolKind::Max,
            k,
            stride,
            padding,
        }
    }

    /// Average pooling.
    pub fn avgpool(k: usize, stride: usize, padding: Padding) -> Op {
        Op::Pool {
            kind: PoolKind::Avg,
            k,
            stride,
            padding,
        }
    }

    /// Sigmoid activation.
    pub fn sigmoid() -> Op {
        Op::Act(Activation::Sigmoid)
    }

    /// ReLU activation.
    pub fn relu() -> Op {
        Op::Act(Activation::Relu)
    }

    /// Softmax activation.
    pub fn softmax() -> Op {
        Op::Act(Activation::Softmax)
    }
}

#[cfg(test)]
mod tests {
    use super::dsl::*;
    use super::*;

    #[test]
    fn dense_params_and_madds() {
        let op = dense(2500);
        let input = Shape::Flat(784);
        assert_eq!(op.params(input), 784 * 2500 + 2500);
        assert_eq!(op.forward_madds(input), 784 * 2500);
        assert_eq!(op.forward_flops(input), 2 * 784 * 2500);
        assert_eq!(op.train_madds(input), 3 * 784 * 2500);
        assert_eq!(op.out_shape(input), Shape::Flat(2500));
    }

    #[test]
    fn dense_nobias_params() {
        assert_eq!(dense_nobias(10).params(Shape::Flat(500)), 5000);
    }

    #[test]
    fn conv_cost_matches_paper_formula() {
        // Paper: madds = n·(k·k·d·c·c); weights = n·k·k·d.
        let op = conv(32, 3, 2, Padding::Valid);
        let input = Shape::image(299, 299, 3);
        let c = 149u64; // (299-3)/2+1
        assert_eq!(op.out_shape(input), Shape::image(149, 149, 32));
        assert_eq!(op.forward_madds(input), 32 * 3 * 3 * 3 * c * c);
        assert_eq!(op.params(input), 32 * 3 * 3 * 3);
    }

    #[test]
    fn conv_bias_adds_cxc_per_paper() {
        // Paper: "Bias (the number of weights is c·c)".
        let op = Op::Conv2d {
            out_channels: 8,
            kh: 3,
            kw: 3,
            stride: 1,
            padding: Padding::Valid,
            bias: true,
        };
        let input = Shape::image(10, 10, 4);
        let c = 8u64;
        assert_eq!(op.params(input), 8 * 3 * 3 * 4 + c * c);
    }

    #[test]
    fn rect_conv_factorisation_cheaper_than_square() {
        // 1x7 then 7x1 vs a full 7x7: factorisation should cost ~2/7.
        let input = Shape::image(17, 17, 192);
        let square = conv(192, 7, 1, Padding::Same).forward_madds(input);
        let f1 = conv_rect(192, 1, 7, Padding::Same);
        let mid = f1.out_shape(input);
        let factored =
            f1.forward_madds(input) + conv_rect(192, 7, 1, Padding::Same).forward_madds(mid);
        assert!(
            factored * 3 < square,
            "factored {factored} vs square {square}"
        );
    }

    #[test]
    fn pool_preserves_channels() {
        let op = maxpool(3, 2, Padding::Valid);
        assert_eq!(
            op.out_shape(Shape::image(147, 147, 64)),
            Shape::image(73, 73, 64)
        );
        assert_eq!(op.params(Shape::image(147, 147, 64)), 0);
    }

    #[test]
    fn global_avg_pool_collapses_spatial() {
        assert_eq!(
            Op::GlobalAvgPool.out_shape(Shape::image(8, 8, 2048)),
            Shape::image(1, 1, 2048)
        );
    }

    #[test]
    fn activation_identity_shape_zero_params() {
        let input = Shape::Flat(100);
        assert_eq!(sigmoid().out_shape(input), input);
        assert_eq!(sigmoid().params(input), 0);
        assert_eq!(sigmoid().forward_madds(input), 100);
    }

    #[test]
    fn flatten_and_dropout_free() {
        let input = Shape::image(1, 1, 2048);
        assert_eq!(Op::Flatten.out_shape(input), Shape::Flat(2048));
        assert_eq!(Op::Flatten.forward_madds(input), 0);
        assert_eq!(Op::Dropout.forward_madds(input), 0);
    }

    #[test]
    #[should_panic(expected = "flat input")]
    fn dense_on_image_panics() {
        let _ = dense(10).out_shape(Shape::image(2, 2, 3));
    }

    #[test]
    #[should_panic(expected = "image input")]
    fn conv_on_flat_panics() {
        let _ = conv(8, 3, 1, Padding::Valid).out_shape(Shape::Flat(100));
    }

    #[test]
    fn labels_render() {
        assert_eq!(dense(10).label(), "dense(10)");
        assert_eq!(conv(32, 3, 2, Padding::Valid).label(), "conv3x3/2v (32)");
        assert_eq!(maxpool(3, 2, Padding::Valid).label(), "maxpool3x3/2");
    }
}
