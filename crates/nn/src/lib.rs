//! # mlscale-nn — neural-network substrate for scalability modeling
//!
//! Everything the paper's deep-learning experiments need from a neural
//! network, built from scratch:
//!
//! * [`shape`] — tensor shapes and the paper's convolution output-size
//!   formula `c = (l − k + b)/s + 1`;
//! * [`ops`] — primitive layers with parameter counts and multiply-add
//!   costs (the paper's `2·n_i·m_i` dense and `n·(k·k·d·c·c)` conv
//!   formulas);
//! * [`network`] — composable cost graphs with Inception-style parallel
//!   branches and per-layer cost tables;
//! * [`zoo`] — the Table I configurations ([`zoo::mnist_fc`],
//!   [`zoo::inception_v3`]) plus classics;
//! * [`tensor`] / [`train`] — a real, runnable mini-MLP trainer proving the
//!   modelled data-parallel gradient-descent schedule corresponds to an
//!   actual computation (sharded gradients == single-node batch update).
//!
//! ```
//! use mlscale_nn::zoo;
//! let net = zoo::mnist_fc();
//! assert_eq!(net.params(), 11_972_510);          // Table I: 12·10⁶
//! let flops = net.forward_flops() as f64;
//! assert!((flops - 24e6).abs() / 24e6 < 0.01);   // Table I: 24·10⁶
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod network;
pub mod ops;
pub mod shape;
pub mod tensor;
pub mod train;
pub mod zoo;

pub use network::{Network, Node};
pub use ops::{Activation, Op, PoolKind};
pub use shape::{Padding, Shape};
