//! Model zoo: the network configurations of the paper's Table I, plus a few
//! classics used by the examples.
//!
//! | Network (task) | Parameters | Computations (Table I) |
//! |---|---|---|
//! | Fully connected (MNIST) | `12·10⁶` | `24·10⁶` |
//! | Inception v3 (ImageNet) | `25·10⁶` | `5·10⁹` |
//!
//! Cost-convention note (see [`crate::ops`]): the paper's `24·10⁶` for the
//! fully-connected network counts multiply and add separately
//! (`2·W` = [`Network::forward_flops`]) while its `5·10⁹` for Inception v3
//! counts multiply-add pairs (`n·k²·d·c²` = [`Network::forward_madds`]).
//! Both accessors are provided; the Table I reproduction uses each row's
//! own convention, as the paper does.

use crate::network::{branches, chain, residual, seq, Network, Node};
use crate::ops::dsl::*;
use crate::ops::Op;
use crate::shape::{Padding, Shape};

/// The paper's fully-connected MNIST network: "five hidden layers (2500,
/// 2000, 1500, 1000, and 500 neurons), 784 inputs, and 10 outputs" — one of
/// the most accurate MNIST architectures (Cireșan et al. 2010).
///
/// `≈ 11.97·10⁶` weights (the paper's `12·10⁶`), `≈ 24·10⁶` forward flops.
pub fn mnist_fc() -> Network {
    Network::new(
        "mnist-fc",
        Shape::Flat(784),
        chain([
            dense(2500),
            sigmoid(),
            dense(2000),
            sigmoid(),
            dense(1500),
            sigmoid(),
            dense(1000),
            sigmoid(),
            dense(500),
            sigmoid(),
            dense(10),
            softmax(),
        ]),
    )
}

/// A multi-layer perceptron with sigmoid hidden activations and a softmax
/// output — the general shape behind [`mnist_fc`].
pub fn mlp(input: usize, hidden: &[usize], output: usize) -> Network {
    let mut ops = Vec::with_capacity(hidden.len() * 2 + 2);
    for &h in hidden {
        ops.push(dense(h));
        ops.push(sigmoid());
    }
    ops.push(dense(output));
    ops.push(softmax());
    Network::new(
        format!("mlp-{input}-{output}"),
        Shape::Flat(input),
        chain(ops),
    )
}

/// Logistic regression as a degenerate one-layer network — the
/// click-through-rate-prediction workload of the paper's introduction.
pub fn logistic_regression(features: usize) -> Network {
    Network::new(
        format!("logreg-{features}"),
        Shape::Flat(features),
        chain([dense(1), sigmoid()]),
    )
}

/// LeNet-5-style convolutional network for 28×28 grayscale input; a small
/// convolutional example for tests and demos.
pub fn lenet5() -> Network {
    Network::new(
        "lenet5",
        Shape::image(28, 28, 1),
        seq([
            chain([
                conv(6, 5, 1, Padding::Same),
                relu(),
                maxpool(2, 2, Padding::Valid),
            ]),
            chain([
                conv(16, 5, 1, Padding::Valid),
                relu(),
                maxpool(2, 2, Padding::Valid),
            ]),
            chain([
                Op::Flatten,
                dense(120),
                relu(),
                dense(84),
                relu(),
                dense(10),
                softmax(),
            ]),
        ]),
    )
}

/// AlexNet (Krizhevsky et al. 2012) for 227×227×3 input — the network
/// that started the deep-learning-on-GPUs era; ≈61M parameters, most of
/// them in the fully-connected head, ≈0.7G forward multiply-adds. A
/// useful contrast to Inception v3 in the scalability model: far more
/// parameters (communication) per unit of computation.
pub fn alexnet() -> Network {
    Network::new(
        "alexnet",
        Shape::image(227, 227, 3),
        seq([
            chain([
                Op::Conv2d {
                    out_channels: 96,
                    kh: 11,
                    kw: 11,
                    stride: 4,
                    padding: Padding::Valid,
                    bias: false,
                },
                relu(),
                maxpool(3, 2, Padding::Valid),
            ]),
            chain([
                conv(256, 5, 1, Padding::Same),
                relu(),
                maxpool(3, 2, Padding::Valid),
            ]),
            chain([conv(384, 3, 1, Padding::Same), relu()]),
            chain([conv(384, 3, 1, Padding::Same), relu()]),
            chain([
                conv(256, 3, 1, Padding::Same),
                relu(),
                maxpool(3, 2, Padding::Valid),
            ]),
            chain([
                Op::Flatten,
                dense(4096),
                relu(),
                Op::Dropout,
                dense(4096),
                relu(),
                Op::Dropout,
                dense(1000),
                softmax(),
            ]),
        ]),
    )
}

/// VGG-16 (Simonyan & Zisserman 2014) for 224×224×3 input: ≈138M
/// parameters and ≈15.5G forward multiply-adds — the heavyweight end of
/// the era's architectures, stressing both axes of the scalability model.
pub fn vgg16() -> Network {
    let block = |channels: usize, convs: usize| {
        let mut ops = Vec::with_capacity(convs * 2 + 1);
        for _ in 0..convs {
            ops.push(conv(channels, 3, 1, Padding::Same));
            ops.push(relu());
        }
        ops.push(maxpool(2, 2, Padding::Valid));
        chain(ops)
    };
    Network::new(
        "vgg16",
        Shape::image(224, 224, 3),
        seq([
            block(64, 2),
            block(128, 2),
            block(256, 3),
            block(512, 3),
            block(512, 3),
            chain([
                Op::Flatten,
                dense(4096),
                relu(),
                Op::Dropout,
                dense(4096),
                relu(),
                Op::Dropout,
                dense(1000),
                softmax(),
            ]),
        ]),
    )
}

/// A ResNet bottleneck block: 1×1 reduce → 3×3 → 1×1 expand, summed with
/// the shortcut. When `stride > 1` or the channel count changes, the
/// shortcut is a projection (1×1 conv); otherwise it is the identity.
fn bottleneck(in_channels: usize, mid: usize, out: usize, stride: usize) -> Node {
    let main = chain([
        conv(mid, 1, 1, Padding::Same),
        relu(),
        conv(mid, 3, stride, Padding::Same),
        relu(),
        conv(out, 1, 1, Padding::Same),
    ]);
    let shortcut = if stride != 1 || in_channels != out {
        chain([conv(out, 1, stride, Padding::Same)])
    } else {
        seq([]) // identity
    };
    seq([residual([main, shortcut]), chain([relu()])])
}

/// A ResNet stage: one (possibly striding/projecting) bottleneck followed
/// by `blocks − 1` identity bottlenecks.
fn resnet_stage(in_channels: usize, mid: usize, out: usize, blocks: usize, stride: usize) -> Node {
    let mut nodes = Vec::with_capacity(blocks);
    nodes.push(bottleneck(in_channels, mid, out, stride));
    for _ in 1..blocks {
        nodes.push(bottleneck(out, mid, out, 1));
    }
    seq(nodes)
}

/// ResNet-50 (He et al. 2015) for 224×224×3 input: ≈25.5M parameters and
/// ≈3.9G forward multiply-adds — the residual-connection era, closing out
/// the zoo's architecture timeline.
pub fn resnet50() -> Network {
    Network::new(
        "resnet50",
        Shape::image(224, 224, 3),
        seq([
            // Stem: 7×7/2 conv, 3×3/2 pool → 56×56×64.
            chain([
                Op::Conv2d {
                    out_channels: 64,
                    kh: 7,
                    kw: 7,
                    stride: 2,
                    padding: Padding::Same,
                    bias: false,
                },
                relu(),
                maxpool(3, 2, Padding::Same),
            ]),
            resnet_stage(64, 64, 256, 3, 1),
            resnet_stage(256, 128, 512, 4, 2),
            resnet_stage(512, 256, 1024, 6, 2),
            resnet_stage(1024, 512, 2048, 3, 2),
            chain([Op::GlobalAvgPool, Op::Flatten, dense(1000), softmax()]),
        ]),
    )
}

/// One Inception-A module (35×35 grid): 1×1, 5×5, double-3×3 and pooled
/// branches concatenated to `64+64+96+pool_proj` channels.
fn inception_a(pool_proj: usize) -> Node {
    branches([
        chain([conv(64, 1, 1, Padding::Same)]),
        chain([conv(48, 1, 1, Padding::Same), conv(64, 5, 1, Padding::Same)]),
        chain([
            conv(64, 1, 1, Padding::Same),
            conv(96, 3, 1, Padding::Same),
            conv(96, 3, 1, Padding::Same),
        ]),
        chain([
            avgpool(3, 1, Padding::Same),
            conv(pool_proj, 1, 1, Padding::Same),
        ]),
    ])
}

/// Grid reduction 35×35 → 17×17 (the paper's "efficient grid size
/// reduction" module).
fn reduction_a() -> Node {
    branches([
        chain([conv(384, 3, 2, Padding::Valid)]),
        chain([
            conv(64, 1, 1, Padding::Same),
            conv(96, 3, 1, Padding::Same),
            conv(96, 3, 2, Padding::Valid),
        ]),
        chain([maxpool(3, 2, Padding::Valid)]),
    ])
}

/// One Inception-B module (17×17 grid) with factorised 1×7/7×1 kernels of
/// width `c7`.
fn inception_b(c7: usize) -> Node {
    branches([
        chain([conv(192, 1, 1, Padding::Same)]),
        chain([
            conv(c7, 1, 1, Padding::Same),
            conv_rect(c7, 1, 7, Padding::Same),
            conv_rect(192, 7, 1, Padding::Same),
        ]),
        chain([
            conv(c7, 1, 1, Padding::Same),
            conv_rect(c7, 7, 1, Padding::Same),
            conv_rect(c7, 1, 7, Padding::Same),
            conv_rect(c7, 7, 1, Padding::Same),
            conv_rect(192, 1, 7, Padding::Same),
        ]),
        chain([avgpool(3, 1, Padding::Same), conv(192, 1, 1, Padding::Same)]),
    ])
}

/// Grid reduction 17×17 → 8×8.
fn reduction_b() -> Node {
    branches([
        chain([
            conv(192, 1, 1, Padding::Same),
            conv(320, 3, 2, Padding::Valid),
        ]),
        chain([
            conv(192, 1, 1, Padding::Same),
            conv_rect(192, 1, 7, Padding::Same),
            conv_rect(192, 7, 1, Padding::Same),
            conv(192, 3, 2, Padding::Valid),
        ]),
        chain([maxpool(3, 2, Padding::Valid)]),
    ])
}

/// One Inception-C module (8×8 grid) with the expanded-filter-bank split
/// 1×3 / 3×1 branches.
fn inception_c() -> Node {
    branches([
        chain([conv(320, 1, 1, Padding::Same)]),
        seq([
            chain([conv(384, 1, 1, Padding::Same)]),
            branches([
                chain([conv_rect(384, 1, 3, Padding::Same)]),
                chain([conv_rect(384, 3, 1, Padding::Same)]),
            ]),
        ]),
        seq([
            chain([
                conv(448, 1, 1, Padding::Same),
                conv(384, 3, 1, Padding::Same),
            ]),
            branches([
                chain([conv_rect(384, 1, 3, Padding::Same)]),
                chain([conv_rect(384, 3, 1, Padding::Same)]),
            ]),
        ]),
        chain([avgpool(3, 1, Padding::Same), conv(192, 1, 1, Padding::Same)]),
    ])
}

/// Inception v3 (Szegedy et al., "Rethinking the Inception Architecture for
/// Computer Vision") for 299×299×3 ImageNet input, without the auxiliary
/// classifier: stem, 3× Inception-A, reduction, 4× Inception-B, reduction,
/// 2× Inception-C, global pooling and a 1000-way classifier.
///
/// Our exact counts — `≈ 23.6·10⁶` conv+fc weights and `≈ 5.7·10⁹` forward
/// multiply-adds — bracket the paper's rounded Table I values (`25·10⁶`
/// parameters, `5·10⁹` computations; the parameter figure in the paper
/// follows Chen et al.'s count, which includes auxiliary-head and
/// batch-norm parameters).
pub fn inception_v3() -> Network {
    Network::new(
        "inception-v3",
        Shape::image(299, 299, 3),
        seq([
            // Stem: 299×299×3 → 35×35×192.
            chain([
                conv(32, 3, 2, Padding::Valid),
                conv(32, 3, 1, Padding::Valid),
                conv(64, 3, 1, Padding::Same),
                maxpool(3, 2, Padding::Valid),
                conv(80, 1, 1, Padding::Valid),
                conv(192, 3, 1, Padding::Valid),
                maxpool(3, 2, Padding::Valid),
            ]),
            // 3 × Inception-A: 35×35×192 → 256 → 288 → 288.
            inception_a(32),
            inception_a(64),
            inception_a(64),
            // 35×35×288 → 17×17×768.
            reduction_a(),
            // 4 × Inception-B at 17×17×768.
            inception_b(128),
            inception_b(160),
            inception_b(160),
            inception_b(192),
            // 17×17×768 → 8×8×1280.
            reduction_b(),
            // 2 × Inception-C: 8×8×1280 → 2048 → 2048.
            inception_c(),
            inception_c(),
            // Classifier head.
            chain([
                Op::GlobalAvgPool,
                Op::Dropout,
                Op::Flatten,
                dense(1000),
                softmax(),
            ]),
        ]),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mnist_fc_matches_table_i_parameters() {
        // Paper Table I: 12·10⁶ parameters. Exact weight count
        // (with biases): 784·2500 + 2500·2000 + 2000·1500 + 1500·1000 +
        // 1000·500 + 500·10 + biases = 11,972,510.
        let net = mnist_fc();
        assert_eq!(net.params(), 11_972_510);
        assert!((net.params() as f64 - 12e6).abs() / 12e6 < 0.01);
    }

    #[test]
    fn mnist_fc_matches_table_i_computations() {
        // Paper Table I: 24·10⁶ computations for the forward pass
        // (2 ops per weight: multiply and add counted separately).
        let net = mnist_fc();
        let flops = net.forward_flops() as f64;
        assert!((flops - 24e6).abs() / 24e6 < 0.01, "got {flops:e}");
    }

    #[test]
    fn mnist_fc_training_cost_is_6w() {
        // "The computation time complexity … for fully-connected layers can
        // be estimated as 6·W."
        let net = mnist_fc();
        let w = net.params() as f64;
        let train = net.train_flops() as f64;
        assert!(
            (train - 6.0 * w).abs() / (6.0 * w) < 0.01,
            "train {train:e} vs 6W {:e}",
            6.0 * w
        );
    }

    #[test]
    fn mnist_fc_output_shape() {
        assert_eq!(mnist_fc().output(), Shape::Flat(10));
    }

    #[test]
    fn inception_v3_shapes_through_the_network() {
        let net = inception_v3();
        assert_eq!(net.output(), Shape::Flat(1000));
    }

    #[test]
    fn inception_v3_parameters_near_table_i() {
        // Paper Table I: 25·10⁶ parameters (Chen et al.'s count). Ours
        // counts conv + fc weights of the main tower: ≈ 23–24·10⁶.
        let net = inception_v3();
        let p = net.params() as f64;
        assert!(
            (22e6..26e6).contains(&p),
            "Inception v3 parameter count {p:e} out of Table I range"
        );
    }

    #[test]
    fn inception_v3_computations_near_table_i() {
        // Paper Table I: 5·10⁹ multiply-adds for the forward pass.
        let net = inception_v3();
        let m = net.forward_madds() as f64;
        assert!(
            (4.5e9..6.5e9).contains(&m),
            "Inception v3 forward madds {m:e} out of Table I range"
        );
    }

    #[test]
    fn inception_module_channel_arithmetic() {
        // A-modules: 64+64+96+proj.
        let a = inception_a(32);
        assert_eq!(
            a.out_shape(Shape::image(35, 35, 192)),
            Shape::image(35, 35, 256)
        );
        let a64 = inception_a(64);
        assert_eq!(
            a64.out_shape(Shape::image(35, 35, 256)),
            Shape::image(35, 35, 288)
        );
        // Reduction-A: 384 + 96 + 288.
        assert_eq!(
            reduction_a().out_shape(Shape::image(35, 35, 288)),
            Shape::image(17, 17, 768)
        );
        // B-modules keep 768.
        assert_eq!(
            inception_b(128).out_shape(Shape::image(17, 17, 768)),
            Shape::image(17, 17, 768)
        );
        // Reduction-B: 320 + 192 + 768 = 1280.
        assert_eq!(
            reduction_b().out_shape(Shape::image(17, 17, 768)),
            Shape::image(8, 8, 1280)
        );
        // C-modules: 320 + 768 + 768 + 192 = 2048.
        assert_eq!(
            inception_c().out_shape(Shape::image(8, 8, 1280)),
            Shape::image(8, 8, 2048)
        );
        assert_eq!(
            inception_c().out_shape(Shape::image(8, 8, 2048)),
            Shape::image(8, 8, 2048)
        );
    }

    #[test]
    fn lenet_is_valid_and_small() {
        let net = lenet5();
        assert_eq!(net.output(), Shape::Flat(10));
        assert!(net.params() < 100_000);
    }

    #[test]
    fn logistic_regression_params() {
        let net = logistic_regression(1000);
        assert_eq!(net.params(), 1001);
        assert_eq!(net.output(), Shape::Flat(1));
    }

    #[test]
    fn mlp_builder_matches_mnist_fc() {
        let generic = mlp(784, &[2500, 2000, 1500, 1000, 500], 10);
        assert_eq!(generic.params(), mnist_fc().params());
        assert_eq!(generic.forward_madds(), mnist_fc().forward_madds());
    }

    #[test]
    fn alexnet_parameter_count_in_range() {
        // Literature: ≈ 61M parameters (single-tower variant), with the
        // dense head dominating.
        let net = alexnet();
        assert_eq!(net.output(), Shape::Flat(1000));
        let p = net.params() as f64;
        assert!((55e6..68e6).contains(&p), "AlexNet params {p:e}");
        // Forward madds ≈ 0.7G.
        let m = net.forward_madds() as f64;
        assert!((0.5e9..1.2e9).contains(&m), "AlexNet madds {m:e}");
    }

    #[test]
    fn vgg16_parameter_count_in_range() {
        // Literature: ≈ 138M parameters, ≈ 15.5G forward madds.
        let net = vgg16();
        assert_eq!(net.output(), Shape::Flat(1000));
        let p = net.params() as f64;
        assert!((130e6..145e6).contains(&p), "VGG-16 params {p:e}");
        let m = net.forward_madds() as f64;
        assert!((14e9..17e9).contains(&m), "VGG-16 madds {m:e}");
    }

    #[test]
    fn resnet50_counts_in_range() {
        // Literature: ≈ 25.5M params, ≈ 3.9G forward madds (stride-on-3x3
        // variant; the original stride-on-1x1 variant is a few % higher).
        let net = resnet50();
        assert_eq!(net.output(), Shape::Flat(1000));
        let p = net.params() as f64;
        assert!((23e6..28e6).contains(&p), "ResNet-50 params {p:e}");
        let m = net.forward_madds() as f64;
        assert!((3.2e9..5.0e9).contains(&m), "ResNet-50 madds {m:e}");
    }

    #[test]
    fn residual_identity_shortcut_is_free() {
        use crate::network::residual;
        let input = Shape::image(8, 8, 32);
        let main = chain([conv(32, 3, 1, Padding::Same)]);
        let main_params = main.params(input);
        let block = residual([main, seq([])]);
        assert_eq!(block.out_shape(input), input);
        assert_eq!(block.params(input), main_params, "identity adds no weights");
        // The sum itself costs one add per output element.
        let standalone = chain([conv(32, 3, 1, Padding::Same)]).forward_madds(input);
        assert_eq!(
            block.forward_madds(input),
            standalone + input.elements() as u64
        );
    }

    #[test]
    #[should_panic(expected = "branch shapes must match")]
    fn residual_shape_mismatch_panics() {
        use crate::network::residual;
        let block = residual([
            chain([conv(16, 3, 1, Padding::Same)]),
            chain([conv(32, 3, 1, Padding::Same)]),
        ]);
        let _ = block.out_shape(Shape::image(8, 8, 8));
    }

    #[test]
    fn params_per_madd_orders_architectures() {
        // The communication/computation ratio W/C that drives the
        // scalability model: AlexNet ≫ VGG-16 > Inception v3.
        let ratio = |net: &Network| net.params() as f64 / net.forward_madds() as f64;
        let a = ratio(&alexnet());
        let v = ratio(&vgg16());
        let i = ratio(&inception_v3());
        assert!(a > v, "AlexNet is parameter-heavy: {a:.4} vs {v:.4}");
        assert!(v > i, "VGG still denser than Inception: {v:.4} vs {i:.4}");
    }

    #[test]
    fn cost_table_renders_for_inception() {
        let t = inception_v3().cost_table();
        assert!(t.contains("TOTAL"));
        assert!(t.contains("module"));
    }
}
