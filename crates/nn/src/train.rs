//! A runnable mini neural-network trainer: dense layers with sigmoid hidden
//! activations, a softmax cross-entropy head, batch gradient descent and a
//! data-parallel gradient helper.
//!
//! The scalability models in `mlscale-core` only need *cost counts*, but a
//! model of a computation is only credible if the computation exists. This
//! module implements the exact training loop the paper's Fig 2 experiment
//! models — forward pass, error back-propagation, gradient computation,
//! parameter update — so the tests can verify that (a) gradients are
//! correct (finite-difference check), (b) training reduces the loss, and
//! (c) data-parallel gradient averaging over `n` shards produces the same
//! update as single-node batch gradient descent, which is the premise of
//! the data-parallel speedup model.

use crate::tensor::Matrix;
use rand::Rng;

/// One dense layer with weights, bias, and sigmoid activation (except the
/// final layer, which feeds a softmax head).
#[derive(Debug, Clone)]
struct DenseLayer {
    w: Matrix,
    b: Vec<f32>,
}

/// A feed-forward network: sigmoid hidden layers and a softmax
/// cross-entropy output, trained with (mini-)batch gradient descent.
#[derive(Debug, Clone)]
pub struct MlpTrainer {
    layers: Vec<DenseLayer>,
    sizes: Vec<usize>,
}

/// Gradients for every layer, in layer order: `(dW, db)` pairs.
#[derive(Debug, Clone)]
pub struct Gradients {
    grads: Vec<(Matrix, Vec<f32>)>,
    /// Number of examples these gradients were accumulated over.
    pub examples: usize,
}

impl Gradients {
    /// Sums another gradient set into this one (gradient aggregation on the
    /// master node of the data-parallel scheme).
    pub fn accumulate(&mut self, other: &Gradients) {
        assert_eq!(self.grads.len(), other.grads.len(), "layer count mismatch");
        for ((dw, db), (ow, ob)) in self.grads.iter_mut().zip(&other.grads) {
            dw.axpy(1.0, ow);
            for (a, &b) in db.iter_mut().zip(ob) {
                *a += b;
            }
        }
        self.examples += other.examples;
    }

    /// Total number of parameter gradients (equals the model's `W`).
    pub fn param_count(&self) -> usize {
        self.grads
            .iter()
            .map(|(w, b)| w.rows() * w.cols() + b.len())
            .sum()
    }
}

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

impl MlpTrainer {
    /// Builds a trainer with the given layer sizes, e.g. `[784, 64, 10]`.
    ///
    /// # Panics
    /// Panics when fewer than two sizes are given.
    pub fn new<R: Rng + ?Sized>(sizes: &[usize], rng: &mut R) -> Self {
        assert!(sizes.len() >= 2, "need at least input and output sizes");
        let layers = sizes
            .windows(2)
            .map(|w| {
                let scale = (1.0 / w[0] as f32).sqrt();
                DenseLayer {
                    w: Matrix::random(w[0], w[1], scale, rng),
                    b: vec![0.0; w[1]],
                }
            })
            .collect();
        Self {
            layers,
            sizes: sizes.to_vec(),
        }
    }

    /// Layer sizes this trainer was built with.
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// Total number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.w.rows() * l.w.cols() + l.b.len())
            .sum()
    }

    /// Forward pass: returns per-layer activations, the last being softmax
    /// probabilities. `x` is `batch × input`.
    fn forward(&self, x: &Matrix) -> Vec<Matrix> {
        let mut acts = Vec::with_capacity(self.layers.len() + 1);
        acts.push(x.clone());
        for (i, layer) in self.layers.iter().enumerate() {
            // lint: allow(panic-free-lib): acts starts with the input activation, so last() is always Some
            let mut z = acts.last().unwrap().matmul(&layer.w);
            z.add_row_broadcast(&layer.b);
            if i + 1 == self.layers.len() {
                z.softmax_rows_inplace();
            } else {
                z.map_inplace(sigmoid);
            }
            acts.push(z);
        }
        acts
    }

    /// Predicted class probabilities for a batch.
    pub fn predict(&self, x: &Matrix) -> Matrix {
        self.forward(x)
            .pop()
            // lint: allow(panic-free-lib): forward returns layers + 1 activations, never an empty vec
            .expect("forward always returns activations")
    }

    /// Mean cross-entropy loss of predictions against one-hot `labels`.
    pub fn loss(&self, x: &Matrix, labels: &Matrix) -> f32 {
        let probs = self.predict(x);
        assert_eq!((probs.rows(), probs.cols()), (labels.rows(), labels.cols()));
        let mut total = 0.0;
        for r in 0..probs.rows() {
            for c in 0..probs.cols() {
                let y = labels.get(r, c);
                if y > 0.0 {
                    total -= y * probs.get(r, c).max(1e-12).ln();
                }
            }
        }
        total / probs.rows() as f32
    }

    /// Classification accuracy against one-hot labels.
    pub fn accuracy(&self, x: &Matrix, labels: &Matrix) -> f32 {
        let probs = self.predict(x);
        let mut correct = 0;
        for r in 0..probs.rows() {
            let pred = (0..probs.cols())
                .max_by(|&a, &b| probs.get(r, a).total_cmp(&probs.get(r, b)))
                // lint: allow(panic-free-lib): the output layer has at least one unit, so the argmax range is non-empty
                .unwrap();
            let truth = (0..labels.cols())
                .max_by(|&a, &b| labels.get(r, a).total_cmp(&labels.get(r, b)))
                // lint: allow(panic-free-lib): one-hot labels have at least one column, so the argmax range is non-empty
                .unwrap();
            if pred == truth {
                correct += 1;
            }
        }
        correct as f32 / probs.rows() as f32
    }

    /// Computes summed (not averaged) gradients over the batch via
    /// back-propagation: forward pass, output delta `p − y`, error
    /// back-propagation through each layer — the three passes behind the
    /// `6·W` cost estimate.
    pub fn gradients(&self, x: &Matrix, labels: &Matrix) -> Gradients {
        let acts = self.forward(x);
        let batch = x.rows();
        let mut grads: Vec<(Matrix, Vec<f32>)> = Vec::with_capacity(self.layers.len());

        // delta = softmax(z) − y  (cross-entropy + softmax shortcut).
        // lint: allow(panic-free-lib): acts holds layers + 1 activations, so last() is always Some
        let mut delta = acts.last().unwrap().clone();
        delta.axpy(-1.0, labels);

        for i in (0..self.layers.len()).rev() {
            let a_prev = &acts[i];
            // dW = a_prevᵀ · delta ; db = column sums of delta.
            let dw = a_prev.t_matmul(&delta);
            let db = delta.col_sums();
            if i > 0 {
                // delta_prev = (delta · Wᵀ) ⊙ a_prev ⊙ (1 − a_prev).
                let mut d_prev = delta.matmul_t(&self.layers[i].w);
                let mut gate = a_prev.clone();
                gate.map_inplace(|v| v * (1.0 - v));
                d_prev.hadamard_inplace(&gate);
                delta = d_prev;
            }
            grads.push((dw, db));
        }
        grads.reverse();
        Gradients {
            grads,
            examples: batch,
        }
    }

    /// Applies averaged gradients with learning rate `lr`.
    pub fn apply(&mut self, grads: &Gradients, lr: f32) {
        assert!(grads.examples > 0, "gradients cover no examples");
        let scale = -lr / grads.examples as f32;
        for (layer, (dw, db)) in self.layers.iter_mut().zip(&grads.grads) {
            layer.w.axpy(scale, dw);
            for (b, &g) in layer.b.iter_mut().zip(db) {
                *b += scale * g;
            }
        }
    }

    /// One batch-gradient-descent step on the full batch; returns the loss
    /// before the update.
    pub fn train_step(&mut self, x: &Matrix, labels: &Matrix, lr: f32) -> f32 {
        let loss = self.loss(x, labels);
        let grads = self.gradients(x, labels);
        self.apply(&grads, lr);
        loss
    }

    /// One epoch of mini-batch SGD: the dataset is processed in
    /// consecutive mini-batches of `batch_size` rows (the last batch may
    /// be smaller), with a parameter update after each. Returns the mean
    /// pre-update loss across batches.
    ///
    /// This is the "mini-batch SGD uses a random mini-batch of examples"
    /// variant of the paper (callers shuffle the data between epochs for
    /// the randomness).
    pub fn train_epoch_minibatch(
        &mut self,
        x: &Matrix,
        labels: &Matrix,
        batch_size: usize,
        lr: f32,
    ) -> f32 {
        assert!(batch_size >= 1, "batch size must be positive");
        assert_eq!(x.rows(), labels.rows());
        let mut total_loss = 0.0;
        let mut batches = 0;
        let mut start = 0;
        while start < x.rows() {
            let len = batch_size.min(x.rows() - start);
            let xs = slice_rows(x, start, len);
            let ys = slice_rows(labels, start, len);
            total_loss += self.train_step(&xs, &ys, lr);
            batches += 1;
            start += len;
        }
        total_loss / batches as f32
    }

    /// Data-parallel batch gradient descent step: the batch is split into
    /// `workers` contiguous shards, each shard's gradient is computed
    /// independently (in a real deployment, on its own node), the master
    /// accumulates them, and the averaged update is applied — the exact
    /// schedule the paper's gradient-descent model prices.
    ///
    /// Returns the loss before the update.
    pub fn train_step_data_parallel(
        &mut self,
        x: &Matrix,
        labels: &Matrix,
        workers: usize,
        lr: f32,
    ) -> f32 {
        assert!(workers >= 1);
        let loss = self.loss(x, labels);
        let mut total: Option<Gradients> = None;
        for (xs, ys) in shard_rows(x, labels, workers) {
            let g = self.gradients(&xs, &ys);
            match &mut total {
                None => total = Some(g),
                Some(t) => t.accumulate(&g),
            }
        }
        // lint: allow(panic-free-lib): shards is non-empty (one shard per worker, workers >= 1), so at least one gradient accumulates
        let total = total.expect("at least one shard");
        self.apply(&total, lr);
        loss
    }
}

/// Splits paired example/label matrices into `workers` contiguous row
/// shards (the last shard takes the remainder). Empty shards are skipped —
/// matching a scheduler that never launches zero-work tasks.
pub fn shard_rows(x: &Matrix, y: &Matrix, workers: usize) -> Vec<(Matrix, Matrix)> {
    assert_eq!(x.rows(), y.rows(), "example/label row mismatch");
    assert!(workers >= 1);
    let rows = x.rows();
    let base = rows / workers;
    let rem = rows % workers;
    let mut shards = Vec::with_capacity(workers);
    let mut start = 0;
    for w in 0..workers {
        let len = base + usize::from(w < rem);
        if len == 0 {
            continue;
        }
        let xs = slice_rows(x, start, len);
        let ys = slice_rows(y, start, len);
        shards.push((xs, ys));
        start += len;
    }
    shards
}

fn slice_rows(m: &Matrix, start: usize, len: usize) -> Matrix {
    let cols = m.cols();
    let data = m.data()[start * cols..(start + len) * cols].to_vec();
    Matrix::from_vec(len, cols, data)
}

/// Generates a linearly-separable synthetic classification problem:
/// `classes` Gaussian-ish blobs in `features` dimensions with one-hot
/// labels. Deterministic given the RNG.
pub fn synthetic_blobs<R: Rng + ?Sized>(
    examples: usize,
    features: usize,
    classes: usize,
    rng: &mut R,
) -> (Matrix, Matrix) {
    assert!(classes >= 2 && features >= 1 && examples >= classes);
    let mut x = Matrix::zeros(examples, features);
    let mut y = Matrix::zeros(examples, classes);
    // Fixed, well-separated blob centres on coordinate axes.
    for i in 0..examples {
        let class = i % classes;
        for f in 0..features {
            let centre = if f % classes == class { 2.0 } else { -0.5 };
            x.set(i, f, centre + rng.gen_range(-0.4f32..0.4));
        }
        y.set(i, class, 1.0);
    }
    (x, y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(12345)
    }

    #[test]
    fn param_count_matches_formula() {
        let t = MlpTrainer::new(&[784, 64, 10], &mut rng());
        assert_eq!(t.param_count(), 784 * 64 + 64 + 64 * 10 + 10);
    }

    #[test]
    fn predictions_are_probability_rows() {
        let t = MlpTrainer::new(&[4, 8, 3], &mut rng());
        let (x, _) = synthetic_blobs(6, 4, 3, &mut rng());
        let p = t.predict(&x);
        for r in 0..p.rows() {
            let s: f32 = (0..p.cols()).map(|c| p.get(r, c)).sum();
            assert!((s - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn finite_difference_gradient_check() {
        // Perturb a handful of weights and compare the analytic gradient to
        // (L(w+eps) − L(w−eps)) / (2·eps).
        let mut r = rng();
        let t = MlpTrainer::new(&[3, 5, 2], &mut r);
        let (x, y) = synthetic_blobs(8, 3, 2, &mut r);
        let grads = t.gradients(&x, &y);
        let batch = x.rows() as f32;
        let eps = 1e-3f32;
        for (layer_idx, weight_idx) in [(0usize, 0usize), (0, 7), (1, 3), (1, 9)] {
            let analytic = grads.grads[layer_idx].0.data()[weight_idx] / batch;
            let mut plus = t.clone();
            plus.layers[layer_idx].w.data_mut()[weight_idx] += eps;
            let mut minus = t.clone();
            minus.layers[layer_idx].w.data_mut()[weight_idx] -= eps;
            let numeric = (plus.loss(&x, &y) - minus.loss(&x, &y)) / (2.0 * eps);
            assert!(
                (analytic - numeric).abs() < 2e-2 * (1.0 + numeric.abs()),
                "layer {layer_idx} weight {weight_idx}: analytic {analytic} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn training_reduces_loss_and_learns() {
        let mut r = rng();
        let mut t = MlpTrainer::new(&[6, 16, 3], &mut r);
        let (x, y) = synthetic_blobs(90, 6, 3, &mut r);
        let initial = t.loss(&x, &y);
        for _ in 0..150 {
            t.train_step(&x, &y, 0.5);
        }
        let final_loss = t.loss(&x, &y);
        assert!(final_loss < initial * 0.5, "loss {initial} → {final_loss}");
        assert!(t.accuracy(&x, &y) > 0.95, "accuracy {}", t.accuracy(&x, &y));
    }

    #[test]
    fn data_parallel_update_equals_single_node() {
        // The core premise of the data-parallel speedup model: sharded
        // gradient averaging is numerically the same computation.
        let mut r = rng();
        let (x, y) = synthetic_blobs(24, 5, 3, &mut r);
        let reference = MlpTrainer::new(&[5, 8, 3], &mut r);
        for workers in [1usize, 2, 3, 5, 8, 24] {
            let mut single = reference.clone();
            let mut parallel = reference.clone();
            single.train_step(&x, &y, 0.3);
            parallel.train_step_data_parallel(&x, &y, workers, 0.3);
            for (ls, lp) in single.layers.iter().zip(&parallel.layers) {
                for (a, b) in ls.w.data().iter().zip(lp.w.data()) {
                    assert!(
                        (a - b).abs() < 1e-4,
                        "workers={workers}: weights diverged ({a} vs {b})"
                    );
                }
            }
        }
    }

    #[test]
    fn more_workers_than_examples_is_fine() {
        let mut r = rng();
        let (x, y) = synthetic_blobs(4, 3, 2, &mut r);
        let mut t = MlpTrainer::new(&[3, 4, 2], &mut r);
        // 7 workers, 4 examples: three shards empty, skipped.
        let _ = t.train_step_data_parallel(&x, &y, 7, 0.1);
    }

    #[test]
    fn shard_rows_covers_everything_once() {
        let mut r = rng();
        let (x, y) = synthetic_blobs(10, 2, 2, &mut r);
        let shards = shard_rows(&x, &y, 3);
        let total: usize = shards.iter().map(|(xs, _)| xs.rows()).sum();
        assert_eq!(total, 10);
        // Row contents preserved in order.
        let mut row = 0;
        for (xs, _) in &shards {
            for rr in 0..xs.rows() {
                for c in 0..xs.cols() {
                    assert_eq!(xs.get(rr, c), x.get(row, c));
                }
                row += 1;
            }
        }
    }

    #[test]
    fn minibatch_epoch_learns_faster_per_pass() {
        // On a simple separable problem, several small updates per pass
        // beat one big batch update at the same learning rate.
        let mut r = rng();
        let (x, y) = synthetic_blobs(120, 6, 3, &mut r);
        let reference = MlpTrainer::new(&[6, 16, 3], &mut r);
        let mut batch = reference.clone();
        let mut minibatch = reference.clone();
        for _ in 0..5 {
            batch.train_step(&x, &y, 0.3);
            minibatch.train_epoch_minibatch(&x, &y, 20, 0.3);
        }
        assert!(
            minibatch.loss(&x, &y) < batch.loss(&x, &y),
            "minibatch {} vs batch {}",
            minibatch.loss(&x, &y),
            batch.loss(&x, &y)
        );
    }

    #[test]
    fn minibatch_with_oversized_batch_equals_batch_gd() {
        let mut r = rng();
        let (x, y) = synthetic_blobs(30, 4, 2, &mut r);
        let reference = MlpTrainer::new(&[4, 8, 2], &mut r);
        let mut a = reference.clone();
        let mut b = reference.clone();
        a.train_step(&x, &y, 0.2);
        b.train_epoch_minibatch(&x, &y, 1000, 0.2);
        assert!((a.loss(&x, &y) - b.loss(&x, &y)).abs() < 1e-6);
    }

    #[test]
    fn gradient_param_count_matches_trainer() {
        let mut r = rng();
        let t = MlpTrainer::new(&[4, 6, 2], &mut r);
        let (x, y) = synthetic_blobs(4, 4, 2, &mut r);
        assert_eq!(t.gradients(&x, &y).param_count(), t.param_count());
    }

    #[test]
    fn accumulate_sums_examples() {
        let mut r = rng();
        let t = MlpTrainer::new(&[4, 6, 2], &mut r);
        let (x, y) = synthetic_blobs(8, 4, 2, &mut r);
        let mut g1 = t.gradients(&x, &y);
        let g2 = t.gradients(&x, &y);
        g1.accumulate(&g2);
        assert_eq!(g1.examples, 16);
    }
}
