//! Composable network cost graphs: sequences, parallel branches
//! (Inception-style modules with channel concatenation) and whole-network
//! cost reports.

use crate::ops::Op;
use crate::shape::Shape;
use serde::{Deserialize, Serialize};

/// A node of a network cost graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Node {
    /// A primitive operation.
    Op(Op),
    /// A sequential chain of nodes.
    Seq(Vec<Node>),
    /// Parallel branches whose image outputs are concatenated along the
    /// channel dimension (the Inception module pattern). All branches
    /// receive the same input and must produce outputs agreeing on the
    /// spatial dimensions.
    Branches(Vec<Node>),
    /// Residual addition (the ResNet pattern): all branches receive the
    /// same input and their outputs — which must have *identical* shapes —
    /// are summed elementwise. An empty-`Seq` branch is the identity
    /// shortcut.
    Residual(Vec<Node>),
}

impl Node {
    /// Output shape of this node for the given input.
    ///
    /// # Panics
    /// Panics on inconsistent branch outputs or ops applied to
    /// incompatible shapes.
    pub fn out_shape(&self, input: Shape) -> Shape {
        match self {
            Node::Op(op) => op.out_shape(input),
            Node::Seq(nodes) => nodes.iter().fold(input, |s, n| n.out_shape(s)),
            Node::Branches(branches) => {
                assert!(!branches.is_empty(), "Branches must not be empty");
                let outs: Vec<Shape> = branches.iter().map(|b| b.out_shape(input)).collect();
                let (h0, w0) = match outs[0] {
                    Shape::Image { h, w, .. } => (h, w),
                    // lint: allow(panic-free-lib): shape contract — a flat branch under Concat is a model-description bug, caught at build time
                    Shape::Flat(_) => panic!("branch outputs must be images to concatenate"),
                };
                let mut total_c = 0;
                for out in &outs {
                    match *out {
                        Shape::Image { h, w, c } => {
                            assert!(
                                h == h0 && w == w0,
                                "branch spatial dims disagree: {h}x{w} vs {h0}x{w0}"
                            );
                            total_c += c;
                        }
                        // lint: allow(panic-free-lib): shape contract — a flat branch under Concat is a model-description bug, caught at build time
                        Shape::Flat(_) => panic!("branch outputs must be images"),
                    }
                }
                Shape::Image {
                    h: h0,
                    w: w0,
                    c: total_c,
                }
            }
            Node::Residual(branches) => {
                assert!(!branches.is_empty(), "Residual must not be empty");
                let outs: Vec<Shape> = branches.iter().map(|b| b.out_shape(input)).collect();
                for out in &outs {
                    assert!(
                        *out == outs[0],
                        "residual branch shapes must match: {out} vs {}",
                        outs[0]
                    );
                }
                outs[0]
            }
        }
    }

    /// Trainable parameters of this node.
    pub fn params(&self, input: Shape) -> u64 {
        match self {
            Node::Op(op) => op.params(input),
            Node::Seq(nodes) => {
                let mut total = 0;
                let mut shape = input;
                for n in nodes {
                    total += n.params(shape);
                    shape = n.out_shape(shape);
                }
                total
            }
            Node::Branches(branches) | Node::Residual(branches) => {
                branches.iter().map(|b| b.params(input)).sum()
            }
        }
    }

    /// Forward multiply-add pairs for one example.
    pub fn forward_madds(&self, input: Shape) -> u64 {
        match self {
            Node::Op(op) => op.forward_madds(input),
            Node::Seq(nodes) => {
                let mut total = 0;
                let mut shape = input;
                for n in nodes {
                    total += n.forward_madds(shape);
                    shape = n.out_shape(shape);
                }
                total
            }
            Node::Branches(branches) => branches.iter().map(|b| b.forward_madds(input)).sum(),
            Node::Residual(branches) => {
                // Branch work plus one add per output element for the sum.
                let branch_madds: u64 = branches.iter().map(|b| b.forward_madds(input)).sum();
                let adds = self.out_shape(input).elements() as u64 * (branches.len() as u64 - 1);
                branch_madds + adds
            }
        }
    }
}

/// Residual-sum shorthand (identity shortcut = `seq([])`).
pub fn residual(nodes: impl IntoIterator<Item = Node>) -> Node {
    Node::Residual(nodes.into_iter().collect())
}

/// Sequential chain shorthand.
pub fn seq(nodes: impl IntoIterator<Item = Node>) -> Node {
    Node::Seq(nodes.into_iter().collect())
}

/// Parallel-branch (concat) shorthand.
pub fn branches(nodes: impl IntoIterator<Item = Node>) -> Node {
    Node::Branches(nodes.into_iter().collect())
}

impl From<Op> for Node {
    fn from(op: Op) -> Self {
        Node::Op(op)
    }
}

/// Builds a [`Node::Seq`] from primitive ops.
pub fn chain(ops: impl IntoIterator<Item = Op>) -> Node {
    Node::Seq(ops.into_iter().map(Node::Op).collect())
}

/// A complete network: an input shape plus a cost graph, with summary
/// accessors and a per-layer cost table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Network {
    /// Human-readable name (e.g. "mnist-fc", "inception-v3").
    pub name: String,
    /// Input shape of one example.
    pub input: Shape,
    /// The cost graph.
    pub graph: Node,
}

impl Network {
    /// Creates a network and validates the graph by propagating shapes
    /// through it once (panicking on inconsistencies).
    pub fn new(name: impl Into<String>, input: Shape, graph: Node) -> Self {
        let net = Self {
            name: name.into(),
            input,
            graph,
        };
        let _ = net.output(); // shape-checks the whole graph
        net
    }

    /// Output shape of the network.
    pub fn output(&self) -> Shape {
        self.graph.out_shape(self.input)
    }

    /// Total trainable parameters `W`.
    pub fn params(&self) -> u64 {
        self.graph.params(self.input)
    }

    /// Forward multiply-add pairs for one example.
    pub fn forward_madds(&self) -> u64 {
        self.graph.forward_madds(self.input)
    }

    /// Forward flops (2 per multiply-add).
    pub fn forward_flops(&self) -> u64 {
        2 * self.forward_madds()
    }

    /// Training multiply-adds per example: three passes (forward, error
    /// back-propagation, gradient computation).
    pub fn train_madds(&self) -> u64 {
        3 * self.forward_madds()
    }

    /// Training flops per example — the `6·W`-style cost used as `C` in the
    /// gradient-descent scalability model.
    pub fn train_flops(&self) -> u64 {
        2 * self.train_madds()
    }

    /// Per-top-level-node cost table (name, output shape, params, madds).
    pub fn cost_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<24} {:>12} {:>14} {:>16}",
            "layer", "output", "params", "fwd madds"
        );
        let mut shape = self.input;
        let rows: &[Node] = match &self.graph {
            Node::Seq(nodes) => nodes,
            other => std::slice::from_ref(other),
        };
        for (i, node) in rows.iter().enumerate() {
            let label = match node {
                Node::Op(op) => op.label(),
                Node::Seq(_) => format!("block-{i}"),
                Node::Branches(b) => format!("module-{i} ({} branches)", b.len()),
                Node::Residual(b) => format!("residual-{i} ({} branches)", b.len()),
            };
            let params = node.params(shape);
            let madds = node.forward_madds(shape);
            shape = node.out_shape(shape);
            let _ = writeln!(
                out,
                "{label:<24} {:>12} {params:>14} {madds:>16}",
                shape.to_string()
            );
        }
        let _ = writeln!(
            out,
            "{:<24} {:>12} {:>14} {:>16}",
            "TOTAL",
            self.output().to_string(),
            self.params(),
            self.forward_madds()
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::dsl::*;
    use crate::shape::Padding;

    fn tiny_mlp() -> Network {
        Network::new(
            "tiny",
            Shape::Flat(4),
            chain([dense(8), sigmoid(), dense(2), softmax()]),
        )
    }

    #[test]
    fn seq_accumulates_params_and_madds() {
        let net = tiny_mlp();
        assert_eq!(net.params(), (4 * 8 + 8) + (8 * 2 + 2));
        // Dense madds plus one per activation element.
        assert_eq!(net.forward_madds(), 4 * 8 + 8 + 8 * 2 + 2);
        assert_eq!(net.output(), Shape::Flat(2));
    }

    #[test]
    fn train_costs_are_multiples() {
        let net = tiny_mlp();
        assert_eq!(net.train_madds(), 3 * net.forward_madds());
        assert_eq!(net.train_flops(), 6 * net.forward_madds());
        assert_eq!(net.forward_flops(), 2 * net.forward_madds());
    }

    #[test]
    fn branches_concat_channels() {
        let module = branches([
            chain([conv(64, 1, 1, Padding::Same)]),
            chain([conv(48, 1, 1, Padding::Same), conv(64, 5, 1, Padding::Same)]),
            chain([avgpool(3, 1, Padding::Same), conv(32, 1, 1, Padding::Same)]),
        ]);
        let input = Shape::image(35, 35, 192);
        assert_eq!(module.out_shape(input), Shape::image(35, 35, 64 + 64 + 32));
        // Params sum over branches.
        let expected = 64 * 192 + (48 * 192 + 64 * 5 * 5 * 48) + 32 * 192;
        assert_eq!(module.params(input), expected as u64);
    }

    #[test]
    fn branch_madds_sum() {
        let input = Shape::image(8, 8, 16);
        let b1 = chain([conv(4, 1, 1, Padding::Same)]);
        let b2 = chain([conv(8, 3, 1, Padding::Same)]);
        let m1 = b1.forward_madds(input);
        let m2 = b2.forward_madds(input);
        let module = branches([b1, b2]);
        assert_eq!(module.forward_madds(input), m1 + m2);
    }

    #[test]
    #[should_panic(expected = "spatial dims disagree")]
    fn mismatched_branches_panic() {
        let module = branches([
            chain([conv(4, 3, 1, Padding::Same)]),
            chain([conv(4, 3, 2, Padding::Same)]),
        ]);
        let _ = module.out_shape(Shape::image(16, 16, 3));
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_branches_panic() {
        let _ = branches([]).out_shape(Shape::Flat(1));
    }

    #[test]
    fn nested_seq_shapes_propagate() {
        let g = seq([
            chain([conv(8, 3, 2, Padding::Valid)]),
            chain([Op::GlobalAvgPool, Op::Flatten]),
            chain([dense(10)]),
        ]);
        let out = g.out_shape(Shape::image(33, 33, 3));
        assert_eq!(out, Shape::Flat(10));
    }

    #[test]
    fn cost_table_has_total_row() {
        let t = tiny_mlp().cost_table();
        assert!(t.contains("TOTAL"));
        assert!(t.lines().count() >= 5);
    }

    #[test]
    #[should_panic]
    fn invalid_network_fails_at_construction() {
        // Dense directly on an image input must panic inside Network::new.
        let _ = Network::new("bad", Shape::image(4, 4, 3), chain([dense(10)]));
    }
}
