//! Compressed sparse row (CSR) representation of undirected graphs.
//!
//! The belief-propagation experiments operate on graphs with up to
//! 16.3 million vertices and ~100 million edges, so the representation is
//! compact: one `u32` per directed arc plus one offset per vertex. Vertex
//! ids are `u32` throughout (4.3 billion vertices is far beyond the paper's
//! scale).

use serde::{Deserialize, Serialize};

/// Vertex identifier.
pub type VertexId = u32;

/// An undirected graph in CSR form. Every undirected edge `{u, v}` is
/// stored as two directed arcs (`u → v` and `v → u`); self-loops are stored
/// as a single arc and counted as one edge.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CsrGraph {
    /// `offsets[v]..offsets[v+1]` indexes `targets` for vertex `v`.
    offsets: Vec<u64>,
    /// Concatenated adjacency lists.
    targets: Vec<VertexId>,
    /// Number of undirected edges.
    edges: u64,
}

impl CsrGraph {
    /// Builds a graph from an undirected edge list. Duplicate edges are
    /// kept (multigraph semantics — the generators below never produce
    /// them, but measured graphs may).
    ///
    /// # Panics
    /// Panics when an endpoint is `>= vertices`.
    pub fn from_edges(vertices: usize, edge_list: &[(VertexId, VertexId)]) -> Self {
        let mut degrees = vec![0u64; vertices];
        for &(u, v) in edge_list {
            assert!((u as usize) < vertices, "endpoint {u} out of range");
            assert!((v as usize) < vertices, "endpoint {v} out of range");
            degrees[u as usize] += 1;
            if u != v {
                degrees[v as usize] += 1;
            }
        }
        let mut offsets = Vec::with_capacity(vertices + 1);
        offsets.push(0u64);
        for &d in &degrees {
            // lint: allow(panic-free-lib): offsets starts with a pushed 0, so last() is always Some
            offsets.push(offsets.last().unwrap() + d);
        }
        let mut cursor: Vec<u64> = offsets[..vertices].to_vec();
        // lint: allow(panic-free-lib): offsets starts with a pushed 0, so last() is always Some
        let mut targets = vec![0 as VertexId; *offsets.last().unwrap() as usize];
        for &(u, v) in edge_list {
            targets[cursor[u as usize] as usize] = v;
            cursor[u as usize] += 1;
            if u != v {
                targets[cursor[v as usize] as usize] = u;
                cursor[v as usize] += 1;
            }
        }
        Self {
            offsets,
            targets,
            edges: edge_list.len() as u64,
        }
    }

    /// Number of vertices `V`.
    pub fn vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges `E`.
    pub fn edges(&self) -> u64 {
        self.edges
    }

    /// Degree of a vertex (self-loops count once).
    pub fn degree(&self, v: VertexId) -> u32 {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as u32
    }

    /// Neighbors of a vertex.
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.targets[lo..hi]
    }

    /// Degree of every vertex, as the degree sequence the Monte-Carlo
    /// estimator consumes.
    pub fn degree_sequence(&self) -> Vec<u32> {
        (0..self.vertices() as VertexId)
            .map(|v| self.degree(v))
            .collect()
    }

    /// Maximum degree.
    pub fn max_degree(&self) -> u32 {
        (0..self.vertices() as VertexId)
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Average degree `2E/V` (0 for the empty graph).
    pub fn avg_degree(&self) -> f64 {
        if self.vertices() == 0 {
            return 0.0;
        }
        self.targets.len() as f64 / self.vertices() as f64
    }

    /// Iterates over every undirected edge once (as `u <= v` pairs;
    /// self-loops reported once).
    pub fn edge_iter(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        (0..self.vertices() as VertexId).flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .filter(move |&&v| u <= v)
                .map(move |&v| (u, v))
        })
    }

    /// Validates the structural invariants: sorted offsets, targets in
    /// range, and arc symmetry (every `u → v` has a matching `v → u`).
    /// Intended for tests and debug assertions; `O(E log E)` memory-light
    /// check.
    pub fn validate(&self) -> Result<(), String> {
        if self.offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err("offsets not monotone".into());
        }
        // lint: allow(panic-free-lib): offsets starts with a pushed 0 at construction, so last() is always Some
        if *self.offsets.last().unwrap() as usize != self.targets.len() {
            return Err("final offset disagrees with target count".into());
        }
        let v = self.vertices() as VertexId;
        if self.targets.iter().any(|&t| t >= v) {
            return Err("target out of range".into());
        }
        // Arc symmetry via degree-of-occurrence counting per pair.
        let mut fwd: Vec<(VertexId, VertexId)> = Vec::with_capacity(self.targets.len());
        for u in 0..v {
            for &t in self.neighbors(u) {
                if u != t {
                    fwd.push(if u < t { (u, t) } else { (t, u) });
                }
            }
        }
        fwd.sort_unstable();
        // Every normalised non-loop pair must appear an even number of
        // times (u→v and v→u contribute one occurrence each).
        let mut i = 0;
        while i < fwd.len() {
            let mut j = i;
            while j < fwd.len() && fwd[j] == fwd[i] {
                j += 1;
            }
            if (j - i) % 2 != 0 {
                return Err(format!("asymmetric arc {:?}", fwd[i]));
            }
            i = j;
        }
        Ok(())
    }

    /// Approximate in-memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<u64>()
            + self.targets.len() * std::mem::size_of::<VertexId>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Triangle plus a pendant: 0-1, 1-2, 2-0, 2-3.
    fn small() -> CsrGraph {
        CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)])
    }

    #[test]
    fn counts() {
        let g = small();
        assert_eq!(g.vertices(), 4);
        assert_eq!(g.edges(), 4);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(2), 3);
        assert_eq!(g.degree(3), 1);
        assert_eq!(g.max_degree(), 3);
        assert!((g.avg_degree() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn neighbors_symmetric() {
        let g = small();
        assert!(g.neighbors(0).contains(&1));
        assert!(g.neighbors(1).contains(&0));
        assert!(g.validate().is_ok());
    }

    #[test]
    fn degree_sequence_sums_to_2e() {
        let g = small();
        let sum: u64 = g.degree_sequence().iter().map(|&d| u64::from(d)).sum();
        assert_eq!(sum, 2 * g.edges());
    }

    #[test]
    fn edge_iter_visits_each_edge_once() {
        let g = small();
        let mut edges: Vec<_> = g.edge_iter().collect();
        edges.sort_unstable();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2), (2, 3)]);
    }

    #[test]
    fn self_loop_counts_once() {
        let g = CsrGraph::from_edges(2, &[(0, 0), (0, 1)]);
        assert_eq!(g.edges(), 2);
        assert_eq!(g.degree(0), 2); // loop arc + edge arc
        let loops: Vec<_> = g.edge_iter().filter(|&(u, v)| u == v).collect();
        assert_eq!(loops, vec![(0, 0)]);
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_edges(3, &[]);
        assert_eq!(g.edges(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.avg_degree(), 0.0);
        assert!(g.validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_endpoint_panics() {
        let _ = CsrGraph::from_edges(2, &[(0, 5)]);
    }

    #[test]
    fn memory_estimate_positive() {
        assert!(small().memory_bytes() > 0);
    }
}
