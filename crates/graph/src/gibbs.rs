//! Gibbs sampling for pairwise MRFs — the other approximate-inference
//! algorithm the paper names ("approximate methods, such as Gibbs sampling
//! or loopy belief propagation, are commonly used").
//!
//! Gibbs sampling resamples one variable at a time from its conditional
//! given the current neighbor states; marginals are estimated from sample
//! frequencies after burn-in. Per sweep the work is `Σ_v deg(v)·S = 2E·S`
//! multiply-adds plus `V·S` normalisation — linear in the edges like BP
//! but with a smaller per-edge constant (no `S²` marginalisation), which
//! is why the scalability model distinguishes the two through `c(S)`.

use crate::csr::VertexId;
use crate::mrf::PairwiseMrf;
use mlscale_core::units::FlopCount;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Per-edge computation cost of one Gibbs sweep with `S` states, in the
/// same convention as [`crate::mrf`]'s `c(S)`: each directed edge
/// contributes `S` multiply-adds into the conditional of its endpoint
/// (so `c_Gibbs(S) = 2·S` per undirected edge), plus the `O(V·S)`
/// normalisation/sampling term accounted separately.
#[inline]
pub fn gibbs_cost_per_edge(states: usize) -> FlopCount {
    FlopCount::new(2.0 * states as f64)
}

/// Report of a Gibbs sampling run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GibbsRun {
    /// Burn-in sweeps discarded.
    pub burn_in: usize,
    /// Sweeps whose samples were recorded.
    pub samples: usize,
}

/// A Gibbs sampler over a pairwise MRF.
#[derive(Debug)]
pub struct GibbsSampler<'a> {
    mrf: &'a PairwiseMrf,
    /// Current state of every variable.
    state: Vec<u16>,
    /// Per-vertex, per-state visit counts (accumulated after burn-in).
    counts: Vec<u64>,
    /// Recorded sweeps.
    recorded: u64,
    /// Scratch conditional distribution.
    conditional: Vec<f64>,
}

impl<'a> GibbsSampler<'a> {
    /// Initialises all variables to state 0.
    pub fn new(mrf: &'a PairwiseMrf) -> Self {
        assert!(
            mrf.states <= u16::MAX as usize,
            "state count exceeds sampler storage"
        );
        Self {
            mrf,
            state: vec![0; mrf.vertices()],
            counts: vec![0; mrf.vertices() * mrf.states],
            recorded: 0,
            conditional: vec![0.0; mrf.states],
        }
    }

    /// Randomises the initial state (recommended before burn-in).
    pub fn randomize<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for s in &mut self.state {
            *s = rng.gen_range(0..self.mrf.states) as u16;
        }
    }

    /// One full sweep: resample every variable once, in vertex order.
    pub fn sweep<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        let s = self.mrf.states;
        for v in 0..self.mrf.vertices() as VertexId {
            // Conditional ∝ φ_v(x)·Π_{u∈N(v)} ψ(x, state_u).
            for (x, c) in self.conditional.iter_mut().enumerate() {
                *c = self.mrf.unary(v, x);
            }
            for &u in self.mrf.graph.neighbors(v) {
                let xu = self.state[u as usize] as usize;
                for (x, c) in self.conditional.iter_mut().enumerate() {
                    *c *= self.mrf.pairwise.eval(x, xu);
                }
            }
            let total: f64 = self.conditional.iter().sum();
            let mut draw = rng.gen::<f64>() * total;
            let mut chosen = s - 1;
            for (x, &c) in self.conditional.iter().enumerate() {
                if draw < c {
                    chosen = x;
                    break;
                }
                draw -= c;
            }
            self.state[v as usize] = chosen as u16;
        }
    }

    /// Records the current state into the marginal counts.
    fn record(&mut self) {
        let s = self.mrf.states;
        for (v, &x) in self.state.iter().enumerate() {
            self.counts[v * s + x as usize] += 1;
        }
        self.recorded += 1;
    }

    /// Runs `burn_in` discarded sweeps followed by `samples` recorded
    /// sweeps.
    pub fn run<R: Rng + ?Sized>(
        &mut self,
        burn_in: usize,
        samples: usize,
        rng: &mut R,
    ) -> GibbsRun {
        assert!(samples >= 1, "need at least one recorded sweep");
        for _ in 0..burn_in {
            self.sweep(rng);
        }
        for _ in 0..samples {
            self.sweep(rng);
            self.record();
        }
        GibbsRun { burn_in, samples }
    }

    /// Estimated marginal of a vertex from the recorded samples.
    ///
    /// # Panics
    /// Panics when no sweeps have been recorded yet.
    pub fn marginal(&self, v: VertexId) -> Vec<f64> {
        assert!(self.recorded > 0, "no samples recorded yet");
        let s = self.mrf.states;
        self.counts[v as usize * s..(v as usize + 1) * s]
            .iter()
            .map(|&c| c as f64 / self.recorded as f64)
            .collect()
    }

    /// All estimated marginals, `V × S` row-major.
    pub fn marginals(&self) -> Vec<f64> {
        (0..self.mrf.vertices() as VertexId)
            .flat_map(|v| self.marginal(v))
            .collect()
    }

    /// The modelled computation volume of one sweep:
    /// `2E·S` edge work + `V·S` sampling work, in multiply-adds.
    pub fn modeled_sweep_madds(&self) -> f64 {
        let s = self.mrf.states as f64;
        2.0 * self.mrf.graph.edges() as f64 * s + self.mrf.vertices() as f64 * s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{grid2d, path};
    use crate::mrf::{exact_marginals, PairwisePotential};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x61BB5)
    }

    #[test]
    fn independent_variables_recover_unaries() {
        // With ψ ≡ 1, each conditional is just the normalised unary.
        let g = path(6);
        let mut unary = vec![1.0; 12];
        for v in 0..6 {
            unary[v * 2] = 3.0; // P(state 0) = 0.75
        }
        let mrf = PairwiseMrf::new(g, 2, unary, PairwisePotential::Uniform);
        let mut sampler = GibbsSampler::new(&mrf);
        let mut r = rng();
        sampler.randomize(&mut r);
        sampler.run(50, 4000, &mut r);
        for v in 0..6 {
            let m = sampler.marginal(v);
            assert!((m[0] - 0.75).abs() < 0.03, "vertex {v}: {m:?}");
        }
    }

    #[test]
    fn matches_exact_marginals_on_small_chain() {
        let mut r = rng();
        let v = 5;
        let g = path(v);
        let unary: Vec<f64> = (0..v * 2).map(|i| 0.5 + (i % 3) as f64 * 0.5).collect();
        let mrf = PairwiseMrf::new(
            g,
            2,
            unary,
            PairwisePotential::Potts {
                same: 1.6,
                diff: 0.7,
            },
        );
        let exact = exact_marginals(&mrf);
        let mut sampler = GibbsSampler::new(&mrf);
        sampler.randomize(&mut r);
        sampler.run(200, 20_000, &mut r);
        let est = sampler.marginals();
        for (i, (&e, &g_est)) in exact.iter().zip(&est).enumerate() {
            assert!(
                (e - g_est).abs() < 0.025,
                "marginal {i}: exact {e:.3} vs gibbs {g_est:.3}"
            );
        }
    }

    #[test]
    fn agrees_with_bp_on_tree() {
        use crate::mrf::BeliefPropagation;
        let mut r = rng();
        let v = 7;
        let g = path(v);
        let unary: Vec<f64> = (0..v * 2).map(|i| 0.4 + (i % 4) as f64 * 0.4).collect();
        let mrf = PairwiseMrf::new(
            g,
            2,
            unary,
            PairwisePotential::Potts {
                same: 1.4,
                diff: 0.8,
            },
        );
        let mut bp = BeliefPropagation::new(&mrf);
        bp.run(100, 1e-10);
        let mut sampler = GibbsSampler::new(&mrf);
        sampler.randomize(&mut r);
        sampler.run(200, 20_000, &mut r);
        for vertex in 0..v as VertexId {
            let b = bp.belief(vertex);
            let m = sampler.marginal(vertex);
            assert!(
                (b[0] - m[0]).abs() < 0.025,
                "vertex {vertex}: bp {b:?} vs gibbs {m:?}"
            );
        }
    }

    #[test]
    fn marginals_always_normalised() {
        let g = grid2d(4, 4);
        let mrf = PairwiseMrf::uniform(
            g,
            3,
            PairwisePotential::Potts {
                same: 2.0,
                diff: 0.5,
            },
        );
        let mut sampler = GibbsSampler::new(&mrf);
        let mut r = rng();
        sampler.run(5, 20, &mut r);
        for v in 0..16 {
            let m = sampler.marginal(v);
            let total: f64 = m.iter().sum();
            assert!((total - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn cost_model_cheaper_per_edge_than_bp() {
        for s in [2usize, 4, 8] {
            let gibbs = gibbs_cost_per_edge(s).get();
            let bp = mlscale_core::models::graphinf::bp_cost_per_edge(s).get();
            assert!(
                gibbs < bp,
                "Gibbs lacks the S² marginalisation: {gibbs} vs {bp}"
            );
        }
    }

    #[test]
    fn modeled_sweep_cost_formula() {
        let g = grid2d(3, 3);
        let e = g.edges() as f64;
        let mrf = PairwiseMrf::uniform(g, 2, PairwisePotential::Uniform);
        let sampler = GibbsSampler::new(&mrf);
        assert!((sampler.modeled_sweep_madds() - (2.0 * e * 2.0 + 9.0 * 2.0)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "no samples recorded")]
    fn marginal_before_sampling_panics() {
        let g = path(3);
        let mrf = PairwiseMrf::uniform(g, 2, PairwisePotential::Uniform);
        let sampler = GibbsSampler::new(&mrf);
        let _ = sampler.marginal(0);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = grid2d(3, 3);
        let mrf = PairwiseMrf::uniform(
            g,
            2,
            PairwisePotential::Potts {
                same: 1.5,
                diff: 0.5,
            },
        );
        let run = |seed: u64| {
            let mut s = GibbsSampler::new(&mrf);
            let mut r = StdRng::seed_from_u64(seed);
            s.run(10, 50, &mut r);
            s.marginals()
        };
        assert_eq!(run(9), run(9));
    }
}
