//! Pairwise Markov random fields and loopy belief propagation.
//!
//! "In our analysis, we consider pairwise Markov random field (MRF) model,
//! which is generic enough to represent any graphical model." This module
//! implements the real algorithm the Fig 4 experiment models: synchronous
//! loopy BP over a pairwise MRF with `S` states — belief update from
//! incoming messages, message generation with marginalisation — together
//! with exact brute-force inference for small graphs (the correctness
//! oracle: BP is exact on trees).

use crate::csr::{CsrGraph, VertexId};
use serde::{Deserialize, Serialize};

/// Pairwise potential families.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PairwisePotential {
    /// Potts smoothing: `ψ(x, y) = same` when `x == y`, else `diff`.
    /// The classic image-denoising / community coupling.
    Potts {
        /// Affinity when the two variables agree.
        same: f64,
        /// Affinity when they disagree.
        diff: f64,
    },
    /// Fully uniform (independence) — useful for tests.
    Uniform,
}

impl PairwisePotential {
    /// `ψ(a, b)`.
    #[inline]
    pub fn eval(&self, a: usize, b: usize) -> f64 {
        match *self {
            PairwisePotential::Potts { same, diff } => {
                if a == b {
                    same
                } else {
                    diff
                }
            }
            PairwisePotential::Uniform => 1.0,
        }
    }
}

/// A pairwise MRF over an undirected graph: one `S`-state variable per
/// vertex with a unary potential, and a shared pairwise potential on every
/// edge.
#[derive(Debug, Clone)]
pub struct PairwiseMrf {
    /// The underlying graph.
    pub graph: CsrGraph,
    /// Number of states `S`.
    pub states: usize,
    /// Row-major `V × S` unary potentials (strictly positive).
    unary: Vec<f64>,
    /// Shared pairwise potential.
    pub pairwise: PairwisePotential,
}

impl PairwiseMrf {
    /// Builds an MRF.
    ///
    /// # Panics
    /// Panics when `unary.len() != V·S`, `S < 2`, or any potential is
    /// non-positive (BP's message normalisation requires positivity).
    pub fn new(
        graph: CsrGraph,
        states: usize,
        unary: Vec<f64>,
        pairwise: PairwisePotential,
    ) -> Self {
        assert!(states >= 2, "need at least two states");
        assert_eq!(
            unary.len(),
            graph.vertices() * states,
            "unary potentials must be V × S"
        );
        assert!(
            unary.iter().all(|&p| p > 0.0 && p.is_finite()),
            "unary potentials must be strictly positive"
        );
        Self {
            graph,
            states,
            unary,
            pairwise,
        }
    }

    /// Uniform unary potentials (prior-free field).
    pub fn uniform(graph: CsrGraph, states: usize, pairwise: PairwisePotential) -> Self {
        let unary = vec![1.0; graph.vertices() * states];
        Self::new(graph, states, unary, pairwise)
    }

    /// Unary potential `φ_v(x)`.
    #[inline]
    pub fn unary(&self, v: VertexId, x: usize) -> f64 {
        self.unary[v as usize * self.states + x]
    }

    /// Number of vertices.
    pub fn vertices(&self) -> usize {
        self.graph.vertices()
    }

    /// The paper's per-iteration BP computation volume: per-edge cost
    /// `c(S) = S + 2·(S + S²)` multiply-adds times the edge count.
    pub fn modeled_iteration_madds(&self) -> f64 {
        let s = self.states as f64;
        let c = s + 2.0 * (s + s * s);
        c * self.graph.edges() as f64
    }
}

/// Convergence / iteration report of a BP run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BpRun {
    /// Iterations executed.
    pub iterations: usize,
    /// Final maximum absolute message change.
    pub final_delta: f64,
    /// Whether `final_delta <= tolerance` was reached.
    pub converged: bool,
}

/// Synchronous loopy belief propagation engine.
///
/// Messages live on directed arcs; arc `arc_offsets[v] + j` holds the
/// message `m_{u→v}` where `u` is the `j`-th neighbor of `v` — incoming
/// messages are contiguous per destination, so belief computation is a
/// sequential scan.
#[derive(Debug, Clone)]
pub struct BeliefPropagation<'a> {
    mrf: &'a PairwiseMrf,
    /// Current messages, `2E` rows of length `S`.
    messages: Vec<f64>,
    /// Double buffer for the synchronous update.
    next: Vec<f64>,
    /// `reverse[a]`: arc index of the opposite direction of arc `a`.
    reverse: Vec<u64>,
    /// Arc index base per vertex.
    arc_offsets: Vec<usize>,
    /// Scratch row for the pre-message product.
    scratch: Vec<f64>,
    /// Damping factor in `[0, 1)`: `m ← (1−λ)·m_new + λ·m_old`.
    pub damping: f64,
}

impl<'a> BeliefPropagation<'a> {
    /// Initialises uniform messages and the reverse-arc index.
    pub fn new(mrf: &'a PairwiseMrf) -> Self {
        let s = mrf.states;
        let g = &mrf.graph;
        let mut arc_offsets = Vec::with_capacity(g.vertices() + 1);
        arc_offsets.push(0usize);
        for v in 0..g.vertices() as VertexId {
            // lint: allow(panic-free-lib): arc_offsets starts with a pushed 0, so last() is always Some
            arc_offsets.push(arc_offsets.last().unwrap() + g.neighbors(v).len());
        }
        // lint: allow(panic-free-lib): arc_offsets starts with a pushed 0, so last() is always Some
        let arcs = *arc_offsets.last().unwrap();
        let uniform = 1.0 / s as f64;
        Self {
            mrf,
            messages: vec![uniform; arcs * s],
            next: vec![0.0; arcs * s],
            reverse: build_reverse_index(g, &arc_offsets),
            arc_offsets,
            scratch: vec![0.0; s],
            damping: 0.0,
        }
    }

    /// One synchronous iteration; returns the maximum absolute message
    /// change. Per directed arc: a product over the source's incoming
    /// messages plus an `S²` marginalisation — the computation the paper
    /// prices at `c(S) = S + 2(S + S²)` per edge.
    pub fn iterate(&mut self) -> f64 {
        let s = self.mrf.states;
        let mrf = self.mrf;
        let g = &mrf.graph;
        let arc_offsets = &self.arc_offsets;
        let reverse = &self.reverse;
        let messages = &self.messages;
        let next = &mut self.next;
        let pre = &mut self.scratch[..s];
        let damping = self.damping;
        let mut max_delta = 0.0f64;

        for v in 0..g.vertices() as VertexId {
            let vbase = arc_offsets[v as usize];
            for (j, &u) in g.neighbors(v).iter().enumerate() {
                let arc = vbase + j;
                let rev = reverse[arc] as usize; // arc (v → u), stored at u

                // pre[x_u] = φ_u(x_u) · Π_{w ∈ N(u), w-arc ≠ rev} m_{w→u}(x_u)
                for (x, p) in pre.iter_mut().enumerate() {
                    *p = mrf.unary(u, x);
                }
                let ubase = arc_offsets[u as usize];
                for k in 0..g.neighbors(u).len() {
                    let in_arc = ubase + k;
                    if in_arc == rev {
                        continue;
                    }
                    let row = &messages[in_arc * s..(in_arc + 1) * s];
                    for (p, &m) in pre.iter_mut().zip(row) {
                        *p *= m;
                    }
                }

                // m_new(x_v) = Σ_{x_u} ψ(x_u, x_v) · pre(x_u), normalised.
                let out = &mut next[arc * s..(arc + 1) * s];
                let mut total = 0.0;
                for (xv, o) in out.iter_mut().enumerate() {
                    let mut acc = 0.0;
                    for (xu, &p) in pre.iter().enumerate() {
                        acc += mrf.pairwise.eval(xu, xv) * p;
                    }
                    *o = acc;
                    total += acc;
                }
                let old = &messages[arc * s..(arc + 1) * s];
                for (o, &prev) in out.iter_mut().zip(old) {
                    let blended = (1.0 - damping) * (*o / total) + damping * prev;
                    max_delta = max_delta.max((blended - prev).abs());
                    *o = blended;
                }
            }
        }
        std::mem::swap(&mut self.messages, &mut self.next);
        max_delta
    }

    /// Runs until the maximum message change drops to `tolerance` or
    /// `max_iterations` is reached.
    pub fn run(&mut self, max_iterations: usize, tolerance: f64) -> BpRun {
        let mut delta = f64::INFINITY;
        let mut iterations = 0;
        while iterations < max_iterations {
            delta = self.iterate();
            iterations += 1;
            if delta <= tolerance {
                break;
            }
        }
        BpRun {
            iterations,
            final_delta: delta,
            converged: delta <= tolerance,
        }
    }

    /// Normalised marginal belief of a vertex:
    /// `b_v(x) ∝ φ_v(x) · Π_j m_{u_j→v}(x)`.
    pub fn belief(&self, v: VertexId) -> Vec<f64> {
        let s = self.mrf.states;
        let mut b: Vec<f64> = (0..s).map(|x| self.mrf.unary(v, x)).collect();
        let base = self.arc_offsets[v as usize];
        for j in 0..self.mrf.graph.neighbors(v).len() {
            let arc = base + j;
            let row = &self.messages[arc * s..(arc + 1) * s];
            for (bx, &m) in b.iter_mut().zip(row) {
                *bx *= m;
            }
        }
        let total: f64 = b.iter().sum();
        for bx in &mut b {
            *bx /= total;
        }
        b
    }

    /// All marginals as a `V × S` row-major vector.
    pub fn marginals(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.mrf.vertices() * self.mrf.states);
        for v in 0..self.mrf.vertices() as VertexId {
            out.extend(self.belief(v));
        }
        out
    }
}

fn build_reverse_index(g: &CsrGraph, arc_offsets: &[usize]) -> Vec<u64> {
    // Arc a = (v, j) means "incoming to v from its j-th neighbor u"; its
    // reverse is the arc (u, k) whose k-th neighbor is v. Sort by
    // normalised endpoint pair so the two directions of each undirected
    // edge are adjacent, then pair them (multiplicities match for
    // parallel edges).
    // lint: allow(panic-free-lib): arc_offsets starts with a pushed 0, so last() is always Some
    let total = *arc_offsets.last().unwrap();
    let mut keyed: Vec<(u32, u32, u64)> = Vec::with_capacity(total);
    for v in 0..g.vertices() as VertexId {
        for (j, &u) in g.neighbors(v).iter().enumerate() {
            let arc = (arc_offsets[v as usize] + j) as u64;
            let (a, b) = if u < v { (u, v) } else { (v, u) };
            keyed.push((a, b, arc));
        }
    }
    keyed.sort_unstable();
    let mut reverse = vec![0u64; total];
    let mut i = 0;
    while i < keyed.len() {
        let (a, b, arc1) = keyed[i];
        if a == b {
            // Self-loop: single arc, its own reverse.
            reverse[arc1 as usize] = arc1;
            i += 1;
            continue;
        }
        debug_assert_eq!((keyed[i + 1].0, keyed[i + 1].1), (a, b), "unpaired arc");
        let (_, _, arc2) = keyed[i + 1];
        reverse[arc1 as usize] = arc2;
        reverse[arc2 as usize] = arc1;
        i += 2;
    }
    reverse
}

/// Exact marginals by brute-force enumeration — `O(S^V)`, for graphs of at
/// most ~16 vertices. The correctness oracle for the BP tests.
///
/// # Panics
/// Panics when `S^V` exceeds a safety bound.
pub fn exact_marginals(mrf: &PairwiseMrf) -> Vec<f64> {
    let v = mrf.vertices();
    let s = mrf.states;
    assert!(
        (s as f64).powi(v as i32) <= 5e7,
        "exact inference is exponential; graph too large"
    );
    let mut marginals = vec![0.0f64; v * s];
    let mut assignment = vec![0usize; v];
    let mut partition = 0.0f64;
    loop {
        let mut p = 1.0;
        for (vertex, &x) in assignment.iter().enumerate() {
            p *= mrf.unary(vertex as VertexId, x);
        }
        for (a, b) in mrf.graph.edge_iter() {
            p *= mrf
                .pairwise
                .eval(assignment[a as usize], assignment[b as usize]);
        }
        partition += p;
        for (vertex, &x) in assignment.iter().enumerate() {
            marginals[vertex * s + x] += p;
        }
        // Odometer increment over assignments.
        let mut k = 0;
        loop {
            if k == v {
                for m in &mut marginals {
                    *m /= partition;
                }
                return marginals;
            }
            assignment[k] += 1;
            if assignment[k] < s {
                break;
            }
            assignment[k] = 0;
            k += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{binary_tree, grid2d, path, ring};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_unary<R: Rng + ?Sized>(v: usize, s: usize, rng: &mut R) -> Vec<f64> {
        (0..v * s).map(|_| rng.gen_range(0.2..2.0)).collect()
    }

    fn assert_close(a: &[f64], b: &[f64], tol: f64, what: &str) {
        assert_eq!(a.len(), b.len());
        for (i, (&x, &y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < tol, "{what}: index {i}: {x} vs {y}");
        }
    }

    #[test]
    fn bp_exact_on_path() {
        let mut rng = StdRng::seed_from_u64(11);
        let g = path(7);
        let mrf = PairwiseMrf::new(
            g,
            2,
            random_unary(7, 2, &mut rng),
            PairwisePotential::Potts {
                same: 1.5,
                diff: 0.7,
            },
        );
        let exact = exact_marginals(&mrf);
        let mut bp = BeliefPropagation::new(&mrf);
        let run = bp.run(100, 1e-10);
        assert!(run.converged, "BP must converge on a tree");
        assert_close(&bp.marginals(), &exact, 1e-7, "path marginals");
    }

    #[test]
    fn bp_exact_on_binary_tree_three_states() {
        let mut rng = StdRng::seed_from_u64(13);
        let v = 10;
        let g = binary_tree(v);
        let mrf = PairwiseMrf::new(
            g,
            3,
            random_unary(v, 3, &mut rng),
            PairwisePotential::Potts {
                same: 2.0,
                diff: 0.5,
            },
        );
        let exact = exact_marginals(&mrf);
        let mut bp = BeliefPropagation::new(&mrf);
        let run = bp.run(200, 1e-12);
        assert!(run.converged);
        assert_close(&bp.marginals(), &exact, 1e-7, "tree marginals");
    }

    #[test]
    fn bp_converges_in_diameter_iterations_on_tree() {
        // On a tree, synchronous BP converges in at most diameter+1 sweeps.
        let mut rng = StdRng::seed_from_u64(17);
        let v = 9;
        let g = path(v);
        let mrf = PairwiseMrf::new(
            g,
            2,
            random_unary(v, 2, &mut rng),
            PairwisePotential::Potts {
                same: 1.3,
                diff: 0.9,
            },
        );
        let mut bp = BeliefPropagation::new(&mrf);
        let run = bp.run(v + 2, 1e-12);
        assert!(run.converged, "needed {} iterations", run.iterations);
        assert!(run.iterations <= v + 1);
    }

    #[test]
    fn loopy_bp_close_to_exact_on_small_cycle() {
        // Loopy BP is approximate on cycles but known to be accurate for
        // weak couplings.
        let mut rng = StdRng::seed_from_u64(19);
        let v = 8;
        let g = ring(v);
        let mrf = PairwiseMrf::new(
            g,
            2,
            random_unary(v, 2, &mut rng),
            PairwisePotential::Potts {
                same: 1.1,
                diff: 0.95,
            },
        );
        let exact = exact_marginals(&mrf);
        let mut bp = BeliefPropagation::new(&mrf);
        let run = bp.run(500, 1e-10);
        assert!(run.converged);
        assert_close(&bp.marginals(), &exact, 0.02, "cycle marginals");
    }

    #[test]
    fn uniform_pairwise_yields_unary_marginals() {
        // With ψ ≡ 1 the variables are independent: marginals are just the
        // normalised unaries, whatever the graph.
        let mut rng = StdRng::seed_from_u64(23);
        let v = 12;
        let g = grid2d(3, 4);
        let unary = random_unary(v, 2, &mut rng);
        let mrf = PairwiseMrf::new(g, 2, unary.clone(), PairwisePotential::Uniform);
        let mut bp = BeliefPropagation::new(&mrf);
        bp.run(50, 1e-12);
        for vertex in 0..v {
            let total = unary[vertex * 2] + unary[vertex * 2 + 1];
            let b = bp.belief(vertex as VertexId);
            assert!((b[0] - unary[vertex * 2] / total).abs() < 1e-9);
        }
    }

    #[test]
    fn marginals_are_normalised_even_without_convergence() {
        let g = grid2d(5, 5);
        let mrf = PairwiseMrf::uniform(
            g,
            4,
            PairwisePotential::Potts {
                same: 3.0,
                diff: 0.3,
            },
        );
        let mut bp = BeliefPropagation::new(&mrf);
        bp.run(3, 0.0); // deliberately unconverged
        let m = bp.marginals();
        for v in 0..mrf.vertices() {
            let s: f64 = m[v * 4..(v + 1) * 4].iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn damping_reaches_same_tree_fixed_point() {
        let mut rng = StdRng::seed_from_u64(29);
        let v = 8;
        let g = path(v);
        let mrf = PairwiseMrf::new(
            g,
            2,
            random_unary(v, 2, &mut rng),
            PairwisePotential::Potts {
                same: 1.4,
                diff: 0.6,
            },
        );
        let exact = exact_marginals(&mrf);
        let mut bp = BeliefPropagation::new(&mrf);
        bp.damping = 0.4;
        let run = bp.run(500, 1e-11);
        assert!(run.converged);
        assert_close(&bp.marginals(), &exact, 1e-6, "damped marginals");
    }

    #[test]
    fn potts_smoothing_pulls_neighbors_together() {
        // A 1-D chain with one strongly-biased endpoint: smoothing
        // propagates the bias down the chain with decaying strength.
        let v = 6;
        let g = path(v);
        let mut unary = vec![1.0; v * 2];
        unary[0] = 10.0; // vertex 0 strongly prefers state 0
        unary[1] = 0.1;
        let mrf = PairwiseMrf::new(
            g,
            2,
            unary,
            PairwisePotential::Potts {
                same: 2.0,
                diff: 0.5,
            },
        );
        let mut bp = BeliefPropagation::new(&mrf);
        bp.run(100, 1e-12);
        let mut prev = 1.0;
        for vertex in 0..v as VertexId {
            let b0 = bp.belief(vertex)[0];
            assert!(b0 > 0.5, "bias must reach vertex {vertex} (b0 = {b0})");
            assert!(b0 <= prev + 1e-9, "influence must decay along the chain");
            prev = b0;
        }
    }

    #[test]
    fn modeled_madds_match_formula() {
        let g = grid2d(4, 4);
        let e = g.edges() as f64;
        let mrf = PairwiseMrf::uniform(g, 2, PairwisePotential::Uniform);
        // c(2) = 2 + 2·(2+4) = 14 per edge.
        assert!((mrf.modeled_iteration_madds() - 14.0 * e).abs() < 1e-9);
    }

    #[test]
    fn reverse_index_is_involution() {
        let g = grid2d(3, 3);
        let mut offsets = vec![0usize];
        for v in 0..g.vertices() as VertexId {
            offsets.push(offsets.last().unwrap() + g.neighbors(v).len());
        }
        let rev = build_reverse_index(&g, &offsets);
        for (a, &r) in rev.iter().enumerate() {
            assert_eq!(rev[r as usize], a as u64, "reverse must be an involution");
            assert_ne!(r as usize, a, "no self-loops in a grid");
        }
    }

    #[test]
    #[should_panic(expected = "strictly positive")]
    fn zero_unary_rejected() {
        let g = path(2);
        let _ = PairwiseMrf::new(g, 2, vec![1.0, 0.0, 1.0, 1.0], PairwisePotential::Uniform);
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn exact_inference_guards_size() {
        let g = grid2d(10, 10);
        let mrf = PairwiseMrf::uniform(g, 2, PairwisePotential::Uniform);
        let _ = exact_marginals(&mrf);
    }

    #[test]
    fn bp_run_report_fields_consistent() {
        let g = path(4);
        let mrf = PairwiseMrf::uniform(
            g,
            2,
            PairwisePotential::Potts {
                same: 1.2,
                diff: 0.8,
            },
        );
        let mut bp = BeliefPropagation::new(&mrf);
        let run = bp.run(1, 1e-30);
        assert_eq!(run.iterations, 1);
        assert!(!run.converged || run.final_delta <= 1e-30);
    }
}
