//! Weighted sampling utilities: Walker alias tables and power-law weight
//! construction used by the graph generators.

use rand::Rng;

/// Walker's alias method: O(V) construction, O(1) weighted sampling.
/// Used to draw edge endpoints proportional to vertex weights when
/// generating Chung-Lu-style power-law graphs with ~10⁸ edges.
#[derive(Debug, Clone)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<u32>,
}

impl AliasTable {
    /// Builds an alias table over the given non-negative weights.
    ///
    /// # Panics
    /// Panics when `weights` is empty, contains a negative/NaN value, or
    /// sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "need at least one weight");
        for &w in weights {
            assert!(w >= 0.0 && w.is_finite(), "weights must be non-negative");
        }
        let total: f64 = weights.iter().sum();
        assert!(
            total.is_finite() && total > 0.0,
            "weights must be finite with positive sum"
        );
        let n = weights.len();
        let mut prob: Vec<f64> = weights.iter().map(|&w| w * n as f64 / total).collect();
        let mut alias = vec![0u32; n];
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            alias[s as usize] = l;
            prob[l as usize] = (prob[l as usize] + prob[s as usize]) - 1.0;
            if prob[l as usize] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Numerical leftovers are certain picks.
        for l in large {
            prob[l as usize] = 1.0;
        }
        for s in small {
            prob[s as usize] = 1.0;
        }
        Self { prob, alias }
    }

    /// Draws one index with probability proportional to its weight.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        let i = rng.gen_range(0..self.prob.len());
        if rng.gen::<f64>() < self.prob[i] {
            i as u32
        } else {
            self.alias[i]
        }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True when the table is empty (never: construction requires ≥ 1).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }
}

/// Zipf-like weight sequence `w_v = w_max·(v+1)^(−γ)` with `γ` solved by
/// bisection so the weights sum to `total`. Returns `(weights, gamma)`.
///
/// This shapes an expected-degree sequence with a heaviest hub of expected
/// degree `w_max` and `Σw = total = 2E`, mimicking a power-law traffic
/// graph like the paper's DNS graph.
///
/// # Panics
/// Panics when the target is infeasible (`total < w_max` or
/// `total > w_max·v` — weights cannot exceed the hub or fall below a
/// uniform floor).
pub fn zipf_weights(v: usize, w_max: f64, total: f64) -> (Vec<f64>, f64) {
    assert!(v >= 2, "need at least two vertices");
    assert!(w_max > 0.0 && total > 0.0);
    assert!(
        total >= w_max,
        "total weight below the hub weight is infeasible"
    );
    assert!(
        total <= w_max * v as f64,
        "total weight above w_max·V is infeasible for a decreasing sequence"
    );
    let sum_for =
        |gamma: f64| -> f64 { (0..v).map(|i| w_max * ((i + 1) as f64).powf(-gamma)).sum() };
    // γ=0 gives w_max·V (max), γ→∞ gives w_max (min); bisection on the
    // monotone-decreasing sum.
    let (mut lo, mut hi) = (0.0f64, 50.0f64);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if sum_for(mid) > total {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo < 1e-12 {
            break;
        }
    }
    let gamma = 0.5 * (lo + hi);
    let weights: Vec<f64> = (0..v)
        .map(|i| w_max * ((i + 1) as f64).powf(-gamma))
        .collect();
    (weights, gamma)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn alias_table_matches_weights_statistically() {
        let weights = [1.0, 2.0, 3.0, 4.0];
        let table = AliasTable::new(&weights);
        let mut rng = StdRng::seed_from_u64(99);
        let mut counts = [0u32; 4];
        let trials = 200_000;
        for _ in 0..trials {
            counts[table.sample(&mut rng) as usize] += 1;
        }
        let total: f64 = weights.iter().sum();
        for (i, &w) in weights.iter().enumerate() {
            let expected = w / total;
            let observed = f64::from(counts[i]) / trials as f64;
            assert!(
                (observed - expected).abs() < 0.01,
                "category {i}: expected {expected}, observed {observed}"
            );
        }
    }

    #[test]
    fn alias_table_degenerate_single_category() {
        let table = AliasTable::new(&[5.0]);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(table.sample(&mut rng), 0);
        }
    }

    #[test]
    fn alias_table_zero_weight_never_sampled() {
        let table = AliasTable::new(&[0.0, 1.0]);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10_000 {
            assert_eq!(table.sample(&mut rng), 1);
        }
    }

    #[test]
    #[should_panic(expected = "positive sum")]
    fn all_zero_weights_rejected() {
        let _ = AliasTable::new(&[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weight_rejected() {
        let _ = AliasTable::new(&[1.0, -1.0]);
    }

    #[test]
    fn zipf_weights_hit_total_and_hub() {
        let v = 10_000;
        let w_max = 500.0;
        let total = 60_000.0;
        let (weights, gamma) = zipf_weights(v, w_max, total);
        assert_eq!(weights.len(), v);
        assert!((weights.iter().sum::<f64>() - total).abs() / total < 1e-6);
        assert!((weights[0] - w_max).abs() < 1e-9);
        assert!(gamma > 0.0);
        // Strictly decreasing.
        assert!(weights.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn zipf_uniform_limit() {
        // total == w_max·V forces γ≈0, i.e. near-uniform weights.
        let (weights, gamma) = zipf_weights(100, 10.0, 1000.0);
        assert!(gamma < 1e-3);
        assert!(weights.iter().all(|&w| (w - 10.0).abs() < 0.1));
    }

    #[test]
    #[should_panic(expected = "infeasible")]
    fn zipf_infeasible_total_rejected() {
        let _ = zipf_weights(10, 100.0, 50.0);
    }
}
