//! Vertex partitioning across workers and the partition statistics the
//! scalability model consumes: exact per-worker edge loads (the `E_i` of
//! the paper), intra-worker (duplicate-counted) edges, and the replication
//! factor `r` of the communication model.

use crate::csr::{CsrGraph, VertexId};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// An assignment of every vertex to one of `n` workers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partition {
    /// `assignment[v]` is the worker that owns vertex `v`.
    assignment: Vec<u32>,
    /// Number of workers.
    workers: usize,
}

impl Partition {
    /// Wraps an explicit assignment.
    ///
    /// # Panics
    /// Panics when any worker id is `>= workers` or `workers == 0`.
    pub fn new(assignment: Vec<u32>, workers: usize) -> Self {
        assert!(workers >= 1, "need at least one worker");
        assert!(
            assignment.iter().all(|&w| (w as usize) < workers),
            "assignment references worker out of range"
        );
        Self {
            assignment,
            workers,
        }
    }

    /// The paper's strategy: "we randomly assign each vertex to a worker".
    pub fn random<R: Rng + ?Sized>(vertices: usize, workers: usize, rng: &mut R) -> Self {
        assert!(workers >= 1);
        let assignment = (0..vertices)
            .map(|_| rng.gen_range(0..workers) as u32)
            .collect();
        Self {
            assignment,
            workers,
        }
    }

    /// Deterministic hash assignment (multiplicative hashing of the vertex
    /// id) — what a production system typically does instead of true
    /// randomness.
    pub fn hashed(vertices: usize, workers: usize) -> Self {
        assert!(workers >= 1);
        let assignment = (0..vertices as u64)
            .map(|v| {
                let h = v.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(31);
                (h % workers as u64) as u32
            })
            .collect();
        Self {
            assignment,
            workers,
        }
    }

    /// Contiguous block ranges: vertex ids `[kV/n, (k+1)V/n)` go to worker
    /// `k`. Sensitive to vertex-id ordering (hub clustering).
    pub fn block(vertices: usize, workers: usize) -> Self {
        assert!(workers >= 1);
        let assignment = (0..vertices)
            .map(|v| ((v * workers) / vertices.max(1)).min(workers - 1) as u32)
            .collect();
        Self {
            assignment,
            workers,
        }
    }

    /// Greedy balanced-degree assignment: vertices in decreasing degree
    /// order, each to the worker with the smallest degree sum so far (LPT
    /// scheduling). A much better balance than random for skewed graphs —
    /// used by the ablation experiments.
    pub fn greedy_balanced(graph: &CsrGraph, workers: usize) -> Self {
        assert!(workers >= 1);
        let mut order: Vec<VertexId> = (0..graph.vertices() as VertexId).collect();
        order.sort_unstable_by_key(|&v| std::cmp::Reverse(graph.degree(v)));
        let mut loads = vec![0u64; workers];
        let mut assignment = vec![0u32; graph.vertices()];
        for v in order {
            let (w, _) = loads
                .iter()
                .enumerate()
                .min_by_key(|&(_, &l)| l)
                // lint: allow(panic-free-lib): loads has `workers` entries and the assert! above requires workers >= 1
                .expect("workers >= 1");
            assignment[v as usize] = w as u32;
            loads[w] += u64::from(graph.degree(v));
        }
        Self {
            assignment,
            workers,
        }
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Number of vertices the assignment covers.
    pub fn vertices(&self) -> usize {
        self.assignment.len()
    }

    /// Owner of a vertex.
    #[inline]
    pub fn owner(&self, v: VertexId) -> u32 {
        self.assignment[v as usize]
    }

    /// Number of vertices per worker.
    pub fn vertex_counts(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.workers];
        for &w in &self.assignment {
            counts[w as usize] += 1;
        }
        counts
    }
}

/// Exact per-partition statistics of a partitioned graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartitionStats {
    /// Per-worker degree sums — the paper's raw `E_i^rnd` (intra-worker
    /// edges counted twice).
    pub degree_sums: Vec<u64>,
    /// Per-worker intra-partition edge counts (the edges the correction
    /// `E_dup` estimates).
    pub intra_edges: Vec<u64>,
    /// Per-worker *distinct incident edge* counts
    /// `E_i = degree_sum_i − intra_i`.
    pub incident_edges: Vec<u64>,
    /// Number of cut (inter-worker) edges.
    pub cut_edges: u64,
    /// Total vertex replicas: for every vertex, the number of *other*
    /// workers hosting at least one neighbor (each needs a copy of the
    /// vertex's state every iteration).
    pub replicas: u64,
    /// Vertices in the graph.
    pub vertices: usize,
}

impl PartitionStats {
    /// Computes exact statistics in `O(V + E)` time (plus `O(n)` per vertex
    /// worst case for replica de-duplication, bounded by the degree).
    pub fn compute(graph: &CsrGraph, partition: &Partition) -> Self {
        let n = partition.workers();
        assert_eq!(
            graph.vertices(),
            partition.assignment.len(),
            "partition size must match the graph"
        );
        let mut degree_sums = vec![0u64; n];
        let mut intra = vec![0u64; n];
        let mut cut = 0u64;
        for v in 0..graph.vertices() as VertexId {
            degree_sums[partition.owner(v) as usize] += u64::from(graph.degree(v));
        }
        for (u, v) in graph.edge_iter() {
            let (wu, wv) = (partition.owner(u), partition.owner(v));
            if wu == wv {
                intra[wu as usize] += 1;
            } else {
                cut += 1;
            }
        }
        let incident: Vec<u64> = degree_sums
            .iter()
            .zip(&intra)
            .map(|(&d, &i)| d - i)
            .collect();
        // Replicas: distinct remote owner count per vertex. A per-worker
        // stamp array marks the owners already counted for the current
        // vertex — O(deg) per vertex with no sorting or allocation in the
        // loop (the sort-dedup this replaces dominated the whole
        // statistics pass on large graphs).
        let mut replicas = 0u64;
        let mut stamp = vec![0u64; n];
        for v in 0..graph.vertices() as VertexId {
            let home = partition.owner(v);
            let mark = u64::from(v) + 1;
            for &u in graph.neighbors(v) {
                let w = partition.owner(u);
                if w != home && stamp[w as usize] != mark {
                    stamp[w as usize] = mark;
                    replicas += 1;
                }
            }
        }
        Self {
            degree_sums,
            intra_edges: intra,
            incident_edges: incident,
            cut_edges: cut,
            replicas,
            vertices: graph.vertices(),
        }
    }

    /// The slowest worker's incident-edge count — the exact `max_i(E_i)`
    /// of the paper's computation model.
    pub fn max_incident_edges(&self) -> u64 {
        self.incident_edges.iter().copied().max().unwrap_or(0)
    }

    /// Replication factor `r = replicas / V` of the communication model.
    pub fn replication_factor(&self) -> f64 {
        if self.vertices == 0 {
            return 0.0;
        }
        self.replicas as f64 / self.vertices as f64
    }

    /// Load imbalance: `max_i(E_i) / mean_i(E_i)` (1.0 = perfectly even).
    pub fn imbalance(&self) -> f64 {
        let max = self.max_incident_edges() as f64;
        let mean =
            self.incident_edges.iter().sum::<u64>() as f64 / self.incident_edges.len() as f64;
        if mean == 0.0 {
            return 1.0;
        }
        max / mean
    }
}

/// Exact `max_i(E_i)` per worker count `n = 1..=max_n` under a given
/// partitioning strategy, averaged over `trials` random draws (one trial
/// for the deterministic strategies). This is the "measured" counterpart of
/// the paper's Monte-Carlo estimate.
pub fn max_edges_by_workers<R: Rng + ?Sized>(
    graph: &CsrGraph,
    max_n: usize,
    trials: usize,
    rng: &mut R,
) -> Vec<f64> {
    assert!(max_n >= 1 && trials >= 1);
    (1..=max_n)
        .map(|n| {
            if n == 1 {
                return graph.edges() as f64;
            }
            let sum: f64 = (0..trials)
                .map(|_| {
                    let p = Partition::random(graph.vertices(), n, rng);
                    PartitionStats::compute(graph, &p).max_incident_edges() as f64
                })
                .sum();
            sum / trials as f64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{complete, gnm, star};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn random_partition_covers_all_vertices() {
        let p = Partition::random(1000, 8, &mut rng());
        assert_eq!(p.vertex_counts().iter().sum::<u64>(), 1000);
        assert!(
            p.vertex_counts().iter().all(|&c| c > 0),
            "all workers used at this size"
        );
    }

    #[test]
    fn hashed_partition_deterministic_and_balanced() {
        let a = Partition::hashed(10_000, 16);
        let b = Partition::hashed(10_000, 16);
        assert_eq!(a, b);
        let counts = a.vertex_counts();
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(*max < 2 * *min, "hash balance: {counts:?}");
    }

    #[test]
    fn block_partition_contiguous() {
        let p = Partition::block(10, 2);
        assert_eq!(p.owner(0), 0);
        assert_eq!(p.owner(4), 0);
        assert_eq!(p.owner(5), 1);
        assert_eq!(p.owner(9), 1);
    }

    #[test]
    fn stats_conserve_edges() {
        let g = gnm(500, 3000, &mut rng());
        let p = Partition::random(500, 7, &mut rng());
        let s = PartitionStats::compute(&g, &p);
        // Σ intra + cut = E.
        let intra_total: u64 = s.intra_edges.iter().sum();
        assert_eq!(intra_total + s.cut_edges, g.edges());
        // Σ degree sums = 2E.
        assert_eq!(s.degree_sums.iter().sum::<u64>(), 2 * g.edges());
        // Σ incident = Σ degree − Σ intra = 2E − intra = E + cut.
        assert_eq!(
            s.incident_edges.iter().sum::<u64>(),
            g.edges() + s.cut_edges
        );
    }

    #[test]
    fn single_worker_stats() {
        let g = gnm(100, 400, &mut rng());
        let p = Partition::new(vec![0; 100], 1);
        let s = PartitionStats::compute(&g, &p);
        assert_eq!(s.max_incident_edges(), g.edges());
        assert_eq!(s.cut_edges, 0);
        assert_eq!(s.replicas, 0);
        assert_eq!(s.replication_factor(), 0.0);
        assert!((s.imbalance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn star_hub_dominates_random_partition() {
        let g = star(1001);
        let p = Partition::random(1001, 10, &mut rng());
        let s = PartitionStats::compute(&g, &p);
        // The hub's owner carries ~all 1000 edges.
        assert!(s.max_incident_edges() >= 900);
        assert!(s.imbalance() > 3.0);
    }

    #[test]
    fn greedy_beats_random_on_skewed_graph() {
        // Hub-heavy graph: greedy balanced loads much more evenly.
        let mut edges = Vec::new();
        for v in 1..2001u32 {
            edges.push((0, v)); // hub
        }
        for v in 1..2000u32 {
            edges.push((v, v + 1)); // chain
        }
        let g = CsrGraph::from_edges(2001, &edges);
        let mut r = rng();
        let random = PartitionStats::compute(&g, &Partition::random(2001, 8, &mut r));
        let greedy = PartitionStats::compute(&g, &Partition::greedy_balanced(&g, 8));
        assert!(
            greedy.max_incident_edges() < random.max_incident_edges(),
            "greedy {} vs random {}",
            greedy.max_incident_edges(),
            random.max_incident_edges()
        );
        assert!(greedy.imbalance() < random.imbalance());
    }

    #[test]
    fn replication_factor_bounds() {
        let g = complete(20);
        let p = Partition::random(20, 4, &mut rng());
        let s = PartitionStats::compute(&g, &p);
        // In a complete graph every vertex neighbors every worker: r = n−1
        // (unless a worker is empty).
        let occupied = s.degree_sums.iter().filter(|&&d| d > 0).count();
        assert!(s.replication_factor() <= (occupied - 1) as f64 + 1e-12);
        assert!(s.replication_factor() > 0.0);
    }

    #[test]
    fn max_edges_by_workers_decreasing_overall() {
        let g = gnm(2000, 12_000, &mut rng());
        let series = max_edges_by_workers(&g, 8, 3, &mut rng());
        assert_eq!(series.len(), 8);
        assert_eq!(series[0], g.edges() as f64);
        // More workers → max load shrinks (not necessarily strictly).
        assert!(series[7] < series[0] / 3.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_assignment_rejected() {
        let _ = Partition::new(vec![0, 3], 2);
    }

    #[test]
    #[should_panic(expected = "match the graph")]
    fn mismatched_partition_rejected() {
        let g = gnm(10, 20, &mut rng());
        let p = Partition::new(vec![0; 5], 1);
        let _ = PartitionStats::compute(&g, &p);
    }
}
