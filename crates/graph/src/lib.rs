//! # mlscale-graph — graph substrate for scalability modeling
//!
//! The graph-side machinery of the paper's belief-propagation experiments,
//! built from scratch:
//!
//! * [`csr`] — compact CSR undirected graphs (the Fig 4 graph has 16.3M
//!   vertices and ~100M edges);
//! * [`generators`] — Erdős–Rényi, Chung-Lu power-law, and
//!   [`generators::dns_like`]: a power-law graph calibrated to the paper's
//!   proprietary DNS traffic graph (V, E, and max degree matched);
//! * [`sampling`] — alias-method weighted sampling and Zipf weight
//!   calibration backing the generators;
//! * [`partition`] — vertex-to-worker assignment strategies and the exact
//!   partition statistics the model consumes (`max_i(E_i)`, replication
//!   factor `r`);
//! * [`mrf`] — pairwise Markov random fields and a real synchronous loopy
//!   belief propagation engine, validated against exact inference on trees.
//!
//! ```
//! use mlscale_graph::generators;
//! use mlscale_graph::mrf::{BeliefPropagation, PairwiseMrf, PairwisePotential};
//!
//! // BP on a tree is exact and converges in diameter sweeps.
//! let g = generators::path(5);
//! let mrf = PairwiseMrf::uniform(g, 2, PairwisePotential::Potts { same: 2.0, diff: 0.5 });
//! let mut bp = BeliefPropagation::new(&mrf);
//! assert!(bp.run(10, 1e-9).converged);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod csr;
pub mod generators;
pub mod gibbs;
pub mod mrf;
pub mod mrf_builders;
pub mod pargibbs;
pub mod partition;
pub mod sampling;
pub mod traversal;

pub use csr::{CsrGraph, VertexId};
pub use partition::{Partition, PartitionStats};
