//! Domain MRF builders for the paper's cited BP applications: image
//! denoising (grid MRFs with noisy-observation unaries) and entity
//! labelling over traffic-like graphs (malware/fraud detection with seed
//! evidence).

use crate::csr::{CsrGraph, VertexId};
use crate::generators::grid2d;
use crate::mrf::{PairwiseMrf, PairwisePotential};
use rand::Rng;

/// Builds an image-denoising MRF: a `rows × cols` binary image is
/// corrupted by flipping each pixel with probability `noise`, and the MRF
/// couples each noisy observation (unary) with Potts smoothing (pairwise).
///
/// Returns `(mrf, clean_image)` so callers can measure reconstruction
/// accuracy. Unary potentials encode the observation likelihood
/// `P(obs | pixel) = 1 − noise` if equal else `noise`.
///
/// # Panics
/// Panics when `noise` is not within `(0, 0.5)` (at 0.5 the observation
/// carries no information; beyond it labels invert).
pub fn denoising_mrf<R: Rng + ?Sized>(
    rows: usize,
    cols: usize,
    noise: f64,
    smoothing: f64,
    clean: impl Fn(usize, usize) -> bool,
    rng: &mut R,
) -> (PairwiseMrf, Vec<bool>) {
    let v = rows * cols;
    let clean_image: Vec<bool> = (0..v).map(|i| clean(i / cols, i % cols)).collect();
    let observed: Vec<bool> = clean_image
        .iter()
        .map(|&pixel| {
            if rng.gen::<f64>() < noise {
                !pixel
            } else {
                pixel
            }
        })
        .collect();
    let mrf = denoising_mrf_from_observations(rows, cols, noise, smoothing, &observed);
    (mrf, clean_image)
}

/// Builds the denoising MRF from an *explicit* observed image rather than
/// sampling the corruption — the deterministic fixture path: tests (and
/// reproductions) can pin an exact noisy image and an exact accuracy
/// bound, independent of any RNG stream.
///
/// `noise` is the corruption probability the unaries assume, exactly as in
/// [`denoising_mrf`].
///
/// # Panics
/// Panics when `noise` is not within `(0, 0.5)`, `smoothing < 1`, or the
/// observed image does not have `rows × cols` pixels.
pub fn denoising_mrf_from_observations(
    rows: usize,
    cols: usize,
    noise: f64,
    smoothing: f64,
    observed: &[bool],
) -> PairwiseMrf {
    assert!(noise > 0.0 && noise < 0.5, "noise must be in (0, 0.5)");
    assert!(smoothing >= 1.0, "smoothing must prefer agreement");
    let v = rows * cols;
    assert_eq!(observed.len(), v, "observed image must be rows × cols");
    let graph = grid2d(rows, cols);
    let mut unary = Vec::with_capacity(v * 2);
    for &obs in observed {
        // φ(x) = P(observed | x).
        let p_obs_given_0 = if obs { noise } else { 1.0 - noise };
        let p_obs_given_1 = if obs { 1.0 - noise } else { noise };
        unary.push(p_obs_given_0);
        unary.push(p_obs_given_1);
    }
    PairwiseMrf::new(
        graph,
        2,
        unary,
        PairwisePotential::Potts {
            same: smoothing,
            diff: 1.0,
        },
    )
}

/// Classifies every vertex by its maximum-posterior-marginal state.
pub fn map_labels(marginals: &[f64], states: usize) -> Vec<usize> {
    assert!(states >= 2 && marginals.len().is_multiple_of(states));
    marginals
        .chunks(states)
        .map(|row| {
            // Ties break toward the smaller state index.
            let mut best = 0;
            for (i, &v) in row.iter().enumerate().skip(1) {
                if v > row[best] {
                    best = i;
                }
            }
            best
        })
        .collect()
}

/// Builds a malicious-entity-labelling MRF over an arbitrary graph (the
/// paper's DNS / malware-detection use case): a few `seeds` carry strong
/// evidence of being malicious (state 1), everything else has a weak
/// benign prior, and homophily couples neighbors.
pub fn entity_labeling_mrf(
    graph: CsrGraph,
    seeds: &[VertexId],
    seed_strength: f64,
    benign_prior: f64,
    homophily: f64,
) -> PairwiseMrf {
    assert!(seed_strength > 1.0, "seed evidence must be informative");
    assert!(benign_prior > 1.0, "benign prior must lean benign");
    assert!(homophily >= 1.0, "homophily must prefer agreement");
    let v = graph.vertices();
    // φ = [benign affinity, malicious affinity].
    let mut unary = Vec::with_capacity(v * 2);
    for _ in 0..v {
        unary.push(benign_prior);
        unary.push(1.0);
    }
    for &s in seeds {
        assert!((s as usize) < v, "seed {s} out of range");
        unary[s as usize * 2] = 1.0;
        unary[s as usize * 2 + 1] = seed_strength;
    }
    PairwiseMrf::new(
        graph,
        2,
        unary,
        PairwisePotential::Potts {
            same: homophily,
            diff: 1.0,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::star;
    use crate::mrf::BeliefPropagation;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The deterministic denoising fixture: a 16×16 half-and-half image
    /// (left false, right true) with every 7th pixel flipped — a fixed
    /// ~14 % corruption pattern scattered across both halves, no RNG.
    fn fixture_images() -> (Vec<bool>, Vec<bool>) {
        let clean: Vec<bool> = (0..256).map(|i| i % 16 >= 8).collect();
        let observed: Vec<bool> = clean
            .iter()
            .enumerate()
            .map(|(i, &p)| if i % 7 == 3 { !p } else { p })
            .collect();
        (clean, observed)
    }

    #[test]
    fn denoising_recovers_most_pixels() {
        // Fully deterministic: fixed noisy image in, fixed accuracy bound
        // out. The suite cannot flake under a different RNG stand-in
        // because no random numbers are drawn anywhere.
        let (clean, observed) = fixture_images();
        let flipped = clean.iter().zip(&observed).filter(|(c, o)| c != o).count();
        assert_eq!(flipped, 37, "fixture corrupts exactly 37 of 256 pixels");
        let mrf = denoising_mrf_from_observations(16, 16, 0.15, 2.5, &observed);
        let mut bp = BeliefPropagation::new(&mrf);
        bp.damping = 0.2;
        bp.run(100, 1e-7);
        let labels = map_labels(&bp.marginals(), 2);
        let correct = labels
            .iter()
            .zip(&clean)
            .filter(|&(&l, &c)| (l == 1) == c)
            .count();
        let accuracy = correct as f64 / clean.len() as f64;
        assert!(
            accuracy > 0.95,
            "denoising accuracy {accuracy} on the fixed fixture"
        );
        // And strictly better than reading the raw observations.
        let raw_accuracy = (256 - flipped) as f64 / 256.0;
        assert!(accuracy > raw_accuracy, "{accuracy} vs raw {raw_accuracy}");
    }

    #[test]
    fn observation_builder_matches_sampled_builder() {
        // denoising_mrf = corruption sampling + the deterministic builder;
        // replaying the same RNG stream through both paths must give an
        // MRF with identical inference results (pins the refactoring seam).
        let clean = |r: usize, _c: usize| r < 4;
        let mut rng = StdRng::seed_from_u64(0xF17);
        let (mrf_sampled, clean_img) = denoising_mrf(8, 8, 0.2, 2.0, clean, &mut rng);
        let mut replay = StdRng::seed_from_u64(0xF17);
        let observed: Vec<bool> = clean_img
            .iter()
            .map(|&p| if replay.gen::<f64>() < 0.2 { !p } else { p })
            .collect();
        let mrf_explicit = denoising_mrf_from_observations(8, 8, 0.2, 2.0, &observed);
        let mut bp1 = BeliefPropagation::new(&mrf_sampled);
        bp1.run(30, 1e-6);
        let mut bp2 = BeliefPropagation::new(&mrf_explicit);
        bp2.run(30, 1e-6);
        assert_eq!(bp1.marginals(), bp2.marginals());
    }

    #[test]
    fn denoising_beats_raw_observations() {
        let mut rng = StdRng::seed_from_u64(0xDE02);
        let noise = 0.25;
        let (mrf, clean) = denoising_mrf(20, 20, noise, 2.0, |r, _| r % 2 == 0, &mut rng);
        // Raw observation accuracy ≈ 1 − noise; smoothing should not be
        // worse on a structured image. (Alternating rows are adversarial
        // for vertical smoothing, so just require parity with raw.)
        let mut bp = BeliefPropagation::new(&mrf);
        bp.damping = 0.3;
        bp.run(100, 1e-6);
        let labels = map_labels(&bp.marginals(), 2);
        let correct = labels
            .iter()
            .zip(&clean)
            .filter(|&(&l, &c)| (l == 1) == c)
            .count() as f64
            / clean.len() as f64;
        assert!(correct > 0.6, "got {correct}");
    }

    #[test]
    fn entity_labeling_spreads_from_seed() {
        // A small star: seeding the hub should raise suspicion on all
        // leaves. (With many leaves the accumulated benign prior mass of
        // the neighbors would out-vote the seed — itself an instructive
        // BP behaviour.)
        let g = star(8);
        let mrf = entity_labeling_mrf(g, &[0], 50.0, 1.5, 2.0);
        let mut bp = BeliefPropagation::new(&mrf);
        bp.run(50, 1e-9);
        let hub = bp.belief(0);
        assert!(hub[1] > 0.9, "seed stays malicious: {hub:?}");
        let leaf = bp.belief(4);
        let unseeded_prior = 1.0 / (1.0 + 1.5);
        assert!(
            leaf[1] > unseeded_prior,
            "leaf suspicion {:.3} must exceed the prior {:.3}",
            leaf[1],
            unseeded_prior
        );
    }

    #[test]
    fn entity_labeling_far_vertices_stay_benign() {
        let g = crate::generators::path(30);
        let mrf = entity_labeling_mrf(g, &[0], 20.0, 2.0, 1.5);
        let mut bp = BeliefPropagation::new(&mrf);
        bp.run(100, 1e-10);
        // The far end of the chain barely feels the seed.
        let far = bp.belief(29);
        assert!(far[0] > 0.6, "distant vertex stays benign: {far:?}");
        // And suspicion decays monotonically-ish: nearer vertex more
        // suspicious than the far end.
        assert!(bp.belief(1)[1] > bp.belief(29)[1]);
    }

    #[test]
    fn map_labels_picks_argmax() {
        let m = vec![0.9, 0.1, 0.3, 0.7, 0.5, 0.5];
        assert_eq!(map_labels(&m, 2), vec![0, 1, 0]);
    }

    #[test]
    #[should_panic(expected = "noise must be in")]
    fn bad_noise_rejected() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = denoising_mrf(4, 4, 0.7, 2.0, |_, _| true, &mut rng);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_seed_rejected() {
        let g = star(5);
        let _ = entity_labeling_mrf(g, &[99], 10.0, 2.0, 1.5);
    }
}
