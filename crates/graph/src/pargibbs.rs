//! Partition-parallel Gibbs sampling — the distributed sampler the
//! scalability model prices.
//!
//! [`crate::gibbs::GibbsSampler`] resamples vertices strictly one at a
//! time, which is exactly the serial schedule the paper's `t(1)` measures.
//! Distributed samplers (GraphLab-style) instead split the vertex set
//! across workers with the same partitioner the scalability model uses
//! ([`crate::partition::Partition`]) and run one *superstep* per sweep:
//! every worker resamples its own vertices **sequentially**
//! (Gauss–Seidel within the partition) while reading *stale*
//! start-of-sweep states for neighbours owned by other workers — the
//! cross-partition messages a BSP barrier would deliver. Only cut edges
//! see stale values, so a good partition keeps the sampler close to the
//! sequential chain; with a single partition it **is** the sequential
//! chain, draw for draw.
//!
//! Each worker owns a seeded RNG stream, so a sweep is a deterministic
//! function of `(seed, partition)` — independent of the thread count.
//! The per-partition tasks fan out across threads via
//! [`mlscale_core::par`] and write disjoint state slices, making the
//! parallel sweep bit-identical to a serial loop over partitions.

use crate::csr::VertexId;
use crate::mrf::PairwiseMrf;
use crate::partition::Partition;
use mlscale_core::par;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A partition-parallel Gibbs sampler over a pairwise MRF.
#[derive(Debug)]
pub struct PartitionedGibbsSampler<'a> {
    mrf: &'a PairwiseMrf,
    /// `owner[v]` = worker holding vertex `v`.
    owner: Vec<u32>,
    /// `local_index[v]` = position of `v` within its worker's block.
    local_index: Vec<u32>,
    /// Per-worker owned vertices, ascending (the sweep order).
    blocks: Vec<Vec<VertexId>>,
    /// Per-worker RNG streams.
    rngs: Vec<StdRng>,
    /// Current state of every variable.
    state: Vec<u16>,
    /// Start-of-sweep snapshot buffer, reused across sweeps (the value
    /// remote neighbours read).
    snapshot: Vec<u16>,
    /// Per-vertex, per-state visit counts (accumulated after burn-in).
    counts: Vec<u64>,
    /// Recorded sweeps.
    recorded: u64,
}

impl<'a> PartitionedGibbsSampler<'a> {
    /// Builds the sampler over an explicit partition; worker `p`'s RNG
    /// stream is derived from `seed` and `p` (worker 0 reuses `seed`
    /// itself, so a single-partition sampler replays the sequential
    /// sampler's draws exactly).
    ///
    /// # Panics
    /// Panics when the partition does not cover the MRF's vertices, or
    /// the state count exceeds the sampler storage.
    pub fn new(mrf: &'a PairwiseMrf, partition: &Partition, seed: u64) -> Self {
        assert_eq!(
            partition.vertices(),
            mrf.vertices(),
            "partition must cover every MRF vertex"
        );
        assert!(
            mrf.states <= u16::MAX as usize,
            "state count exceeds sampler storage"
        );
        let workers = partition.workers();
        let mut owner = vec![0u32; mrf.vertices()];
        let mut local_index = vec![0u32; mrf.vertices()];
        let mut blocks: Vec<Vec<VertexId>> = vec![Vec::new(); workers];
        for v in 0..mrf.vertices() as VertexId {
            let w = partition.owner(v);
            owner[v as usize] = w;
            local_index[v as usize] = blocks[w as usize].len() as u32;
            blocks[w as usize].push(v);
        }
        let rngs = (0..workers as u64)
            .map(|p| StdRng::seed_from_u64(seed ^ p.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
            .collect();
        Self {
            mrf,
            owner,
            local_index,
            blocks,
            rngs,
            state: vec![0; mrf.vertices()],
            snapshot: vec![0; mrf.vertices()],
            counts: vec![0; mrf.vertices() * mrf.states],
            recorded: 0,
        }
    }

    /// Convenience: LPT degree-balanced blocks from the CSR partitioner
    /// ([`Partition::greedy_balanced`]) — the partition the scalability
    /// model's `max_i(E_i)` term assumes a good system would use.
    pub fn balanced(mrf: &'a PairwiseMrf, workers: usize, seed: u64) -> Self {
        let partition = Partition::greedy_balanced(&mrf.graph, workers);
        Self::new(mrf, &partition, seed)
    }

    /// Randomises the initial state: each worker initialises its own
    /// vertices from its own stream (deterministic, thread-count
    /// independent).
    pub fn randomize(&mut self) {
        let states = self.mrf.states;
        for (block, rng) in self.blocks.iter().zip(&mut self.rngs) {
            for &v in block {
                self.state[v as usize] = rng.gen_range(0..states) as u16;
            }
        }
    }

    /// One parallel sweep: every worker resamples its block sequentially
    /// (local neighbours see this sweep's updates, remote neighbours the
    /// start-of-sweep snapshot), all workers in parallel.
    pub fn sweep(&mut self) {
        self.snapshot.copy_from_slice(&self.state);
        let snapshot = &self.snapshot;
        let states = self.mrf.states;
        let mrf = self.mrf;
        let (owner, local_index) = (&self.owner, &self.local_index);
        let workers: Vec<usize> = (0..self.blocks.len()).collect();
        let blocks = &self.blocks;
        let rngs = &self.rngs;
        let results: Vec<(Vec<u16>, StdRng)> = par::map(&workers, |&p| {
            let mut rng = rngs[p].clone();
            let block = &blocks[p];
            let mut local: Vec<u16> = block.iter().map(|&v| snapshot[v as usize]).collect();
            let mut conditional = vec![0.0f64; states];
            for li in 0..block.len() {
                let v = block[li];
                // Conditional ∝ φ_v(x)·Π_{u∈N(v)} ψ(x, state_u), with
                // state_u read from this sweep for local neighbours and
                // from the snapshot for remote ones.
                for (x, c) in conditional.iter_mut().enumerate() {
                    *c = mrf.unary(v, x);
                }
                for &u in mrf.graph.neighbors(v) {
                    let xu = if owner[u as usize] as usize == p {
                        local[local_index[u as usize] as usize] as usize
                    } else {
                        snapshot[u as usize] as usize
                    };
                    for (x, c) in conditional.iter_mut().enumerate() {
                        *c *= mrf.pairwise.eval(x, xu);
                    }
                }
                let total: f64 = conditional.iter().sum();
                let mut draw = rng.gen::<f64>() * total;
                let mut chosen = states - 1;
                for (x, &c) in conditional.iter().enumerate() {
                    if draw < c {
                        chosen = x;
                        break;
                    }
                    draw -= c;
                }
                local[li] = chosen as u16;
            }
            (local, rng)
        });
        for (p, (local, rng)) in results.into_iter().enumerate() {
            for (&v, &s) in self.blocks[p].iter().zip(&local) {
                self.state[v as usize] = s;
            }
            self.rngs[p] = rng;
        }
    }

    /// Records the current state into the marginal counts.
    fn record(&mut self) {
        let s = self.mrf.states;
        for (v, &x) in self.state.iter().enumerate() {
            self.counts[v * s + x as usize] += 1;
        }
        self.recorded += 1;
    }

    /// Runs `burn_in` discarded sweeps followed by `samples` recorded
    /// sweeps.
    pub fn run(&mut self, burn_in: usize, samples: usize) {
        assert!(samples >= 1, "need at least one recorded sweep");
        for _ in 0..burn_in {
            self.sweep();
        }
        for _ in 0..samples {
            self.sweep();
            self.record();
        }
    }

    /// Estimated marginal of a vertex from the recorded samples.
    ///
    /// # Panics
    /// Panics when no sweeps have been recorded yet.
    pub fn marginal(&self, v: VertexId) -> Vec<f64> {
        assert!(self.recorded > 0, "no samples recorded yet");
        let s = self.mrf.states;
        self.counts[v as usize * s..(v as usize + 1) * s]
            .iter()
            .map(|&c| c as f64 / self.recorded as f64)
            .collect()
    }

    /// All estimated marginals, `V × S` row-major.
    pub fn marginals(&self) -> Vec<f64> {
        (0..self.mrf.vertices() as VertexId)
            .flat_map(|v| self.marginal(v))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{grid2d, path};
    use crate::gibbs::GibbsSampler;
    use crate::mrf::{exact_marginals, PairwisePotential};

    fn chain_mrf(v: usize) -> PairwiseMrf {
        let unary: Vec<f64> = (0..v * 2).map(|i| 0.5 + (i % 3) as f64 * 0.5).collect();
        PairwiseMrf::new(
            path(v),
            2,
            unary,
            PairwisePotential::Potts {
                same: 1.6,
                diff: 0.7,
            },
        )
    }

    #[test]
    fn single_partition_replays_the_sequential_sampler() {
        // One block in vertex order + the base seed stream = the exact
        // draw sequence of GibbsSampler.
        let mrf = chain_mrf(6);
        let seed = 0xAB5;
        let mut sequential = GibbsSampler::new(&mrf);
        let mut rng = StdRng::seed_from_u64(seed);
        sequential.randomize(&mut rng);
        sequential.run(20, 500, &mut rng);

        let partition = Partition::new(vec![0; 6], 1);
        let mut partitioned = PartitionedGibbsSampler::new(&mrf, &partition, seed);
        partitioned.randomize();
        partitioned.run(20, 500);
        assert_eq!(sequential.marginals(), partitioned.marginals());
    }

    #[test]
    fn parallel_sweeps_bit_identical_across_thread_counts() {
        let mrf = chain_mrf(40);
        let run = |threads: usize| {
            mlscale_core::par::with_thread_count(threads, || {
                let mut s = PartitionedGibbsSampler::balanced(&mrf, 4, 7);
                s.randomize();
                s.run(10, 200);
                s.marginals()
            })
        };
        let serial = run(1);
        for threads in [2usize, 7] {
            assert_eq!(serial, run(threads), "threads = {threads}");
        }
    }

    #[test]
    fn partitioned_marginals_match_exact_on_chain() {
        // Three blocks on a 9-vertex chain: only the two cut edges read
        // stale states, so the stationary marginals stay near the exact
        // ones.
        let mrf = chain_mrf(9);
        let exact = exact_marginals(&mrf);
        let mut sampler = PartitionedGibbsSampler::new(&mrf, &Partition::block(9, 3), 11);
        sampler.randomize();
        sampler.run(300, 30_000);
        for (i, (&e, &got)) in exact.iter().zip(&sampler.marginals()).enumerate() {
            assert!(
                (e - got).abs() < 0.03,
                "marginal {i}: exact {e:.3} vs partitioned {got:.3}"
            );
        }
    }

    #[test]
    fn partitioned_matches_sequential_sampler_on_grid() {
        // Against the sequential sampler on a loopy graph (no exact
        // reference): both estimate the same stationary marginals.
        let g = grid2d(4, 4);
        let mrf = PairwiseMrf::uniform(
            g,
            2,
            PairwisePotential::Potts {
                same: 1.5,
                diff: 0.8,
            },
        );
        let mut sequential = GibbsSampler::new(&mrf);
        let mut rng = StdRng::seed_from_u64(5);
        sequential.randomize(&mut rng);
        sequential.run(300, 30_000, &mut rng);
        let mut partitioned = PartitionedGibbsSampler::balanced(&mrf, 4, 23);
        partitioned.randomize();
        partitioned.run(300, 30_000);
        for v in 0..16 {
            let a = sequential.marginal(v);
            let b = partitioned.marginal(v);
            assert!(
                (a[0] - b[0]).abs() < 0.03,
                "vertex {v}: sequential {a:?} vs partitioned {b:?}"
            );
        }
    }

    #[test]
    fn deterministic_given_seed_and_partition() {
        let mrf = chain_mrf(12);
        let run = |seed: u64| {
            let mut s = PartitionedGibbsSampler::balanced(&mrf, 3, seed);
            s.randomize();
            s.run(5, 50);
            s.marginals()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10), "different seeds must differ");
    }

    #[test]
    #[should_panic(expected = "cover every MRF vertex")]
    fn mismatched_partition_rejected() {
        let mrf = chain_mrf(5);
        let partition = Partition::new(vec![0; 3], 1);
        let _ = PartitionedGibbsSampler::new(&mrf, &partition, 0);
    }

    #[test]
    #[should_panic(expected = "no samples recorded")]
    fn marginal_before_sampling_panics() {
        let mrf = chain_mrf(4);
        let sampler = PartitionedGibbsSampler::balanced(&mrf, 2, 0);
        let _ = sampler.marginal(0);
    }
}
