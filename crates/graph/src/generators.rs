//! Graph generators: Erdős–Rényi, Chung-Lu power-law, and the DNS-like
//! traffic graph calibrated to the paper's Fig 4 experiment, plus small
//! structured graphs (grid, star, ring, complete) used by tests and the
//! MRF examples.
//!
//! The paper's belief-propagation experiment ran on a proprietary graph
//! "based on real DNS data traffic in a large enterprise" with 16,259,408
//! vertices, 99,854,596 edges and a maximum degree of 309,368. We cannot
//! have that graph; [`dns_like`] generates a power-law (Chung-Lu-style)
//! graph matched on all three published statistics, which exercises the
//! same estimator inputs (degree sequence) and the same skew phenomenology
//! (a worker that draws a hub dominates the superstep).

use crate::csr::{CsrGraph, VertexId};
use crate::sampling::{zipf_weights, AliasTable};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Erdős–Rényi `G(n, m)`: exactly `m` edges sampled uniformly (self-loops
/// excluded; duplicate edges allowed at large scale, where they are
/// vanishingly rare).
///
/// # Panics
/// Panics when `vertices < 2`.
pub fn gnm<R: Rng + ?Sized>(vertices: usize, edges: u64, rng: &mut R) -> CsrGraph {
    assert!(vertices >= 2, "need at least two vertices");
    let mut list = Vec::with_capacity(edges as usize);
    while (list.len() as u64) < edges {
        let u = rng.gen_range(0..vertices) as VertexId;
        let v = rng.gen_range(0..vertices) as VertexId;
        if u != v {
            list.push((u, v));
        }
    }
    CsrGraph::from_edges(vertices, &list)
}

/// Chung-Lu-style graph from an explicit expected-degree (weight) sequence:
/// `edges` endpoint pairs are drawn with probability proportional to the
/// weights, so vertex `v` ends up with expected degree
/// `≈ 2·edges·w_v/Σw`. Self-loops are rejected; parallel edges are allowed
/// (they occur only around extreme hubs and perturb degree statistics by
/// well under a percent at the scales used here).
pub fn chung_lu<R: Rng + ?Sized>(weights: &[f64], edges: u64, rng: &mut R) -> CsrGraph {
    assert!(weights.len() >= 2, "need at least two vertices");
    let table = AliasTable::new(weights);
    let mut list = Vec::with_capacity(edges as usize);
    while (list.len() as u64) < edges {
        let u = table.sample(rng);
        let v = table.sample(rng);
        if u != v {
            list.push((u, v));
        }
    }
    CsrGraph::from_edges(weights.len(), &list)
}

/// Published statistics of the paper's DNS traffic graph and its scaled
/// variants.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DnsGraphSpec {
    /// Number of vertices `V`.
    pub vertices: usize,
    /// Number of edges `E`.
    pub edges: u64,
    /// Expected maximum degree (the hub).
    pub max_degree: u32,
}

impl DnsGraphSpec {
    /// The full Fig 4 graph: V = 16,259,408, E = 99,854,596,
    /// d_max = 309,368. Requires ≈ 1 GB to materialise.
    pub fn full() -> Self {
        Self {
            vertices: 16_259_408,
            edges: 99_854_596,
            max_degree: 309_368,
        }
    }

    /// The paper's 1.6M-vertex variant (reported MAPE 26 %); edge count and
    /// hub degree scaled to preserve the average degree and the hub's
    /// relative mass (`d_max ∝ V^{0.75}`, a calibration choice documented
    /// in DESIGN.md).
    pub fn medium() -> Self {
        Self {
            vertices: 1_625_940,
            edges: 9_985_459,
            max_degree: 55_000,
        }
    }

    /// The paper's 165K-vertex variant (reported MAPE 19.6 %).
    pub fn small() -> Self {
        Self {
            vertices: 165_000,
            edges: 1_013_000,
            max_degree: 9_800,
        }
    }

    /// The paper's 16K-vertex variant (reported MAPE 23.5 %).
    pub fn tiny() -> Self {
        Self {
            vertices: 16_259,
            edges: 99_854,
            max_degree: 1_750,
        }
    }

    /// Average degree `2E/V`.
    pub fn avg_degree(&self) -> f64 {
        2.0 * self.edges as f64 / self.vertices as f64
    }
}

/// Generates a power-law graph matched to a [`DnsGraphSpec`]: Zipf-shaped
/// expected-degree weights with hub weight `max_degree` and total `2E`,
/// realised by weighted endpoint sampling.
pub fn dns_like<R: Rng + ?Sized>(spec: DnsGraphSpec, rng: &mut R) -> CsrGraph {
    let (weights, _gamma) = zipf_weights(
        spec.vertices,
        f64::from(spec.max_degree),
        2.0 * spec.edges as f64,
    );
    chung_lu(&weights, spec.edges, rng)
}

/// A star: vertex 0 connected to all others — the worst case for random
/// vertex partitioning (one worker owns the hub's entire edge set).
pub fn star(vertices: usize) -> CsrGraph {
    assert!(vertices >= 2);
    let edges: Vec<(VertexId, VertexId)> = (1..vertices as VertexId).map(|v| (0, v)).collect();
    CsrGraph::from_edges(vertices, &edges)
}

/// A ring (cycle) of `vertices` vertices.
pub fn ring(vertices: usize) -> CsrGraph {
    assert!(vertices >= 3);
    let edges: Vec<(VertexId, VertexId)> = (0..vertices as VertexId)
        .map(|v| (v, (v + 1) % vertices as VertexId))
        .collect();
    CsrGraph::from_edges(vertices, &edges)
}

/// A path of `vertices` vertices (a tree — BP is exact on it).
pub fn path(vertices: usize) -> CsrGraph {
    assert!(vertices >= 2);
    let edges: Vec<(VertexId, VertexId)> =
        (0..vertices as VertexId - 1).map(|v| (v, v + 1)).collect();
    CsrGraph::from_edges(vertices, &edges)
}

/// A 2-D 4-neighbour grid of `rows × cols` vertices — the classic MRF for
/// image denoising, one of the paper's cited BP applications.
pub fn grid2d(rows: usize, cols: usize) -> CsrGraph {
    assert!(rows >= 1 && cols >= 1 && rows * cols >= 2);
    let id = |r: usize, c: usize| (r * cols + c) as VertexId;
    let mut edges = Vec::with_capacity(2 * rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push((id(r, c), id(r, c + 1)));
            }
            if r + 1 < rows {
                edges.push((id(r, c), id(r + 1, c)));
            }
        }
    }
    CsrGraph::from_edges(rows * cols, &edges)
}

/// The complete graph `K_n`.
pub fn complete(vertices: usize) -> CsrGraph {
    assert!(
        (2..=2000).contains(&vertices),
        "complete graphs are for small n"
    );
    let mut edges = Vec::with_capacity(vertices * (vertices - 1) / 2);
    for u in 0..vertices as VertexId {
        for v in (u + 1)..vertices as VertexId {
            edges.push((u, v));
        }
    }
    CsrGraph::from_edges(vertices, &edges)
}

/// A balanced binary tree with `vertices` vertices (BP exact; diameter
/// `O(log V)`).
pub fn binary_tree(vertices: usize) -> CsrGraph {
    assert!(vertices >= 2);
    let edges: Vec<(VertexId, VertexId)> = (1..vertices as VertexId)
        .map(|v| ((v - 1) / 2, v))
        .collect();
    CsrGraph::from_edges(vertices, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(20_250_613)
    }

    #[test]
    fn gnm_has_exact_edges_no_loops() {
        let g = gnm(100, 500, &mut rng());
        assert_eq!(g.vertices(), 100);
        assert_eq!(g.edges(), 500);
        assert!(g.edge_iter().all(|(u, v)| u != v));
        assert!(g.validate().is_ok());
    }

    #[test]
    fn chung_lu_respects_expected_degrees() {
        // Two heavy vertices among light ones.
        let mut weights = vec![1.0f64; 1000];
        weights[0] = 200.0;
        weights[1] = 100.0;
        let total: f64 = weights.iter().sum();
        let edges = 20_000u64;
        let g = chung_lu(&weights, edges, &mut rng());
        assert_eq!(g.edges(), edges);
        let expected0 = 2.0 * edges as f64 * 200.0 / total;
        let d0 = f64::from(g.degree(0));
        assert!(
            (d0 - expected0).abs() / expected0 < 0.15,
            "hub degree {d0} vs expected {expected0}"
        );
        // Hub order preserved.
        assert!(g.degree(0) > g.degree(1));
        assert!(g.degree(1) > g.degree(500));
    }

    #[test]
    fn dns_like_tiny_matches_spec_statistics() {
        let spec = DnsGraphSpec::tiny();
        let g = dns_like(spec, &mut rng());
        assert_eq!(g.vertices(), spec.vertices);
        assert_eq!(g.edges(), spec.edges);
        // Average degree matches by construction.
        assert!((g.avg_degree() - spec.avg_degree()).abs() < 0.1);
        // Hub degree lands within a factor ~1.5 of the calibrated target
        // (sampling noise around an expected value).
        let d_max = f64::from(g.max_degree());
        let target = f64::from(spec.max_degree);
        assert!(
            d_max > 0.6 * target && d_max < 1.6 * target,
            "max degree {d_max} vs target {target}"
        );
    }

    #[test]
    fn dns_specs_share_avg_degree() {
        let full = DnsGraphSpec::full().avg_degree();
        for spec in [
            DnsGraphSpec::medium(),
            DnsGraphSpec::small(),
            DnsGraphSpec::tiny(),
        ] {
            assert!(
                (spec.avg_degree() - full).abs() / full < 0.02,
                "avg degree drift: {} vs {}",
                spec.avg_degree(),
                full
            );
        }
    }

    #[test]
    fn star_degrees() {
        let g = star(10);
        assert_eq!(g.degree(0), 9);
        for v in 1..10 {
            assert_eq!(g.degree(v), 1);
        }
        assert_eq!(g.edges(), 9);
    }

    #[test]
    fn ring_every_degree_two() {
        let g = ring(17);
        assert!(g.degree_sequence().iter().all(|&d| d == 2));
        assert_eq!(g.edges(), 17);
    }

    #[test]
    fn path_is_tree() {
        let g = path(10);
        assert_eq!(g.edges(), 9);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(5), 2);
    }

    #[test]
    fn grid_structure() {
        let g = grid2d(3, 4);
        assert_eq!(g.vertices(), 12);
        // Edges: 3 rows × 3 horizontal + 2 × 4 vertical = 9 + 8.
        assert_eq!(g.edges(), 17);
        // Corner degree 2, interior degree 4.
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(5), 4);
    }

    #[test]
    fn complete_edge_count() {
        let g = complete(8);
        assert_eq!(g.edges(), 28);
        assert!(g.degree_sequence().iter().all(|&d| d == 7));
    }

    #[test]
    fn binary_tree_edge_count_and_root() {
        let g = binary_tree(15);
        assert_eq!(g.edges(), 14);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(14), 1);
    }

    #[test]
    fn generated_graphs_validate() {
        let g = dns_like(
            DnsGraphSpec {
                vertices: 2000,
                edges: 12_000,
                max_degree: 300,
            },
            &mut rng(),
        );
        assert!(g.validate().is_ok());
    }
}
