//! Graph traversal utilities: BFS, connected components, diameter
//! estimation and degree-distribution summaries. Used to validate that
//! generated graphs have the structure the experiments assume (a giant
//! component, power-law tails, tree/cycle structure for the BP oracles).

use crate::csr::{CsrGraph, VertexId};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Breadth-first distances from `source`; unreachable vertices get
/// `u32::MAX`.
pub fn bfs_distances(graph: &CsrGraph, source: VertexId) -> Vec<u32> {
    let mut dist = vec![u32::MAX; graph.vertices()];
    let mut queue = VecDeque::new();
    dist[source as usize] = 0;
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        let d = dist[v as usize];
        for &u in graph.neighbors(v) {
            if dist[u as usize] == u32::MAX {
                dist[u as usize] = d + 1;
                queue.push_back(u);
            }
        }
    }
    dist
}

/// Connected-component labelling; returns `(labels, component_count)`.
pub fn connected_components(graph: &CsrGraph) -> (Vec<u32>, usize) {
    let v = graph.vertices();
    let mut labels = vec![u32::MAX; v];
    let mut count = 0u32;
    let mut queue = VecDeque::new();
    for start in 0..v as VertexId {
        if labels[start as usize] != u32::MAX {
            continue;
        }
        labels[start as usize] = count;
        queue.push_back(start);
        while let Some(x) = queue.pop_front() {
            for &u in graph.neighbors(x) {
                if labels[u as usize] == u32::MAX {
                    labels[u as usize] = count;
                    queue.push_back(u);
                }
            }
        }
        count += 1;
    }
    (labels, count as usize)
}

/// Size of the largest connected component.
pub fn giant_component_size(graph: &CsrGraph) -> usize {
    let (labels, count) = connected_components(graph);
    if count == 0 {
        return 0;
    }
    let mut sizes = vec![0usize; count];
    for &l in &labels {
        sizes[l as usize] += 1;
    }
    sizes.into_iter().max().unwrap_or(0)
}

/// Lower-bounds the diameter with a double-sweep BFS: the eccentricity of
/// the farthest vertex found from an arbitrary start. Exact on trees.
pub fn diameter_lower_bound(graph: &CsrGraph, start: VertexId) -> u32 {
    let first = bfs_distances(graph, start);
    let (far, _) = first
        .iter()
        .enumerate()
        .filter(|&(_, &d)| d != u32::MAX)
        .max_by_key(|&(_, &d)| d)
        // lint: allow(panic-free-lib): the BFS source itself sits at distance 0, so the iterator is never empty
        .expect("non-empty graph");
    let second = bfs_distances(graph, far as VertexId);
    second
        .iter()
        .filter(|&&d| d != u32::MAX)
        .copied()
        .max()
        .unwrap_or(0)
}

/// True when the graph is a forest with a single component (a tree):
/// connected and `E = V − 1`.
pub fn is_tree(graph: &CsrGraph) -> bool {
    graph.vertices() >= 1
        && graph.edges() == graph.vertices() as u64 - 1
        && giant_component_size(graph) == graph.vertices()
}

/// Degree-distribution summary used to sanity-check power-law generators.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegreeSummary {
    /// Minimum degree.
    pub min: u32,
    /// Maximum degree.
    pub max: u32,
    /// Mean degree `2E/V`.
    pub mean: f64,
    /// Median degree.
    pub median: u32,
    /// 99th-percentile degree.
    pub p99: u32,
    /// Fraction of total degree mass held by the top 1 % of vertices —
    /// near 0.02 for uniform graphs, far higher for power laws.
    pub top1pct_mass: f64,
}

impl DegreeSummary {
    /// Computes the summary from a graph.
    pub fn compute(graph: &CsrGraph) -> Self {
        assert!(graph.vertices() > 0, "empty graph has no degree summary");
        let mut degrees = graph.degree_sequence();
        degrees.sort_unstable();
        let v = degrees.len();
        let total: u64 = degrees.iter().map(|&d| u64::from(d)).sum();
        let top = (v / 100).max(1);
        let top_mass: u64 = degrees[v - top..].iter().map(|&d| u64::from(d)).sum();
        Self {
            min: degrees[0],
            max: degrees[v - 1],
            mean: total as f64 / v as f64,
            median: degrees[v / 2],
            p99: degrees[(v * 99) / 100],
            top1pct_mass: if total == 0 {
                0.0
            } else {
                top_mass as f64 / total as f64
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{binary_tree, dns_like, gnm, grid2d, path, ring, star, DnsGraphSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn bfs_on_path_counts_hops() {
        let g = path(6);
        let d = bfs_distances(&g, 0);
        assert_eq!(d, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn bfs_unreachable_is_max() {
        let g = crate::csr::CsrGraph::from_edges(4, &[(0, 1)]);
        let d = bfs_distances(&g, 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], u32::MAX);
    }

    #[test]
    fn components_counted() {
        let g = crate::csr::CsrGraph::from_edges(6, &[(0, 1), (1, 2), (3, 4)]);
        let (labels, count) = connected_components(&g);
        assert_eq!(count, 3);
        assert_eq!(labels[0], labels[2]);
        assert_ne!(labels[0], labels[3]);
        assert_eq!(giant_component_size(&g), 3);
    }

    #[test]
    fn trees_recognised() {
        assert!(is_tree(&path(10)));
        assert!(is_tree(&binary_tree(15)));
        assert!(is_tree(&star(8)));
        assert!(!is_tree(&ring(5)));
        assert!(!is_tree(&grid2d(3, 3)));
    }

    #[test]
    fn diameter_exact_on_path() {
        let g = path(9);
        assert_eq!(diameter_lower_bound(&g, 4), 8);
    }

    #[test]
    fn diameter_on_grid_is_manhattan() {
        let g = grid2d(4, 5);
        // Double sweep is exact here: corner-to-corner = 3 + 4.
        assert_eq!(diameter_lower_bound(&g, 0), 7);
    }

    #[test]
    fn dns_like_graph_has_giant_component_and_heavy_tail() {
        let mut rng = StdRng::seed_from_u64(1);
        let spec = DnsGraphSpec {
            vertices: 5000,
            edges: 30_000,
            max_degree: 800,
        };
        let g = dns_like(spec, &mut rng);
        // Nearly everything connected (avg degree 12).
        assert!(giant_component_size(&g) > 4500);
        let summary = DegreeSummary::compute(&g);
        assert!(summary.max > 400);
        assert!(
            summary.top1pct_mass > 0.10,
            "power-law mass concentration, got {:.3}",
            summary.top1pct_mass
        );
        assert!(
            summary.median < summary.mean as u32,
            "right-skewed distribution"
        );
    }

    #[test]
    fn uniform_graph_has_flat_tail() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = gnm(5000, 30_000, &mut rng);
        let summary = DegreeSummary::compute(&g);
        assert!(
            summary.top1pct_mass < 0.05,
            "uniform graphs have no hubs, got {:.3}",
            summary.top1pct_mass
        );
    }

    #[test]
    fn summary_of_regular_graph() {
        let g = ring(100);
        let s = DegreeSummary::compute(&g);
        assert_eq!((s.min, s.max, s.median), (2, 2, 2));
        assert!((s.mean - 2.0).abs() < 1e-12);
    }
}
