//! Fixture-driven tests for the linter: one known-bad and one
//! known-clean snippet per rule (under `tests/fixtures/<rule>/`), lexer
//! edge cases that historically break naive grep-based linting, and a
//! self-scan asserting the workspace itself stays clean.
//!
//! The snippets carry a `.snippet` extension so the workspace walker
//! never mistakes them for real sources — the suppression fixtures are
//! deliberately malformed and would otherwise fail the self-scan.

use mlscale_lint::context::FileInput;
use mlscale_lint::manifest::lint_manifest;
use mlscale_lint::rules::{lint_source, FileLint};
use mlscale_lint::{lint_workspace, render_findings};
use std::path::Path;

/// Lints a snippet as a non-root library file (panic rules apply).
fn lint_lib(src: &str) -> FileLint {
    lint_source(&FileInput::classify("crates/fake/src/util.rs", false), src)
}

/// Lints a snippet as a crate root (forbid-unsafe applies too).
fn lint_root(src: &str) -> FileLint {
    lint_source(&FileInput::classify("crates/fake/src/lib.rs", false), src)
}

fn rules_hit(lint: &FileLint) -> Vec<&'static str> {
    lint.findings.iter().map(|f| f.rule).collect()
}

// ---------------------------------------------------------------------------
// Per-rule bad/clean pairs
// ---------------------------------------------------------------------------

#[test]
fn panic_free_lib_bad_fires_on_every_site() {
    let lint = lint_lib(include_str!("fixtures/panic-free-lib/bad.snippet"));
    assert_eq!(rules_hit(&lint), vec!["panic-free-lib"; 4]);
    let lines: Vec<u32> = lint.findings.iter().map(|f| f.line).collect();
    assert_eq!(lines, vec![4, 5, 7, 10]);
}

#[test]
fn panic_free_lib_clean_passes() {
    let lint = lint_lib(include_str!("fixtures/panic-free-lib/clean.snippet"));
    assert!(
        lint.findings.is_empty(),
        "{}",
        render_findings(&lint.findings)
    );
}

#[test]
fn par_only_threads_bad_fires_on_spawn_and_scope() {
    let lint = lint_lib(include_str!("fixtures/par-only-threads/bad.snippet"));
    assert_eq!(rules_hit(&lint), vec!["par-only-threads"; 3]);
}

#[test]
fn par_only_threads_clean_passes() {
    let lint = lint_lib(include_str!("fixtures/par-only-threads/clean.snippet"));
    assert!(
        lint.findings.is_empty(),
        "{}",
        render_findings(&lint.findings)
    );
}

#[test]
fn determinism_bad_fires_on_clocks_entropy_and_env_reads() {
    let lint = lint_lib(include_str!("fixtures/determinism/bad.snippet"));
    assert_eq!(rules_hit(&lint), vec!["determinism"; 4]);
    assert!(
        lint.findings.iter().any(|f| f.message.contains("env::var")),
        "{}",
        render_findings(&lint.findings)
    );
}

#[test]
fn env_reads_are_allowed_only_in_their_owning_modules() {
    let src = "pub fn knob() -> bool {\n    std::env::var_os(\"MLSCALE_FAULTS\").is_some()\n}\n";
    for home in ["crates/core/src/par.rs", "crates/core/src/faultpoint.rs"] {
        let lint = lint_source(&FileInput::classify(home, false), src);
        assert!(
            lint.findings.is_empty(),
            "{home} owns its knob:\n{}",
            render_findings(&lint.findings)
        );
    }
    let elsewhere = lint_lib(src);
    assert_eq!(rules_hit(&elsewhere), vec!["determinism"]);
}

#[test]
fn determinism_clean_passes_with_seeded_rng() {
    let lint = lint_lib(include_str!("fixtures/determinism/clean.snippet"));
    assert!(
        lint.findings.is_empty(),
        "{}",
        render_findings(&lint.findings)
    );
}

#[test]
fn atomic_io_bad_fires_on_direct_writes() {
    let lint = lint_lib(include_str!("fixtures/atomic-results-io/bad.snippet"));
    assert_eq!(rules_hit(&lint), vec!["atomic-results-io"; 3]);
}

#[test]
fn atomic_io_clean_allows_the_temp_file_half() {
    let lint = lint_lib(include_str!("fixtures/atomic-results-io/clean.snippet"));
    assert!(
        lint.findings.is_empty(),
        "{}",
        render_findings(&lint.findings)
    );
    assert_eq!(lint.used.len(), 1, "the justified allow is honoured");
    assert!(lint.used[0].reason.contains("rename"));
}

#[test]
fn forbid_unsafe_bad_fires_only_on_crate_roots() {
    let src = include_str!("fixtures/forbid-unsafe/bad.snippet");
    let root = lint_root(src);
    assert_eq!(rules_hit(&root), vec!["forbid-unsafe"]);
    let non_root = lint_lib(src);
    assert!(non_root.findings.is_empty(), "non-roots need no attribute");
}

#[test]
fn forbid_unsafe_clean_passes() {
    let lint = lint_root(include_str!("fixtures/forbid-unsafe/clean.snippet"));
    assert!(
        lint.findings.is_empty(),
        "{}",
        render_findings(&lint.findings)
    );
}

#[test]
fn vendor_policy_bad_manifest_fires_per_dependency() {
    let findings = lint_manifest(
        "crates/fake/Cargo.toml",
        "crates/fake",
        include_str!("fixtures/vendor-policy/bad.toml"),
    );
    assert_eq!(findings.len(), 3);
    assert!(findings.iter().all(|f| f.rule == "vendor-policy"));
    assert!(findings[0].message.contains("rayon"));
}

#[test]
fn vendor_policy_clean_manifest_passes() {
    let findings = lint_manifest(
        "crates/fake/Cargo.toml",
        "crates/fake",
        include_str!("fixtures/vendor-policy/clean.toml"),
    );
    assert!(findings.is_empty(), "{}", render_findings(&findings));
}

#[test]
fn suppression_bad_reports_missing_reason_unknown_rule_and_stale_allow() {
    let lint = lint_lib(include_str!("fixtures/suppression/bad.snippet"));
    assert_eq!(rules_hit(&lint), vec!["suppression"; 3]);
    let text = render_findings(&lint.findings);
    assert!(text.contains("reason"), "missing reason is named: {text}");
    assert!(
        text.contains("no-such-rule"),
        "unknown rule is named: {text}"
    );
    assert!(
        text.contains("suppressed nothing"),
        "stale allow is named: {text}"
    );
}

#[test]
fn suppression_clean_honours_both_binding_forms() {
    let lint = lint_lib(include_str!("fixtures/suppression/clean.snippet"));
    assert!(
        lint.findings.is_empty(),
        "{}",
        render_findings(&lint.findings)
    );
    assert_eq!(lint.used.len(), 2, "own-line and trailing allows both bind");
}

// ---------------------------------------------------------------------------
// Lexer edge cases
// ---------------------------------------------------------------------------

#[test]
fn panic_inside_a_string_literal_never_fires() {
    let lint = lint_lib("pub fn f() -> &'static str {\n    \"panic!(boom) .unwrap()\"\n}\n");
    assert!(
        lint.findings.is_empty(),
        "{}",
        render_findings(&lint.findings)
    );
}

#[test]
fn raw_strings_with_hashes_hide_their_contents() {
    let lint = lint_lib(
        "pub fn f() -> &'static str {\n    r##\"calls .unwrap() and panic!(\"quoted\")\"##\n}\n",
    );
    assert!(
        lint.findings.is_empty(),
        "{}",
        render_findings(&lint.findings)
    );
}

#[test]
fn nested_block_comments_hide_code() {
    let lint = lint_lib("/* outer /* x.unwrap(); */ still comment panic!( */\npub fn ok() {}\n");
    assert!(
        lint.findings.is_empty(),
        "{}",
        render_findings(&lint.findings)
    );
}

#[test]
fn cfg_test_modules_are_exempt_but_the_same_code_outside_is_not() {
    let test_mod = "pub fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t(x: Option<u32>) -> u32 {\n        x.unwrap()\n    }\n}\n";
    assert!(lint_lib(test_mod).findings.is_empty());
    let plain_mod = test_mod.replace("#[cfg(test)]\n", "");
    let lint = lint_lib(&plain_mod);
    assert_eq!(rules_hit(&lint), vec!["panic-free-lib"]);
}

#[test]
fn multiline_strings_keep_line_numbers_accurate() {
    let src = "pub fn f(x: Option<u32>) -> u32 {\n    let _s = \"line one\nline two\nline three\";\n    x.unwrap()\n}\n";
    let lint = lint_lib(src);
    assert_eq!(lint.findings.len(), 1);
    assert_eq!(
        lint.findings[0].line, 5,
        "lines counted through the literal"
    );
}

#[test]
fn binaries_skip_the_panic_rule_but_not_determinism() {
    let src = "#![forbid(unsafe_code)]\nfn main() {\n    let t = std::time::Instant::now();\n    let v: Option<u32> = None;\n    v.unwrap();\n    let _ = t;\n}\n";
    let lint = lint_source(&FileInput::classify("crates/fake/src/main.rs", false), src);
    assert_eq!(rules_hit(&lint), vec!["determinism"]);
}

#[test]
fn vendored_sources_are_exempt_from_code_rules() {
    let src = "//! stand-in\n#![forbid(unsafe_code)]\npub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
    let lint = lint_source(&FileInput::classify("vendor/fake/src/lib.rs", true), src);
    assert!(
        lint.findings.is_empty(),
        "{}",
        render_findings(&lint.findings)
    );
}

// ---------------------------------------------------------------------------
// Whole-workspace scans
// ---------------------------------------------------------------------------

#[test]
fn the_workspace_itself_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let outcome = lint_workspace(&root).expect("workspace lints");
    assert!(
        outcome.is_clean(),
        "the tree must lint clean:\n{}",
        render_findings(&outcome.findings)
    );
    assert!(outcome.files_scanned > 90, "walker saw the whole workspace");
    assert!(outcome.manifests_scanned >= 16, "walker saw every manifest");
    assert!(
        outcome.suppressions.iter().all(|s| !s.reason.is_empty()),
        "every honoured suppression carries a reason"
    );
}

#[test]
fn introducing_a_bad_file_makes_a_workspace_dirty() {
    let dir = std::env::temp_dir().join(format!("mlscale-lint-fixture-{}", std::process::id()));
    let crate_dir = dir.join("crates/app/src");
    std::fs::create_dir_all(&crate_dir).expect("scratch workspace");
    std::fs::write(
        dir.join("Cargo.toml"),
        "[workspace]\nmembers = [\"crates/app\"]\n",
    )
    .expect("root manifest");
    std::fs::write(
        dir.join("crates/app/Cargo.toml"),
        "[package]\nname = \"app\"\n\n[dependencies]\nrayon = \"1.8\"\n",
    )
    .expect("member manifest");
    std::fs::write(
        crate_dir.join("lib.rs"),
        include_str!("fixtures/panic-free-lib/bad.snippet"),
    )
    .expect("bad source");

    let outcome = lint_workspace(&dir).expect("scratch workspace lints");
    let rules: Vec<&str> = outcome.findings.iter().map(|f| f.rule).collect();
    assert!(rules.contains(&"panic-free-lib"), "{rules:?}");
    assert!(rules.contains(&"vendor-policy"), "{rules:?}");
    assert!(
        rules.contains(&"forbid-unsafe"),
        "the scratch crate root has no guard: {rules:?}"
    );
    assert!(!outcome.is_clean());
    std::fs::remove_dir_all(&dir).ok();
}
