//! The rule engine: five invariant rules over the token stream plus the
//! `suppression` meta-rule, with `// lint: allow(<rule>): <reason>`
//! filtering.
//!
//! | rule | invariant it guards |
//! |------|---------------------|
//! | `panic-free-lib` | library code never panics — `mlscale serve` keeps workers alive, batch sweeps report named errors |
//! | `par-only-threads` | all threading goes through `mlscale_core::par` so `MLSCALE_THREADS` and determinism guarantees hold |
//! | `determinism` | no wall clocks, OS entropy, or ad-hoc environment reads on model-evaluation paths — golden fixtures are byte-reproducible |
//! | `atomic-results-io` | results JSON is written via the temp-file + rename helpers, never left truncated |
//! | `forbid-unsafe` | every crate root carries `#![forbid(unsafe_code)]` (or `deny`) |
//!
//! (`vendor-policy` lives in [`crate::manifest`] — it checks manifests,
//! not Rust sources.)

use crate::context::{parse_directives, token_lines, FileInput, FileKind, TestSpans};
use crate::lexer::{lex, TokKind, Token};
use crate::report::Finding;

/// All rule names the engine knows, in reporting order.
pub const RULES: [&str; 7] = [
    "panic-free-lib",
    "par-only-threads",
    "determinism",
    "atomic-results-io",
    "forbid-unsafe",
    "vendor-policy",
    "suppression",
];

/// The file whose job is to own raw threads.
const PAR_HOME: &str = "crates/core/src/par.rs";

/// The only files allowed to read process environment variables: each
/// knob has one owning module (`MLSCALE_THREADS` in `par`,
/// `MLSCALE_FAULTS` in `faultpoint`) that validates it once and exposes
/// a typed API, so a typo'd variable is a named diagnostic everywhere
/// instead of a silently ignored setting somewhere.
const ENV_HOMES: [&str; 2] = [PAR_HOME, "crates/core/src/faultpoint.rs"];

/// A suppression honoured while linting one file (reported so the JSON
/// report can list every active allow with its reason).
#[derive(Debug, Clone)]
pub struct UsedSuppression {
    /// File the allow lives in.
    pub file: String,
    /// Line of the allow comment.
    pub line: u32,
    /// Rules it names.
    pub rules: Vec<String>,
    /// Its justification.
    pub reason: String,
}

/// Findings plus honoured suppressions for one file.
#[derive(Debug, Default)]
pub struct FileLint {
    /// Surviving findings.
    pub findings: Vec<Finding>,
    /// Suppressions that silenced at least one finding.
    pub used: Vec<UsedSuppression>,
}

/// Lints one Rust source file.
pub fn lint_source(input: &FileInput, src: &str) -> FileLint {
    let lexed = lex(src);
    let spans = TestSpans::find(&lexed);
    let mut directives = parse_directives(&lexed.comments, &token_lines(&lexed));
    let mut raw: Vec<Finding> = Vec::new();

    let f = |line: u32, rule: &'static str, message: String| Finding {
        file: input.path.clone(),
        line,
        rule,
        message,
    };

    // Malformed directives are always findings, everywhere — a
    // suppression that cannot be trusted must not merge.
    for bad in &directives.bad {
        raw.push(f(bad.line, "suppression", bad.message.clone()));
    }
    for allow in &directives.allows {
        for rule in &allow.rules {
            if !RULES.contains(&rule.as_str()) {
                raw.push(f(
                    allow.line,
                    "suppression",
                    format!("allow names unknown rule {rule:?}"),
                ));
            }
        }
    }

    let code_rules_apply = !input.vendored && input.kind != FileKind::TestLike;
    if code_rules_apply {
        let toks = &lexed.tokens;
        for (i, t) in toks.iter().enumerate() {
            if spans.contains(t.line) {
                continue; // inside #[cfg(test)]
            }
            if input.kind == FileKind::Lib {
                panic_free(toks, i, &mut raw, &f);
            }
            par_only(input, toks, i, &mut raw, &f);
            determinism(input, toks, i, &mut raw, &f);
            atomic_io(toks, i, &mut raw, &f);
        }
    }

    // forbid-unsafe applies to every crate root, vendored ones included
    // (the stand-ins are part of the trusted computing base).
    if input.crate_root && !has_unsafe_attr(&lexed.tokens) {
        raw.push(f(
            1,
            "forbid-unsafe",
            "crate root is missing `#![forbid(unsafe_code)]` (or `#![deny(unsafe_code)]`)"
                .to_string(),
        ));
    }

    // Apply suppressions: an allow silences matching findings on its own
    // line or its bound target line.
    let mut findings = Vec::new();
    'finding: for finding in raw {
        if finding.rule != "suppression" {
            for allow in directives.allows.iter_mut() {
                if (allow.target_line == finding.line || allow.line == finding.line)
                    && allow.rules.iter().any(|r| r == finding.rule)
                {
                    allow.hits += 1;
                    continue 'finding;
                }
            }
        }
        findings.push(finding);
    }

    // A stale allow (suppressing nothing) is reported — but only when at
    // least one of its rules actually runs in this file's context, so an
    // allow inside fixtures/tests is inert rather than noisy.
    let mut used = Vec::new();
    for allow in &directives.allows {
        if allow.hits > 0 {
            used.push(UsedSuppression {
                file: input.path.clone(),
                line: allow.line,
                rules: allow.rules.clone(),
                reason: allow.reason.clone(),
            });
            continue;
        }
        let any_active = allow.rules.iter().any(|r| match r.as_str() {
            "panic-free-lib" => code_rules_apply && input.kind == FileKind::Lib,
            "par-only-threads" | "determinism" | "atomic-results-io" => code_rules_apply,
            "forbid-unsafe" => input.crate_root,
            _ => false,
        });
        if any_active {
            findings.push(Finding {
                file: input.path.clone(),
                line: allow.line,
                rule: "suppression",
                message: format!(
                    "allow({}) suppressed nothing — remove it or move it next to the site it excuses",
                    allow.rules.join(", ")
                ),
            });
        }
    }

    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    FileLint { findings, used }
}

/// `.unwrap()`, `.expect(`, and the panicking macros in library code.
fn panic_free(
    toks: &[Token],
    i: usize,
    out: &mut Vec<Finding>,
    f: &impl Fn(u32, &'static str, String) -> Finding,
) {
    if let Some(t) = ident_at(toks, i) {
        let method_call = is_punct(toks, i.wrapping_sub(1), ".") && is_punct(toks, i + 1, "(");
        if method_call && (t.text == "unwrap" || t.text == "expect") {
            out.push(f(
                t.line,
                "panic-free-lib",
                format!(
                    ".{}() can panic in library code — return a named error instead \
                     (see `SpecError`), or justify with `// lint: allow(panic-free-lib): <why>`",
                    t.text
                ),
            ));
        }
        let is_macro = is_punct(toks, i + 1, "!");
        if is_macro
            && matches!(
                t.text.as_str(),
                "panic" | "unreachable" | "todo" | "unimplemented"
            )
        {
            out.push(f(
                t.line,
                "panic-free-lib",
                format!(
                    "{}! aborts the worker thread — library code must surface a named error",
                    t.text
                ),
            ));
        }
    }
}

/// Raw `thread::spawn` / `thread::scope` / `.spawn(` outside
/// `mlscale_core::par`.
fn par_only(
    input: &FileInput,
    toks: &[Token],
    i: usize,
    out: &mut Vec<Finding>,
    f: &impl Fn(u32, &'static str, String) -> Finding,
) {
    if input.path == PAR_HOME {
        return; // the one place allowed to own raw threads
    }
    if let Some(t) = ident_at(toks, i) {
        if t.text == "thread"
            && is_path_sep(toks, i + 1)
            && ident_at(toks, i + 3).is_some_and(|n| n.text == "spawn" || n.text == "scope")
        {
            let what = &toks[i + 3].text;
            out.push(f(
                t.line,
                "par-only-threads",
                format!(
                    "raw `thread::{what}` — route parallel work through `mlscale_core::par` \
                     so MLSCALE_THREADS and the determinism guarantees apply"
                ),
            ));
        }
        // `handle.spawn(…)` on a scope handle obtained elsewhere.
        if t.text == "spawn"
            && is_punct(toks, i.wrapping_sub(1), ".")
            && is_punct(toks, i + 1, "(")
            && ident_at(toks, i.wrapping_sub(2)).is_none_or(|p| p.text != "thread")
        {
            out.push(f(
                t.line,
                "par-only-threads",
                "`.spawn(…)` outside `mlscale_core::par` — use `par::map` (or justify: \
                 `// lint: allow(par-only-threads): <why>`)"
                    .to_string(),
            ));
        }
    }
}

/// Wall clocks, OS entropy, and ad-hoc environment reads on evaluation
/// paths.
fn determinism(
    input: &FileInput,
    toks: &[Token],
    i: usize,
    out: &mut Vec<Finding>,
    f: &impl Fn(u32, &'static str, String) -> Finding,
) {
    if let Some(t) = ident_at(toks, i) {
        if (t.text == "Instant" || t.text == "SystemTime")
            && is_path_sep(toks, i + 1)
            && ident_at(toks, i + 3).is_some_and(|n| n.text == "now")
        {
            out.push(f(
                t.line,
                "determinism",
                format!(
                    "`{}::now()` reads the wall clock — golden fixtures require \
                     byte-reproducible output (timing paths justify with an allow)",
                    t.text
                ),
            ));
        }
        if matches!(
            t.text.as_str(),
            "thread_rng" | "from_entropy" | "OsRng" | "getrandom" | "RandomState"
        ) {
            out.push(f(
                t.line,
                "determinism",
                format!(
                    "`{}` draws OS entropy — every RNG must be seeded (`StdRng::seed_from_u64`)",
                    t.text
                ),
            ));
        }
        if t.text == "env"
            && is_path_sep(toks, i + 1)
            && ident_at(toks, i + 3).is_some_and(|n| n.text == "var" || n.text == "var_os")
            && !ENV_HOMES.contains(&input.path.as_str())
        {
            out.push(f(
                t.line,
                "determinism",
                format!(
                    "raw `env::{}(…)` — each environment knob has one owning module \
                     (MLSCALE_THREADS in `mlscale_core::par`, MLSCALE_FAULTS in \
                     `mlscale_core::faultpoint`) that validates it once; read through \
                     its typed API instead",
                    toks[i + 3].text
                ),
            ));
        }
    }
}

/// Direct file writes that bypass the temp-file + rename helpers.
fn atomic_io(
    toks: &[Token],
    i: usize,
    out: &mut Vec<Finding>,
    f: &impl Fn(u32, &'static str, String) -> Finding,
) {
    if let Some(t) = ident_at(toks, i) {
        let path_call = |n: usize, name: &str| {
            is_path_sep(toks, n + 1) && ident_at(toks, n + 3).is_some_and(|m| m.text == name)
        };
        if (t.text == "fs" && path_call(i, "write"))
            || (t.text == "File" && path_call(i, "create"))
            || t.text == "OpenOptions"
        {
            out.push(f(
                t.line,
                "atomic-results-io",
                "direct file write — results must go through a temp-file + rename helper \
                 (`mlscale_bench::emit`, `scenario::write_outcome`, \
                 `scenario::ShardedStore::write_shard`) so interruption never \
                 leaves a truncated JSON"
                    .to_string(),
            ));
        }
    }
}

/// Whether the token stream contains `#![forbid(unsafe_code)]` or
/// `#![deny(unsafe_code)]`.
fn has_unsafe_attr(toks: &[Token]) -> bool {
    toks.windows(8).any(|w| {
        w[0].text == "#"
            && w[1].text == "!"
            && w[2].text == "["
            && (w[3].text == "forbid" || w[3].text == "deny")
            && w[4].text == "("
            && w[5].text == "unsafe_code"
            && w[6].text == ")"
            && w[7].text == "]"
    })
}

fn ident_at(toks: &[Token], i: usize) -> Option<&Token> {
    toks.get(i).filter(|t| t.kind == TokKind::Ident)
}

fn is_punct(toks: &[Token], i: usize, p: &str) -> bool {
    toks.get(i)
        .is_some_and(|t| t.kind == TokKind::Punct && t.text == p)
}

/// `::` as two adjacent `:` puncts starting at `i`.
fn is_path_sep(toks: &[Token], i: usize) -> bool {
    is_punct(toks, i, ":") && is_punct(toks, i + 1, ":")
}
