//! # mlscale-lint — repo-aware static analysis
//!
//! Six PRs of this workspace rest on invariants no compiler checks:
//! golden fixtures demand byte-reproducible output, `mlscale serve`
//! demands panic-free request handling, results files demand atomic
//! writes, threading must flow through `mlscale_core::par`, and the
//! offline build demands vendored dependencies. This crate checks all of
//! them mechanically: a dependency-free, source-level analyzer with a
//! hand-rolled lexer (string/char/comment-aware, `#[cfg(test)]`-aware)
//! and a rule engine with mandatory-reason inline suppressions.
//!
//! Run it with `cargo run -p mlscale-lint` from the workspace root; it
//! exits non-zero and prints `file:line:rule: message` findings when any
//! invariant is violated. Suppress a justified site with
//! `// lint: allow(<rule>): <reason>` — the reason is required, and a
//! suppression that silences nothing is itself a finding.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod context;
pub mod lexer;
pub mod manifest;
pub mod report;
pub mod rules;

use context::FileInput;
use report::{Finding, LintOutcome};
use std::path::{Path, PathBuf};

/// Lints every member of the workspace rooted at `root` (the directory
/// holding the `[workspace]` `Cargo.toml`).
pub fn lint_workspace(root: &Path) -> Result<LintOutcome, String> {
    let root_manifest = root.join("Cargo.toml");
    let text = std::fs::read_to_string(&root_manifest)
        .map_err(|e| format!("cannot read {}: {e}", root_manifest.display()))?;
    let mut member_dirs = workspace_members(&text);
    member_dirs.insert(0, String::new()); // the root facade package itself

    let mut outcome = LintOutcome::default();
    for member in &member_dirs {
        let vendored = member.starts_with("vendor");
        let dir = if member.is_empty() {
            root.to_path_buf()
        } else {
            root.join(member)
        };

        // The member's own manifest (the root one covers the facade).
        let manifest_path = dir.join("Cargo.toml");
        if let Ok(toml) = std::fs::read_to_string(&manifest_path) {
            let rel = rel_path(root, &manifest_path);
            outcome
                .findings
                .extend(manifest::lint_manifest(&rel, member, &toml));
            outcome.manifests_scanned += 1;
        }

        // Rust sources: src/, tests/, benches/, examples/ under the
        // member directory. For the root package, only those four dirs
        // (never the member crates again, never `target/`).
        for sub in ["src", "tests", "benches", "examples"] {
            let base = dir.join(sub);
            if !base.is_dir() {
                continue;
            }
            for file in rust_files(&base) {
                let rel = rel_path(root, &file);
                let src = std::fs::read_to_string(&file)
                    .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
                let input = FileInput::classify(&rel, vendored);
                let lint = rules::lint_source(&input, &src);
                outcome.findings.extend(lint.findings);
                outcome.suppressions.extend(lint.used);
                outcome.files_scanned += 1;
            }
        }
    }
    outcome
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(outcome)
}

/// Finds the workspace root at or above `start`: the nearest directory
/// whose `Cargo.toml` declares `[workspace]`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.lines().any(|l| l.trim() == "[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Member directories out of the root manifest's `members = [ … ]` list.
fn workspace_members(root_toml: &str) -> Vec<String> {
    let mut members = Vec::new();
    let mut in_members = false;
    for raw in root_toml.lines() {
        let mut line = raw.trim();
        if line.starts_with("members") && line.contains('[') {
            in_members = true;
            // Single-line lists: scan only past the opening bracket.
            line = &line[line.find('[').map_or(0, |i| i + 1)..];
        }
        if in_members {
            for piece in line.split(',') {
                if let Some(m) = piece
                    .trim()
                    .strip_prefix('"')
                    .and_then(|p| p.split('"').next())
                {
                    if !members.contains(&m.to_string()) {
                        members.push(m.to_string());
                    }
                }
            }
            if line.ends_with(']') {
                break;
            }
        }
    }
    members
}

/// All `.rs` files under `base`, recursively, in sorted order (so runs
/// are deterministic across filesystems).
fn rust_files(base: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let mut stack = vec![base.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                if path.file_name().is_some_and(|n| n == "target") {
                    continue;
                }
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    files
}

/// `path` relative to `root`, `/`-separated.
fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// A `Finding` list as printable lines (test + CLI convenience).
pub fn render_findings(findings: &[Finding]) -> String {
    findings
        .iter()
        .map(Finding::to_line)
        .collect::<Vec<_>>()
        .join("\n")
}
