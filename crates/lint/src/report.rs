//! Findings and report rendering: `file:line:rule: message` text lines
//! for humans, and a JSON document for CI artifacts. The JSON is
//! hand-rolled (the linter is dependency-free by design), covering
//! exactly the shapes the report needs.

use crate::rules::UsedSuppression;

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-root-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule name (one of [`crate::rules::RULES`]).
    pub rule: &'static str,
    /// Human-readable explanation with the expected remedy.
    pub message: String,
}

impl Finding {
    /// The canonical single-line rendering: `file:line:rule: message`.
    pub fn to_line(&self) -> String {
        format!(
            "{}:{}:{}: {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// The outcome of linting a whole workspace.
#[derive(Debug, Default)]
pub struct LintOutcome {
    /// All surviving findings, sorted by file then line.
    pub findings: Vec<Finding>,
    /// Suppressions that silenced at least one finding, with reasons.
    pub suppressions: Vec<UsedSuppression>,
    /// Number of Rust sources scanned.
    pub files_scanned: usize,
    /// Number of manifests scanned.
    pub manifests_scanned: usize,
}

impl LintOutcome {
    /// Whether the tree is clean.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// The JSON report uploaded by CI.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!(
            "  \"files_scanned\": {},\n  \"manifests_scanned\": {},\n  \"finding_count\": {},\n",
            self.files_scanned,
            self.manifests_scanned,
            self.findings.len()
        ));
        s.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}}}",
                json_str(&f.file),
                f.line,
                json_str(f.rule),
                json_str(&f.message)
            ));
        }
        if !self.findings.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("],\n  \"suppressions\": [");
        for (i, u) in self.suppressions.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let rules: Vec<String> = u.rules.iter().map(|r| json_str(r)).collect();
            s.push_str(&format!(
                "\n    {{\"file\": {}, \"line\": {}, \"rules\": [{}], \"reason\": {}}}",
                json_str(&u.file),
                u.line,
                rules.join(", "),
                json_str(&u.reason)
            ));
        }
        if !self.suppressions.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("]\n}\n");
        s
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finding_line_format() {
        let f = Finding {
            file: "crates/core/src/par.rs".into(),
            line: 7,
            rule: "panic-free-lib",
            message: "boom".into(),
        };
        assert_eq!(f.to_line(), "crates/core/src/par.rs:7:panic-free-lib: boom");
    }

    #[test]
    fn json_escapes_and_shape() {
        let outcome = LintOutcome {
            findings: vec![Finding {
                file: "a.rs".into(),
                line: 1,
                rule: "determinism",
                message: "say \"no\" to\nclocks".into(),
            }],
            suppressions: vec![],
            files_scanned: 3,
            manifests_scanned: 2,
        };
        let json = outcome.to_json();
        assert!(json.contains("\"finding_count\": 1"));
        assert!(json.contains("\\\"no\\\" to\\nclocks"));
        assert!(json.contains("\"suppressions\": []"));
    }
}
