//! A hand-rolled Rust lexer: just enough tokenization that the rule
//! engine can match identifier/punctuation sequences without ever being
//! fooled by the contents of strings, characters or comments.
//!
//! `"panic!"` in a string literal, `unwrap` in a doc comment, and
//! `// fs::write would be wrong here` all produce zero rule-visible
//! tokens. Comments are captured separately (with their line numbers) so
//! suppression directives can be parsed out of them.
//!
//! Handled syntax: line and (nested) block comments, string literals
//! with escapes, raw strings `r"…"` / `r#"…"#` (any number of `#`),
//! byte/C-string prefixes (`b"…"`, `br#"…"#`, `c"…"`), character
//! literals vs. lifetimes (`'a'` vs `'a`), raw identifiers (`r#type`),
//! and numeric literals including floats and exponents (`1.0e-4`,
//! `0xC11`). Multi-line literals and comments keep the line counter
//! accurate.

/// What kind of token the rule engine is looking at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unwrap`, `thread`, `fn`, …).
    Ident,
    /// A single punctuation character (`.`, `:`, `!`, `{`, …).
    Punct,
    /// String literal of any flavour (contents are rule-invisible).
    Str,
    /// Character or byte literal.
    Char,
    /// A lifetime (`'a`, `'static`).
    Lifetime,
    /// Numeric literal.
    Num,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// 1-based line the token starts on.
    pub line: u32,
    /// Token class.
    pub kind: TokKind,
    /// Token text (empty for string/char literals — contents must never
    /// influence a rule).
    pub text: String,
}

/// One comment with its 1-based starting line and body text (without the
/// `//` / `/* */` markers). Suppression directives are parsed from these.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Comment body, markers stripped.
    pub text: String,
}

/// The full lexing result for one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Rule-visible tokens in source order.
    pub tokens: Vec<Token>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

/// Lexes `src`. Never fails: unterminated literals or comments simply
/// consume the rest of the file (the compiler will reject such a file
/// anyway; the linter must not crash on it).
pub fn lex(src: &str) -> Lexed {
    Lexer {
        chars: src.chars().collect(),
        i: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    i: usize,
    line: u32,
    out: Lexed,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    /// Advances one char, keeping the line counter accurate.
    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        if c == '\n' {
            self.line += 1;
        }
        self.i += 1;
        Some(c)
    }

    fn push(&mut self, line: u32, kind: TokKind, text: String) {
        self.out.tokens.push(Token { line, kind, text });
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            match c {
                _ if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string_literal(),
                'r' | 'b' | 'c' if self.try_prefixed_literal() => {}
                '\'' => self.char_or_lifetime(),
                _ if is_ident_start(c) => self.ident(),
                _ if c.is_ascii_digit() => self.number(),
                _ => {
                    let line = self.line;
                    self.bump();
                    self.push(line, TokKind::Punct, c.to_string());
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let line = self.line;
        self.bump();
        self.bump(); // //
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.comments.push(Comment { line, text });
    }

    /// Block comments nest, per the Rust reference.
    fn block_comment(&mut self) {
        let line = self.line;
        self.bump();
        self.bump(); // /*
        let mut depth = 1usize;
        let mut text = String::new();
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    text.push_str("/*");
                    self.bump();
                    self.bump();
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    if depth > 0 {
                        text.push_str("*/");
                    }
                    self.bump();
                    self.bump();
                }
                (Some(c), _) => {
                    text.push(c);
                    self.bump();
                }
                (None, _) => break, // unterminated: swallow to EOF
            }
        }
        self.out.comments.push(Comment { line, text });
    }

    /// A plain `"…"` string with `\` escapes. The opening quote must be
    /// the current char.
    fn string_literal(&mut self) {
        let line = self.line;
        self.bump(); // "
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump(); // the escaped char, whatever it is
                }
                '"' => break,
                _ => {}
            }
        }
        self.push(line, TokKind::Str, String::new());
    }

    /// Raw string with `hashes` `#`s; the caller has consumed up to and
    /// including the opening quote.
    fn raw_string_tail(&mut self, line: u32, hashes: usize) {
        'scan: while let Some(c) = self.bump() {
            if c == '"' {
                for k in 0..hashes {
                    if self.peek(k) != Some('#') {
                        continue 'scan;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
        self.push(line, TokKind::Str, String::new());
    }

    /// Handles `r"…"`, `r#"…"#…`, `r#ident`, `b"…"`, `br#"…"#`, `b'x'`,
    /// `c"…"` — anything where `r`/`b`/`c` prefixes a literal. Returns
    /// false when the current char starts a plain identifier instead.
    fn try_prefixed_literal(&mut self) -> bool {
        let line = self.line;
        let c0 = self.peek(0).unwrap_or(' ');
        // b'x' — a byte literal.
        if c0 == 'b' && self.peek(1) == Some('\'') {
            self.bump(); // b
            self.char_literal();
            return true;
        }
        // b"…" / c"…" / "…" after the one-letter prefix.
        if (c0 == 'b' || c0 == 'c') && self.peek(1) == Some('"') {
            self.bump();
            self.string_literal();
            return true;
        }
        // br#"…"# / cr#"…"# / r#"…"# / r"…" — count hashes after the
        // optional second prefix letter.
        let r_at = if c0 == 'r' {
            0
        } else if self.peek(1) == Some('r') {
            1
        } else {
            return false;
        };
        let mut j = r_at + 1;
        let mut hashes = 0usize;
        while self.peek(j) == Some('#') {
            hashes += 1;
            j += 1;
        }
        if self.peek(j) == Some('"') {
            for _ in 0..=j {
                self.bump(); // prefix, hashes, opening quote
            }
            self.raw_string_tail(line, hashes);
            return true;
        }
        // r#ident — a raw identifier (only with exactly one hash and an
        // ident start after it, and only for a bare `r` prefix).
        if c0 == 'r' && hashes == 1 && self.peek(2).is_some_and(is_ident_start) {
            self.bump();
            self.bump(); // r#
            self.ident();
            return true;
        }
        false
    }

    /// At a `'`: a character literal (`'a'`, `'\n'`, `'\u{1F600}'`) or a
    /// lifetime (`'static`). Disambiguation: `'x'` (next-next is a quote)
    /// or `'\…` (escape) is a char; otherwise a lifetime.
    fn char_or_lifetime(&mut self) {
        if self.peek(1) == Some('\\') || (self.peek(2) == Some('\'') && self.peek(1) != Some('\''))
        {
            self.char_literal();
        } else {
            let line = self.line;
            self.bump(); // '
            let mut text = String::from("'");
            while let Some(c) = self.peek(0) {
                if is_ident_continue(c) {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(line, TokKind::Lifetime, text);
        }
    }

    /// A character (or byte) literal; the opening quote is current.
    fn char_literal(&mut self) {
        let line = self.line;
        self.bump(); // '
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '\'' => break,
                _ => {}
            }
        }
        self.push(line, TokKind::Char, String::new());
    }

    fn ident(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if is_ident_continue(c) {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(line, TokKind::Ident, text);
    }

    /// Numeric literal: digits, `_`, type suffixes, hex/octal/binary
    /// alphanumerics, one `.` followed by a digit, and a signed exponent.
    fn number(&mut self) {
        let line = self.line;
        let mut text = String::new();
        let mut seen_dot = false;
        while let Some(c) = self.peek(0) {
            if c.is_ascii_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else if c == '.' && !seen_dot && self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                seen_dot = true;
                text.push(c);
                self.bump();
            } else if (c == '+' || c == '-')
                && text.ends_with(['e', 'E'])
                && self.peek(1).is_some_and(|d| d.is_ascii_digit())
            {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(line, TokKind::Num, text);
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone())
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_their_contents() {
        let src = r##"
            let a = "panic!(\"in a string\")"; // unwrap in a comment
            /* fs::write in a /* nested */ block comment */
            let b = r#"thread::spawn in a raw string"#;
        "##;
        let ids = idents(src);
        assert!(ids.contains(&"let".to_string()));
        assert!(!ids.iter().any(|t| t == "panic" || t == "unwrap"));
        assert!(!ids.iter().any(|t| t == "spawn" || t == "write"));
    }

    #[test]
    fn lifetimes_do_not_start_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let lexed = lex(src);
        let lifetimes: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(
            lexed
                .tokens
                .iter()
                .filter(|t| t.kind == TokKind::Char)
                .count(),
            1
        );
        // The 'x' literal must not have swallowed the closing brace.
        assert_eq!(lexed.tokens.last().unwrap().text, "}");
    }

    #[test]
    fn multiline_raw_string_keeps_line_numbers() {
        let src = "let s = r#\"line\nline\nline\"#;\nlet after = 1;";
        let lexed = lex(src);
        let after = lexed
            .tokens
            .iter()
            .find(|t| t.text == "after")
            .expect("after token");
        assert_eq!(after.line, 4);
    }

    #[test]
    fn comment_lines_are_recorded() {
        let src = "let a = 1;\n// lint: allow(panic-free-lib): reason\nlet b = 2;";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.comments[0].line, 2);
        assert!(lexed.comments[0].text.contains("lint: allow"));
    }

    #[test]
    fn numbers_with_exponents_lex_as_one_token() {
        let lexed = lex("let x = 1.0e-4 + 0xC11;");
        let nums: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(nums, vec!["1.0e-4", "0xC11"]);
    }
}
