//! File classification and source contexts: which rules apply where.
//!
//! Three layers decide whether a token is rule-visible:
//!
//! 1. **Target kind** — library sources, binary sources, and test-like
//!    sources (`tests/`, `benches/`, `examples/`) get different rule
//!    sets; vendored crates are exempt from the code rules entirely.
//! 2. **`#[cfg(test)]` spans** — inline test modules inside library
//!    files count as test code; the span of the attributed item (brace
//!    matched) is excluded from non-test rules.
//! 3. **Suppressions** — `// lint: allow(<rule>): <reason>` comments
//!    silence a rule on their own line or the next code line. The reason
//!    is mandatory; an allow that suppresses nothing is itself reported.

use crate::lexer::{Comment, Lexed, TokKind, Token};

/// How a source file participates in the build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Part of a library target (`src/**` minus binaries).
    Lib,
    /// A binary target root or helper (`src/main.rs`, `src/bin/**`).
    Bin,
    /// Integration tests, benches, examples — panic-freedom and
    /// determinism rules do not apply.
    TestLike,
}

/// Everything the rule engine needs to know about a file besides its
/// source text.
#[derive(Debug, Clone)]
pub struct FileInput {
    /// Workspace-root-relative path, `/`-separated (used in findings).
    pub path: String,
    /// Target kind.
    pub kind: FileKind,
    /// Whether the file belongs to a vendored (stand-in) crate.
    pub vendored: bool,
    /// Whether the file is a crate root (`lib.rs`, `main.rs`,
    /// `src/bin/*.rs`) — where `#![forbid(unsafe_code)]` must live.
    pub crate_root: bool,
}

impl FileInput {
    /// Classifies `rel` (workspace-root-relative, `/`-separated).
    pub fn classify(rel: &str, vendored: bool) -> Self {
        let in_dir = |d: &str| rel.contains(&format!("/{d}/")) || rel.starts_with(&format!("{d}/"));
        let kind = if in_dir("tests") || in_dir("benches") || in_dir("examples") {
            FileKind::TestLike
        } else if rel.ends_with("/main.rs") || in_dir("src/bin") {
            FileKind::Bin
        } else {
            FileKind::Lib
        };
        let crate_root = rel.ends_with("src/lib.rs")
            || rel.ends_with("src/main.rs")
            || (in_dir("src/bin") && rel.ends_with(".rs"));
        Self {
            path: rel.to_string(),
            kind,
            vendored,
            crate_root,
        }
    }
}

/// Inclusive 1-based line ranges covered by `#[cfg(test)]` items.
#[derive(Debug, Default)]
pub struct TestSpans(Vec<(u32, u32)>);

impl TestSpans {
    /// Whether `line` falls inside any `#[cfg(test)]` item.
    pub fn contains(&self, line: u32) -> bool {
        self.0.iter().any(|&(lo, hi)| (lo..=hi).contains(&line))
    }

    /// Scans the token stream for `#[cfg(test)]`-attributed items and
    /// records their brace-matched line spans. `cfg(any(test, …))` and
    /// friends count: any `test` identifier inside a `cfg` attribute
    /// marks the item.
    pub fn find(lexed: &Lexed) -> Self {
        let toks = &lexed.tokens;
        let mut spans = Vec::new();
        let mut i = 0;
        while i < toks.len() {
            if !(is_punct(toks, i, "#") && is_punct(toks, i + 1, "[")) {
                i += 1;
                continue;
            }
            let attr_start = i;
            let Some(attr_end) = match_bracket(toks, i + 1, "[", "]") else {
                break; // malformed attribute: nothing more to find
            };
            let is_cfg_test = is_ident(toks, attr_start + 2, "cfg")
                && toks[attr_start + 2..attr_end]
                    .iter()
                    .any(|t| t.kind == TokKind::Ident && t.text == "test");
            if !is_cfg_test {
                i = attr_end + 1;
                continue;
            }
            // Skip any further attributes between cfg(test) and the item.
            let mut j = attr_end + 1;
            while is_punct(toks, j, "#") && is_punct(toks, j + 1, "[") {
                match match_bracket(toks, j + 1, "[", "]") {
                    Some(end) => j = end + 1,
                    None => return Self(spans),
                }
            }
            // The item extends to its closing brace, or to a `;` for
            // brace-less items (`#[cfg(test)] mod tests;`).
            let mut end_line = toks.get(j).map_or(toks[attr_start].line, |t| t.line);
            while j < toks.len() {
                if is_punct(toks, j, ";") {
                    end_line = toks[j].line;
                    break;
                }
                if is_punct(toks, j, "{") {
                    if let Some(close) = match_bracket(toks, j, "{", "}") {
                        end_line = toks[close].line;
                        j = close;
                    } else {
                        end_line = toks.last().map_or(end_line, |t| t.line);
                        j = toks.len();
                    }
                    break;
                }
                j += 1;
            }
            spans.push((toks[attr_start].line, end_line));
            i = j + 1;
        }
        Self(spans)
    }
}

/// One parsed `// lint: allow(<rules>): <reason>` directive.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// Line the comment starts on.
    pub line: u32,
    /// The line whose findings it silences (same line for a trailing
    /// comment, the next code line for a comment on its own line).
    pub target_line: u32,
    /// Rule names listed in `allow(…)`.
    pub rules: Vec<String>,
    /// The mandatory justification text.
    pub reason: String,
    /// How many findings this directive silenced (filled by the engine).
    pub hits: usize,
}

/// A malformed directive, reported as a finding by the engine.
#[derive(Debug, Clone)]
pub struct BadDirective {
    /// Line of the offending comment.
    pub line: u32,
    /// What is wrong with it.
    pub message: String,
}

/// The result of scanning a file's comments for directives.
#[derive(Debug, Default)]
pub struct Directives {
    /// Well-formed suppressions.
    pub allows: Vec<Suppression>,
    /// Malformed ones (missing reason, bad syntax, unknown rule names
    /// are checked by the engine which knows the rule registry).
    pub bad: Vec<BadDirective>,
}

/// Parses every `lint:` directive out of the comments. `token_lines`
/// must contain the set of lines that carry at least one token, so a
/// directive on its own line can bind to the next code line.
pub fn parse_directives(comments: &[Comment], token_lines: &[u32]) -> Directives {
    let mut out = Directives::default();
    for comment in comments {
        let text = comment.text.trim();
        // Doc-comment bodies (`/// lint:`) start with an extra marker.
        let text = text.trim_start_matches(['/', '!']).trim_start();
        let Some(rest) = text.strip_prefix("lint:") else {
            continue;
        };
        let rest = rest.trim_start();
        let Some(args) = rest.strip_prefix("allow") else {
            out.bad.push(BadDirective {
                line: comment.line,
                message: format!(
                    "unknown lint directive {rest:?} (expected `allow(<rule>): <reason>`)"
                ),
            });
            continue;
        };
        let args = args.trim_start();
        let parsed = args.strip_prefix('(').and_then(|a| a.split_once(')'));
        let Some((rule_list, tail)) = parsed else {
            out.bad.push(BadDirective {
                line: comment.line,
                message: "malformed allow — expected `allow(<rule>): <reason>`".to_string(),
            });
            continue;
        };
        let rules: Vec<String> = rule_list
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        let reason = tail.trim_start().strip_prefix(':').map(str::trim);
        let (Some(reason), false) = (reason, rules.is_empty()) else {
            out.bad.push(BadDirective {
                line: comment.line,
                message: "allow needs a rule list and a `: <reason>` tail".to_string(),
            });
            continue;
        };
        if reason.is_empty() {
            out.bad.push(BadDirective {
                line: comment.line,
                message: format!(
                    "allow({}) has no reason — a suppression must say why it is justified",
                    rules.join(", ")
                ),
            });
            continue;
        }
        let target_line = if token_lines.binary_search(&comment.line).is_ok() {
            comment.line
        } else {
            // The first code line after the comment (skipping blank and
            // further comment-only lines).
            match token_lines.iter().find(|&&l| l > comment.line) {
                Some(&l) => l,
                None => comment.line,
            }
        };
        out.allows.push(Suppression {
            line: comment.line,
            target_line,
            rules,
            reason: reason.to_string(),
            hits: 0,
        });
    }
    out
}

/// Sorted, deduplicated list of lines that carry at least one token.
pub fn token_lines(lexed: &Lexed) -> Vec<u32> {
    let mut lines: Vec<u32> = lexed.tokens.iter().map(|t| t.line).collect();
    lines.sort_unstable();
    lines.dedup();
    lines
}

fn is_punct(toks: &[Token], i: usize, p: &str) -> bool {
    toks.get(i)
        .is_some_and(|t| t.kind == TokKind::Punct && t.text == p)
}

fn is_ident(toks: &[Token], i: usize, name: &str) -> bool {
    toks.get(i)
        .is_some_and(|t| t.kind == TokKind::Ident && t.text == name)
}

/// Given `toks[open]` is the `open` bracket, returns the index of its
/// matching `close` bracket.
fn match_bracket(toks: &[Token], open: usize, open_ch: &str, close_ch: &str) -> Option<usize> {
    if !is_punct(toks, open, open_ch) {
        return None;
    }
    let mut depth = 0usize;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.kind == TokKind::Punct {
            if t.text == open_ch {
                depth += 1;
            } else if t.text == close_ch {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn classify_by_path() {
        let lib = FileInput::classify("crates/core/src/par.rs", false);
        assert_eq!(lib.kind, FileKind::Lib);
        assert!(!lib.crate_root);
        let root = FileInput::classify("crates/core/src/lib.rs", false);
        assert!(root.crate_root);
        let bin = FileInput::classify("crates/bench/src/bin/exp-fig1.rs", false);
        assert_eq!(bin.kind, FileKind::Bin);
        assert!(bin.crate_root);
        let test = FileInput::classify("crates/core/tests/par_determinism.rs", false);
        assert_eq!(test.kind, FileKind::TestLike);
        let root_main = FileInput::classify("src/bin/mlscale.rs", false);
        assert_eq!(root_main.kind, FileKind::Bin);
        assert!(root_main.crate_root);
    }

    #[test]
    fn cfg_test_spans_cover_the_module_body() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n  fn t() { x.unwrap(); }\n}\nfn after() {}\n";
        let lexed = lex(src);
        let spans = TestSpans::find(&lexed);
        assert!(spans.contains(2));
        assert!(spans.contains(4));
        assert!(spans.contains(5));
        assert!(!spans.contains(1));
        assert!(!spans.contains(6));
    }

    #[test]
    fn cfg_any_test_counts_and_other_cfgs_do_not() {
        let spans = TestSpans::find(&lex("#[cfg(any(test, doctest))]\nmod t { }\nfn x() {}\n"));
        assert!(spans.contains(2));
        let none = TestSpans::find(&lex("#[cfg(feature = \"x\")]\nmod t { }\n"));
        assert!(!none.contains(2));
    }

    #[test]
    fn directive_parsing_and_binding() {
        let src = "let a = 1;\n// lint: allow(panic-free-lib): poisoning is unrecoverable here\nlet b = x.unwrap();\nlet c = 2; // lint: allow(determinism, par-only-threads): trailing\n";
        let lexed = lex(src);
        let d = parse_directives(&lexed.comments, &token_lines(&lexed));
        assert_eq!(d.allows.len(), 2);
        assert_eq!(d.allows[0].target_line, 3, "own-line allow binds forward");
        assert_eq!(
            d.allows[1].target_line, 4,
            "trailing allow binds to its line"
        );
        assert_eq!(d.allows[1].rules.len(), 2);
        assert!(d.bad.is_empty());
    }

    #[test]
    fn missing_reason_is_rejected() {
        let lexed = lex("// lint: allow(panic-free-lib)\nlet a = 1;\n// lint: allow(panic-free-lib):\nlet b = 2;\n// lint: deny(everything)\n");
        let d = parse_directives(&lexed.comments, &token_lines(&lexed));
        assert!(d.allows.is_empty());
        assert_eq!(d.bad.len(), 3);
        assert!(d.bad[1].message.contains("no reason"));
    }
}
