//! The `vendor-policy` rule: every dependency in every workspace
//! `Cargo.toml` must resolve inside the repository — a `path` dependency
//! into `vendor/` or `crates/`, or `workspace = true` (whose definition
//! is itself checked at the workspace root). The build container has no
//! crates.io access, so a registry or git dependency is not just policy
//! drift, it is a guaranteed build break that would only surface later.
//!
//! The scanner is a minimal line-oriented TOML reader covering the
//! manifest shapes the workspace actually uses (and the fixture suite
//! pins): `[dependencies]`-style sections, inline tables
//! (`foo = { path = "…" }`), dotted keys (`foo.workspace = true`,
//! `foo.path = "…"`), bare version strings (`foo = "1.0"` — always a
//! violation), and `[dependencies.foo]` subsections.

use crate::report::Finding;

/// Lints one manifest. `rel` is the workspace-root-relative path used in
/// findings; `dir_rel` is the manifest's directory ("" for the root), so
/// relative `path =` values can be resolved against the workspace root.
pub fn lint_manifest(rel: &str, dir_rel: &str, text: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut section = String::new();
    // `[dependencies.foo]` subsection state: (start line, dep name,
    // saw a path/workspace key).
    let mut sub: Option<(u32, String, bool)> = None;

    let flush_sub = |sub: &mut Option<(u32, String, bool)>, findings: &mut Vec<Finding>| {
        if let Some((line, name, ok)) = sub.take() {
            if !ok {
                findings.push(violation(rel, line, &name, "no `path` into the workspace"));
            }
        }
    };

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx as u32 + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            flush_sub(&mut sub, &mut findings);
            section = header.trim().to_string();
            if let Some(dep) = dep_subsection(&section) {
                sub = Some((line_no, dep.to_string(), false));
            }
            continue;
        }
        if let Some((_, _, ok)) = sub.as_mut() {
            // Inside [dependencies.foo]: look for the in-repo markers.
            if let Some((key, value)) = line.split_once('=') {
                let key = key.trim();
                let value = value.trim();
                if key == "workspace" && value == "true" {
                    *ok = true;
                }
                if key == "path" {
                    if let Some(p) = unquote(value) {
                        if path_in_repo(dir_rel, p) {
                            *ok = true;
                        }
                    }
                }
                if key == "git" || key == "registry" {
                    findings.push(violation(rel, line_no, &section, "git/registry source"));
                }
            }
            continue;
        }
        if !is_dep_section(&section) {
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        let (key, value) = (key.trim(), value.trim());
        // Dotted keys: `foo.workspace = true` / `foo.path = "…"`.
        if let Some((dep, field)) = key.split_once('.') {
            match field {
                "workspace" if value == "true" => {}
                "path" => {
                    if !unquote(value).is_some_and(|p| path_in_repo(dir_rel, p)) {
                        findings.push(violation(rel, line_no, dep, "path leaves the repository"));
                    }
                }
                _ => findings.push(violation(
                    rel,
                    line_no,
                    dep,
                    "only `path` and `workspace` dependency forms are allowed",
                )),
            }
            continue;
        }
        // `foo = "1.0"` — a registry dependency.
        if value.starts_with('"') {
            findings.push(violation(
                rel,
                line_no,
                key,
                "bare version — the build container has no crates.io access",
            ));
            continue;
        }
        // `foo = { … }` inline table.
        if value.starts_with('{') {
            let has_git = value.contains("git =") || value.contains("git=");
            let workspace_true = value.contains("workspace = true");
            let path_ok = inline_path(value).is_some_and(|p| path_in_repo(dir_rel, p));
            if has_git {
                findings.push(violation(rel, line_no, key, "git source"));
            } else if !workspace_true && !path_ok {
                findings.push(violation(
                    rel,
                    line_no,
                    key,
                    "no `path` into the workspace and no `workspace = true`",
                ));
            }
        }
    }
    flush_sub(&mut sub, &mut findings);
    findings
}

fn violation(rel: &str, line: u32, dep: &str, why: &str) -> Finding {
    Finding {
        file: rel.to_string(),
        line,
        rule: "vendor-policy",
        message: format!(
            "dependency `{dep}`: {why} — every dependency must be a `path` dep into \
             `vendor/` or `crates/` (or `workspace = true` resolving to one)"
        ),
    }
}

/// Section names that declare dependencies: `dependencies`,
/// `dev-dependencies`, `build-dependencies`, `workspace.dependencies`,
/// and `target.…​.dependencies`.
fn is_dep_section(section: &str) -> bool {
    matches!(
        section,
        "dependencies" | "dev-dependencies" | "build-dependencies" | "workspace.dependencies"
    ) || section.ends_with(".dependencies") // [target.'cfg(…)'.dependencies]
        || section.ends_with(".dev-dependencies")
        || section.ends_with(".build-dependencies")
}

/// `[dependencies.foo]` → `Some("foo")`.
fn dep_subsection(section: &str) -> Option<&str> {
    for prefix in ["dependencies.", "dev-dependencies.", "build-dependencies."] {
        if let Some(dep) = section.strip_prefix(prefix) {
            if !dep.contains('.') {
                return Some(dep);
            }
        }
    }
    None
}

/// Strips a `#` comment, ignoring `#` inside quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn unquote(value: &str) -> Option<&str> {
    value.trim().strip_prefix('"')?.split('"').next()
}

/// The `path = "…"` value out of an inline table.
fn inline_path(table: &str) -> Option<&str> {
    let after = table.split("path").nth(1)?;
    let after = after.trim_start().strip_prefix('=')?;
    unquote(after)
}

/// Whether `path`, resolved from `dir_rel` (workspace-root-relative
/// directory of the manifest), stays inside the repository and lands in
/// `vendor/` or `crates/`.
fn path_in_repo(dir_rel: &str, path: &str) -> bool {
    if path.starts_with('/') {
        return false;
    }
    let mut parts: Vec<&str> = dir_rel.split('/').filter(|p| !p.is_empty()).collect();
    for seg in path.split('/') {
        match seg {
            "" | "." => {}
            ".." => {
                if parts.pop().is_none() {
                    return false; // escaped the repository
                }
            }
            _ => parts.push(seg),
        }
    }
    matches!(parts.first(), Some(&"vendor") | Some(&"crates"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_and_path_deps_pass() {
        let toml = r#"
[package]
name = "x"
[dependencies]
mlscale-core.workspace = true
serde = { path = "../../vendor/serde", features = ["derive"] }
[dev-dependencies]
proptest.workspace = true
"#;
        assert!(lint_manifest("crates/x/Cargo.toml", "crates/x", toml).is_empty());
    }

    #[test]
    fn registry_and_git_deps_fail() {
        let toml = r#"
[dependencies]
rayon = "1.8"
left-pad = { git = "https://example.com/left-pad" }
mystery = { version = "0.3", features = ["std"] }
"#;
        let findings = lint_manifest("crates/x/Cargo.toml", "crates/x", toml);
        assert_eq!(findings.len(), 3);
        assert!(findings.iter().all(|f| f.rule == "vendor-policy"));
        assert_eq!(findings[0].line, 3);
    }

    #[test]
    fn escaping_the_repo_fails() {
        let toml = "[dependencies]\noutside = { path = \"../../../elsewhere\" }\n";
        let findings = lint_manifest("crates/x/Cargo.toml", "crates/x", toml);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("outside"));
    }

    #[test]
    fn dep_subsection_needs_a_path() {
        let good = "[dependencies.serde]\npath = \"../../vendor/serde\"\n";
        assert!(lint_manifest("crates/x/Cargo.toml", "crates/x", good).is_empty());
        let bad = "[dependencies.serde]\nversion = \"1\"\n";
        assert_eq!(
            lint_manifest("crates/x/Cargo.toml", "crates/x", bad).len(),
            1
        );
    }

    #[test]
    fn workspace_dependency_definitions_are_checked_at_the_root() {
        let toml = "[workspace.dependencies]\nrand = { path = \"vendor/rand\" }\nbad = \"2.0\"\n";
        let findings = lint_manifest("Cargo.toml", "", toml);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("bad"));
    }
}
