//! The `mlscale-lint` binary: lints the workspace, prints
//! `file:line:rule: message` findings, optionally writes the JSON report,
//! and exits non-zero when the tree violates an invariant.
//!
//! ```text
//! mlscale-lint [--root DIR] [--json PATH] [--list-rules]
//! ```
//!
//! Exit codes: `0` clean, `1` findings, `2` usage or I/O error.

#![forbid(unsafe_code)]

use mlscale_lint::{find_root, lint_workspace, rules::RULES};
use std::path::PathBuf;

fn main() {
    std::process::exit(run());
}

fn run() -> i32 {
    let mut root: Option<PathBuf> = None;
    let mut json_out: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage("--root needs a directory"),
            },
            "--json" => match args.next() {
                Some(path) => json_out = Some(PathBuf::from(path)),
                None => return usage("--json needs a file path"),
            },
            "--list-rules" => {
                for rule in RULES {
                    println!("{rule}");
                }
                return 0;
            }
            "--help" | "-h" => {
                println!("usage: mlscale-lint [--root DIR] [--json PATH] [--list-rules]");
                return 0;
            }
            other => return usage(&format!("unknown flag {other:?}")),
        }
    }

    let root = match root {
        Some(dir) => dir,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(cwd) => cwd,
                Err(e) => {
                    eprintln!("mlscale-lint: cannot resolve current directory: {e}");
                    return 2;
                }
            };
            match find_root(&cwd) {
                Some(found) => found,
                None => {
                    eprintln!(
                        "mlscale-lint: no [workspace] Cargo.toml at or above {} (use --root)",
                        cwd.display()
                    );
                    return 2;
                }
            }
        }
    };

    let outcome = match lint_workspace(&root) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("mlscale-lint: {e}");
            return 2;
        }
    };

    if let Some(path) = json_out {
        if let Err(e) = write_atomic(&path, &outcome.to_json()) {
            eprintln!("mlscale-lint: cannot write {}: {e}", path.display());
            return 2;
        }
        println!("report: {}", path.display());
    }

    for finding in &outcome.findings {
        println!("{}", finding.to_line());
    }
    println!(
        "mlscale-lint: {} finding(s) across {} source file(s) and {} manifest(s); \
         {} suppression(s) honoured",
        outcome.findings.len(),
        outcome.files_scanned,
        outcome.manifests_scanned,
        outcome.suppressions.len()
    );
    i32::from(!outcome.is_clean())
}

fn usage(message: &str) -> i32 {
    eprintln!("mlscale-lint: {message}");
    eprintln!("usage: mlscale-lint [--root DIR] [--json PATH] [--list-rules]");
    2
}

/// The linter practices what it preaches: the report lands via
/// temp-file + rename, never truncated.
fn write_atomic(path: &std::path::Path, contents: &str) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let tmp = path.with_extension("json.tmp");
    // lint: allow(atomic-results-io): this is the temp-file half of the rename pattern
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, path)
}
