//! # mlscale-serve — planner-as-a-service
//!
//! The paper's framework answers "how many workers should this job
//! get?" — exactly the query a scheduler asks thousands of times per
//! hour. This crate keeps the engine resident behind a socket:
//! `mlscale serve` binds a `std::net::TcpListener`, fans connections out
//! across a worker pool sized by `mlscale_core::par`'s thread
//! resolution, and answers scenario-spec JSON on three endpoints:
//!
//! * `POST /gd`    — one gradient-descent configuration (no sweep axes);
//!   the response is the same pretty-printed `ExperimentResult` JSON
//!   `mlscale gd` writes;
//! * `POST /plan`  — like `/gd` but requires `workload.plan`, so the
//!   response carries the fastest/cheapest provisioning stats;
//! * `POST /sweep` — any valid scenario (grids, bp, exhibits); the
//!   response envelope `{"name", "points", "rollup"}` embeds every
//!   per-point result byte-identically to the files `mlscale sweep`
//!   writes.
//!
//! Validation is exactly `ScenarioSpec::from_json` — the CLI's exit-2
//! diagnostics become `400` bodies naming the offending key path:
//! `{"error": {"path": "workload.latancy", "message": "unknown field…"}}`.
//!
//! Two caches are shared process-wide: an
//! [`OrderStatCachePool`](mlscale_core::straggler::OrderStatCachePool)
//! (straggler order-statistic quadratures, reused across requests that
//! share a delay model) and a rendered-response LRU ([`lru::ResponseLru`])
//! keyed on `(endpoint, body)`, so a hot preset is answered without
//! re-evaluating anything. Responses carry `x-mlscale-cache: hit|miss`
//! and `x-mlscale-micros` (server-side handling time) so clients and the
//! load-generator bench can separate cold from cached latency. Cached
//! and cold responses are byte-identical.
//!
//! ## Failure behavior
//!
//! The daemon is hardened against the three ways a socket peer (or the
//! operator) can hurt it:
//!
//! * **Slow or silent peers** — every accepted connection carries a read
//!   deadline ([`Limits::read_timeout`], answered with `408` when it
//!   expires mid-wait) and a write deadline ([`Limits::write_timeout`],
//!   so a stalled reader cannot pin a worker); a keep-alive exchange
//!   that blows [`Limits::request_deadline`] closes the connection after
//!   its response.
//! * **Overload** — one dedicated acceptor feeds a bounded queue
//!   ([`Limits::queue_limit`]); when it is full the acceptor sheds the
//!   connection immediately with `503` + `Retry-After: 1` instead of
//!   queueing unboundedly. The `bench-serve` client retries shed
//!   requests with jittered backoff.
//! * **Shutdown** — `mlscale serve` installs SIGTERM/SIGINT handlers
//!   ([`signal`]); on either, the acceptor stops accepting, idle
//!   keep-alive reads are unblocked, in-flight requests finish and are
//!   answered, and [`Server::run`] returns so the binary exits 0. An
//!   embedded server drains the same way via [`Server::drain_handle`].
//!
//! The request path threads a [`mlscale_core::faultpoint`] hook
//! (`serve.write_response`) so crash tests can drop a response on the
//! floor at a deterministic point.

// `deny` rather than `forbid` so exactly one audited `#[allow]` can
// exist: the two-line `signal(2)` FFI in [`signal`] (the workspace
// builds without crates.io, so there is no libc crate to call instead).
#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod http;
pub mod lru;
pub mod signal;

use http::{is_timeout, read_request, Request, Response};
use lru::ResponseLru;
use mlscale_core::straggler::OrderStatCachePool;
use mlscale_core::{faultpoint, par};
use mlscale_scenario::{run_adaptive_pooled, run_pooled, ScenarioSpec, SpecError, WorkloadSpec};
use serde::{Serialize, Value};
use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Read};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Rendered responses kept in the LRU; a handful of hot scenarios is the
/// expected working set, and entries are small (tens of KiB).
const RESPONSE_CACHE_CAPACITY: usize = 64;

/// Default per-read deadline: idle keep-alive connections are answered
/// `408` and dropped after this long so a silent peer cannot pin a
/// worker. Tune per-server via [`Limits`].
pub const READ_TIMEOUT: Duration = Duration::from_secs(30);

/// Default per-write deadline on accepted connections: a peer that
/// stops reading its response blocks a worker for at most this long.
/// Tune per-server via [`Limits`].
pub const WRITE_TIMEOUT: Duration = Duration::from_secs(10);

/// Default total budget for one keep-alive exchange (parse + evaluate +
/// write). A connection whose exchange exceeds it is closed after its
/// response rather than served again.
pub const REQUEST_DEADLINE: Duration = Duration::from_secs(120);

/// Default bound on connections accepted but not yet picked up by a
/// worker; beyond it the acceptor sheds with `503` + `Retry-After`.
pub const ACCEPT_QUEUE_LIMIT: usize = 128;

/// How often blocked accept/dequeue loops re-check the drain flag.
const DRAIN_POLL: Duration = Duration::from_millis(50);

/// Write deadline for the tiny `503` shed response — the acceptor pays
/// at most this to tell an unlucky peer to retry.
const SHED_WRITE_TIMEOUT: Duration = Duration::from_secs(1);

/// The endpoints the daemon serves.
const ENDPOINTS: [&str; 3] = ["/gd", "/plan", "/sweep"];

/// Socket deadlines and backpressure bounds, tunable per server (tests
/// shrink them to make timeout and shed paths deterministic).
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Per-read socket deadline; expiry answers `408`.
    pub read_timeout: Duration,
    /// Per-write socket deadline on accepted connections.
    pub write_timeout: Duration,
    /// Total budget for one exchange; exceeding it closes the
    /// connection after its response.
    pub request_deadline: Duration,
    /// Accepted-but-unserved connection bound; beyond it, shed with 503.
    pub queue_limit: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Self {
            read_timeout: READ_TIMEOUT,
            write_timeout: WRITE_TIMEOUT,
            request_deadline: REQUEST_DEADLINE,
            queue_limit: ACCEPT_QUEUE_LIMIT,
        }
    }
}

/// The bounded hand-off between the acceptor and the workers.
struct ConnQueue {
    inner: Mutex<std::collections::VecDeque<TcpStream>>,
    ready: Condvar,
}

impl ConnQueue {
    fn new() -> Self {
        Self {
            inner: Mutex::new(std::collections::VecDeque::new()),
            ready: Condvar::new(),
        }
    }

    /// Enqueues unless full; on overflow the stream is handed back for
    /// shedding.
    fn push(&self, stream: TcpStream, limit: usize) -> Result<(), TcpStream> {
        let mut queue = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if queue.len() >= limit {
            return Err(stream);
        }
        queue.push_back(stream);
        drop(queue);
        self.ready.notify_one();
        Ok(())
    }

    /// Dequeues the next connection; `None` once `done()` holds and the
    /// queue is empty (workers drain what was already accepted). The
    /// wait re-checks on a short deadline so a missed notification can
    /// never stall shutdown.
    fn pop(&self, done: impl Fn() -> bool) -> Option<TcpStream> {
        let mut queue = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(stream) = queue.pop_front() {
                return Some(stream);
            }
            if done() {
                return None;
            }
            queue = self
                .ready
                .wait_timeout(queue, DRAIN_POLL)
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        }
    }

    fn notify_all(&self) {
        self.ready.notify_all();
    }
}

/// Live connections, registered so drain can unblock their idle reads
/// (an in-flight request's bytes are fully consumed before evaluation,
/// so shutting down the read half never disturbs a pending response).
#[derive(Default)]
struct ConnRegistry {
    next_id: AtomicU64,
    live: Mutex<HashMap<u64, TcpStream>>,
}

impl ConnRegistry {
    fn register(&self, stream: &TcpStream, draining: bool) -> Option<u64> {
        let clone = stream.try_clone().ok()?;
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.live
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(id, clone);
        if draining {
            // Drain may already have swept the registry; close the race
            // by shutting this connection's read half ourselves.
            stream.shutdown(Shutdown::Read).ok();
        }
        Some(id)
    }

    fn deregister(&self, id: u64) {
        self.live
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(&id);
    }

    fn shutdown_reads(&self) {
        let live = self.live.lock().unwrap_or_else(PoisonError::into_inner);
        for stream in live.values() {
            stream.shutdown(Shutdown::Read).ok();
        }
    }
}

/// Process-wide state every worker shares.
struct State {
    caches: OrderStatCachePool,
    responses: ResponseLru,
    queue: ConnQueue,
    conns: ConnRegistry,
    draining: AtomicBool,
    limits: Limits,
}

/// Requests a graceful drain of the server it came from — the embedded
/// equivalent of sending the daemon SIGTERM.
#[derive(Clone)]
pub struct DrainHandle {
    state: Arc<State>,
}

impl DrainHandle {
    /// Stops accepting, unblocks idle keep-alive reads, lets in-flight
    /// requests finish; the server's [`Server::run`] then returns.
    pub fn request_shutdown(&self) {
        self.state.draining.store(true, Ordering::SeqCst);
        self.state.conns.shutdown_reads();
        self.state.queue.notify_all();
    }
}

/// The planner daemon: a bound listener plus the shared caches.
pub struct Server {
    listener: Arc<TcpListener>,
    threads: usize,
    state: Arc<State>,
}

impl Server {
    /// Binds `addr` (`HOST:PORT`; port 0 asks the OS for a free port)
    /// with a pool of `threads` request workers and default [`Limits`].
    pub fn bind(addr: &str, threads: usize) -> std::io::Result<Self> {
        Ok(Self {
            listener: Arc::new(TcpListener::bind(addr)?),
            threads: threads.max(1),
            state: Arc::new(State {
                caches: OrderStatCachePool::new(),
                responses: ResponseLru::new(RESPONSE_CACHE_CAPACITY),
                queue: ConnQueue::new(),
                conns: ConnRegistry::default(),
                draining: AtomicBool::new(false),
                limits: Limits::default(),
            }),
        })
    }

    /// Replaces the socket deadlines and backpressure bounds (call
    /// before [`Self::run`]/[`Self::start`]).
    #[must_use]
    pub fn with_limits(mut self, limits: Limits) -> Self {
        let state = Arc::get_mut(&mut self.state);
        if let Some(state) = state {
            state.limits = limits;
        }
        self
    }

    /// The bound address (reports the OS-chosen port after binding `:0`).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Number of request-worker threads the pool will run.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// A handle that can later drain this server gracefully.
    pub fn drain_handle(&self) -> DrainHandle {
        DrainHandle {
            state: Arc::clone(&self.state),
        }
    }

    /// Serves until drained: the pool is a `mlscale_core::par` map over
    /// worker indices — index 0 is the acceptor feeding the bounded
    /// queue, the rest serve connections. (Inside a pool worker nested
    /// `par` maps run serial — concurrency comes from serving many
    /// requests at once, and results are bit-identical either way.)
    ///
    /// Returns after a SIGTERM/SIGINT (when [`signal::install`] was
    /// called) or a [`DrainHandle::request_shutdown`]: accepting stops,
    /// already-accepted requests finish and are answered, workers exit.
    pub fn run(&self) {
        let ids: Vec<usize> = (0..=self.threads).collect();
        par::with_thread_count(self.threads + 1, || {
            par::map(&ids, |&id| match id {
                0 => self.acceptor(),
                _ => self.worker(),
            });
        });
    }

    /// Spawns [`Self::run`] on a background thread and returns once the
    /// listener is accepting — for in-process embedding (the bench, unit
    /// tests). The workers run until the process exits or a previously
    /// obtained [`Self::drain_handle`] shuts them down.
    pub fn start(self) -> std::io::Result<SocketAddr> {
        let addr = self.local_addr()?;
        // lint: allow(par-only-threads): the detached accept-loop host thread lives for the whole process; par::map has no fire-and-forget mode
        std::thread::spawn(move || self.run());
        Ok(addr)
    }

    fn draining(&self) -> bool {
        self.state.draining.load(Ordering::SeqCst) || signal::requested()
    }

    /// Accepts on a non-blocking listener (a blocking `accept` would
    /// restart across signals and never observe the drain flag), feeding
    /// the bounded queue and shedding the overflow.
    fn acceptor(&self) {
        self.listener.set_nonblocking(true).ok();
        loop {
            if self.draining() {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _)) => {
                    // Accepted sockets inherit the listener's
                    // non-blocking flag on some platforms; request
                    // workers expect blocking reads with deadlines.
                    stream.set_nonblocking(false).ok();
                    if let Err(rejected) =
                        self.state.queue.push(stream, self.state.limits.queue_limit)
                    {
                        Self::shed(rejected);
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(DRAIN_POLL);
                }
                Err(_) => continue, // transient accept failure
            }
        }
        // Drain: unblock idle keep-alive reads so busy workers notice,
        // and wake idle workers so they observe the flag and exit.
        self.state.conns.shutdown_reads();
        self.state.queue.notify_all();
    }

    /// Tells one over-capacity peer to come back, cheaply: a `503` with
    /// `Retry-After` under a short write deadline, then close.
    fn shed(mut stream: TcpStream) {
        stream.set_write_timeout(Some(SHED_WRITE_TIMEOUT)).ok();
        stream.set_read_timeout(Some(SHED_WRITE_TIMEOUT)).ok();
        let body = error_body(
            "server",
            "overloaded: the accept queue is full — retry after a moment",
        );
        let mut writer = BufWriter::new(&stream);
        let _ = Response::json(503, body)
            .with_header("Retry-After", "1")
            .write_to(&mut writer);
        drop(writer);
        // Lingering close: the shed request's bytes were never read, and
        // closing with unread data RSTs the 503 out of the peer's buffer.
        // Discard what was sent (bounded by the short deadlines above).
        stream.shutdown(Shutdown::Write).ok();
        let mut sink = [0u8; 4096];
        while matches!(stream.read(&mut sink), Ok(n) if n > 0) {}
    }

    fn worker(&self) {
        while let Some(stream) = self.state.queue.pop(|| self.draining()) {
            self.serve_connection(stream);
        }
    }

    /// Serial keep-alive loop over one connection. Every malformed HTTP
    /// exchange is answered with a 400 and the connection closed; a read
    /// deadline expiry is answered with a 408; a panic out of evaluation
    /// becomes a 500, never a dead worker.
    fn serve_connection(&self, stream: TcpStream) {
        let limits = self.state.limits;
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(Some(limits.read_timeout)).ok();
        stream.set_write_timeout(Some(limits.write_timeout)).ok();
        let registered = self.state.conns.register(&stream, self.draining());
        let Ok(read_half) = stream.try_clone() else {
            if let Some(id) = registered {
                self.state.conns.deregister(id);
            }
            return;
        };
        let mut reader = BufReader::new(read_half);
        let mut writer = BufWriter::new(stream);
        loop {
            let request = match read_request(&mut reader) {
                Ok(Some(request)) => request,
                Ok(None) => break, // clean EOF (or an idle read drained)
                Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                    let body = error_body("request", &e.to_string());
                    let _ = Response::json(400, body).write_to(&mut writer);
                    break;
                }
                Err(e) if is_timeout(&e) => {
                    // The read deadline expired while the peer held the
                    // connection open: say so instead of silently
                    // dropping, then close.
                    let body = error_body(
                        "request",
                        &format!(
                            "no request within the {:.0?} read deadline",
                            limits.read_timeout
                        ),
                    );
                    let _ = Response::json(408, body).write_to(&mut writer);
                    break;
                }
                Err(_) => break, // peer reset/aborted: nothing to answer
            };
            let close = request.wants_close();
            // lint: allow(determinism): x-mlscale-micros is a diagnostic latency header, not model output
            let started = Instant::now();
            let response =
                catch_unwind(AssertUnwindSafe(|| self.route(&request))).unwrap_or_else(|_| {
                    Response::json(500, error_body("internal", "evaluation panicked"))
                });
            let micros = started.elapsed().as_micros();
            let response = response.with_header("x-mlscale-micros", micros.to_string());
            if faultpoint::hit(faultpoint::points::SERVE_WRITE_RESPONSE).is_err() {
                break; // injected mid-response crash: drop the connection
            }
            if response.write_to(&mut writer).is_err() || close {
                break;
            }
            if started.elapsed() > limits.request_deadline {
                break; // over the per-exchange budget: no more keep-alive
            }
            if self.draining() {
                break; // in-flight request answered; now drain
            }
        }
        if let Some(id) = registered {
            self.state.conns.deregister(id);
        }
    }

    /// Maps one request to its response (no socket I/O here).
    fn route(&self, request: &Request) -> Response {
        if !ENDPOINTS.contains(&request.path.as_str()) {
            return Response::json(
                404,
                error_body(
                    &request.path,
                    "unknown endpoint (expected POST /gd, /plan or /sweep)",
                ),
            );
        }
        if request.method != "POST" {
            return Response::json(
                405,
                error_body(
                    &request.path,
                    &format!(
                        "{} not allowed (scenario JSON goes in a POST body)",
                        request.method
                    ),
                ),
            )
            .with_header("Allow", "POST");
        }
        let Ok(body) = std::str::from_utf8(&request.body) else {
            return Response::json(400, error_body("request", "body is not valid UTF-8"));
        };
        if let Some(cached) = self.state.responses.get(&request.path, body) {
            return Response::json(200, cached.as_str()).with_header("x-mlscale-cache", "hit");
        }
        match self.respond(&request.path, body) {
            Ok(rendered) => {
                self.state
                    .responses
                    .put(&request.path, body, Arc::clone(&rendered));
                Response::json(200, rendered.as_str()).with_header("x-mlscale-cache", "miss")
            }
            Err(err) => Response::json(400, error_body(&err.path, &err.message)),
        }
    }

    /// Validates and evaluates one request body — exactly the CLI's
    /// validation, so every exit-2 diagnostic surfaces here as the 400
    /// error path.
    fn respond(&self, path: &str, body: &str) -> Result<Arc<String>, SpecError> {
        let spec = ScenarioSpec::from_json(body)?;
        let rendered = match path {
            "/sweep" => {
                // `"adaptive": true` scenarios evaluate only around the
                // (cost, time) Pareto frontier; the envelope then carries
                // the frontier and the evaluated subset instead of the
                // full grid.
                let (outcome, frontier) = if spec.adaptive {
                    let adaptive = run_adaptive_pooled(&spec, &self.state.caches)?;
                    (adaptive.outcome, Some(adaptive.frontier))
                } else {
                    (run_pooled(&spec, &self.state.caches)?, None)
                };
                let mut fields = vec![
                    ("name".to_string(), Value::Str(outcome.name.clone())),
                    (
                        "points".to_string(),
                        Value::Seq(outcome.points.iter().map(|p| p.to_value()).collect()),
                    ),
                    ("rollup".to_string(), outcome.rollup.to_value()),
                ];
                if let Some(frontier) = frontier {
                    fields.push((
                        "frontier".to_string(),
                        Value::Seq(
                            frontier
                                .iter()
                                .map(|f| {
                                    Value::Map(vec![
                                        ("id".to_string(), Value::Str(f.id.clone())),
                                        ("cost".to_string(), Value::F64(f.cost)),
                                        ("time".to_string(), Value::F64(f.time)),
                                    ])
                                })
                                .collect(),
                        ),
                    ));
                }
                let envelope = Value::Map(fields);
                serde_json::to_string_pretty(&envelope)
                    .map_err(|e| SpecError::new(path, format!("cannot render sweep JSON: {e}")))?
            }
            _ => {
                // /gd and /plan: one configuration, answered with the
                // same pretty ExperimentResult JSON the CLI emits.
                let WorkloadSpec::Gd(gd) = &spec.workload else {
                    return Err(SpecError::new(
                        "workload.kind",
                        format!("{path} serves gd workloads; POST this scenario to /sweep"),
                    ));
                };
                if !spec.sweep.is_empty() {
                    return Err(SpecError::new(
                        "sweep",
                        format!("{path} answers a single configuration; POST grids to /sweep"),
                    ));
                }
                if path == "/plan" && gd.plan.is_none() {
                    return Err(SpecError::new(
                        "workload.plan",
                        "required by /plan (set iterations and price)",
                    ));
                }
                let outcome = run_pooled(&spec, &self.state.caches)?;
                serde_json::to_string_pretty(&outcome.points[0])
                    .map_err(|e| SpecError::new(path, format!("cannot render result JSON: {e}")))?
            }
        };
        Ok(Arc::new(rendered))
    }
}

/// `{"error": {"path": …, "message": …}}` — the serve-side rendering of
/// a [`SpecError`], naming the offending key path.
fn error_body(path: &str, message: &str) -> String {
    serde_json::to_string(&Value::Map(vec![(
        "error".to_string(),
        Value::Map(vec![
            ("path".to_string(), Value::Str(path.to_string())),
            ("message".to_string(), Value::Str(message.to_string())),
        ]),
    )]))
    .unwrap_or_else(|_| {
        // Rendering a flat string map cannot fail, but a 500 must never
        // panic the worker — fall back to a hand-assembled body.
        r#"{"error":{"path":"internal","message":"error rendering failed"}}"#.to_string()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;

    fn start_server() -> SocketAddr {
        Server::bind("127.0.0.1:0", 2)
            .expect("bind")
            .start()
            .expect("start")
    }

    fn roundtrip(addr: SocketAddr, raw: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(raw.as_bytes()).expect("send");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("recv");
        response
    }

    fn post(addr: SocketAddr, path: &str, body: &str) -> String {
        roundtrip(
            addr,
            &format!(
                "POST {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            ),
        )
    }

    const FIG2: &str = r#"{"name": "fig2-exhibit",
        "workload": {"kind": "exhibit", "id": "fig2", "max_n": 16}}"#;

    #[test]
    fn sweep_endpoint_serves_and_caches() {
        let addr = start_server();
        let cold = post(addr, "/sweep", FIG2);
        assert!(cold.starts_with("HTTP/1.1 200"), "{cold}");
        assert!(cold.contains("x-mlscale-cache: miss"));
        assert!(cold.contains("\"rollup\""));
        let warm = post(addr, "/sweep", FIG2);
        assert!(warm.contains("x-mlscale-cache: hit"));
        let body = |r: &str| r.split("\r\n\r\n").nth(1).unwrap().to_string();
        assert_eq!(body(&cold), body(&warm), "cached must be byte-identical");
    }

    #[test]
    fn adaptive_sweep_envelope_carries_the_frontier() {
        let addr = start_server();
        let scenario = r#"{"name": "adaptive-serve", "adaptive": true,
            "workload": {"kind": "gd", "params": 12e6, "cost_per_example": 72e6,
                         "batch": 60000, "flops": 84.48e9, "max_n": 12},
            "sweep": [{"param": "latency", "values": [0.0, 1e-5, 1e-4, 1e-3]}]}"#;
        let response = post(addr, "/sweep", scenario);
        assert!(response.starts_with("HTTP/1.1 200"), "{response}");
        assert!(response.contains("\"frontier\""), "{response}");
        assert!(response.contains("\"cost\""), "{response}");
        assert!(response.contains("\"rollup\""), "{response}");
    }

    #[test]
    fn gd_and_plan_endpoints_answer_single_points() {
        let addr = start_server();
        let gd = r#"{"name": "q", "workload": {"kind": "gd", "preset": "fig2", "max_n": 13}}"#;
        let response = post(addr, "/gd", gd);
        assert!(response.starts_with("HTTP/1.1 200"), "{response}");
        assert!(response.contains("\"optimal n\""));

        let no_plan = post(addr, "/plan", gd);
        assert!(no_plan.starts_with("HTTP/1.1 400"), "{no_plan}");
        assert!(no_plan.contains("workload.plan"));

        let plan = r#"{"name": "q", "workload": {"kind": "gd", "preset": "fig2", "max_n": 16,
            "plan": {"iterations": 1000, "price": 2.0}}}"#;
        let planned = post(addr, "/plan", plan);
        assert!(planned.starts_with("HTTP/1.1 200"), "{planned}");
        assert!(planned.contains("cheapest cost"));
    }

    #[test]
    fn validation_errors_name_the_key_path() {
        let addr = start_server();
        let bad = r#"{"name": "x", "workload": {"kind": "gd", "preset": "fig2",
                      "latancy": 1e-4, "max_n": 4}}"#;
        let response = post(addr, "/sweep", bad);
        assert!(response.starts_with("HTTP/1.1 400"), "{response}");
        assert!(response.contains("workload.latancy"), "{response}");

        let not_json = post(addr, "/gd", "{nope");
        assert!(not_json.starts_with("HTTP/1.1 400"));

        let exhibit_on_gd = post(addr, "/gd", FIG2);
        assert!(exhibit_on_gd.starts_with("HTTP/1.1 400"));
        assert!(exhibit_on_gd.contains("workload.kind"));
    }

    #[test]
    fn unknown_paths_and_methods_are_rejected() {
        let addr = start_server();
        let missing = post(addr, "/nope", "{}");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");
        let get = roundtrip(
            addr,
            "GET /sweep HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
        );
        assert!(get.starts_with("HTTP/1.1 405"), "{get}");
        assert!(get.contains("Allow: POST"));
        let garbage = roundtrip(addr, "garbage\r\n\r\n");
        assert!(garbage.starts_with("HTTP/1.1 400"), "{garbage}");
    }

    #[test]
    fn keep_alive_serves_sequential_requests() {
        let addr = start_server();
        let gd = r#"{"name": "k", "workload": {"kind": "gd", "preset": "fig2", "max_n": 4}}"#;
        let request = format!(
            "POST /gd HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{gd}",
            gd.len()
        );
        let mut stream = TcpStream::connect(addr).expect("connect");
        for round in 0..3 {
            stream.write_all(request.as_bytes()).expect("send");
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let response = read_one_response(&mut reader);
            assert!(response.starts_with("HTTP/1.1 200"), "round {round}");
        }
    }

    #[test]
    fn zero_capacity_queue_sheds_everything_with_503() {
        // queue_limit 0 makes every accept an overflow — the
        // deterministic way to observe the shed path.
        let server = Server::bind("127.0.0.1:0", 1)
            .expect("bind")
            .with_limits(Limits {
                queue_limit: 0,
                ..Limits::default()
            });
        let handle = server.drain_handle();
        let addr = server.start().expect("start");
        let shed = post(addr, "/gd", "{}");
        assert!(
            shed.starts_with("HTTP/1.1 503 Service Unavailable"),
            "{shed}"
        );
        assert!(shed.contains("Retry-After: 1"), "{shed}");
        assert!(shed.contains("accept queue is full"), "{shed}");
        handle.request_shutdown();
    }

    #[test]
    fn expired_read_deadline_answers_408() {
        let server = Server::bind("127.0.0.1:0", 1)
            .expect("bind")
            .with_limits(Limits {
                read_timeout: Duration::from_millis(80),
                ..Limits::default()
            });
        let handle = server.drain_handle();
        let addr = server.start().expect("start");
        // Connect and send nothing: the read deadline must expire and be
        // answered, not silently dropped.
        let mut stream = TcpStream::connect(addr).expect("connect");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("recv");
        assert!(
            response.starts_with("HTTP/1.1 408 Request Timeout"),
            "{response}"
        );
        assert!(response.contains("read deadline"), "{response}");
        handle.request_shutdown();
    }

    #[test]
    fn drain_finishes_in_flight_requests_and_run_returns() {
        let server = Server::bind("127.0.0.1:0", 2).expect("bind");
        let addr = server.local_addr().expect("addr");
        let handle = server.drain_handle();
        // Tests may host the pool thread directly (the lint's test
        // exemption): run() must return once drained.
        let host = std::thread::spawn(move || server.run());

        // One served request, then the connection idles in keep-alive.
        let gd = r#"{"name": "d", "workload": {"kind": "gd", "preset": "fig2", "max_n": 4}}"#;
        let request = format!(
            "POST /gd HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{gd}",
            gd.len()
        );
        let mut idle = TcpStream::connect(addr).expect("connect");
        idle.write_all(request.as_bytes()).expect("send");
        let mut reader = BufReader::new(idle.try_clone().unwrap());
        let response = read_one_response(&mut reader);
        assert!(response.starts_with("HTTP/1.1 200"), "{response}");

        handle.request_shutdown();
        host.join().expect("run() must return after drain");

        // The drained server closed the idle keep-alive connection.
        let mut rest = String::new();
        idle.read_to_string(&mut rest).expect("clean close");
        assert_eq!(rest, "", "no bytes after drain");
    }

    /// Reads exactly one HTTP response (headers + Content-Length body).
    fn read_one_response<R: std::io::BufRead>(reader: &mut R) -> String {
        let mut head = String::new();
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).expect("header line");
            head.push_str(&line);
            if line == "\r\n" {
                break;
            }
        }
        let length: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .expect("length header")
            .trim()
            .parse()
            .expect("numeric length");
        let mut body = vec![0u8; length];
        reader.read_exact(&mut body).expect("body");
        head + &String::from_utf8(body).expect("utf8 body")
    }
}
