//! # mlscale-serve — planner-as-a-service
//!
//! The paper's framework answers "how many workers should this job
//! get?" — exactly the query a scheduler asks thousands of times per
//! hour. This crate keeps the engine resident behind a socket:
//! `mlscale serve` binds a `std::net::TcpListener`, fans connections out
//! across a worker pool sized by `mlscale_core::par`'s thread
//! resolution, and answers scenario-spec JSON on three endpoints:
//!
//! * `POST /gd`    — one gradient-descent configuration (no sweep axes);
//!   the response is the same pretty-printed `ExperimentResult` JSON
//!   `mlscale gd` writes;
//! * `POST /plan`  — like `/gd` but requires `workload.plan`, so the
//!   response carries the fastest/cheapest provisioning stats;
//! * `POST /sweep` — any valid scenario (grids, bp, exhibits); the
//!   response envelope `{"name", "points", "rollup"}` embeds every
//!   per-point result byte-identically to the files `mlscale sweep`
//!   writes.
//!
//! Validation is exactly `ScenarioSpec::from_json` — the CLI's exit-2
//! diagnostics become `400` bodies naming the offending key path:
//! `{"error": {"path": "workload.latancy", "message": "unknown field…"}}`.
//!
//! Two caches are shared process-wide: an
//! [`OrderStatCachePool`](mlscale_core::straggler::OrderStatCachePool)
//! (straggler order-statistic quadratures, reused across requests that
//! share a delay model) and a rendered-response LRU ([`lru::ResponseLru`])
//! keyed on `(endpoint, body)`, so a hot preset is answered without
//! re-evaluating anything. Responses carry `x-mlscale-cache: hit|miss`
//! and `x-mlscale-micros` (server-side handling time) so clients and the
//! load-generator bench can separate cold from cached latency. Cached
//! and cold responses are byte-identical.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod http;
pub mod lru;

use http::{read_request, Request, Response};
use lru::ResponseLru;
use mlscale_core::par;
use mlscale_core::straggler::OrderStatCachePool;
use mlscale_scenario::{run_pooled, ScenarioSpec, SpecError, WorkloadSpec};
use serde::{Serialize, Value};
use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Rendered responses kept in the LRU; a handful of hot scenarios is the
/// expected working set, and entries are small (tens of KiB).
const RESPONSE_CACHE_CAPACITY: usize = 64;

/// Idle keep-alive connections are dropped after this long so a silent
/// peer cannot pin a worker.
const READ_TIMEOUT: Duration = Duration::from_secs(30);

/// The endpoints the daemon serves.
const ENDPOINTS: [&str; 3] = ["/gd", "/plan", "/sweep"];

/// Process-wide state every worker shares.
struct State {
    caches: OrderStatCachePool,
    responses: ResponseLru,
}

/// The planner daemon: a bound listener plus the shared caches.
pub struct Server {
    listener: Arc<TcpListener>,
    threads: usize,
    state: Arc<State>,
}

impl Server {
    /// Binds `addr` (`HOST:PORT`; port 0 asks the OS for a free port)
    /// with a pool of `threads` accept workers.
    pub fn bind(addr: &str, threads: usize) -> std::io::Result<Self> {
        Ok(Self {
            listener: Arc::new(TcpListener::bind(addr)?),
            threads: threads.max(1),
            state: Arc::new(State {
                caches: OrderStatCachePool::new(),
                responses: ResponseLru::new(RESPONSE_CACHE_CAPACITY),
            }),
        })
    }

    /// The bound address (reports the OS-chosen port after binding `:0`).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Number of worker threads the pool will run.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Serves forever: the worker pool is a `mlscale_core::par` map over
    /// the worker indices, each looping `accept → serve connection`.
    /// (Inside a pool worker nested `par` maps run serial — concurrency
    /// comes from serving many requests at once, and results are
    /// bit-identical either way.)
    pub fn run(&self) {
        let ids: Vec<usize> = (0..self.threads).collect();
        par::with_thread_count(self.threads, || {
            par::map(&ids, |_| self.worker());
        });
    }

    /// Spawns [`Self::run`] on a background thread and returns once the
    /// listener is accepting — for in-process embedding (the bench, unit
    /// tests). The workers run for the life of the process.
    pub fn start(self) -> std::io::Result<SocketAddr> {
        let addr = self.local_addr()?;
        // lint: allow(par-only-threads): the detached accept-loop host thread lives for the whole process; par::map has no fire-and-forget mode
        std::thread::spawn(move || self.run());
        Ok(addr)
    }

    fn worker(&self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => self.serve_connection(stream),
                Err(_) => continue, // transient accept failure
            }
        }
    }

    /// Serial keep-alive loop over one connection. Every malformed HTTP
    /// exchange is answered with a 400 and the connection closed; a
    /// panic out of evaluation becomes a 500, never a dead worker.
    fn serve_connection(&self, stream: TcpStream) {
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(Some(READ_TIMEOUT)).ok();
        let Ok(read_half) = stream.try_clone() else {
            return;
        };
        let mut reader = BufReader::new(read_half);
        let mut writer = BufWriter::new(stream);
        loop {
            let request = match read_request(&mut reader) {
                Ok(Some(request)) => request,
                Ok(None) => break,
                Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                    let body = error_body("request", &e.to_string());
                    let _ = Response::json(400, body).write_to(&mut writer);
                    break;
                }
                Err(_) => break, // peer timeout / reset
            };
            let close = request.wants_close();
            // lint: allow(determinism): x-mlscale-micros is a diagnostic latency header, not model output
            let started = Instant::now();
            let response =
                catch_unwind(AssertUnwindSafe(|| self.route(&request))).unwrap_or_else(|_| {
                    Response::json(500, error_body("internal", "evaluation panicked"))
                });
            let micros = started.elapsed().as_micros();
            let response = response.with_header("x-mlscale-micros", micros.to_string());
            if response.write_to(&mut writer).is_err() || close {
                break;
            }
        }
    }

    /// Maps one request to its response (no socket I/O here).
    fn route(&self, request: &Request) -> Response {
        if !ENDPOINTS.contains(&request.path.as_str()) {
            return Response::json(
                404,
                error_body(
                    &request.path,
                    "unknown endpoint (expected POST /gd, /plan or /sweep)",
                ),
            );
        }
        if request.method != "POST" {
            return Response::json(
                405,
                error_body(
                    &request.path,
                    &format!(
                        "{} not allowed (scenario JSON goes in a POST body)",
                        request.method
                    ),
                ),
            )
            .with_header("Allow", "POST");
        }
        let Ok(body) = std::str::from_utf8(&request.body) else {
            return Response::json(400, error_body("request", "body is not valid UTF-8"));
        };
        if let Some(cached) = self.state.responses.get(&request.path, body) {
            return Response::json(200, cached.as_str()).with_header("x-mlscale-cache", "hit");
        }
        match self.respond(&request.path, body) {
            Ok(rendered) => {
                self.state
                    .responses
                    .put(&request.path, body, Arc::clone(&rendered));
                Response::json(200, rendered.as_str()).with_header("x-mlscale-cache", "miss")
            }
            Err(err) => Response::json(400, error_body(&err.path, &err.message)),
        }
    }

    /// Validates and evaluates one request body — exactly the CLI's
    /// validation, so every exit-2 diagnostic surfaces here as the 400
    /// error path.
    fn respond(&self, path: &str, body: &str) -> Result<Arc<String>, SpecError> {
        let spec = ScenarioSpec::from_json(body)?;
        let rendered = match path {
            "/sweep" => {
                let outcome = run_pooled(&spec, &self.state.caches)?;
                let envelope = Value::Map(vec![
                    ("name".to_string(), Value::Str(outcome.name.clone())),
                    (
                        "points".to_string(),
                        Value::Seq(outcome.points.iter().map(|p| p.to_value()).collect()),
                    ),
                    ("rollup".to_string(), outcome.rollup.to_value()),
                ]);
                serde_json::to_string_pretty(&envelope)
                    .map_err(|e| SpecError::new(path, format!("cannot render sweep JSON: {e}")))?
            }
            _ => {
                // /gd and /plan: one configuration, answered with the
                // same pretty ExperimentResult JSON the CLI emits.
                let WorkloadSpec::Gd(gd) = &spec.workload else {
                    return Err(SpecError::new(
                        "workload.kind",
                        format!("{path} serves gd workloads; POST this scenario to /sweep"),
                    ));
                };
                if !spec.sweep.is_empty() {
                    return Err(SpecError::new(
                        "sweep",
                        format!("{path} answers a single configuration; POST grids to /sweep"),
                    ));
                }
                if path == "/plan" && gd.plan.is_none() {
                    return Err(SpecError::new(
                        "workload.plan",
                        "required by /plan (set iterations and price)",
                    ));
                }
                let outcome = run_pooled(&spec, &self.state.caches)?;
                serde_json::to_string_pretty(&outcome.points[0])
                    .map_err(|e| SpecError::new(path, format!("cannot render result JSON: {e}")))?
            }
        };
        Ok(Arc::new(rendered))
    }
}

/// `{"error": {"path": …, "message": …}}` — the serve-side rendering of
/// a [`SpecError`], naming the offending key path.
fn error_body(path: &str, message: &str) -> String {
    serde_json::to_string(&Value::Map(vec![(
        "error".to_string(),
        Value::Map(vec![
            ("path".to_string(), Value::Str(path.to_string())),
            ("message".to_string(), Value::Str(message.to_string())),
        ]),
    )]))
    .unwrap_or_else(|_| {
        // Rendering a flat string map cannot fail, but a 500 must never
        // panic the worker — fall back to a hand-assembled body.
        r#"{"error":{"path":"internal","message":"error rendering failed"}}"#.to_string()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};

    fn start_server() -> SocketAddr {
        Server::bind("127.0.0.1:0", 2)
            .expect("bind")
            .start()
            .expect("start")
    }

    fn roundtrip(addr: SocketAddr, raw: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(raw.as_bytes()).expect("send");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("recv");
        response
    }

    fn post(addr: SocketAddr, path: &str, body: &str) -> String {
        roundtrip(
            addr,
            &format!(
                "POST {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            ),
        )
    }

    const FIG2: &str = r#"{"name": "fig2-exhibit",
        "workload": {"kind": "exhibit", "id": "fig2", "max_n": 16}}"#;

    #[test]
    fn sweep_endpoint_serves_and_caches() {
        let addr = start_server();
        let cold = post(addr, "/sweep", FIG2);
        assert!(cold.starts_with("HTTP/1.1 200"), "{cold}");
        assert!(cold.contains("x-mlscale-cache: miss"));
        assert!(cold.contains("\"rollup\""));
        let warm = post(addr, "/sweep", FIG2);
        assert!(warm.contains("x-mlscale-cache: hit"));
        let body = |r: &str| r.split("\r\n\r\n").nth(1).unwrap().to_string();
        assert_eq!(body(&cold), body(&warm), "cached must be byte-identical");
    }

    #[test]
    fn gd_and_plan_endpoints_answer_single_points() {
        let addr = start_server();
        let gd = r#"{"name": "q", "workload": {"kind": "gd", "preset": "fig2", "max_n": 13}}"#;
        let response = post(addr, "/gd", gd);
        assert!(response.starts_with("HTTP/1.1 200"), "{response}");
        assert!(response.contains("\"optimal n\""));

        let no_plan = post(addr, "/plan", gd);
        assert!(no_plan.starts_with("HTTP/1.1 400"), "{no_plan}");
        assert!(no_plan.contains("workload.plan"));

        let plan = r#"{"name": "q", "workload": {"kind": "gd", "preset": "fig2", "max_n": 16,
            "plan": {"iterations": 1000, "price": 2.0}}}"#;
        let planned = post(addr, "/plan", plan);
        assert!(planned.starts_with("HTTP/1.1 200"), "{planned}");
        assert!(planned.contains("cheapest cost"));
    }

    #[test]
    fn validation_errors_name_the_key_path() {
        let addr = start_server();
        let bad = r#"{"name": "x", "workload": {"kind": "gd", "preset": "fig2",
                      "latancy": 1e-4, "max_n": 4}}"#;
        let response = post(addr, "/sweep", bad);
        assert!(response.starts_with("HTTP/1.1 400"), "{response}");
        assert!(response.contains("workload.latancy"), "{response}");

        let not_json = post(addr, "/gd", "{nope");
        assert!(not_json.starts_with("HTTP/1.1 400"));

        let exhibit_on_gd = post(addr, "/gd", FIG2);
        assert!(exhibit_on_gd.starts_with("HTTP/1.1 400"));
        assert!(exhibit_on_gd.contains("workload.kind"));
    }

    #[test]
    fn unknown_paths_and_methods_are_rejected() {
        let addr = start_server();
        let missing = post(addr, "/nope", "{}");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");
        let get = roundtrip(
            addr,
            "GET /sweep HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
        );
        assert!(get.starts_with("HTTP/1.1 405"), "{get}");
        assert!(get.contains("Allow: POST"));
        let garbage = roundtrip(addr, "garbage\r\n\r\n");
        assert!(garbage.starts_with("HTTP/1.1 400"), "{garbage}");
    }

    #[test]
    fn keep_alive_serves_sequential_requests() {
        let addr = start_server();
        let gd = r#"{"name": "k", "workload": {"kind": "gd", "preset": "fig2", "max_n": 4}}"#;
        let request = format!(
            "POST /gd HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{gd}",
            gd.len()
        );
        let mut stream = TcpStream::connect(addr).expect("connect");
        for round in 0..3 {
            stream.write_all(request.as_bytes()).expect("send");
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let response = read_one_response(&mut reader);
            assert!(response.starts_with("HTTP/1.1 200"), "round {round}");
        }
    }

    /// Reads exactly one HTTP response (headers + Content-Length body).
    fn read_one_response<R: std::io::BufRead>(reader: &mut R) -> String {
        let mut head = String::new();
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).expect("header line");
            head.push_str(&line);
            if line == "\r\n" {
                break;
            }
        }
        let length: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .expect("length header")
            .trim()
            .parse()
            .expect("numeric length");
        let mut body = vec![0u8; length];
        reader.read_exact(&mut body).expect("body");
        head + &String::from_utf8(body).expect("utf8 body")
    }
}
