//! A small thread-safe LRU for rendered responses, keyed on
//! `(endpoint path, request body)`. The daemon's hot path — a scheduler
//! re-asking about the same checked-in scenario — becomes one lock, one
//! linear key compare, one `Arc` clone; the plan/sweep evaluation runs
//! only on the first sighting of a body.

use std::sync::{Arc, Mutex, PoisonError};

/// One cached entry: `(path, body)` key and the rendered response.
type Entry = ((String, String), Arc<String>);

/// Bounded most-recently-used-at-the-back cache. Capacity is small (the
/// daemon serves a handful of hot presets), so a `Vec` with linear scan
/// beats a hash map plus ordering bookkeeping.
pub struct ResponseLru {
    capacity: usize,
    entries: Mutex<Vec<Entry>>,
}

impl ResponseLru {
    /// An empty cache holding at most `capacity` responses.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            entries: Mutex::new(Vec::new()),
        }
    }

    /// The cached response for `(path, body)`, refreshing its recency.
    ///
    /// A poisoned lock is recovered with [`PoisonError::into_inner`]: the
    /// cache only ever holds complete rendered responses, so the worst a
    /// panicked holder can leave behind is a stale recency order.
    pub fn get(&self, path: &str, body: &str) -> Option<Arc<String>> {
        let mut entries = self.entries.lock().unwrap_or_else(PoisonError::into_inner);
        let i = entries
            .iter()
            .position(|((p, b), _)| p == path && b == body)?;
        let entry = entries.remove(i);
        let value = Arc::clone(&entry.1);
        entries.push(entry);
        Some(value)
    }

    /// Inserts (or refreshes) a response, evicting the least recently
    /// used entry when full.
    pub fn put(&self, path: &str, body: &str, response: Arc<String>) {
        let mut entries = self.entries.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(i) = entries
            .iter()
            .position(|((p, b), _)| p == path && b == body)
        {
            entries.remove(i);
        } else if entries.len() >= self.capacity {
            entries.remove(0);
        }
        entries.push(((path.to_string(), body.to_string()), response));
    }

    /// Number of cached responses.
    pub fn len(&self) -> usize {
        self.entries
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_returns_same_allocation() {
        let lru = ResponseLru::new(4);
        assert!(lru.get("/sweep", "{}").is_none());
        let v = Arc::new("result".to_string());
        lru.put("/sweep", "{}", Arc::clone(&v));
        let hit = lru.get("/sweep", "{}").expect("hit");
        assert!(Arc::ptr_eq(&hit, &v));
        assert!(lru.get("/gd", "{}").is_none(), "path is part of the key");
    }

    #[test]
    fn evicts_least_recently_used() {
        let lru = ResponseLru::new(2);
        lru.put("/gd", "a", Arc::new("ra".into()));
        lru.put("/gd", "b", Arc::new("rb".into()));
        let _ = lru.get("/gd", "a"); // refresh a; b is now LRU
        lru.put("/gd", "c", Arc::new("rc".into()));
        assert_eq!(lru.len(), 2);
        assert!(lru.get("/gd", "b").is_none(), "b was evicted");
        assert!(lru.get("/gd", "a").is_some());
        assert!(lru.get("/gd", "c").is_some());
    }

    #[test]
    fn reinsert_replaces_in_place() {
        let lru = ResponseLru::new(2);
        lru.put("/gd", "a", Arc::new("v1".into()));
        lru.put("/gd", "a", Arc::new("v2".into()));
        assert_eq!(lru.len(), 1);
        assert_eq!(*lru.get("/gd", "a").unwrap(), "v2");
    }

    #[test]
    fn shared_across_threads() {
        let lru = Arc::new(ResponseLru::new(8));
        std::thread::scope(|scope| {
            for t in 0..4 {
                let lru = Arc::clone(&lru);
                scope.spawn(move || {
                    for i in 0..50 {
                        let body = format!("{{\"t\":{}}}", i % 8);
                        lru.put("/sweep", &body, Arc::new(format!("r{t}-{i}")));
                        let _ = lru.get("/sweep", &body);
                    }
                });
            }
        });
        assert!(lru.len() <= 8);
    }
}
