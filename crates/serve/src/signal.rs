//! Minimal SIGTERM/SIGINT notification without a libc crate.
//!
//! The workspace builds with no crates.io access, so this module makes
//! the one tiny FFI call graceful shutdown needs: `signal(2)` from the
//! platform C library, installing a handler that does nothing but store
//! a process-wide [`AtomicBool`]. That store is the only thing the
//! handler does — an atomic store is async-signal-safe, and everything
//! else (draining connections, joining workers) happens on ordinary
//! threads that poll [`requested`].
//!
//! The daemon's accept loop runs a non-blocking listener with a short
//! poll interval rather than relying on `EINTR`: glibc's `signal()`
//! installs BSD semantics (`SA_RESTART`), so a blocking `accept(2)`
//! would simply restart and never observe the flag.
//!
//! Only the `mlscale serve` binary installs the handlers; in-process
//! servers (tests, the bench) use `Server::drain_handle()` instead and
//! never touch process-global signal state.

use std::sync::atomic::{AtomicBool, Ordering};

/// Set by the handler on SIGTERM/SIGINT; read by the accept loop.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

extern "C" {
    /// `signal(2)` — part of the C standard library on every platform
    /// this workspace targets. `sighandler_t` is a function pointer,
    /// passed as `usize` here to avoid declaring the typedef.
    fn signal(signum: i32, handler: usize) -> usize;
}

/// The installed handler: stores the flag and returns. Nothing here may
/// allocate, lock, or call into the runtime — an atomic store is the
/// entire async-signal-safe budget this module spends.
extern "C" fn on_signal(_signum: i32) {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Installs the SIGTERM and SIGINT handlers. Call once, from the binary,
/// before entering the accept loop.
pub fn install() {
    #[allow(unsafe_code)]
    // SAFETY: `signal` is the C-standard prototype; `on_signal` is an
    // `extern "C" fn(i32)` whose address is a valid sighandler, and it
    // only performs an async-signal-safe atomic store.
    unsafe {
        signal(SIGTERM, on_signal as *const () as usize);
        signal(SIGINT, on_signal as *const () as usize);
    }
}

/// Whether a shutdown signal has arrived since [`install`].
pub fn requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_starts_clear_and_handler_sets_it() {
        // Exercise the handler directly (raising a real signal would
        // race other tests in this process).
        assert!(!requested());
        on_signal(SIGTERM);
        assert!(requested());
        SHUTDOWN.store(false, Ordering::SeqCst);
    }
}
