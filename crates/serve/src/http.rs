//! A minimal HTTP/1.1 layer over `std::io`: request parsing (request
//! line, headers, `Content-Length` body) and response writing, enough
//! for the planner daemon's JSON POST endpoints. Vendored by policy —
//! the workspace builds without crates.io access — and deliberately
//! small: no chunked transfer, no TLS, no pipelining beyond serial
//! keep-alive.

use std::io::{BufRead, Read, Write};

/// Upper bound on a request body (a scenario spec is a few KiB; the
/// largest checked-in grid rolls up well under a MiB).
pub const MAX_BODY_BYTES: usize = 8 * 1024 * 1024;

/// Upper bound on header count per request.
pub const MAX_HEADERS: usize = 64;

/// Upper bound on a single request/header line.
pub const MAX_LINE_BYTES: usize = 8 * 1024;

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Request method, upper-case as sent (`GET`, `POST`, …).
    pub method: String,
    /// Request target path (query strings are not split off).
    pub path: String,
    /// Header `(name, value)` pairs, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The request body (`Content-Length` bytes).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header, by lower-case name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to close the connection after this
    /// exchange.
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Reads one request from a connection. `Ok(None)` is a clean
/// end-of-stream before any request byte (the keep-alive peer went
/// away); `Err` is a malformed or over-limit request the caller should
/// answer with a 400 and close on.
pub fn read_request<R: BufRead>(reader: &mut R) -> std::io::Result<Option<Request>> {
    let Some(request_line) = read_line(reader, true)? else {
        return Ok(None);
    };
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(path), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(bad(format!("malformed request line {request_line:?}")));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(bad(format!("unsupported protocol {version:?}")));
    }
    let mut headers = Vec::new();
    loop {
        let line = read_line(reader, false)?.ok_or_else(|| bad("truncated headers"))?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(bad(format!("more than {MAX_HEADERS} headers")));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(bad(format!("malformed header line {line:?}")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let request = Request {
        method: method.to_string(),
        path: path.to_string(),
        headers,
        body: Vec::new(),
    };
    let length = match request.header("content-length") {
        None => 0,
        Some(raw) => raw
            .parse::<usize>()
            .map_err(|_| bad(format!("invalid Content-Length {raw:?}")))?,
    };
    if length > MAX_BODY_BYTES {
        return Err(bad(format!(
            "body of {length} bytes exceeds the {MAX_BODY_BYTES}-byte limit"
        )));
    }
    let mut body = vec![0u8; length];
    reader.read_exact(&mut body)?;
    Ok(Some(Request { body, ..request }))
}

/// Reads one CRLF- (or bare-LF-) terminated line. `Ok(None)` only at
/// immediate end-of-stream with `eof_ok`.
fn read_line<R: BufRead>(reader: &mut R, eof_ok: bool) -> std::io::Result<Option<String>> {
    let mut raw = Vec::new();
    let mut limited = reader.take(MAX_LINE_BYTES as u64 + 1);
    let n = limited.read_until(b'\n', &mut raw)?;
    if n == 0 {
        return if eof_ok {
            Ok(None)
        } else {
            Err(bad("unexpected end of stream"))
        };
    }
    if raw.len() > MAX_LINE_BYTES {
        return Err(bad(format!("line exceeds {MAX_LINE_BYTES} bytes")));
    }
    while raw.last().is_some_and(|&b| b == b'\n' || b == b'\r') {
        raw.pop();
    }
    String::from_utf8(raw)
        .map(Some)
        .map_err(|_| bad("non-UTF-8 request line or header"))
}

fn bad(msg: impl Into<String>) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.into())
}

/// Whether a read error is a socket-deadline expiry. Both `WouldBlock`
/// and `TimedOut` appear in the wild for `SO_RCVTIMEO`/`SO_SNDTIMEO`
/// expiry (platform-dependent), so the request loop checks both to
/// decide between answering `408` and treating the peer as gone.
pub fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// One response to write back.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Extra headers beyond the always-present `Content-Type`,
    /// `Content-Length` and `Connection`.
    pub headers: Vec<(String, String)>,
    /// JSON body.
    pub body: String,
}

impl Response {
    /// A JSON response with no extra headers.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// Adds a header.
    #[must_use]
    pub fn with_header(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.headers.push((name.into(), value.into()));
        self
    }

    /// Serialises the response to the wire.
    pub fn write_to<W: Write>(&self, out: &mut W) -> std::io::Result<()> {
        let reason = match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        };
        write!(
            out,
            "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: keep-alive\r\n",
            self.status,
            reason,
            self.body.len()
        )?;
        for (name, value) in &self.headers {
            write!(out, "{name}: {value}\r\n")?;
        }
        write!(out, "\r\n")?;
        out.write_all(self.body.as_bytes())?;
        out.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &[u8]) -> std::io::Result<Option<Request>> {
        read_request(&mut BufReader::new(raw))
    }

    #[test]
    fn parses_post_with_body() {
        let req = parse(b"POST /sweep HTTP/1.1\r\nHost: x\r\nContent-Length: 7\r\n\r\n{\"a\":1}")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/sweep");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"{\"a\":1}");
        assert!(!req.wants_close());
    }

    #[test]
    fn parses_get_without_body_and_bare_lf() {
        let req = parse(b"GET / HTTP/1.1\nConnection: close\n\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "GET");
        assert!(req.body.is_empty());
        assert!(req.wants_close());
    }

    #[test]
    fn clean_eof_is_none() {
        assert!(parse(b"").unwrap().is_none());
    }

    #[test]
    fn rejects_garbage_and_limits() {
        assert!(parse(b"NOT-HTTP\r\n\r\n").is_err());
        assert!(parse(b"POST / SPDY/3\r\n\r\n").is_err());
        assert!(parse(b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n").is_err());
        assert!(parse(b"POST / HTTP/1.1\r\nContent-Length: 999999999999\r\n\r\n").is_err());
        assert!(parse(b"POST / HTTP/1.1\r\nContent-Length: 5\r\n\r\nab").is_err());
        let long = format!("POST /{} HTTP/1.1\r\n\r\n", "x".repeat(MAX_LINE_BYTES));
        assert!(parse(long.as_bytes()).is_err());
    }

    #[test]
    fn overload_and_timeout_reasons_are_spelled_out() {
        for (status, reason) in [(408, "Request Timeout"), (503, "Service Unavailable")] {
            let mut out = Vec::new();
            Response::json(status, "{}").write_to(&mut out).unwrap();
            let text = String::from_utf8(out).unwrap();
            assert!(
                text.starts_with(&format!("HTTP/1.1 {status} {reason}\r\n")),
                "{text}"
            );
        }
    }

    #[test]
    fn timeout_kinds_are_distinguished_from_invalid_data() {
        use std::io::{Error, ErrorKind};
        assert!(is_timeout(&Error::new(ErrorKind::WouldBlock, "t")));
        assert!(is_timeout(&Error::new(ErrorKind::TimedOut, "t")));
        assert!(!is_timeout(&bad("malformed")));
        assert!(!is_timeout(&Error::new(ErrorKind::ConnectionReset, "r")));
    }

    #[test]
    fn response_wire_format() {
        let mut out = Vec::new();
        Response::json(200, "{}")
            .with_header("x-mlscale-cache", "hit")
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("x-mlscale-cache: hit\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
