//! Speedup analysis: the paper's headline output.
//!
//! "We use speedup to measure the effectiveness of a distributed machine
//! learning algorithm: `s(n) = t(1)/t(n)` … We use speedup rather than the
//! total time itself because, being a relative metric, speedup equation
//! cancels out proportional systematic errors. The algorithm is scalable if
//! there exists `k` such that `s(k) > 1`. The optimal number of nodes is
//! `N = argmax s(n)`."

use crate::units::Seconds;
use serde::{Deserialize, Serialize};

/// Largest `max_n` the dense `1..=max_n` evaluation paths accept.
///
/// Below this every curve, planner and cache-warm materialises one entry
/// per worker count — exactly the pre-existing behaviour, so all golden
/// fixtures (n ≤ 64) and scenario sweeps (n ≤ 80) are untouched. Above
/// it a dense table would cost O(max_n) memory and model calls to answer
/// questions whose information content is O(hundreds) of points; callers
/// must switch to the log-spaced paths ([`log_spaced_ns`],
/// [`SpeedupCurve::from_fn_log`], `Planner::new_log`) instead, and the
/// scenario/CLI layers reject dense requests past this limit with a
/// named diagnostic rather than exhausting memory.
pub const DENSE_EVAL_MAX_N: usize = 16_384;

/// A geometric ladder of worker counts: `points` values spaced evenly in
/// `ln n` over `[1, max_n]`, deduplicated (small `n` rounds to repeats),
/// strictly increasing, always containing both `1` and `max_n`.
///
/// This is how a `10⁶`-worker curve stays O(hundreds) of model calls:
/// speedup curves vary on a multiplicative scale, so resolving each
/// decade with the same point count loses nothing a dense sweep would
/// see.
///
/// # Panics
/// Panics when `max_n == 0` or `points < 2` (a ladder needs both ends).
pub fn log_spaced_ns(max_n: usize, points: usize) -> Vec<usize> {
    assert!(max_n >= 1, "need at least one worker count");
    assert!(points >= 2, "a log ladder needs at least its two endpoints");
    if max_n == 1 {
        return vec![1];
    }
    let ln_max = (max_n as f64).ln();
    let mut ns: Vec<usize> = (0..points)
        .map(|i| {
            let rung = (ln_max * i as f64 / (points - 1) as f64).exp();
            (rung.round() as usize).clamp(1, max_n)
        })
        .collect();
    ns.dedup();
    // The exp/round of the last rung recovers max_n exactly for every
    // max_n an usize can hold, but the top of the range must not hinge
    // on a libm ulp — pin it.
    if ns.last() != Some(&max_n) {
        ns.push(max_n);
    }
    ns
}

/// A time function evaluated over a range of worker counts, with derived
/// speedup/efficiency analysis.
///
/// The curve is stored as explicit `(n, t(n))` samples so it can represent
/// analytic models, simulator output and external measurements uniformly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpeedupCurve {
    /// Worker counts, strictly increasing.
    ns: Vec<usize>,
    /// `t(n)` for each entry of `ns`.
    times: Vec<Seconds>,
    /// Baseline time used as the speedup numerator (defaults to `t` at the
    /// smallest sampled `n`).
    baseline: Seconds,
    /// The `n` the baseline corresponds to (1 for absolute speedup; the
    /// paper's Fig 3 uses 50).
    baseline_n: usize,
}

impl SpeedupCurve {
    /// Evaluates `time(n)` over `ns` and uses the smallest `n` as baseline.
    ///
    /// # Panics
    /// Panics if `ns` is empty or not strictly increasing.
    pub fn from_fn(
        ns: impl IntoIterator<Item = usize>,
        mut time: impl FnMut(usize) -> Seconds,
    ) -> Self {
        let ns: Vec<usize> = ns.into_iter().collect();
        assert!(!ns.is_empty(), "need at least one worker count");
        assert!(
            ns.windows(2).all(|w| w[0] < w[1]),
            "worker counts must be strictly increasing"
        );
        let times: Vec<Seconds> = ns.iter().map(|&n| time(n)).collect();
        let baseline = times[0];
        let baseline_n = ns[0];
        Self {
            ns,
            times,
            baseline,
            baseline_n,
        }
    }

    /// Evaluates `time(n)` over the geometric ladder
    /// [`log_spaced_ns`]`(max_n, points)` — the extreme-scale form of
    /// [`Self::from_fn`]: a `max_n = 10⁶` curve costs O(`points`) model
    /// calls instead of a million.
    ///
    /// # Panics
    /// Panics when `max_n == 0` or `points < 2`.
    pub fn from_fn_log(
        max_n: usize,
        points: usize,
        mut time: impl FnMut(usize) -> Seconds,
    ) -> Self {
        Self::from_samples(
            log_spaced_ns(max_n, points)
                .into_iter()
                .map(|n| (n, time(n))),
        )
    }

    /// Builds a curve from explicit samples (e.g. measurements).
    ///
    /// # Panics
    /// Panics if the sample list is empty or `n`s are not strictly
    /// increasing.
    pub fn from_samples(samples: impl IntoIterator<Item = (usize, Seconds)>) -> Self {
        let (ns, times): (Vec<usize>, Vec<Seconds>) = samples.into_iter().unzip();
        assert!(!ns.is_empty(), "need at least one sample");
        assert!(
            ns.windows(2).all(|w| w[0] < w[1]),
            "worker counts must be strictly increasing"
        );
        let baseline = times[0];
        let baseline_n = ns[0];
        Self {
            ns,
            times,
            baseline,
            baseline_n,
        }
    }

    /// Re-bases the curve on the time at `n0` (must be a sampled point).
    /// Fig 3 of the paper reports "speedup … relative to 50 nodes".
    ///
    /// # Panics
    /// Panics if `n0` is not among the sampled worker counts.
    #[must_use]
    pub fn rebased(mut self, n0: usize) -> Self {
        let idx = self
            .ns
            .iter()
            .position(|&n| n == n0)
            // lint: allow(panic-free-lib): documented # Panics contract — the baseline n0 must be one of the sampled ns
            .unwrap_or_else(|| panic!("baseline n={n0} not sampled"));
        self.baseline = self.times[idx];
        self.baseline_n = n0;
        self
    }

    /// Sampled worker counts.
    pub fn ns(&self) -> &[usize] {
        &self.ns
    }

    /// Sampled times.
    pub fn times(&self) -> &[Seconds] {
        &self.times
    }

    /// The baseline `(n, t)` pair the speedups are relative to.
    pub fn baseline(&self) -> (usize, Seconds) {
        (self.baseline_n, self.baseline)
    }

    /// `t(n)` at a sampled point.
    pub fn time_at(&self, n: usize) -> Option<Seconds> {
        self.ns.iter().position(|&m| m == n).map(|i| self.times[i])
    }

    /// Speedup `s(n) = t(baseline)/t(n)` at a sampled point.
    pub fn speedup_at(&self, n: usize) -> Option<f64> {
        self.time_at(n).map(|t| self.baseline / t)
    }

    /// All `(n, s(n))` pairs.
    pub fn speedups(&self) -> Vec<(usize, f64)> {
        self.ns
            .iter()
            .zip(&self.times)
            .map(|(&n, &t)| (n, self.baseline / t))
            .collect()
    }

    /// Parallel efficiency `e(n) = s(n)·baseline_n/n` — the fraction of
    /// ideal (linear-from-baseline) speedup achieved.
    pub fn efficiencies(&self) -> Vec<(usize, f64)> {
        self.speedups()
            .into_iter()
            .map(|(n, s)| (n, s * self.baseline_n as f64 / n as f64))
            .collect()
    }

    /// The optimal worker count `N = argmax_n s(n)` and the speedup there.
    /// Ties break toward the smaller `n` (fewer machines for equal time).
    pub fn optimal(&self) -> (usize, f64) {
        let mut best = (self.ns[0], self.baseline / self.times[0]);
        for (&n, &t) in self.ns.iter().zip(&self.times) {
            let s = self.baseline / t;
            if s > best.1 + 1e-12 {
                best = (n, s);
            }
        }
        best
    }

    /// Whether the algorithm is scalable in the paper's sense: exists `k`
    /// with `s(k) > 1` (strictly faster than the baseline configuration).
    pub fn is_scalable(&self) -> bool {
        self.speedups()
            .iter()
            .any(|&(n, s)| n != self.baseline_n && s > 1.0)
    }

    /// Largest sampled `n` whose speedup is within `fraction` of the
    /// optimum — the "knee" beyond which adding machines buys little.
    pub fn knee(&self, fraction: f64) -> usize {
        assert!((0.0..=1.0).contains(&fraction));
        let (_, s_max) = self.optimal();
        self.speedups()
            .iter()
            .filter(|&&(_, s)| s >= fraction * s_max)
            .map(|&(n, _)| n)
            .min()
            .unwrap_or(self.baseline_n)
    }

    /// First sampled `n` (scanning upward) where the speedup *drops* below
    /// its running maximum by more than `tolerance` — where communication
    /// overhead visibly takes over. Returns `None` if the curve never
    /// declines.
    pub fn decline_onset(&self, tolerance: f64) -> Option<usize> {
        let mut running_max = f64::MIN;
        for (n, s) in self.speedups() {
            if s < running_max - tolerance {
                return Some(n);
            }
            running_max = running_max.max(s);
        }
        None
    }

    /// Karp–Flatt experimentally-determined serial fraction at a sampled
    /// point: `e(n) = (1/s(n) − 1/n) / (1 − 1/n)`. A diagnostic from the
    /// parallel-algorithms literature the paper builds on: if `e` grows
    /// with `n`, the bottleneck is communication/overhead rather than a
    /// fixed serial section. Only defined for `n > baseline_n` and
    /// absolute (baseline `n = 1`) curves.
    pub fn karp_flatt(&self, n: usize) -> Option<f64> {
        if self.baseline_n != 1 || n <= 1 {
            return None;
        }
        let s = self.speedup_at(n)?;
        let inv_n = 1.0 / n as f64;
        Some((1.0 / s - inv_n) / (1.0 - inv_n))
    }

    /// Pretty one-line-per-point table used by the experiment binaries.
    pub fn to_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:>6} {:>14} {:>10} {:>10}",
            "n", "t(n) [s]", "s(n)", "eff"
        );
        for ((&n, &t), (_, e)) in self.ns.iter().zip(&self.times).zip(self.efficiencies()) {
            let s = self.baseline / t;
            let _ = writeln!(
                out,
                "{:>6} {:>14.6e} {:>10.4} {:>10.4}",
                n,
                t.as_secs(),
                s,
                e
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Simple t(n) = 1/n + 0.05·log2(n): peak interior (≈ n = 14).
    fn sample_curve() -> SpeedupCurve {
        SpeedupCurve::from_fn(1..=64, |n| {
            Seconds::new(1.0 / n as f64 + 0.05 * (n as f64).log2())
        })
    }

    #[test]
    fn speedup_at_baseline_is_one() {
        let c = sample_curve();
        assert!((c.speedup_at(1).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn optimal_is_interior_peak() {
        let c = sample_curve();
        let (n_opt, s_opt) = c.optimal();
        assert!(
            n_opt > 1 && n_opt < 64,
            "peak should be interior, got {n_opt}"
        );
        assert!(s_opt > 1.0);
        // Every other sampled point is no better.
        for (_, s) in c.speedups() {
            assert!(s <= s_opt + 1e-12);
        }
    }

    #[test]
    fn scalable_curve_detected() {
        assert!(sample_curve().is_scalable());
    }

    #[test]
    fn unscalable_curve_detected() {
        // Communication so expensive the time only grows.
        let c = SpeedupCurve::from_fn(1..=8, |n| Seconds::new(1.0 + n as f64));
        assert!(!c.is_scalable());
        assert_eq!(c.optimal().0, 1);
    }

    #[test]
    fn rebase_matches_fig3_convention() {
        let c = SpeedupCurve::from_fn([50, 100], |n| Seconds::new(100.0 / n as f64)).rebased(50);
        assert_eq!(c.baseline(), (50, Seconds::new(2.0)));
        assert!((c.speedup_at(100).unwrap() - 2.0).abs() < 1e-12);
        assert!((c.speedup_at(50).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn efficiency_of_perfect_scaling_is_one() {
        let c = SpeedupCurve::from_fn(1..=16, |n| Seconds::new(1.0 / n as f64));
        for (_, e) in c.efficiencies() {
            assert!((e - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn efficiency_relative_to_baseline_n() {
        // Perfect scaling sampled from n=2: efficiencies still 1.
        let c = SpeedupCurve::from_fn(2..=8, |n| Seconds::new(1.0 / n as f64));
        for (_, e) in c.efficiencies() {
            assert!((e - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn decline_onset_found_after_peak() {
        let c = sample_curve();
        let (n_opt, _) = c.optimal();
        let onset = c.decline_onset(1e-9).expect("curve declines");
        assert!(onset > n_opt);
    }

    #[test]
    fn decline_onset_none_for_monotone() {
        let c = SpeedupCurve::from_fn(1..=16, |n| Seconds::new(1.0 / n as f64));
        assert_eq!(c.decline_onset(1e-9), None);
    }

    #[test]
    fn knee_below_optimal() {
        let c = sample_curve();
        let knee = c.knee(0.9);
        let (n_opt, s_opt) = c.optimal();
        assert!(knee <= n_opt);
        assert!(c.speedup_at(knee).unwrap() >= 0.9 * s_opt);
    }

    #[test]
    fn from_samples_roundtrip() {
        let c = SpeedupCurve::from_samples([
            (1, Seconds::new(10.0)),
            (2, Seconds::new(6.0)),
            (4, Seconds::new(4.0)),
        ]);
        assert_eq!(c.ns(), &[1, 2, 4]);
        assert!((c.speedup_at(4).unwrap() - 2.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_samples_rejected() {
        let _ = SpeedupCurve::from_samples([(2, Seconds::new(1.0)), (1, Seconds::new(2.0))]);
    }

    #[test]
    #[should_panic(expected = "not sampled")]
    fn rebase_requires_sampled_point() {
        let _ = sample_curve().rebased(1000);
    }

    #[test]
    fn table_has_row_per_point() {
        let c = sample_curve();
        let table = c.to_table();
        assert_eq!(table.lines().count(), 1 + c.ns().len());
    }

    #[test]
    fn karp_flatt_recovers_serial_fraction() {
        // Amdahl curve with serial fraction 0.1: the metric must recover
        // 0.1 exactly at every n.
        let serial = 0.1;
        let c = SpeedupCurve::from_fn(1..=64, |n| Seconds::new(serial + (1.0 - serial) / n as f64));
        for n in [2usize, 8, 32, 64] {
            let e = c.karp_flatt(n).unwrap();
            assert!((e - serial).abs() < 1e-12, "n={n}: {e}");
        }
    }

    #[test]
    fn karp_flatt_grows_when_comm_bound() {
        // Communication-bound curve: the apparent serial fraction rises
        // with n — the classic diagnostic signal.
        let c = sample_curve();
        let e8 = c.karp_flatt(8).unwrap();
        let e32 = c.karp_flatt(32).unwrap();
        assert!(e32 > e8, "comm-bound: {e8} -> {e32}");
    }

    #[test]
    fn karp_flatt_undefined_off_baseline() {
        let c = SpeedupCurve::from_fn(2..=8, |n| Seconds::new(1.0 / n as f64));
        assert_eq!(c.karp_flatt(4), None, "needs an n=1 baseline");
        assert_eq!(sample_curve().karp_flatt(1), None);
    }

    #[test]
    fn log_ladder_spans_the_range_strictly_increasing() {
        for (max_n, points) in [
            (1usize, 2usize),
            (2, 2),
            (64, 10),
            (1000, 40),
            (1_000_000, 200),
        ] {
            let ns = log_spaced_ns(max_n, points);
            assert_eq!(ns[0], 1, "max_n={max_n}");
            assert_eq!(*ns.last().unwrap(), max_n, "max_n={max_n}");
            assert!(
                ns.windows(2).all(|w| w[0] < w[1]),
                "max_n={max_n}: not strictly increasing: {ns:?}"
            );
            assert!(ns.len() <= points + 1, "max_n={max_n}: {} rungs", ns.len());
        }
    }

    #[test]
    fn log_ladder_is_dense_at_small_max_n() {
        // With more points than decades·density the ladder degenerates to
        // the full range — small sweeps lose nothing to log mode.
        assert_eq!(log_spaced_ns(8, 64), vec![1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn from_fn_log_matches_dense_on_sampled_points() {
        let time = |n: usize| Seconds::new(1.0 / n as f64 + 0.05 * (n as f64).log2());
        let dense = SpeedupCurve::from_fn(1..=1024, time);
        let log = SpeedupCurve::from_fn_log(1024, 30, time);
        for (&n, &t) in log.ns().iter().zip(log.times()) {
            assert_eq!(dense.time_at(n), Some(t), "n={n}");
        }
        assert_eq!(log.baseline(), dense.baseline());
    }

    #[test]
    fn ties_break_to_smaller_n() {
        let c = SpeedupCurve::from_samples([
            (1, Seconds::new(2.0)),
            (2, Seconds::new(1.0)),
            (3, Seconds::new(1.0)),
        ]);
        assert_eq!(c.optimal().0, 2);
    }
}
