//! Straggler-aware stochastic runtime models: order statistics of the BSP
//! barrier.
//!
//! The paper's framework assumes every superstep ends exactly when its
//! deterministic `t_cp + t_cm` terms say it does. On real clusters the
//! synchronisation barrier is paced by the *slowest* worker: per-task
//! jitter, heavy-tailed stragglers and mixed hardware generations all bend
//! the speedup curve downward precisely where the optimal-`n` answer
//! lives, because the expected maximum of `n` draws *grows* with `n` while
//! the per-worker compute share shrinks.
//!
//! This module provides the analytic twin of the stochastic simulator in
//! `mlscale-sim`:
//!
//! * [`StragglerModel`] — per-worker delay distributions (deterministic,
//!   bounded jitter, exponential and log-normal tails) with closed-form or
//!   quadrature-exact expected order statistics: `E[max of n]` is
//!   `mean·H_n` for exponential tails (harmonic numbers, exact),
//!   `spread·n/(n+1)` for bounded jitter (exact), and a
//!   Gauss-quadrature-free deterministic integration of the order-statistic
//!   survival function for log-normal tails and heterogeneous clusters;
//! * [`StragglerModel::expected_barrier`] — the expected barrier time
//!   `E[(n−k)-th order statistic of {b_i + X_i}]` over per-worker base
//!   times `b_i` with the *drop-slowest-k* (backup worker / speculative
//!   execution) mitigation;
//! * [`StragglerGdModel`] / [`StragglerGraphModel`] — composition with the
//!   paper's two algorithm models, yielding *expected* iteration times,
//!   speedup curves, and [`Planner`]s that optimise expected time/cost.
//!
//! At zero jitter on a homogeneous cluster every expected quantity
//! degenerates **bit-identically** to the deterministic model, so the
//! paper's Fig 1/Fig 2 optima (14/9) are reproduced exactly.

use crate::hardware::Heterogeneity;
use crate::models::gd::GradientDescentModel;
use crate::models::graphinf::GraphInferenceModel;
use crate::par;
use crate::planner::{Planner, Pricing};
use crate::speedup::{log_spaced_ns, SpeedupCurve, DENSE_EVAL_MAX_N};
use crate::units::Seconds;
use rand::Rng;
use rand_distr::{Distribution, Exp, LogNormal};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, PoisonError};

/// Distribution of the per-worker, per-superstep straggler delay added on
/// top of a worker's deterministic compute time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum StragglerModel {
    /// No stochastic delay: the paper's deterministic framework.
    Deterministic,
    /// Uniform jitter on `[0, spread]` seconds — bounded OS/scheduling
    /// noise. `E[max of n] = spread·n/(n+1)` (exact).
    BoundedJitter {
        /// Width of the jitter window in seconds.
        spread: f64,
    },
    /// Exponential delay with the given mean — memoryless scheduling
    /// jitter. `E[max of n] = mean·H_n` with `H_n` the n-th harmonic
    /// number (exact), and `E[(n−k)-th order stat] = mean·(H_n − H_k)`.
    ExponentialTail {
        /// Mean delay in seconds.
        mean: f64,
    },
    /// Log-normal delay `exp(N(mu, sigma²))` — the heavy-tailed straggler
    /// regime observed in production traces. Expected order statistics are
    /// computed by deterministic quadrature in the underlying normal's
    /// `z`-space (no sampling).
    LogNormalTail {
        /// Location of the underlying normal.
        mu: f64,
        /// Scale of the underlying normal (tail weight).
        sigma: f64,
    },
}

/// Standard normal CDF via the Abramowitz–Stegun 7.1.26 erf expansion
/// (|error| < 1.5·10⁻⁷, monotone — ample for 5 %-level cross-validation).
fn normal_cdf(z: f64) -> f64 {
    let x = z / std::f64::consts::SQRT_2;
    let (sign, x) = if x < 0.0 { (-1.0, -x) } else { (1.0, x) };
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    let erf = 1.0 - poly * (-x * x).exp();
    0.5 * (1.0 + sign * erf)
}

/// Term count up to which [`HarmonicSum`] accumulates with the plain
/// forward sum. Every `H_j` with `j ≤ 64` — which covers all worker
/// counts the checked-in golden fixtures exercise — is bit-identical to
/// the uncompensated sum those fixtures were generated with; beyond the
/// cutoff Kahan compensation takes over so the large-`j` tail (ROADMAP
/// item 2's large-n ceilings) stops accumulating rounding error.
const HARMONIC_KAHAN_CUTOFF: usize = 64;

/// Incremental harmonic-number accumulator: after `push()` has been
/// called `j` times, `value()` is `H_j = Σ_{i=1..j} 1/i` (`H_0 = 0`).
///
/// Both [`harmonic`] and the running sum in
/// [`StragglerModel::expected_order_stats`] are built on this one
/// accumulator, so the per-call and batch paths stay bit-identical by
/// construction at every `j`.
#[derive(Clone, Copy)]
struct HarmonicSum {
    j: usize,
    sum: f64,
    comp: f64,
}

impl HarmonicSum {
    fn new() -> Self {
        Self {
            j: 0,
            sum: 0.0,
            comp: 0.0,
        }
    }

    /// Adds the next term `1/(j+1)`.
    fn push(&mut self) {
        self.j += 1;
        let term = 1.0 / self.j as f64;
        if self.j <= HARMONIC_KAHAN_CUTOFF {
            self.sum += term;
        } else {
            let y = term - self.comp;
            let t = self.sum + y;
            self.comp = (t - self.sum) - y;
            self.sum = t;
        }
    }

    fn value(&self) -> f64 {
        self.sum
    }
}

/// `H_j = Σ_{i=1..j} 1/i`, the j-th harmonic number (`H_0 = 0`), summed
/// with Kahan compensation past [`HARMONIC_KAHAN_CUTOFF`] terms so the
/// absolute error stays within a few ulps even at `j = 10⁶`.
fn harmonic(j: usize) -> f64 {
    let mut h = HarmonicSum::new();
    for _ in 0..j {
        h.push();
    }
    h.value()
}

/// Term count above which [`harmonic_any`] switches from the summed
/// [`harmonic`] to the asymptotic expansion — the exponential tail's
/// extreme-value crossover. At the crossover the expansion's truncation
/// error is ~`1/(120·j⁴)` ≈ 1e-19 **relative to `H_j ≈ 9.8`**, far
/// below the summed form's own accumulated rounding, so the two regimes
/// agree to ≲1e-15 relative where they meet; below it every value is
/// bit-identical to the historical summed path.
pub const EXP_ASYMPTOTIC_MIN_N: usize = 10_000;

/// `H_j` by the Euler–Maclaurin expansion
/// `ln j + γ + 1/(2j) − 1/(12j²) + 1/(120j⁴) + O(j⁻⁶)` — O(1) instead
/// of O(j), with truncation error < 1e-25 absolute for `j > 10⁴`.
fn harmonic_asymptotic(j: usize) -> f64 {
    let x = j as f64;
    let x2 = x * x;
    x.ln() + EULER_GAMMA + 1.0 / (2.0 * x) - 1.0 / (12.0 * x2) + 1.0 / (120.0 * x2 * x2)
}

/// `H_j` through the crossover: the exact sum up to
/// [`EXP_ASYMPTOTIC_MIN_N`] terms (bit-identical to every value the
/// golden fixtures were generated with), the asymptotic expansion above.
fn harmonic_any(j: usize) -> f64 {
    if j <= EXP_ASYMPTOTIC_MIN_N {
        harmonic(j)
    } else {
        harmonic_asymptotic(j)
    }
}

/// Survival function `1 − Φ(z)` of the standard normal, computed from
/// the same Abramowitz–Stegun 7.1.26 expansion as [`normal_cdf`] but
/// *directly* for `z ≥ 0` — `0.5·poly(t)·e^{−x²}` — so `ln(1 − Φ(z))`
/// at large `z` never passes through the catastrophic `1 − (≈1)`
/// cancellation. Only the extreme-value asymptotic paths use it; the
/// exact grid keeps the historical `1 − Φ` arithmetic bit-for-bit.
fn normal_sf(z: f64) -> f64 {
    if z < 0.0 {
        return 1.0 - normal_cdf(z);
    }
    let x = z / std::f64::consts::SQRT_2;
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    0.5 * poly * (-x * x).exp()
}

/// The Euler–Mascheroni constant γ — the Gumbel limit's mean, and the
/// constant term of the harmonic asymptotic `H_j = ln j + γ + …`.
const EULER_GAMMA: f64 = 0.577_215_664_901_532_9;

/// `ln Γ(x)` for `x ≥ 1` via the Lanczos approximation (g = 7, 9 terms;
/// relative error < 1e-13 on this range). Used to keep the
/// order-statistic coefficient `m·C(n, k)` in log-space, where
/// `C(10⁶, 5·10⁵)` is a perfectly ordinary number instead of an `inf`.
fn ln_gamma(x: f64) -> f64 {
    const COEF: [f64; 8] = [
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    let z = x - 1.0;
    let mut a = 0.999_999_999_999_809_9;
    for (i, &c) in COEF.iter().enumerate() {
        a += c / (z + i as f64 + 1.0);
    }
    let t = z + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (z + 0.5) * t.ln() - t + a.ln()
}

/// `ln(m·C(n, k))` with `m = n − k`: the order-statistic density
/// coefficient `Γ(n+1)/(Γ(m)·Γ(k+1))` in log-space.
fn ln_order_stat_coeff(n: usize, k: usize) -> f64 {
    let m = n - k;
    ln_gamma(n as f64 + 1.0) - ln_gamma(m as f64) - ln_gamma(k as f64 + 1.0)
}

/// Inverse standard normal CDF (Acklam's rational approximation,
/// relative error < 1.2e-9). Only the asymptotic regime's Gumbel
/// norming uses it; `p` must lie strictly inside `(0, 1)`.
fn inv_normal_cdf(p: f64) -> f64 {
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;
    assert!(
        p > 0.0 && p < 1.0,
        "quantile must be inside (0, 1), got {p}"
    );
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -((((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0))
    }
}

/// The log-normal order-statistic quadrature grid, with the per-point
/// transcendentals (`Φ(z)`, `e^{μ+σz}`, `φ(z)`) evaluated once and shared
/// across every `(n, k)` the grid is queried for. The per-query Simpson
/// sum repeats the serial path's arithmetic operation for operation —
/// only the transcendental evaluations are hoisted — so each query is
/// bit-identical to an inline per-`n` integration.
struct LogNormalGrid {
    /// `Φ(z_i)` at each grid point.
    phi: Vec<f64>,
    /// `e^{μ+σ·z_i}` at each grid point.
    exp_term: Vec<f64>,
    /// Standard normal density `φ(z_i)` at each grid point.
    density: Vec<f64>,
    /// Simpson step width `h = (hi − lo)/steps`.
    h: f64,
}

impl LogNormalGrid {
    /// Grid cut-offs and step count exactly as the per-`n` quadrature:
    /// `z ∈ [−9, 10 + σ]`, 4000 composite-Simpson steps.
    fn new(mu: f64, sigma: f64) -> Self {
        let lo = -9.0f64;
        let hi = 10.0 + sigma;
        let steps = 4000usize; // even, for composite Simpson
        let h = (hi - lo) / steps as f64;
        // Endpoints use the literal bounds (not lo + steps·h) so the grid
        // values match the serial integrand's arguments bit for bit.
        let zs: Vec<f64> = (0..=steps)
            .map(|i| {
                if i == 0 {
                    lo
                } else if i == steps {
                    hi
                } else {
                    lo + i as f64 * h
                }
            })
            .collect();
        // The transcendental sweep stays serial: ~4000 points are far too
        // little work to pay for a thread spawn, and single
        // `expected_order_stat` calls (the fallback path) build a grid
        // per call — they must not allocate a thread team each time. The
        // batch path parallelises across the per-`n` Simpson sums instead.
        let phi: Vec<f64> = zs.iter().map(|&z| normal_cdf(z)).collect();
        let exp_term: Vec<f64> = zs.iter().map(|&z| (mu + sigma * z).exp()).collect();
        let density: Vec<f64> = zs
            .iter()
            .map(|&z| (-z * z / 2.0).exp() / (2.0 * std::f64::consts::PI).sqrt())
            .collect();
        Self {
            phi,
            exp_term,
            density,
            h,
        }
    }

    /// `E[X_(m)] = coeff·∫ e^{mu+σz}·Φ(z)^{m−1}(1−Φ(z))^k φ(z) dz` with
    /// `m = n−k` and `coeff = m·C(n, k)` — the serial quadrature evaluated
    /// over the precomputed grid.
    ///
    /// Up to [`LOGNORMAL_COEFF_LOOP_MAX_N`] the coefficient is built by
    /// the historical multiplicative loop (bit-identical to every value
    /// the golden fixtures pin); past it `m·C(n, k)` can overflow f64
    /// (`C(1024, 512)·512` is already `inf`, and `inf·0` poisons the
    /// integrand with NaNs), so the whole integrand moves to log-space
    /// with a [`ln_gamma`]-based coefficient.
    fn expected_order_stat(&self, n: usize, k: usize) -> f64 {
        if n > LOGNORMAL_COEFF_LOOP_MAX_N {
            return self.expected_order_stat_log_coeff(n, k);
        }
        let m = n - k;
        let mut coeff = m as f64; // m · C(n, k)
        for j in 1..=k {
            coeff *= (n - j + 1) as f64 / j as f64;
        }
        let steps = self.phi.len() - 1;
        let integrand = |i: usize| {
            coeff
                * self.exp_term[i]
                * self.phi[i].powi(m as i32 - 1)
                * (1.0 - self.phi[i]).powi(k as i32)
                * self.density[i]
        };
        let mut sum = integrand(0) + integrand(steps);
        for i in 1..steps {
            let w = if i % 2 == 1 { 4.0 } else { 2.0 };
            sum += w * integrand(i);
        }
        sum * self.h / 3.0
    }

    /// The same Simpson sum over the same grid with the integrand
    /// assembled in log-space:
    /// `exp(ln coeff + (m−1)·ln Φ + k·ln(1−Φ))·e^{μ+σz}·φ(z)` — finite
    /// for every `(n, k)` an usize can express. The `(m−1)·ln Φ` and
    /// `k·ln(1−Φ)` terms are skipped when their exponent is zero, so a
    /// grid endpoint with `Φ = 0` (or `1`) contributes 0 instead of
    /// `0·(−∞) = NaN`.
    fn expected_order_stat_log_coeff(&self, n: usize, k: usize) -> f64 {
        let m = n - k;
        let ln_coeff = ln_order_stat_coeff(n, k);
        let steps = self.phi.len() - 1;
        let integrand = |i: usize| {
            let mut ln_pow = ln_coeff;
            if m > 1 {
                if self.phi[i] <= 0.0 {
                    return 0.0;
                }
                ln_pow += (m as f64 - 1.0) * self.phi[i].ln();
            }
            if k > 0 {
                let sf = 1.0 - self.phi[i];
                if sf <= 0.0 {
                    return 0.0;
                }
                ln_pow += k as f64 * sf.ln();
            }
            ln_pow.exp() * self.exp_term[i] * self.density[i]
        };
        let mut sum = integrand(0) + integrand(steps);
        for i in 1..steps {
            let w = if i % 2 == 1 { 4.0 } else { 2.0 };
            sum += w * integrand(i);
        }
        sum * self.h / 3.0
    }
}

/// Largest `n` for which [`LogNormalGrid::expected_order_stat`] builds
/// the coefficient `m·C(n, k)` by the historical multiplicative loop.
/// `C(512, 256)·512 ≈ 2.4e155` still fits f64 with room to spare; one
/// doubling later `C(1024, 512)·512` overflows, so past this the
/// integrand is assembled in log-space instead.
const LOGNORMAL_COEFF_LOOP_MAX_N: usize = 512;

/// Worker count above which log-normal order statistics leave the
/// shared `z ∈ [−9, 10+σ]` grid for the extreme-value windowed
/// quadrature ([`lognormal_order_stat_asymptotic`]). At the crossover
/// both regimes integrate the same density — the property suite bounds
/// their relative disagreement below 1e-3 (measured: ≲1e-6) — and the
/// asymptotic side is O(1) in `n` where the fixed grid's resolution
/// around the ever-sharper order-statistic peak eventually runs out.
pub const LOGNORMAL_ASYMPTOTIC_MIN_N: usize = 8_192;

/// `E[X_(m) of n]` for `X = e^{μ+σZ}` at extreme `n` by Gumbel-normed
/// windowed quadrature.
///
/// Extreme-value theory norms the `m`-th smallest of `n` standard
/// normals as `Z_(m) ≈ b_n + a_n·G` with location
/// `b_n = Φ⁻¹(m/(n+1))` (the mean-rank quantile), scale
/// `a_n = s_u/φ(b_n)` (the Beta(m, k+1) rank std
/// `s_u = √(u(1−u)/(n+2))` pushed through the quantile map), and `G`
/// approximately Gumbel — to first order `E[Z_(m)] ≈ b_n + γ·a_n`.
/// Rather than stopping at first order, the exact order-statistic
/// density (log-space coefficient) is integrated over `b_n ± 30·a_n`
/// with 2048 composite-Simpson steps: the density is negligible outside
/// the window, so the result is quadrature-exact with O(1) cost in `n`
/// and a step width that *shrinks with the peak* instead of the fixed
/// grid's.
fn lognormal_order_stat_asymptotic(mu: f64, sigma: f64, n: usize, k: usize) -> f64 {
    let m = n - k;
    let nf = n as f64;
    let u_star = m as f64 / (nf + 1.0);
    // Above the median compute the quantile from the complementary rank
    // so Φ⁻¹'s argument never suffers 1 − (≈1) cancellation.
    let b_n = if u_star > 0.5 {
        -inv_normal_cdf((k as f64 + 1.0) / (nf + 1.0))
    } else {
        inv_normal_cdf(u_star)
    };
    let s_u = (u_star * (1.0 - u_star) / (nf + 2.0)).sqrt();
    let phi_b = (-b_n * b_n / 2.0).exp() / (2.0 * std::f64::consts::PI).sqrt();
    let a_n = s_u / phi_b;
    let half_width = 30.0 * a_n;
    let (lo, hi) = (b_n - half_width, b_n + half_width);
    let steps = 2048usize;
    let h = (hi - lo) / steps as f64;
    let ln_coeff = ln_order_stat_coeff(n, k);
    let ln_sqrt_2pi = 0.5 * (2.0 * std::f64::consts::PI).ln();
    let integrand = |z: f64| {
        let mut ln_f = ln_coeff + mu + sigma * z - z * z / 2.0 - ln_sqrt_2pi;
        if m > 1 {
            let cdf = normal_cdf(z);
            if cdf <= 0.0 {
                return 0.0;
            }
            ln_f += (m as f64 - 1.0) * cdf.ln();
        }
        if k > 0 {
            let sf = normal_sf(z);
            if sf <= 0.0 {
                return 0.0;
            }
            ln_f += k as f64 * sf.ln();
        }
        ln_f.exp()
    };
    let mut sum = integrand(lo) + integrand(hi);
    for i in 1..steps {
        let w = if i % 2 == 1 { 4.0 } else { 2.0 };
        sum += w * integrand(lo + i as f64 * h);
    }
    sum * h / 3.0
}

impl StragglerModel {
    /// Asserts the parameters are usable (finite, non-negative scales).
    fn assert_valid(&self) {
        match *self {
            StragglerModel::Deterministic => {}
            StragglerModel::BoundedJitter { spread } => {
                assert!(
                    spread.is_finite() && spread >= 0.0,
                    "jitter spread must be finite and non-negative, got {spread}"
                );
            }
            StragglerModel::ExponentialTail { mean } => {
                assert!(
                    mean.is_finite() && mean >= 0.0,
                    "exponential mean must be finite and non-negative, got {mean}"
                );
            }
            StragglerModel::LogNormalTail { mu, sigma } => {
                assert!(mu.is_finite(), "lognormal mu must be finite, got {mu}");
                assert!(
                    sigma.is_finite() && sigma >= 0.0,
                    "lognormal sigma must be finite and non-negative, got {sigma}"
                );
            }
        }
    }

    /// True when the delay is *identically zero* — the configuration that
    /// must reproduce the deterministic model bit-for-bit.
    pub fn is_zero(&self) -> bool {
        match *self {
            StragglerModel::Deterministic => true,
            StragglerModel::BoundedJitter { spread } => spread == 0.0,
            StragglerModel::ExponentialTail { mean } => mean == 0.0,
            StragglerModel::LogNormalTail { .. } => false,
        }
    }

    /// Expected value of a single delay draw.
    pub fn mean_delay(&self) -> f64 {
        self.assert_valid();
        match *self {
            StragglerModel::Deterministic => 0.0,
            StragglerModel::BoundedJitter { spread } => spread / 2.0,
            StragglerModel::ExponentialTail { mean } => mean,
            StragglerModel::LogNormalTail { mu, sigma } => (mu + sigma * sigma / 2.0).exp(),
        }
    }

    /// CDF of one delay draw, `P(X ≤ x)`.
    pub fn delay_cdf(&self, x: f64) -> f64 {
        match *self {
            StragglerModel::Deterministic => {
                if x >= 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            StragglerModel::BoundedJitter { spread } => {
                if spread == 0.0 {
                    if x >= 0.0 {
                        1.0
                    } else {
                        0.0
                    }
                } else {
                    (x / spread).clamp(0.0, 1.0)
                }
            }
            StragglerModel::ExponentialTail { mean } => {
                if x <= 0.0 {
                    0.0
                } else if mean == 0.0 {
                    1.0
                } else {
                    1.0 - (-x / mean).exp()
                }
            }
            StragglerModel::LogNormalTail { mu, sigma } => {
                if x <= 0.0 {
                    0.0
                } else if sigma == 0.0 {
                    if x.ln() >= mu {
                        1.0
                    } else {
                        0.0
                    }
                } else {
                    normal_cdf((x.ln() - mu) / sigma)
                }
            }
        }
    }

    /// Samples one delay. [`StragglerModel::Deterministic`] (and
    /// zero-scale parameterisations) consume no randomness, so existing
    /// seeded simulations are unchanged when stragglers are disabled.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.assert_valid();
        match *self {
            StragglerModel::Deterministic => 0.0,
            StragglerModel::BoundedJitter { spread } => {
                if spread == 0.0 {
                    0.0
                } else {
                    spread * rng.gen::<f64>()
                }
            }
            StragglerModel::ExponentialTail { mean } => {
                if mean == 0.0 {
                    0.0
                } else {
                    // lint: allow(panic-free-lib): StragglerModel validation rejects non-positive means before sampling
                    Exp::new(1.0 / mean).expect("validated").sample(rng)
                }
            }
            StragglerModel::LogNormalTail { mu, sigma } => {
                // lint: allow(panic-free-lib): StragglerModel validation rejects invalid sigma before sampling
                LogNormal::new(mu, sigma).expect("validated").sample(rng)
            }
        }
    }

    /// A delay value the maximum of `n` draws exceeds with negligible
    /// probability (< ~10⁻¹⁴) — the quadrature's upper cut-off.
    fn tail_bound(&self, n: usize) -> f64 {
        match *self {
            StragglerModel::Deterministic => 0.0,
            StragglerModel::BoundedJitter { spread } => spread,
            StragglerModel::ExponentialTail { mean } => mean * (34.5 + (n as f64).ln()),
            StragglerModel::LogNormalTail { mu, sigma } => (mu + sigma * 8.5).exp(),
        }
    }

    /// A delay value essentially no draw falls below — the quadrature's
    /// lower cut-off when the deterministic bases are zero.
    fn low_bound(&self) -> f64 {
        match *self {
            StragglerModel::Deterministic => 0.0,
            StragglerModel::BoundedJitter { spread } => spread * 1e-12,
            StragglerModel::ExponentialTail { mean } => mean * 1e-12,
            // Floored so the log-spaced grid always starts strictly above
            // zero even when the quantile underflows; the truncation error
            // is bounded by the cut-off itself.
            StragglerModel::LogNormalTail { mu, sigma } => (mu - sigma * 8.5).exp().max(1e-15),
        }
    }

    /// `E[max of n i.i.d. delay draws]` — the expected extra barrier cost
    /// stragglers add to an evenly loaded superstep on `n` homogeneous
    /// workers.
    pub fn expected_max(&self, n: usize) -> f64 {
        self.expected_order_stat(n, 0)
    }

    /// `E[(n−k)-th order statistic of n i.i.d. delay draws]` — the barrier
    /// cost when the slowest `k` workers are dropped (covered by backup
    /// workers). `k = 0` is the plain maximum.
    ///
    /// Exponential tails use the exact harmonic-number form
    /// `mean·(H_n − H_k)`; bounded jitter uses the exact
    /// `spread·(n−k)/(n+1)`; log-normal tails integrate the order-statistic
    /// density in the underlying normal's `z`-space.
    ///
    /// Past [`Self::asymptotic_crossover`] the tailed distributions
    /// switch to their extreme-value asymptotic regime — the
    /// Euler–Maclaurin harmonic expansion for exponential tails, the
    /// Gumbel-normed windowed quadrature
    /// ([`lognormal_order_stat_asymptotic`]) for log-normal tails — O(1)
    /// in `n` where the exact forms are O(n) or lose the peak. Below the
    /// crossover every value is bit-identical to the historical exact
    /// path ([`Self::expected_order_stat_exact`]); at the crossover the
    /// two regimes agree within 1e-3 relative (property-tested, measured
    /// far tighter).
    ///
    /// # Panics
    /// Panics when `n == 0` or `k >= n`.
    pub fn expected_order_stat(&self, n: usize, k: usize) -> f64 {
        self.assert_valid();
        assert!(n >= 1, "need at least one draw");
        assert!(k < n, "cannot drop all {n} workers (k = {k})");
        match *self {
            StragglerModel::Deterministic => 0.0,
            StragglerModel::BoundedJitter { spread } => spread * (n - k) as f64 / (n as f64 + 1.0),
            StragglerModel::ExponentialTail { mean } => mean * (harmonic_any(n) - harmonic_any(k)),
            StragglerModel::LogNormalTail { mu, sigma } => {
                if sigma == 0.0 {
                    return mu.exp();
                }
                if n > LOGNORMAL_ASYMPTOTIC_MIN_N {
                    return lognormal_order_stat_asymptotic(mu, sigma, n, k);
                }
                LogNormalGrid::new(mu, sigma).expected_order_stat(n, k)
            }
        }
    }

    /// [`Self::expected_order_stat`] with the asymptotic crossover
    /// disabled: the summed-harmonic / shared-grid exact path at *any*
    /// `n` (the grid coefficient still moves to log-space past
    /// [`LOGNORMAL_COEFF_LOOP_MAX_N`] — overflow is a bug, not a
    /// regime). This is the reference the property suite and
    /// `bench-scale` measure the asymptotic regime against; it is O(n)
    /// for exponential tails and pays the full fixed-grid quadrature for
    /// log-normal ones, so hot paths should not call it.
    ///
    /// # Panics
    /// Panics when `n == 0` or `k >= n`.
    pub fn expected_order_stat_exact(&self, n: usize, k: usize) -> f64 {
        self.assert_valid();
        assert!(n >= 1, "need at least one draw");
        assert!(k < n, "cannot drop all {n} workers (k = {k})");
        match *self {
            StragglerModel::Deterministic => 0.0,
            StragglerModel::BoundedJitter { spread } => spread * (n - k) as f64 / (n as f64 + 1.0),
            StragglerModel::ExponentialTail { mean } => mean * (harmonic(n) - harmonic(k)),
            StragglerModel::LogNormalTail { mu, sigma } => {
                if sigma == 0.0 {
                    return mu.exp();
                }
                LogNormalGrid::new(mu, sigma).expected_order_stat(n, k)
            }
        }
    }

    /// The `n` above which [`Self::expected_order_stat`] switches to the
    /// extreme-value asymptotic regime, or `None` for the variants whose
    /// exact form is already O(1) (deterministic, bounded jitter).
    pub fn asymptotic_crossover(&self) -> Option<usize> {
        match *self {
            StragglerModel::Deterministic | StragglerModel::BoundedJitter { .. } => None,
            StragglerModel::ExponentialTail { .. } => Some(EXP_ASYMPTOTIC_MIN_N),
            StragglerModel::LogNormalTail { .. } => Some(LOGNORMAL_ASYMPTOTIC_MIN_N),
        }
    }

    /// Shared-grid batch form of [`Self::expected_order_stat`]: returns
    /// `E[(n−kₙ)-th order statistic of n draws]` for every `n ∈ 1..=n_max`
    /// with `kₙ = drop_k.min(n−1)` (the same clamping the models apply).
    ///
    /// The expensive transcendentals — the underlying normal's CDF and
    /// density for log-normal tails, the running harmonic sum for
    /// exponential tails — are evaluated **once per grid point** and
    /// reused for every `n`, so the whole table costs O(grid) CDF
    /// evaluations instead of the O(grid·n_max) a per-`n` loop pays.
    /// Every entry is **bit-identical** to the corresponding
    /// `expected_order_stat(n, kₙ)` call: the per-`n` arithmetic (Simpson
    /// weights, multiplication order, harmonic partial sums) is exactly
    /// the serial path's, only the transcendental evaluations are shared.
    pub fn expected_order_stats(&self, n_max: usize, drop_k: usize) -> Vec<f64> {
        self.assert_valid();
        assert!(n_max >= 1, "need at least one draw");
        match *self {
            StragglerModel::Deterministic => vec![0.0; n_max],
            StragglerModel::BoundedJitter { spread } => (1..=n_max)
                .map(|n| {
                    let k = drop_k.min(n - 1);
                    spread * (n - k) as f64 / (n as f64 + 1.0)
                })
                .collect(),
            StragglerModel::ExponentialTail { mean } => {
                let h_fixed = harmonic_any(drop_k);
                let mut h = HarmonicSum::new(); // running H_n ≡ harmonic(n)
                (1..=n_max)
                    .map(|n| {
                        let h_prev = h.value(); // H_{n−1}
                                                // Past the crossover the running sum hands over to
                                                // the expansion — the same routing harmonic_any
                                                // applies per-call, so batch and per-call entries
                                                // stay bit-identical on both sides of the seam.
                        let h_n = if n <= EXP_ASYMPTOTIC_MIN_N {
                            h.push();
                            h.value()
                        } else {
                            harmonic_asymptotic(n)
                        };
                        // k = n−1 only while n ≤ drop_k, where H_k = H_{n−1}.
                        let h_k = if drop_k.min(n - 1) == drop_k {
                            h_fixed
                        } else if n - 1 <= EXP_ASYMPTOTIC_MIN_N {
                            h_prev
                        } else {
                            harmonic_asymptotic(n - 1)
                        };
                        mean * (h_n - h_k)
                    })
                    .collect()
            }
            StragglerModel::LogNormalTail { mu, sigma } => {
                if sigma == 0.0 {
                    return vec![mu.exp(); n_max];
                }
                let grid = LogNormalGrid::new(mu, sigma);
                let ns: Vec<usize> = (1..=n_max).collect();
                // The per-n Simpson sums over the shared grid are
                // independent — fan them out too.
                par::map(&ns, |&n| {
                    let k = drop_k.min(n - 1);
                    if n > LOGNORMAL_ASYMPTOTIC_MIN_N {
                        lognormal_order_stat_asymptotic(mu, sigma, n, k)
                    } else {
                        grid.expected_order_stat(n, k)
                    }
                })
            }
        }
    }

    /// Sparse batch form of [`Self::expected_order_stat`]: one entry per
    /// requested `n` (with `kₙ = drop_k.min(n−1)`), in input order. This
    /// is the extreme-scale companion to
    /// [`Self::expected_order_stats`] — a log-spaced ladder to `n = 10⁶`
    /// costs O(ladder) model calls and memory instead of a
    /// million-entry dense table. Log-normal tails share one quadrature
    /// grid across the sub-crossover entries; every entry is
    /// bit-identical to the corresponding per-call
    /// [`Self::expected_order_stat`].
    ///
    /// # Panics
    /// Panics when `ns` is empty or contains `0`.
    pub fn expected_order_stats_sparse(&self, ns: &[usize], drop_k: usize) -> Vec<f64> {
        self.assert_valid();
        assert!(!ns.is_empty(), "need at least one worker count");
        match *self {
            StragglerModel::LogNormalTail { mu, sigma } if sigma != 0.0 => {
                let grid = LogNormalGrid::new(mu, sigma);
                par::map(ns, |&n| {
                    assert!(n >= 1, "need at least one draw");
                    let k = drop_k.min(n - 1);
                    if n > LOGNORMAL_ASYMPTOTIC_MIN_N {
                        lognormal_order_stat_asymptotic(mu, sigma, n, k)
                    } else {
                        grid.expected_order_stat(n, k)
                    }
                })
            }
            _ => par::map(ns, |&n| self.expected_order_stat(n, drop_k.min(n - 1))),
        }
    }

    /// Expected barrier time `E[(n−k)-th order statistic of {b_i + X_i}]`:
    /// worker `i` finishes its deterministic base work `b_i` seconds after
    /// the superstep starts, plus an independent straggler delay `X_i`;
    /// the barrier waits for all but the slowest `k` (their shards are
    /// covered by backup workers). With `k = 0` this is the plain
    /// `E[max]`; with zero jitter it is *exactly* the `(n−k)`-th smallest
    /// base (bit-identical to the deterministic model).
    ///
    /// Homogeneous bases route through the exact/1-D forms of
    /// [`Self::expected_order_stat`]; heterogeneous bases integrate the
    /// Poisson-binomial order-statistic survival function on a log-spaced
    /// grid (deterministic quadrature, no sampling).
    ///
    /// # Panics
    /// Panics when `bases` is empty or `drop_k >= bases.len()`.
    pub fn expected_barrier(&self, bases: &[f64], drop_k: usize) -> Seconds {
        self.expected_barrier_with(bases, drop_k, &|n, k| self.expected_order_stat(n, k))
    }

    /// [`Self::expected_barrier`] with a caller-supplied source for the
    /// homogeneous i.i.d. order statistic — a memo table or a shared-grid
    /// batch ([`Self::expected_order_stats`]) instead of a fresh
    /// quadrature per call. The source must return exactly
    /// `expected_order_stat(n, k)` for the queried pair; both the memo
    /// cache and the batch table do, bit for bit.
    fn expected_barrier_with(
        &self,
        bases: &[f64],
        drop_k: usize,
        order_stat: &dyn Fn(usize, usize) -> f64,
    ) -> Seconds {
        self.assert_valid();
        let n = bases.len();
        assert!(n >= 1, "need at least one worker");
        assert!(
            drop_k < n,
            "cannot drop all {n} workers (backup_k = {drop_k})"
        );
        let homogeneous = bases.iter().all(|&b| b == bases[0]);
        if self.is_zero() {
            // Zero jitter: the barrier is the (n−k)-th smallest base,
            // computed without quadrature so the homogeneous case stays
            // bit-identical to the deterministic model.
            if drop_k == 0 {
                return Seconds::new(bases.iter().copied().fold(f64::MIN, f64::max));
            }
            let mut sorted = bases.to_vec();
            sorted.sort_by(f64::total_cmp);
            return Seconds::new(sorted[n - 1 - drop_k]);
        }
        if homogeneous {
            return Seconds::new(bases[0] + order_stat(n, drop_k));
        }
        Seconds::new(self.expected_barrier_hetero(bases, drop_k))
    }

    /// Heterogeneous-base expected order statistic by quadrature:
    /// `E[Y_(m)] = x_lo + ∫_{x_lo}^{x_hi} (1 − P(Y_(m) ≤ x)) dx` with
    /// `P(Y_(m) ≤ x) = P(#{i : b_i + X_i ≤ x} ≥ m)` evaluated through a
    /// Poisson-binomial recursion capped at `k` failures. The grid is
    /// log-spaced so heavy log-normal tails are resolved as finely as the
    /// bulk.
    fn expected_barrier_hetero(&self, bases: &[f64], k: usize) -> f64 {
        let n = bases.len();
        let m = n - k;
        let mut sorted = bases.to_vec();
        sorted.sort_by(f64::total_cmp);
        let b_m = sorted[m - 1]; // below this, P(Y_(m) ≤ x) = 0 exactly
        let b_max = sorted[n - 1];
        let x_lo = if b_m > 0.0 { b_m } else { self.low_bound() };
        let x_hi = b_max + self.tail_bound(n);
        if x_hi <= x_lo {
            return b_m;
        }
        // P(at least m of the Y_i ≤ x), i.e. at most k exceed x.
        let survival = |x: f64| {
            let mut q = vec![0.0f64; k + 2]; // q[k+1] absorbs ≥ k+1 failures
            q[0] = 1.0;
            for &b in bases {
                let p = self.delay_cdf(x - b);
                let s = 1.0 - p;
                for f in (0..=k).rev() {
                    q[f + 1] += q[f] * s;
                    q[f] *= p;
                }
            }
            let reached: f64 = q[..=k].iter().sum();
            1.0 - reached
        };
        // Trapezoid on a log grid over [x_lo, x_hi].
        let (u_lo, u_hi) = (x_lo.ln(), x_hi.ln());
        let steps = 4096usize;
        let h = (u_hi - u_lo) / steps as f64;
        let g = |u: f64| {
            let x = u.exp();
            survival(x) * x // dx = e^u du
        };
        let mut sum = 0.5 * (g(u_lo) + g(u_hi));
        for i in 1..steps {
            sum += g(u_lo + i as f64 * h);
        }
        x_lo + sum * h
    }
}

/// Clamp the drop-count to leave at least one worker standing.
fn effective_k(backup_k: usize, n: usize) -> usize {
    backup_k.min(n.saturating_sub(1))
}

/// Precomputed order statistics for a sweep: dense (`t[n−1]` for
/// `n ∈ 1..=n_max`, the historical layout) below
/// [`DENSE_EVAL_MAX_N`], keyed by `n` above it — a 10⁶-worker ladder
/// stores its few hundred rungs instead of a million entries.
enum OrderStatTable {
    Dense(Vec<f64>),
    Sparse(HashMap<usize, f64>),
}

/// The shared-grid table for a sweep over `ns`, or `None` when the
/// barrier path cannot consume it: zero jitter (the exact sorted-base
/// path never asks for an order statistic) or heterogeneous bases (the
/// Poisson-binomial quadrature is used instead). Homogeneity is probed
/// at `n_max` — every `Heterogeneity` variant yields prefix-structured
/// speed factors, so an all-equal widest profile implies all-equal
/// narrower ones; a wrong probe only costs the fallback path, never
/// correctness.
fn order_stat_table(
    straggler: StragglerModel,
    backup_k: usize,
    ns: &[usize],
    probe_bases: &[f64],
) -> Option<OrderStatTable> {
    let homogeneous = probe_bases.iter().all(|&b| b == probe_bases[0]);
    if !homogeneous || straggler.is_zero() {
        return None;
    }
    // lint: allow(panic-free-lib): every caller collects a non-empty sweep before building the table
    let n_max = ns.iter().copied().max().expect("non-empty sweep");
    if n_max <= DENSE_EVAL_MAX_N {
        Some(OrderStatTable::Dense(
            straggler.expected_order_stats(n_max, backup_k),
        ))
    } else {
        let values = straggler.expected_order_stats_sparse(ns, backup_k);
        Some(OrderStatTable::Sparse(
            ns.iter().copied().zip(values).collect(),
        ))
    }
}

impl StragglerModel {
    /// An order-statistic source reading from `table` when present and
    /// falling back to the per-`n` quadrature otherwise — both
    /// bit-identical to [`Self::expected_order_stat`]. A sparse-table
    /// miss (e.g. a planner refinement probing between ladder rungs)
    /// also falls back per-call.
    fn order_stat_from<'a>(
        &self,
        table: &'a Option<OrderStatTable>,
    ) -> impl Fn(usize, usize) -> f64 + 'a {
        let model = *self;
        move |n, k| match table {
            Some(OrderStatTable::Dense(t)) => t[n - 1],
            Some(OrderStatTable::Sparse(t)) => t
                .get(&n)
                .copied()
                .unwrap_or_else(|| model.expected_order_stat(n, k)),
            None => model.expected_order_stat(n, k),
        }
    }
}

/// An order-statistic source: `(n, k) → E[(n−k)-th of n]`.
type OrderStatFn<'a> = &'a dyn Fn(usize, usize) -> f64;

/// Sweep scaffolding shared by the straggler curve builders: collect the
/// worker counts, build the shared-grid order-statistic table when the
/// barrier path can consume it, and fan the per-`n` evaluations out
/// across threads — bit-identical to a serial per-`n` loop.
fn sweep_curve(
    ns: impl IntoIterator<Item = usize>,
    straggler: StragglerModel,
    backup_k: usize,
    probe_bases: &dyn Fn(usize) -> Vec<f64>,
    time_via: &(dyn Fn(OrderStatFn, usize) -> Seconds + Sync),
) -> SpeedupCurve {
    let ns: Vec<usize> = ns.into_iter().collect();
    assert!(!ns.is_empty(), "need at least one worker count");
    // lint: allow(panic-free-lib): the assert! above guarantees ns is non-empty
    let n_max = ns.iter().copied().max().expect("non-empty");
    let table = order_stat_table(straggler, backup_k, &ns, &probe_bases(n_max));
    let times = par::map(&ns, |&n| time_via(&straggler.order_stat_from(&table), n));
    SpeedupCurve::from_samples(ns.into_iter().zip(times))
}

/// Per-model memo cache for expected order statistics, keyed on `(n, k)`.
///
/// The batch sweep paths (curves, planner construction) already share
/// one grid pass internally; this cache is for callers issuing repeated
/// *ad-hoc* `expected_max`/`expected_barrier` queries — interactive
/// what-if loops, custom sweeps over scenarios that revisit the same
/// `(n, k)` pairs — where each distinct pair should hit the quadrature
/// once and every repeat be a hash lookup. [`Self::warm`] batch-fills
/// the cache through the shared-grid quadrature
/// ([`StragglerModel::expected_order_stats`]), the cheap way to populate
/// a whole `1..=n_max` sweep up front.
///
/// Cached values are bit-identical to uncached
/// [`StragglerModel::expected_order_stat`] calls, so routing a hot path
/// through the cache never changes a result.
///
/// The memo is `Mutex`-backed, so one cache can be shared across threads
/// — `mlscale serve` keeps a process-wide cache per delay model and
/// answers every request's order-statistic queries from it.
pub struct OrderStatCache {
    model: StragglerModel,
    memo: Mutex<HashMap<(usize, usize), f64>>,
    /// `(drop_k, n_max)` warm passes already taken, so a shared cache
    /// skips redundant batch quadratures across requests.
    warmed: Mutex<Vec<(usize, usize)>>,
}

impl OrderStatCache {
    /// An empty cache for one delay model.
    pub fn new(model: StragglerModel) -> Self {
        Self {
            model,
            memo: Mutex::new(HashMap::new()),
            warmed: Mutex::new(Vec::new()),
        }
    }

    /// The cached model.
    pub fn model(&self) -> StragglerModel {
        self.model
    }

    /// Number of non-dominated warm passes currently remembered — for
    /// callers (and tests) asserting the list stays bounded across
    /// repeated [`Self::warm`]s.
    pub fn warmed_passes(&self) -> usize {
        self.warmed
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Batch-fills `(n, drop_k.min(n−1))` for every `n ∈ 1..=n_max` in a
    /// single shared-grid pass. A pass already covered by an earlier warm
    /// is skipped — the memo entries it would write are bit-identical to
    /// the ones in place — and passes this one supersedes are pruned, so
    /// the warmed list stays bounded by the number of *distinct* drop-k
    /// regimes a long-lived cache (`mlscale serve`) ever sees, not by
    /// the request count.
    ///
    /// Dominance: a pass `(k, m)` writes exactly the keys
    /// `{(n, k.min(n−1)) : n ≤ m}`, so it is covered by `(k', m')` iff
    /// `m ≤ m'` and the clamped drop counts agree on every `n ≤ m` —
    /// `k == k'`, or both are clamped throughout (`k, k' ≥ m − 1`).
    pub fn warm(&self, n_max: usize, drop_k: usize) {
        assert!(n_max >= 1, "need at least one draw");
        {
            let mut warmed = self.warmed.lock().unwrap_or_else(PoisonError::into_inner);
            if warmed.iter().any(|&(k, m)| {
                m >= n_max && (k == drop_k || (k >= n_max - 1 && drop_k >= n_max - 1))
            }) {
                return;
            }
            warmed.retain(|&(k, m)| {
                !(m <= n_max && (k == drop_k || (k >= m - 1 && drop_k >= m - 1)))
            });
            warmed.push((drop_k, n_max));
        }
        let table = self.model.expected_order_stats(n_max, drop_k);
        let mut memo = self.memo.lock().unwrap_or_else(PoisonError::into_inner);
        for (i, &v) in table.iter().enumerate() {
            let n = i + 1;
            memo.insert((n, drop_k.min(n - 1)), v);
        }
    }

    /// Memoised [`StragglerModel::expected_order_stat`].
    pub fn expected_order_stat(&self, n: usize, k: usize) -> f64 {
        if let Some(&v) = self
            .memo
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&(n, k))
        {
            return v;
        }
        let v = self.model.expected_order_stat(n, k);
        self.memo
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert((n, k), v);
        v
    }

    /// Memoised [`StragglerModel::expected_max`].
    pub fn expected_max(&self, n: usize) -> f64 {
        self.expected_order_stat(n, 0)
    }

    /// [`StragglerModel::expected_barrier`] with the homogeneous
    /// order-statistic term served from the memo.
    pub fn expected_barrier(&self, bases: &[f64], drop_k: usize) -> Seconds {
        self.model
            .expected_barrier_with(bases, drop_k, &|n, k| self.expected_order_stat(n, k))
    }
}

/// A process-wide registry of [`OrderStatCache`]s, one per distinct
/// delay model. Long-lived callers (`mlscale serve`) hold one pool for
/// the life of the process so repeated requests over the same straggler
/// regime reuse each other's quadrature work; a fresh pool degenerates
/// to the old per-run behaviour.
///
/// Keyed by linear scan — `StragglerModel` is `PartialEq` but not
/// `Eq`/`Hash` (f64 fields), and a server sees a handful of distinct
/// models, not thousands.
#[derive(Default)]
pub struct OrderStatCachePool {
    caches: Mutex<Vec<(StragglerModel, Arc<OrderStatCache>)>>,
}

impl OrderStatCachePool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// The shared cache for `model`, creating it on first request.
    pub fn cache_for(&self, model: StragglerModel) -> Arc<OrderStatCache> {
        let mut caches = self.caches.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some((_, cache)) = caches.iter().find(|(m, _)| *m == model) {
            return Arc::clone(cache);
        }
        let cache = Arc::new(OrderStatCache::new(model));
        caches.push((model, Arc::clone(&cache)));
        cache
    }

    /// Number of distinct models cached so far.
    pub fn len(&self) -> usize {
        self.caches
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Whether the pool has no caches yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Straggler-aware gradient descent: wraps a [`GradientDescentModel`] with
/// a delay distribution, cluster heterogeneity and the drop-slowest-k
/// mitigation, and reports *expected* iteration times.
///
/// With `StragglerModel::Deterministic`, `Heterogeneity::Uniform` and
/// `backup_k = 0` every method reproduces the inner model bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StragglerGdModel {
    /// The deterministic model (hardware, workload, collective).
    pub inner: GradientDescentModel,
    /// Per-worker per-superstep delay distribution.
    pub straggler: StragglerModel,
    /// Compute-speed heterogeneity across workers.
    pub hetero: Heterogeneity,
    /// Drop the slowest `k` workers each superstep (backup workers cover
    /// their shards); clamped to `n − 1` at evaluation time.
    pub backup_k: usize,
}

impl StragglerGdModel {
    /// Wraps a model with the degenerate (deterministic) scenario.
    pub fn deterministic(inner: GradientDescentModel) -> Self {
        Self {
            inner,
            straggler: StragglerModel::Deterministic,
            hetero: Heterogeneity::Uniform,
            backup_k: 0,
        }
    }

    /// Per-worker compute-phase base times for an even strong-scaling
    /// split of the batch across `n` workers.
    fn strong_bases(&self, n: usize) -> Vec<f64> {
        let even = self.inner.strong_comp_time(n).as_secs();
        self.hetero
            .speed_factors(&self.inner.cluster, n)
            .into_iter()
            .map(|s| even / s)
            .collect()
    }

    /// Per-worker compute-phase base times for weak scaling (every worker
    /// keeps a full per-worker batch).
    fn weak_bases(&self, n: usize) -> Vec<f64> {
        let per_worker = (self.inner.cost_per_example * self.inner.batch_size
            / self.inner.cluster.flops())
        .as_secs();
        self.hetero
            .speed_factors(&self.inner.cluster, n)
            .into_iter()
            .map(|s| per_worker / s)
            .collect()
    }

    /// Expected compute-phase barrier time at `n` workers (strong
    /// scaling): `E[(n−k)-th order stat of {t_cp/s_i + X_i}]`.
    pub fn expected_strong_comp_time(&self, n: usize) -> Seconds {
        assert!(n >= 1);
        self.straggler
            .expected_barrier(&self.strong_bases(n), effective_k(self.backup_k, n))
    }

    /// Expected strong-scaling iteration time
    /// `E[barrier] + t_cm(n)` — communication is unchanged by compute
    /// stragglers (the collective starts at the barrier).
    pub fn expected_strong_iteration_time(&self, n: usize) -> Seconds {
        self.expected_strong_comp_time(n) + self.inner.comm_time(n)
    }

    /// Expected weak-scaling iteration time.
    pub fn expected_weak_iteration_time(&self, n: usize) -> Seconds {
        assert!(n >= 1);
        let barrier = self
            .straggler
            .expected_barrier(&self.weak_bases(n), effective_k(self.backup_k, n));
        barrier + self.inner.comm_time(n)
    }

    /// Expected weak-scaling per-instance time (the paper's Fig 3 metric).
    pub fn expected_weak_per_instance_time(&self, n: usize) -> Seconds {
        self.expected_weak_iteration_time(n) / n as f64
    }

    /// Strong-scaling iteration time with the homogeneous order-statistic
    /// term served from a caller-supplied source (shared-grid table or
    /// memo) — bit-identical to [`Self::expected_strong_iteration_time`].
    fn strong_iteration_time_via(
        &self,
        order_stat: &dyn Fn(usize, usize) -> f64,
        n: usize,
    ) -> Seconds {
        assert!(n >= 1);
        let barrier = self.straggler.expected_barrier_with(
            &self.strong_bases(n),
            effective_k(self.backup_k, n),
            order_stat,
        );
        barrier + self.inner.comm_time(n)
    }

    /// Weak-scaling per-instance time via a caller-supplied
    /// order-statistic source.
    fn weak_per_instance_time_via(
        &self,
        order_stat: &dyn Fn(usize, usize) -> f64,
        n: usize,
    ) -> Seconds {
        assert!(n >= 1);
        let barrier = self.straggler.expected_barrier_with(
            &self.weak_bases(n),
            effective_k(self.backup_k, n),
            order_stat,
        );
        (barrier + self.inner.comm_time(n)) / n as f64
    }

    /// Expected strong-scaling speedup curve over `ns`.
    ///
    /// The homogeneous order-statistic terms for the whole sweep come
    /// from one shared-grid quadrature pass
    /// ([`StragglerModel::expected_order_stats`]) and the per-`n`
    /// evaluations fan out across threads ([`crate::par`]); both are
    /// bit-identical to the serial per-`n` path.
    pub fn strong_curve(&self, ns: impl IntoIterator<Item = usize>) -> SpeedupCurve {
        sweep_curve(
            ns,
            self.straggler,
            self.backup_k,
            &|n| self.strong_bases(n),
            &|os, n| self.strong_iteration_time_via(os, n),
        )
    }

    /// Expected weak-scaling per-instance speedup curve over `ns` (same
    /// shared-grid + parallel evaluation as [`Self::strong_curve`]).
    pub fn weak_curve(&self, ns: impl IntoIterator<Item = usize>) -> SpeedupCurve {
        sweep_curve(
            ns,
            self.straggler,
            self.backup_k,
            &|n| self.weak_bases(n),
            &|os, n| self.weak_per_instance_time_via(os, n),
        )
    }

    /// [`Self::strong_curve`] over the geometric ladder
    /// [`log_spaced_ns`]`(max_n, points)` — the extreme-scale form: a
    /// `max_n = 10⁶` strong curve is O(`points`) expected-time
    /// evaluations (sparse shared-grid order statistics, parallel
    /// per-rung evaluation) instead of a million.
    pub fn strong_curve_log(&self, max_n: usize, points: usize) -> SpeedupCurve {
        self.strong_curve(log_spaced_ns(max_n, points))
    }

    /// [`Self::weak_curve`] over the geometric ladder — see
    /// [`Self::strong_curve_log`].
    pub fn weak_curve_log(&self, max_n: usize, points: usize) -> SpeedupCurve {
        self.weak_curve(log_spaced_ns(max_n, points))
    }

    /// A [`Planner`] over the *expected* job time
    /// `iterations · E[t_iter(n)]` — provisioning answers (cheapest within
    /// deadline, fastest within budget) that price the straggler tail in,
    /// rather than the deterministic best case. The sweep's order
    /// statistics come from one shared-grid pass and the candidate sizes
    /// are evaluated in parallel.
    ///
    /// Past [`DENSE_EVAL_MAX_N`] the dense `1..=max_n` sweep would cost
    /// O(max_n) model calls to answer four questions, so construction
    /// automatically routes to [`Self::planner_log`] with
    /// [`Planner::DEFAULT_LOG_POINTS`] rungs.
    pub fn planner(&self, iterations: f64, max_n: usize, pricing: Pricing) -> Planner {
        if max_n > DENSE_EVAL_MAX_N {
            return self.planner_log(iterations, max_n, pricing, Planner::DEFAULT_LOG_POINTS);
        }
        let ns: Vec<usize> = (1..=max_n).collect();
        let table = order_stat_table(
            self.straggler,
            self.backup_k,
            &ns,
            &self.strong_bases(max_n),
        );
        Planner::new_par(
            move |n| {
                self.strong_iteration_time_via(&self.straggler.order_stat_from(&table), n)
                    * iterations
            },
            max_n,
            pricing,
        )
    }

    /// [`Self::planner`] over a log-spaced candidate ladder
    /// ([`Planner::new_log`]): O(`points`) expected-time evaluations —
    /// the ladder's order statistics from one sparse shared-grid pass,
    /// refinement probes served per-call — so all four planner verbs at
    /// `max_n = 10⁶` answer in well under a second.
    pub fn planner_log(
        &self,
        iterations: f64,
        max_n: usize,
        pricing: Pricing,
        points: usize,
    ) -> Planner {
        let ns = log_spaced_ns(max_n, points);
        let table = order_stat_table(
            self.straggler,
            self.backup_k,
            &ns,
            &self.strong_bases(max_n),
        );
        Planner::new_log(
            move |n| {
                self.strong_iteration_time_via(&self.straggler.order_stat_from(&table), n)
                    * iterations
            },
            max_n,
            pricing,
            points,
        )
    }

    /// Expected strong-scaling curve with the homogeneous order-statistic
    /// terms served from a caller-owned [`OrderStatCache`] — bit-identical
    /// to [`Self::strong_curve`].
    ///
    /// Batch sweeps over scenario grids (`mlscale sweep`) evaluate many
    /// models that differ only in hardware or collective while sharing one
    /// delay distribution; routing them through one cache means each
    /// distinct `(n, k)` quadrature runs once for the whole grid instead
    /// of once per grid point. Warm the cache first
    /// ([`OrderStatCache::warm`]) to fill a whole `1..=n_max` sweep in a
    /// single shared-grid pass.
    ///
    /// # Panics
    /// Panics when the cache was built for a different delay model.
    pub fn strong_curve_cached(
        &self,
        ns: impl IntoIterator<Item = usize>,
        cache: &OrderStatCache,
    ) -> SpeedupCurve {
        self.curve_cached(ns, cache, &|os, n| self.strong_iteration_time_via(os, n))
    }

    /// Expected weak-scaling per-instance curve served from a shared
    /// [`OrderStatCache`] — bit-identical to [`Self::weak_curve`]. See
    /// [`Self::strong_curve_cached`] for the sweep-dedup rationale.
    ///
    /// # Panics
    /// Panics when the cache was built for a different delay model.
    pub fn weak_curve_cached(
        &self,
        ns: impl IntoIterator<Item = usize>,
        cache: &OrderStatCache,
    ) -> SpeedupCurve {
        self.curve_cached(ns, cache, &|os, n| self.weak_per_instance_time_via(os, n))
    }

    /// Shared scaffolding for the cache-served curves. The per-`n`
    /// evaluations run serially here — after a [`OrderStatCache::warm`]
    /// for this sweep's `(n_max, backup_k)` every lookup is a memo hit
    /// and the loop is dominated by the (cheap) communication-model
    /// evaluations, so fanning out would only add lock traffic.
    fn curve_cached(
        &self,
        ns: impl IntoIterator<Item = usize>,
        cache: &OrderStatCache,
        time_via: &dyn Fn(OrderStatFn, usize) -> Seconds,
    ) -> SpeedupCurve {
        assert_eq!(
            cache.model(),
            self.straggler,
            "OrderStatCache was built for a different straggler model"
        );
        let ns: Vec<usize> = ns.into_iter().collect();
        assert!(!ns.is_empty(), "need at least one worker count");
        let times: Vec<Seconds> = ns
            .iter()
            .map(|&n| time_via(&|n, k| cache.expected_order_stat(n, k), n))
            .collect();
        SpeedupCurve::from_samples(ns.into_iter().zip(times))
    }
}

/// Straggler-aware graph inference: wraps a [`GraphInferenceModel`].
///
/// The inner model already charges the whole superstep at the
/// most-loaded worker (`max_i E_i`). Here that worker carries base time
/// `t_cp(n)` while the remaining `n − 1` carry the balanced share
/// `E/n·c(S)/F`, each divided by its heterogeneous speed factor — so
/// drop-slowest-k can model speculative re-execution of the hub
/// partition, the dominant BP mitigation.
#[derive(Debug, Clone)]
pub struct StragglerGraphModel {
    /// The deterministic graph-inference model.
    pub inner: GraphInferenceModel,
    /// Per-worker per-superstep delay distribution.
    pub straggler: StragglerModel,
    /// Compute-speed heterogeneity across workers.
    pub hetero: Heterogeneity,
    /// Drop the slowest `k` workers each superstep.
    pub backup_k: usize,
}

impl StragglerGraphModel {
    /// Wraps a model with the degenerate (deterministic) scenario.
    pub fn deterministic(inner: GraphInferenceModel) -> Self {
        Self {
            inner,
            straggler: StragglerModel::Deterministic,
            hetero: Heterogeneity::Uniform,
            backup_k: 0,
        }
    }

    /// Per-worker base times: one worker holds the maximum edge load, the
    /// rest the balanced share.
    fn bases(&self, n: usize) -> Vec<f64> {
        // GraphInferenceModel carries no ClusterSpec (and therefore no rack
        // topology); a per-rack heterogeneity would silently degenerate to
        // uniform speeds here, so reject it loudly instead.
        assert!(
            !matches!(self.hetero, Heterogeneity::RackDecay { .. }),
            "GraphInferenceModel has no rack topology; use Heterogeneity::SlowWorkers \
             or Uniform with StragglerGraphModel"
        );
        let gating = self.inner.comp_time(n).as_secs();
        let balanced = (self.inner.cost_per_edge * (self.inner.edges / n as f64)
            / self.inner.flops)
            .as_secs()
            .min(gating);
        // SlowWorkers factors are defined per worker index; the hub
        // partition is placed on worker 1 (index 0).
        let cluster = crate::hardware::ClusterSpec::new(
            crate::hardware::NodeSpec::new(self.inner.flops, 1.0),
            crate::hardware::LinkSpec::bandwidth_only(self.inner.bandwidth),
        );
        self.hetero
            .speed_factors(&cluster, n)
            .into_iter()
            .enumerate()
            .map(|(w, s)| if w == 0 { gating / s } else { balanced / s })
            .collect()
    }

    /// Expected compute-phase barrier at `n` workers.
    pub fn expected_comp_time(&self, n: usize) -> Seconds {
        assert!(n >= 1);
        self.straggler
            .expected_barrier(&self.bases(n), effective_k(self.backup_k, n))
    }

    /// Expected iteration time `E[barrier] + t_cm(n)`.
    pub fn expected_iteration_time(&self, n: usize) -> Seconds {
        self.expected_comp_time(n) + self.inner.comm_time(n)
    }

    /// Expected speedup curve over `ns` — one shared-grid order-statistic
    /// pass for the sweep (when the base profile is homogeneous enough to
    /// consume it), per-`n` evaluation fanned out across threads,
    /// bit-identical to the serial per-`n` path.
    pub fn curve(&self, ns: impl IntoIterator<Item = usize>) -> SpeedupCurve {
        sweep_curve(
            ns,
            self.straggler,
            self.backup_k,
            &|n| self.bases(n),
            &|os, n| {
                let barrier = self.straggler.expected_barrier_with(
                    &self.bases(n),
                    effective_k(self.backup_k, n),
                    os,
                );
                barrier + self.inner.comm_time(n)
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hardware::presets;
    use crate::models::gd::GdComm;
    use crate::units::FlopCount;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fig2_model() -> GradientDescentModel {
        GradientDescentModel {
            cost_per_example: FlopCount::new(6.0 * 12e6),
            batch_size: 60_000.0,
            params: 12e6,
            bits_per_param: 64,
            cluster: presets::spark_cluster(),
            comm: GdComm::Spark,
        }
    }

    #[test]
    fn normal_cdf_reference_points() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.0) - 0.841_344_7).abs() < 1e-6);
        assert!((normal_cdf(-1.96) - 0.024_997_9).abs() < 1e-6);
        assert!(normal_cdf(9.0) > 1.0 - 1e-15);
    }

    #[test]
    fn harmonic_numbers() {
        assert_eq!(harmonic(0), 0.0);
        assert_eq!(harmonic(1), 1.0);
        assert!((harmonic(4) - (1.0 + 0.5 + 1.0 / 3.0 + 0.25)).abs() < 1e-15);
    }

    #[test]
    fn harmonic_prefix_is_bit_identical_to_plain_sum() {
        // Golden fixtures pin exponential-tail values at small n; up to
        // the Kahan cutoff the accumulator must reproduce the plain
        // forward sum bit for bit.
        let mut naive = 0.0f64;
        for j in 1..=HARMONIC_KAHAN_CUTOFF {
            naive += 1.0 / j as f64;
            assert_eq!(harmonic(j).to_bits(), naive.to_bits(), "j = {j}");
        }
    }

    #[test]
    fn harmonic_tracks_asymptotic_at_a_million_terms() {
        // H_j = ln j + γ + 1/(2j) − 1/(12j²) + O(j⁻⁴). The plain forward
        // sum drifts ~1e-12 from the expansion by j = 10⁶; compensated
        // summation must stay within the truncation term's own order.
        const EULER_GAMMA: f64 = 0.577_215_664_901_532_9;
        let j = 1_000_000usize;
        let approx = (j as f64).ln() + EULER_GAMMA + 1.0 / (2.0 * j as f64);
        let truncation = 1.0 / (12.0 * (j as f64) * (j as f64));
        let residual = harmonic(j) - approx;
        assert!(
            (residual + truncation).abs() < 1e-13,
            "residual {residual:e} vs −{truncation:e}"
        );
    }

    #[test]
    fn batch_harmonic_path_is_bit_identical_to_per_call_at_large_n() {
        // The running HarmonicSum in the batch table crosses the Kahan
        // cutoff mid-sweep; every entry must still match the per-call
        // form exactly.
        let m = StragglerModel::ExponentialTail { mean: 1.7 };
        for drop_k in [0usize, 2, 5] {
            let table = m.expected_order_stats(500, drop_k);
            for (i, &v) in table.iter().enumerate() {
                let n = i + 1;
                let direct = m.expected_order_stat(n, drop_k.min(n - 1));
                assert_eq!(v.to_bits(), direct.to_bits(), "n = {n}, drop_k = {drop_k}");
            }
        }
    }

    #[test]
    fn exponential_expected_max_is_harmonic() {
        let m = StragglerModel::ExponentialTail { mean: 0.2 };
        assert!((m.expected_max(1) - 0.2).abs() < 1e-15);
        assert!((m.expected_max(4) - 0.2 * (1.0 + 0.5 + 1.0 / 3.0 + 0.25)).abs() < 1e-12);
    }

    #[test]
    fn jitter_expected_max_is_n_over_n_plus_1() {
        let m = StragglerModel::BoundedJitter { spread: 0.6 };
        assert!((m.expected_max(1) - 0.3).abs() < 1e-15);
        assert!((m.expected_max(5) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lognormal_expected_max_single_draw_is_mean() {
        let m = StragglerModel::LogNormalTail {
            mu: -2.0,
            sigma: 0.8,
        };
        // E[X_(1) of 1] = E[X] = exp(mu + sigma²/2).
        let expected = (-2.0f64 + 0.32).exp();
        let got = m.expected_max(1);
        assert!(
            (got - expected).abs() / expected < 1e-4,
            "quadrature {got} vs closed form {expected}"
        );
    }

    #[test]
    fn lognormal_quadrature_matches_monte_carlo() {
        let m = StragglerModel::LogNormalTail {
            mu: -2.5,
            sigma: 1.0,
        };
        let mut rng = StdRng::seed_from_u64(7);
        for n in [2usize, 8, 32] {
            let reps = 40_000;
            let mc: f64 = (0..reps)
                .map(|_| (0..n).map(|_| m.sample(&mut rng)).fold(f64::MIN, f64::max))
                .sum::<f64>()
                / reps as f64;
            let analytic = m.expected_max(n);
            assert!(
                (mc - analytic).abs() / analytic < 0.03,
                "n={n}: MC {mc} vs quadrature {analytic}"
            );
        }
    }

    #[test]
    fn hetero_quadrature_agrees_with_iid_path_on_equal_bases() {
        for model in [
            StragglerModel::ExponentialTail { mean: 0.15 },
            StragglerModel::BoundedJitter { spread: 0.4 },
            StragglerModel::LogNormalTail {
                mu: -3.0,
                sigma: 0.9,
            },
        ] {
            for n in [2usize, 7, 24] {
                for k in [0usize, 1, 2] {
                    if k >= n {
                        continue;
                    }
                    let iid = model.expected_barrier(&vec![1.0; n], k).as_secs();
                    let hetero = model.expected_barrier_hetero(&vec![1.0; n], k);
                    assert!(
                        (iid - hetero).abs() / iid < 5e-3,
                        "{model:?} n={n} k={k}: iid {iid} vs hetero {hetero}"
                    );
                }
            }
        }
    }

    #[test]
    fn hetero_barrier_matches_monte_carlo() {
        let model = StragglerModel::ExponentialTail { mean: 0.1 };
        let bases = [1.0, 1.0, 2.0, 0.5];
        let mut rng = StdRng::seed_from_u64(11);
        for k in [0usize, 1] {
            let analytic = model.expected_barrier(&bases, k).as_secs();
            let reps = 60_000;
            let mc: f64 = (0..reps)
                .map(|_| {
                    let mut draws: Vec<f64> =
                        bases.iter().map(|&b| b + model.sample(&mut rng)).collect();
                    draws.sort_by(f64::total_cmp);
                    draws[bases.len() - 1 - k]
                })
                .sum::<f64>()
                / reps as f64;
            assert!(
                (mc - analytic).abs() / analytic < 0.01,
                "k={k}: MC {mc} vs quadrature {analytic}"
            );
        }
    }

    #[test]
    fn zero_base_with_underflowing_lognormal_stays_finite() {
        // Heterogeneous bases whose (n−k)-th smallest is zero route the
        // quadrature's lower cut-off through low_bound(); an extreme mu
        // underflows exp() and must floor at a tiny positive value instead
        // of poisoning the log grid with ln(0) = −∞.
        let m = StragglerModel::LogNormalTail {
            mu: -800.0,
            sigma: 1.0,
        };
        let e = m.expected_barrier(&[0.0, 0.0, 1.0], 1).as_secs();
        assert!(e.is_finite(), "got {e}");
        assert!(
            e < 1e-9,
            "dropping the loaded worker leaves two ≈0 finish times: {e}"
        );
        // Moderate parameters through the same zero-base path.
        let ln = StragglerModel::LogNormalTail {
            mu: -2.0,
            sigma: 0.8,
        };
        let barrier = ln.expected_barrier(&[0.0, 0.0, 1.0], 1).as_secs();
        assert!(barrier.is_finite() && barrier > 0.0, "got {barrier}");
    }

    #[test]
    fn zero_jitter_barrier_is_exact_max() {
        let bases = [0.25, 0.5, 0.125];
        for model in [
            StragglerModel::Deterministic,
            StragglerModel::BoundedJitter { spread: 0.0 },
            StragglerModel::ExponentialTail { mean: 0.0 },
        ] {
            assert_eq!(model.expected_barrier(&bases, 0).as_secs(), 0.5);
            assert_eq!(model.expected_barrier(&bases, 1).as_secs(), 0.25);
            assert_eq!(model.expected_barrier(&bases, 2).as_secs(), 0.125);
        }
    }

    #[test]
    fn deterministic_wrapper_is_bit_identical() {
        let inner = fig2_model();
        let wrapped = StragglerGdModel::deterministic(inner);
        for n in [1usize, 2, 9, 13, 64] {
            assert_eq!(
                wrapped.expected_strong_iteration_time(n),
                inner.strong_iteration_time(n),
                "strong n={n}"
            );
            assert_eq!(
                wrapped.expected_weak_per_instance_time(n),
                inner.weak_per_instance_time(n),
                "weak n={n}"
            );
        }
        let (n_opt, _) = wrapped.strong_curve(1..=13).optimal();
        assert_eq!(n_opt, 9, "Fig 2 optimum preserved");
    }

    #[test]
    fn stragglers_shift_the_fig2_optimum_down() {
        let light = StragglerGdModel {
            inner: fig2_model(),
            straggler: StragglerModel::ExponentialTail { mean: 1.0 },
            hetero: Heterogeneity::Uniform,
            backup_k: 0,
        };
        let (n_det, s_det) = fig2_model().strong_curve(1..=13).optimal();
        let (n_str, s_str) = light.strong_curve(1..=13).optimal();
        assert!(
            n_str <= n_det,
            "stragglers cannot push the optimum out: {n_str} vs {n_det}"
        );
        assert!(s_str < s_det, "stragglers cost speedup");
    }

    #[test]
    fn backup_workers_recover_some_speedup() {
        let base = StragglerGdModel {
            inner: fig2_model(),
            straggler: StragglerModel::LogNormalTail {
                mu: 0.0,
                sigma: 1.5,
            },
            hetero: Heterogeneity::Uniform,
            backup_k: 0,
        };
        let mitigated = StragglerGdModel {
            backup_k: 2,
            ..base
        };
        for n in [4usize, 9, 16] {
            assert!(
                mitigated.expected_strong_iteration_time(n)
                    <= base.expected_strong_iteration_time(n),
                "drop-slowest-k must not slow things down at n={n}"
            );
        }
    }

    #[test]
    fn slow_workers_gate_the_expected_barrier() {
        let uniform = StragglerGdModel::deterministic(fig2_model());
        let hetero = StragglerGdModel {
            hetero: Heterogeneity::SlowWorkers {
                count: 1,
                factor: 0.5,
            },
            ..uniform
        };
        let n = 8;
        // One half-speed worker doubles the evenly-split compute phase.
        let t_u = uniform.expected_strong_comp_time(n).as_secs();
        let t_h = hetero.expected_strong_comp_time(n).as_secs();
        assert!((t_h / t_u - 2.0).abs() < 1e-12, "{t_h} vs {t_u}");
        // Dropping that worker restores the nominal barrier.
        let mitigated = StragglerGdModel {
            backup_k: 1,
            ..hetero
        };
        assert_eq!(mitigated.expected_strong_comp_time(n).as_secs(), t_u);
    }

    #[test]
    fn planner_prices_the_tail_in() {
        let det = StragglerGdModel::deterministic(fig2_model());
        let tailed = StragglerGdModel {
            straggler: StragglerModel::ExponentialTail { mean: 5.0 },
            ..det
        };
        let pricing = Pricing::hourly(2.0);
        let fast_det = det.planner(100.0, 32, pricing).fastest();
        let fast_tail = tailed.planner(100.0, 32, pricing).fastest();
        assert!(
            fast_tail.time > fast_det.time,
            "expected time includes tail"
        );
        assert!(
            fast_tail.n <= fast_det.n,
            "stragglers never ask for more machines: {} vs {}",
            fast_tail.n,
            fast_det.n
        );
    }

    #[test]
    fn graph_wrapper_degenerates_to_inner_model() {
        use crate::models::graphinf::EdgeLoad;
        use crate::units::{BitsPerSec, FlopsRate};
        let inner = GraphInferenceModel::belief_propagation(
            10_000.0,
            50_000.0,
            2,
            FlopsRate::giga(7.6),
            BitsPerSec::new(f64::INFINITY),
            0.5,
            EdgeLoad::Balanced,
        );
        let wrapped = StragglerGraphModel::deterministic(inner.clone());
        for n in [1usize, 4, 16, 64] {
            assert_eq!(
                wrapped.expected_iteration_time(n),
                inner.iteration_time(n),
                "n={n}"
            );
        }
    }

    #[test]
    fn graph_wrapper_stragglers_slow_inference() {
        use crate::models::graphinf::EdgeLoad;
        use crate::units::{BitsPerSec, FlopsRate};
        let inner = GraphInferenceModel::belief_propagation(
            10_000.0,
            50_000.0,
            2,
            FlopsRate::giga(7.6),
            BitsPerSec::new(f64::INFINITY),
            0.5,
            EdgeLoad::Balanced,
        );
        let tailed = StragglerGraphModel {
            straggler: StragglerModel::ExponentialTail { mean: 1e-4 },
            ..StragglerGraphModel::deterministic(inner.clone())
        };
        for n in [2usize, 16, 64] {
            assert!(tailed.expected_iteration_time(n) > inner.iteration_time(n));
        }
    }

    #[test]
    #[should_panic(expected = "no rack topology")]
    fn rack_decay_on_graph_model_rejected() {
        use crate::models::graphinf::EdgeLoad;
        use crate::units::{BitsPerSec, FlopsRate};
        let inner = GraphInferenceModel::belief_propagation(
            1_000.0,
            5_000.0,
            2,
            FlopsRate::giga(7.6),
            BitsPerSec::new(f64::INFINITY),
            0.5,
            EdgeLoad::Balanced,
        );
        let m = StragglerGraphModel {
            hetero: Heterogeneity::RackDecay { factor: 0.5 },
            ..StragglerGraphModel::deterministic(inner)
        };
        let _ = m.expected_comp_time(4);
    }

    #[test]
    #[should_panic(expected = "cannot drop all")]
    fn dropping_every_worker_rejected() {
        let _ = StragglerModel::ExponentialTail { mean: 0.1 }.expected_order_stat(3, 3);
    }

    #[test]
    fn cached_curves_are_bit_identical_to_uncached() {
        // Every straggler variant, with and without heterogeneity and
        // drop-k: serving the order statistics from a shared cache must
        // not change a single bit relative to the per-curve path.
        let models = [
            StragglerModel::Deterministic,
            StragglerModel::BoundedJitter { spread: 2.0 },
            StragglerModel::ExponentialTail { mean: 4.0 },
            StragglerModel::LogNormalTail {
                mu: 0.33,
                sigma: 1.2,
            },
        ];
        for straggler in models {
            for (hetero, backup_k) in [
                (Heterogeneity::Uniform, 0),
                (Heterogeneity::Uniform, 2),
                (
                    Heterogeneity::SlowWorkers {
                        count: 2,
                        factor: 0.5,
                    },
                    1,
                ),
            ] {
                let m = StragglerGdModel {
                    straggler,
                    hetero,
                    backup_k,
                    ..StragglerGdModel::deterministic(fig2_model())
                };
                let cache = OrderStatCache::new(straggler);
                cache.warm(16, backup_k);
                let plain = m.strong_curve(1..=16);
                let cached = m.strong_curve_cached(1..=16, &cache);
                assert_eq!(plain.times(), cached.times(), "{straggler:?} strong");
                let plain_w = m.weak_curve(1..=16);
                let cached_w = m.weak_curve_cached(1..=16, &cache);
                assert_eq!(plain_w.times(), cached_w.times(), "{straggler:?} weak");
            }
        }
    }

    #[test]
    fn one_cache_serves_models_sharing_a_distribution() {
        // The sweep-dedup scenario: two models with different collectives
        // share one delay distribution and one cache; both come out
        // bit-identical to their uncached curves.
        let straggler = StragglerModel::ExponentialTail { mean: 2.0 };
        let cache = OrderStatCache::new(straggler);
        cache.warm(12, 0);
        for comm in [GdComm::Spark, GdComm::Ring, GdComm::TwoStageTree] {
            let m = StragglerGdModel {
                straggler,
                ..StragglerGdModel::deterministic(GradientDescentModel {
                    comm,
                    ..fig2_model()
                })
            };
            assert_eq!(
                m.strong_curve(1..=12).times(),
                m.strong_curve_cached(1..=12, &cache).times(),
                "{comm:?}"
            );
        }
    }

    #[test]
    fn cache_pool_dedups_by_model_and_shares_across_threads() {
        let pool = OrderStatCachePool::new();
        assert!(pool.is_empty());
        let a = pool.cache_for(StragglerModel::ExponentialTail { mean: 1.0 });
        let b = pool.cache_for(StragglerModel::ExponentialTail { mean: 1.0 });
        assert!(Arc::ptr_eq(&a, &b), "same model must share one cache");
        let c = pool.cache_for(StragglerModel::ExponentialTail { mean: 2.0 });
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(pool.len(), 2);

        // Concurrent queries through the shared cache stay bit-identical
        // to the uncached path — the serve worker pool relies on this.
        let direct = a.model().expected_order_stat(12, 2);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let a = Arc::clone(&a);
                scope.spawn(move || {
                    for _ in 0..50 {
                        assert_eq!(a.expected_order_stat(12, 2).to_bits(), direct.to_bits());
                    }
                });
            }
        });
    }

    #[test]
    #[should_panic(expected = "different straggler model")]
    fn cache_for_wrong_model_rejected() {
        let m = StragglerGdModel {
            straggler: StragglerModel::ExponentialTail { mean: 1.0 },
            ..StragglerGdModel::deterministic(fig2_model())
        };
        let cache = OrderStatCache::new(StragglerModel::ExponentialTail { mean: 2.0 });
        let _ = m.strong_curve_cached(1..=4, &cache);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_spread_rejected() {
        let _ = StragglerModel::BoundedJitter { spread: -1.0 }.expected_max(2);
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n+1) = n!; the Lanczos form must track ln(n!) to ~1e-13
        // relative across the range the coefficient path uses.
        let mut ln_fact = 0.0f64;
        for n in 1..=170usize {
            ln_fact += (n as f64).ln();
            let got = ln_gamma(n as f64 + 1.0);
            assert!(
                (got - ln_fact).abs() <= 1e-12 * ln_fact.max(1.0),
                "n={n}: {got} vs {ln_fact}"
            );
        }
        assert!(ln_gamma(1.0).abs() < 1e-14, "Γ(1) = 1");
        assert!(ln_gamma(2.0).abs() < 5e-15, "Γ(2) = 1");
    }

    #[test]
    fn inv_normal_cdf_inverts_the_cdf() {
        for p in [
            1e-7,
            1e-4,
            0.02425,
            0.1,
            0.5,
            0.9,
            0.97575,
            0.9999,
            1.0 - 1e-7,
        ] {
            let z = inv_normal_cdf(p);
            let back = normal_cdf(z);
            // normal_cdf itself carries ~1.5e-7 absolute error; the
            // round trip must stay within that noise floor.
            assert!((back - p).abs() < 5e-7, "p={p}: z={z}, back={back}");
        }
        assert!(inv_normal_cdf(0.5).abs() < 1e-9);
        assert!((inv_normal_cdf(0.975) - 1.959_964).abs() < 1e-5);
    }

    #[test]
    fn normal_sf_is_complement_of_cdf() {
        for z in [-3.0, -0.5, 0.0, 0.5, 2.0, 5.0, 8.0] {
            let sf = normal_sf(z);
            assert!((sf - (1.0 - normal_cdf(z))).abs() < 1e-12, "z={z}: sf={sf}");
        }
        // Past the point where 1 − Φ(z) rounds to zero, the direct form
        // still resolves the tail.
        assert!(normal_sf(9.0) > 0.0 && normal_sf(9.0) < 1e-18);
    }

    #[test]
    fn log_coeff_grid_path_is_bit_consistent_with_legacy_loop() {
        // Satellite regression for the m·C(n, k) overflow: re-implement
        // the historical multiplicative coefficient and verify the
        // log-space Simpson path agrees to ~1e-12 relative wherever the
        // legacy coefficient is finite, while the legacy routing itself
        // (n ≤ 512) stays byte-for-byte what the fixtures pinned.
        let grid = LogNormalGrid::new(-1.5, 1.1);
        for (n, k) in [(3usize, 1usize), (64, 2), (200, 100), (512, 256)] {
            let legacy = {
                let m = n - k;
                let mut coeff = m as f64;
                for j in 1..=k {
                    coeff *= (n - j + 1) as f64 / j as f64;
                }
                coeff
            };
            assert!(legacy.is_finite(), "fixture must stay in range");
            let exact = grid.expected_order_stat(n, k);
            let log_form = grid.expected_order_stat_log_coeff(n, k);
            assert!(
                ((exact - log_form) / exact).abs() < 1e-10,
                "n={n} k={k}: loop {exact} vs log {log_form}"
            );
        }
        // The legacy coefficient overflows just past the switch point —
        // the reason the routing exists.
        let mut coeff = 512.0f64;
        for j in 1..=512usize {
            coeff *= (1024 - j + 1) as f64 / j as f64;
        }
        assert!(
            !coeff.is_finite(),
            "C(1024, 512)·512 must overflow f64, got {coeff}"
        );
        assert!(grid.expected_order_stat(1024, 512).is_finite());
    }

    #[test]
    fn exponential_batch_and_per_call_agree_across_the_crossover() {
        // The running-sum → expansion seam sits inside this table; batch
        // and per-call entries must stay bit-identical through it.
        let m = StragglerModel::ExponentialTail { mean: 0.4 };
        let n_max = EXP_ASYMPTOTIC_MIN_N + 40;
        for drop_k in [0usize, 3] {
            let table = m.expected_order_stats(n_max, drop_k);
            for n in (EXP_ASYMPTOTIC_MIN_N - 3)..=n_max {
                let direct = m.expected_order_stat(n, drop_k.min(n - 1));
                assert_eq!(
                    table[n - 1].to_bits(),
                    direct.to_bits(),
                    "n={n}, drop_k={drop_k}"
                );
            }
        }
    }

    #[test]
    fn lognormal_asymptotic_is_continuous_at_the_seam() {
        // Adjacent n on either side of the crossover: the jump between
        // regimes must be far below the physical growth of E[max].
        let m = StragglerModel::LogNormalTail {
            mu: 0.0,
            sigma: 1.0,
        };
        let below = m.expected_order_stat(LOGNORMAL_ASYMPTOTIC_MIN_N, 0);
        let above = m.expected_order_stat(LOGNORMAL_ASYMPTOTIC_MIN_N + 1, 0);
        assert!(above > below, "E[max] grows with n: {below} vs {above}");
        assert!(
            (above - below) / below < 1e-3,
            "seam jump too large: {below} -> {above}"
        );
        // And with drop-k (mid-rank coefficient through ln_gamma).
        let below_k = m.expected_order_stat(LOGNORMAL_ASYMPTOTIC_MIN_N, 5);
        let above_k = m.expected_order_stat(LOGNORMAL_ASYMPTOTIC_MIN_N + 1, 5);
        assert!(
            ((above_k - below_k) / below_k).abs() < 1e-3,
            "drop-k seam jump too large: {below_k} -> {above_k}"
        );
    }

    #[test]
    fn warm_prunes_dominated_passes() {
        let cache = OrderStatCache::new(StragglerModel::ExponentialTail { mean: 1.0 });
        // Narrow pass then a wider one for the same drop_k: superseded.
        cache.warm(8, 0);
        cache.warm(32, 0);
        assert_eq!(cache.warmed_passes(), 1, "wider pass absorbs narrower");
        // Re-warming covered spans is a no-op.
        cache.warm(8, 0);
        cache.warm(32, 0);
        assert_eq!(cache.warmed_passes(), 1);
        // Every drop_k ≥ n_max − 1 clamps to the same key set; repeated
        // warms across 50 nominal drop-k values must stay bounded by the
        // distinct effective regimes (0, 1, 2, and "all clamped").
        let cache = OrderStatCache::new(StragglerModel::ExponentialTail { mean: 1.0 });
        for k in 0..50usize {
            cache.warm(4, k);
        }
        assert!(
            cache.warmed_passes() <= 4,
            "50 warms must leave ≤ 4 passes, got {}",
            cache.warmed_passes()
        );
        // And the memo still answers bit-identically after pruning.
        let direct = cache.model().expected_order_stat(4, 2);
        assert_eq!(cache.expected_order_stat(4, 2).to_bits(), direct.to_bits());
    }

    #[test]
    fn log_curves_match_dense_curves_on_the_ladder() {
        let m = StragglerGdModel {
            straggler: StragglerModel::ExponentialTail { mean: 2.0 },
            backup_k: 1,
            ..StragglerGdModel::deterministic(fig2_model())
        };
        let dense = m.strong_curve(1..=64);
        let log = m.strong_curve_log(64, 12);
        for (&n, &t) in log.ns().iter().zip(log.times()) {
            assert_eq!(dense.time_at(n), Some(t), "strong n={n}");
        }
        let dense_w = m.weak_curve(1..=64);
        let log_w = m.weak_curve_log(64, 12);
        for (&n, &t) in log_w.ns().iter().zip(log_w.times()) {
            assert_eq!(dense_w.time_at(n), Some(t), "weak n={n}");
        }
    }

    #[test]
    fn log_planner_agrees_with_dense_planner_at_moderate_scale() {
        let m = StragglerGdModel {
            straggler: StragglerModel::ExponentialTail { mean: 1.0 },
            ..StragglerGdModel::deterministic(fig2_model())
        };
        let pricing = Pricing::hourly(2.0);
        let dense = m.planner(50.0, 256, pricing);
        let log = m.planner_log(50.0, 256, pricing, 24);
        assert_eq!(log.fastest(), dense.fastest());
        assert_eq!(log.cheapest(), dense.cheapest());
    }
}
