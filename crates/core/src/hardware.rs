//! Hardware descriptions: compute nodes, network links and clusters.
//!
//! The paper's framework deliberately needs *only* a hardware specification
//! — no profiling runs. A node is characterised by its peak floating-point
//! rate and an efficiency factor ("we assume that one can reach at most 80 %
//! of the peak FLOPS"); a link by its bandwidth and (optionally) per-message
//! latency. Presets for the exact hardware used in the paper's evaluation
//! are provided in [`presets`].

use crate::units::{BitsPerSec, FlopsRate, Seconds};
use serde::{Deserialize, Serialize};

/// A homogeneous compute node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    /// Peak floating-point rate of the node.
    pub peak: FlopsRate,
    /// Fraction of the peak that real workloads achieve, in `(0, 1]`.
    pub efficiency: f64,
}

impl NodeSpec {
    /// Creates a node spec.
    ///
    /// # Panics
    /// Panics if `efficiency` is not in `(0, 1]`.
    pub fn new(peak: FlopsRate, efficiency: f64) -> Self {
        assert!(
            efficiency > 0.0 && efficiency <= 1.0,
            "efficiency must be in (0, 1], got {efficiency}"
        );
        Self { peak, efficiency }
    }

    /// Effective sustained rate `F = efficiency · peak`, the `F` used in all
    /// of the paper's formulas.
    #[inline]
    pub fn effective(&self) -> FlopsRate {
        self.peak * self.efficiency
    }
}

/// A network link (or the shared communication medium of the cluster).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Sustained bandwidth `B`.
    pub bandwidth: BitsPerSec,
    /// Fixed per-message latency (setup cost). The paper's formulas omit
    /// latency (bandwidth-dominated regime); the simulator can include it.
    pub latency: Seconds,
}

impl LinkSpec {
    /// A link with bandwidth only (zero latency), matching the paper's
    /// bandwidth-dominated communication model.
    pub fn bandwidth_only(bandwidth: BitsPerSec) -> Self {
        Self {
            bandwidth,
            latency: Seconds::zero(),
        }
    }

    /// A link with bandwidth and per-message latency.
    pub fn new(bandwidth: BitsPerSec, latency: Seconds) -> Self {
        Self { bandwidth, latency }
    }
}

/// A homogeneous cluster: `n` identical nodes joined by identical links.
///
/// The number of *workers* is a model input that varies per evaluation
/// point, so `ClusterSpec` intentionally does not store it; it describes
/// what one node and one link look like.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Per-node compute capability.
    pub node: NodeSpec,
    /// Inter-node link capability.
    pub link: LinkSpec,
}

impl ClusterSpec {
    /// Creates a cluster from node and link specs.
    pub fn new(node: NodeSpec, link: LinkSpec) -> Self {
        Self { node, link }
    }

    /// Effective per-node compute rate `F`.
    #[inline]
    pub fn flops(&self) -> FlopsRate {
        self.node.effective()
    }

    /// Link bandwidth `B`.
    #[inline]
    pub fn bandwidth(&self) -> BitsPerSec {
        self.link.bandwidth
    }
}

/// Hardware presets used in the paper's evaluation (Section V).
pub mod presets {
    use super::*;

    /// Intel Xeon E3-1240: 211.2 GFLOPS peak, of which the paper assumes at
    /// most 80 % reachable. In double precision the usable peak is half,
    /// `0.8 · 105.6 · 10⁹` flop/s — the `F` of the Fig 2 experiment.
    pub fn xeon_e3_1240_double() -> NodeSpec {
        NodeSpec::new(FlopsRate::giga(105.6), 0.8)
    }

    /// Intel Xeon E3-1240 in single precision (full 211.2 GFLOPS peak at
    /// 80 % efficiency).
    pub fn xeon_e3_1240_single() -> NodeSpec {
        NodeSpec::new(FlopsRate::giga(211.2), 0.8)
    }

    /// nVidia K40 GPU: 4.28 TFLOPS peak, of which the paper assumes at most
    /// 50 % reachable — the `F` of the Fig 3 experiment.
    pub fn nvidia_k40() -> NodeSpec {
        NodeSpec::new(FlopsRate::tera(4.28), 0.5)
    }

    /// One core of the HP ProLiant DL980 used in the Fig 4 experiment
    /// (80 cores at 1.9 GHz). `F` is factored out of the speedup in the
    /// shared-memory experiment, so only relative rates matter; we charge
    /// 4 flops per cycle as a generic superscalar estimate.
    pub fn dl980_core() -> NodeSpec {
        NodeSpec::new(FlopsRate::giga(1.9 * 4.0), 1.0)
    }

    /// 1 Gbit/s Ethernet, the interconnect of both the Spark cluster (Fig 2)
    /// and the modelled GPU cluster (Fig 3).
    pub fn gigabit_ethernet() -> LinkSpec {
        LinkSpec::bandwidth_only(BitsPerSec::giga(1.0))
    }

    /// Shared memory "link": effectively infinite bandwidth. Used for the
    /// Fig 4 experiment where "communication time complexity is negligible
    /// because all communications happen in the shared memory".
    pub fn shared_memory() -> LinkSpec {
        LinkSpec::bandwidth_only(BitsPerSec::new(f64::INFINITY))
    }

    /// The Fig 2 cluster: Xeon E3-1240 workers on gigabit Ethernet.
    pub fn spark_cluster() -> ClusterSpec {
        ClusterSpec::new(xeon_e3_1240_double(), gigabit_ethernet())
    }

    /// The Fig 3 cluster: K40 GPUs on gigabit Ethernet.
    pub fn gpu_cluster() -> ClusterSpec {
        ClusterSpec::new(nvidia_k40(), gigabit_ethernet())
    }

    /// The Fig 4 machine: DL980 cores over shared memory.
    pub fn dl980() -> ClusterSpec {
        ClusterSpec::new(dl980_core(), shared_memory())
    }
}

#[cfg(test)]
mod tests {
    use super::presets::*;
    use super::*;

    #[test]
    fn effective_rate_applies_efficiency() {
        let node = NodeSpec::new(FlopsRate::giga(100.0), 0.8);
        assert!((node.effective().get() - 80e9).abs() < 1e-3);
    }

    #[test]
    fn xeon_preset_matches_paper_f() {
        // Paper: F = 0.8 · 105.6 · 10⁹ double-precision FLOPS.
        let f = xeon_e3_1240_double().effective();
        assert!((f.get() - 0.8 * 105.6e9).abs() < 1.0);
    }

    #[test]
    fn k40_preset_matches_paper_f() {
        // Paper: 4.28 TFLOPS at most 50 % of peak.
        let f = nvidia_k40().effective();
        assert!((f.get() - 0.5 * 4.28e12).abs() < 1.0);
    }

    #[test]
    fn gigabit_is_1e9() {
        assert_eq!(gigabit_ethernet().bandwidth.get(), 1e9);
    }

    #[test]
    fn shared_memory_is_infinite_bandwidth() {
        assert_eq!(shared_memory().bandwidth.get(), f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "efficiency")]
    fn zero_efficiency_rejected() {
        let _ = NodeSpec::new(FlopsRate::giga(1.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "efficiency")]
    fn over_unity_efficiency_rejected() {
        let _ = NodeSpec::new(FlopsRate::giga(1.0), 1.5);
    }

    #[test]
    fn cluster_accessors() {
        let c = spark_cluster();
        assert_eq!(c.flops(), c.node.effective());
        assert_eq!(c.bandwidth().get(), 1e9);
    }
}
