//! Hardware descriptions: compute nodes, network links and clusters.
//!
//! The paper's framework deliberately needs *only* a hardware specification
//! — no profiling runs. A node is characterised by its peak floating-point
//! rate and an efficiency factor ("we assume that one can reach at most 80 %
//! of the peak FLOPS"); a link by its bandwidth and (optionally) per-message
//! latency. Presets for the exact hardware used in the paper's evaluation
//! are provided in [`presets`].

use crate::units::{BitsPerSec, FlopsRate, Seconds};
use serde::{Deserialize, Serialize};

/// A homogeneous compute node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    /// Peak floating-point rate of the node.
    pub peak: FlopsRate,
    /// Fraction of the peak that real workloads achieve, in `(0, 1]`.
    pub efficiency: f64,
}

impl NodeSpec {
    /// Creates a node spec.
    ///
    /// # Panics
    /// Panics if `efficiency` is not in `(0, 1]`.
    pub fn new(peak: FlopsRate, efficiency: f64) -> Self {
        assert!(
            efficiency > 0.0 && efficiency <= 1.0,
            "efficiency must be in (0, 1], got {efficiency}"
        );
        Self { peak, efficiency }
    }

    /// Effective sustained rate `F = efficiency · peak`, the `F` used in all
    /// of the paper's formulas.
    #[inline]
    pub fn effective(&self) -> FlopsRate {
        self.peak * self.efficiency
    }
}

/// A network link (or the shared communication medium of the cluster).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Sustained bandwidth `B`.
    pub bandwidth: BitsPerSec,
    /// Fixed per-message latency (setup cost). The paper's formulas omit
    /// latency (bandwidth-dominated regime); the simulator can include it.
    pub latency: Seconds,
}

impl LinkSpec {
    /// A link with bandwidth only (zero latency), matching the paper's
    /// bandwidth-dominated communication model.
    pub fn bandwidth_only(bandwidth: BitsPerSec) -> Self {
        Self {
            bandwidth,
            latency: Seconds::zero(),
        }
    }

    /// A link with bandwidth and per-message latency.
    pub fn new(bandwidth: BitsPerSec, latency: Seconds) -> Self {
        Self { bandwidth, latency }
    }
}

/// Two-tier rack topology: workers are grouped into racks of
/// `nodes_per_rack`, joined inside a rack by the cluster's base link and
/// between racks by a (typically slower, higher-latency) `uplink`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RackSpec {
    /// Workers per rack (the intra-rack collective's fan-in).
    pub nodes_per_rack: usize,
    /// Inter-rack link capability (top-of-rack uplink).
    pub uplink: LinkSpec,
}

impl RackSpec {
    /// Creates a rack spec.
    ///
    /// # Panics
    /// Panics when `nodes_per_rack == 0`.
    pub fn new(nodes_per_rack: usize, uplink: LinkSpec) -> Self {
        assert!(nodes_per_rack >= 1, "racks must hold at least one node");
        Self {
            nodes_per_rack,
            uplink,
        }
    }
}

/// A homogeneous cluster: `n` identical nodes joined by identical links —
/// optionally arranged in a two-tier rack topology ([`RackSpec`]).
///
/// The number of *workers* is a model input that varies per evaluation
/// point, so `ClusterSpec` intentionally does not store it; it describes
/// what one node and one link look like. With a rack topology, `link` is
/// the *intra-rack* link and `rack.uplink` joins the racks.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Per-node compute capability.
    pub node: NodeSpec,
    /// Inter-node link capability (intra-rack when `rack` is set).
    pub link: LinkSpec,
    /// Optional two-tier rack topology.
    pub rack: Option<RackSpec>,
}

impl ClusterSpec {
    /// Creates a flat (single-tier) cluster from node and link specs.
    pub fn new(node: NodeSpec, link: LinkSpec) -> Self {
        Self {
            node,
            link,
            rack: None,
        }
    }

    /// Arranges the cluster in racks: `link` becomes the intra-rack link
    /// and `rack.uplink` joins the racks.
    #[must_use]
    pub fn with_racks(mut self, rack: RackSpec) -> Self {
        self.rack = Some(rack);
        self
    }

    /// Effective per-node compute rate `F`.
    #[inline]
    pub fn flops(&self) -> FlopsRate {
        self.node.effective()
    }

    /// Link bandwidth `B` (intra-rack when a rack topology is set).
    #[inline]
    pub fn bandwidth(&self) -> BitsPerSec {
        self.link.bandwidth
    }

    /// The rack index of a worker (`1..=n`; the master, node 0, lives in
    /// rack 0). Flat clusters are one big rack.
    #[inline]
    pub fn rack_of(&self, node: usize) -> usize {
        match (node, self.rack) {
            (0, _) | (_, None) => 0,
            (w, Some(r)) => (w - 1) / r.nodes_per_rack,
        }
    }

    /// Number of racks occupied by `n` workers (1 for a flat cluster).
    #[inline]
    pub fn racks_for(&self, n: usize) -> usize {
        match self.rack {
            None => 1,
            Some(r) => n.div_ceil(r.nodes_per_rack).max(1),
        }
    }

    /// The link joining two nodes: the base link inside a rack, the rack
    /// uplink across racks.
    #[inline]
    pub fn link_between(&self, a: usize, b: usize) -> LinkSpec {
        match self.rack {
            Some(r) if self.rack_of(a) != self.rack_of(b) => r.uplink,
            _ => self.link,
        }
    }
}

/// Compute-speed heterogeneity across the workers of a cluster.
///
/// The paper's framework assumes `n` *identical* nodes; real fleets mix
/// hardware generations and noisy neighbours. A `Heterogeneity` value maps
/// a cluster and a worker count to per-worker speed multipliers (1.0 =
/// nominal), consumed by the straggler-aware models
/// ([`crate::straggler`]) and by the discrete-event simulator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Heterogeneity {
    /// All workers run at nominal speed (the paper's assumption).
    Uniform,
    /// `count` of the workers (the first ones) run at `factor`× nominal
    /// speed — a batch of older or throttled machines.
    SlowWorkers {
        /// How many workers are degraded (clamped to `n`).
        count: usize,
        /// Their speed multiplier, in `(0, ∞)`; `0.5` = half speed.
        factor: f64,
    },
    /// Rack `r` runs at `factor^r` of nominal — generational drift across
    /// racks (rack 0 newest). Needs a [`RackSpec`] topology to be
    /// meaningful; on a flat cluster every worker sits in rack 0 and the
    /// cluster stays homogeneous.
    RackDecay {
        /// Per-rack geometric speed factor, in `(0, ∞)`.
        factor: f64,
    },
}

impl Heterogeneity {
    /// True when every worker runs at nominal speed.
    pub fn is_uniform(&self) -> bool {
        match *self {
            Heterogeneity::Uniform => true,
            Heterogeneity::SlowWorkers { count, factor } => count == 0 || factor == 1.0,
            Heterogeneity::RackDecay { factor } => factor == 1.0,
        }
    }

    /// Per-worker speed multipliers for `n` workers of `cluster`
    /// (`result[w]` multiplies worker `w+1`'s compute rate).
    ///
    /// # Panics
    /// Panics when a speed factor is not positive and finite.
    pub fn speed_factors(&self, cluster: &ClusterSpec, n: usize) -> Vec<f64> {
        let check = |f: f64| {
            assert!(
                f > 0.0 && f.is_finite(),
                "speed factor must be positive and finite, got {f}"
            );
            f
        };
        match *self {
            Heterogeneity::Uniform => vec![1.0; n],
            Heterogeneity::SlowWorkers { count, factor } => {
                check(factor);
                (0..n)
                    .map(|w| if w < count { factor } else { 1.0 })
                    .collect()
            }
            Heterogeneity::RackDecay { factor } => {
                check(factor);
                (1..=n)
                    .map(|w| check(factor.powi(cluster.rack_of(w) as i32)))
                    .collect()
            }
        }
    }
}

/// Hardware presets used in the paper's evaluation (Section V).
pub mod presets {
    use super::*;

    /// Intel Xeon E3-1240: 211.2 GFLOPS peak, of which the paper assumes at
    /// most 80 % reachable. In double precision the usable peak is half,
    /// `0.8 · 105.6 · 10⁹` flop/s — the `F` of the Fig 2 experiment.
    pub fn xeon_e3_1240_double() -> NodeSpec {
        NodeSpec::new(FlopsRate::giga(105.6), 0.8)
    }

    /// Intel Xeon E3-1240 in single precision (full 211.2 GFLOPS peak at
    /// 80 % efficiency).
    pub fn xeon_e3_1240_single() -> NodeSpec {
        NodeSpec::new(FlopsRate::giga(211.2), 0.8)
    }

    /// nVidia K40 GPU: 4.28 TFLOPS peak, of which the paper assumes at most
    /// 50 % reachable — the `F` of the Fig 3 experiment.
    pub fn nvidia_k40() -> NodeSpec {
        NodeSpec::new(FlopsRate::tera(4.28), 0.5)
    }

    /// One core of the HP ProLiant DL980 used in the Fig 4 experiment
    /// (80 cores at 1.9 GHz). `F` is factored out of the speedup in the
    /// shared-memory experiment, so only relative rates matter; we charge
    /// 4 flops per cycle as a generic superscalar estimate.
    pub fn dl980_core() -> NodeSpec {
        NodeSpec::new(FlopsRate::giga(1.9 * 4.0), 1.0)
    }

    /// 1 Gbit/s Ethernet, the interconnect of both the Spark cluster (Fig 2)
    /// and the modelled GPU cluster (Fig 3).
    pub fn gigabit_ethernet() -> LinkSpec {
        LinkSpec::bandwidth_only(BitsPerSec::giga(1.0))
    }

    /// Shared memory "link": effectively infinite bandwidth. Used for the
    /// Fig 4 experiment where "communication time complexity is negligible
    /// because all communications happen in the shared memory".
    pub fn shared_memory() -> LinkSpec {
        LinkSpec::bandwidth_only(BitsPerSec::new(f64::INFINITY))
    }

    /// The Fig 2 cluster: Xeon E3-1240 workers on gigabit Ethernet.
    pub fn spark_cluster() -> ClusterSpec {
        ClusterSpec::new(xeon_e3_1240_double(), gigabit_ethernet())
    }

    /// The Fig 3 cluster: K40 GPUs on gigabit Ethernet.
    pub fn gpu_cluster() -> ClusterSpec {
        ClusterSpec::new(nvidia_k40(), gigabit_ethernet())
    }

    /// The Fig 4 machine: DL980 cores over shared memory.
    pub fn dl980() -> ClusterSpec {
        ClusterSpec::new(dl980_core(), shared_memory())
    }

    /// A modern two-tier datacenter pod: 10 Gbit/s intra-rack links with
    /// 5 µs per-message latency, racks of 16 nodes, and a 1 Gbit/s
    /// top-of-rack uplink with 50 µs latency. This is the regime the
    /// paper's flat bandwidth-only models cannot describe: small messages
    /// are latency-bound and cross-rack hops cost an order of magnitude
    /// more than local ones.
    pub fn two_tier_pod() -> ClusterSpec {
        ClusterSpec::new(
            xeon_e3_1240_double(),
            LinkSpec::new(BitsPerSec::giga(10.0), Seconds::from_micros(5.0)),
        )
        .with_racks(RackSpec::new(
            16,
            LinkSpec::new(BitsPerSec::giga(1.0), Seconds::from_micros(50.0)),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::presets::*;
    use super::*;

    #[test]
    fn effective_rate_applies_efficiency() {
        let node = NodeSpec::new(FlopsRate::giga(100.0), 0.8);
        assert!((node.effective().get() - 80e9).abs() < 1e-3);
    }

    #[test]
    fn xeon_preset_matches_paper_f() {
        // Paper: F = 0.8 · 105.6 · 10⁹ double-precision FLOPS.
        let f = xeon_e3_1240_double().effective();
        assert!((f.get() - 0.8 * 105.6e9).abs() < 1.0);
    }

    #[test]
    fn k40_preset_matches_paper_f() {
        // Paper: 4.28 TFLOPS at most 50 % of peak.
        let f = nvidia_k40().effective();
        assert!((f.get() - 0.5 * 4.28e12).abs() < 1.0);
    }

    #[test]
    fn gigabit_is_1e9() {
        assert_eq!(gigabit_ethernet().bandwidth.get(), 1e9);
    }

    #[test]
    fn shared_memory_is_infinite_bandwidth() {
        assert_eq!(shared_memory().bandwidth.get(), f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "efficiency")]
    fn zero_efficiency_rejected() {
        let _ = NodeSpec::new(FlopsRate::giga(1.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "efficiency")]
    fn over_unity_efficiency_rejected() {
        let _ = NodeSpec::new(FlopsRate::giga(1.0), 1.5);
    }

    #[test]
    fn cluster_accessors() {
        let c = spark_cluster();
        assert_eq!(c.flops(), c.node.effective());
        assert_eq!(c.bandwidth().get(), 1e9);
    }

    #[test]
    fn flat_cluster_is_one_rack() {
        let c = spark_cluster();
        assert_eq!(c.rack_of(0), 0);
        assert_eq!(c.rack_of(37), 0);
        assert_eq!(c.racks_for(100), 1);
        assert_eq!(c.link_between(1, 99), c.link);
    }

    #[test]
    fn rack_assignment_groups_workers() {
        let c = two_tier_pod();
        // Workers 1..=16 in rack 0, 17..=32 in rack 1, master with rack 0.
        assert_eq!(c.rack_of(1), 0);
        assert_eq!(c.rack_of(16), 0);
        assert_eq!(c.rack_of(17), 1);
        assert_eq!(c.rack_of(0), 0);
        assert_eq!(c.racks_for(16), 1);
        assert_eq!(c.racks_for(17), 2);
        assert_eq!(c.racks_for(64), 4);
    }

    #[test]
    fn link_selection_follows_rack_boundary() {
        let c = two_tier_pod();
        let rack = c.rack.unwrap();
        assert_eq!(c.link_between(1, 16), c.link, "same rack: intra link");
        assert_eq!(c.link_between(1, 17), rack.uplink, "cross rack: uplink");
        assert_eq!(c.link_between(17, 18), c.link);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_rack_rejected() {
        let _ = RackSpec::new(0, gigabit_ethernet());
    }

    #[test]
    fn uniform_heterogeneity_is_all_ones() {
        let c = spark_cluster();
        assert!(Heterogeneity::Uniform.is_uniform());
        assert_eq!(Heterogeneity::Uniform.speed_factors(&c, 4), vec![1.0; 4]);
    }

    #[test]
    fn slow_workers_degrade_a_prefix() {
        let c = spark_cluster();
        let h = Heterogeneity::SlowWorkers {
            count: 2,
            factor: 0.5,
        };
        assert!(!h.is_uniform());
        assert_eq!(h.speed_factors(&c, 4), vec![0.5, 0.5, 1.0, 1.0]);
        // Count clamps to n.
        assert_eq!(h.speed_factors(&c, 1), vec![0.5]);
        // Degenerate parameters are uniform.
        assert!(Heterogeneity::SlowWorkers {
            count: 0,
            factor: 0.5
        }
        .is_uniform());
        assert!(Heterogeneity::SlowWorkers {
            count: 3,
            factor: 1.0
        }
        .is_uniform());
    }

    #[test]
    fn rack_decay_follows_rack_assignment() {
        let c = two_tier_pod(); // racks of 16
        let h = Heterogeneity::RackDecay { factor: 0.8 };
        let f = h.speed_factors(&c, 33);
        assert_eq!(f[0], 1.0, "worker 1 in rack 0");
        assert_eq!(f[15], 1.0, "worker 16 in rack 0");
        assert!((f[16] - 0.8).abs() < 1e-12, "worker 17 in rack 1");
        assert!((f[32] - 0.64).abs() < 1e-12, "worker 33 in rack 2");
        // Flat cluster: everyone in rack 0, still homogeneous.
        assert_eq!(h.speed_factors(&spark_cluster(), 8), vec![1.0; 8]);
    }

    #[test]
    #[should_panic(expected = "speed factor")]
    fn zero_speed_heterogeneity_rejected() {
        let h = Heterogeneity::SlowWorkers {
            count: 1,
            factor: 0.0,
        };
        let _ = h.speed_factors(&spark_cluster(), 2);
    }
}
