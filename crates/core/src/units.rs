//! Strongly-typed physical quantities used throughout the modeling framework.
//!
//! All models in this crate operate on wall-clock time ([`Seconds`]),
//! computation volume ([`FlopCount`]), computation rate ([`FlopsRate`]),
//! message volume ([`Bits`] / [`Bytes`]) and network rate ([`BitsPerSec`]).
//! Keeping these as newtypes (rather than bare `f64`s) prevents the classic
//! "seconds where you meant gigaflops" class of bug in cost formulas, while
//! the arithmetic impls below keep the formulas as readable as the paper's:
//!
//! ```
//! use mlscale_core::units::*;
//! let work = FlopCount::new(6.0 * 12e6 * 60_000.0); // 6·W·S madds for Fig 2
//! let rate = FlopsRate::giga(105.6) * 0.8;          // 80 % of peak
//! let t = work / rate;
//! assert!(t.as_secs() > 0.0);
//! ```

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

macro_rules! quantity {
    ($(#[$meta:meta])* $name:ident, $unit:expr) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
        pub struct $name(f64);

        impl $name {
            /// Wraps a raw value in this unit.
            ///
            /// # Panics
            /// Panics if `v` is NaN or negative: all quantities in the
            /// framework are non-negative by construction.
            #[inline]
            pub fn new(v: f64) -> Self {
                assert!(v.is_finite() || v == f64::INFINITY, "{} must not be NaN", $unit);
                assert!(v >= 0.0, "{} must be non-negative, got {v}", $unit);
                Self(v)
            }

            /// Zero quantity.
            #[inline]
            pub const fn zero() -> Self {
                Self(0.0)
            }

            /// Raw value in the base unit.
            #[inline]
            pub const fn get(self) -> f64 {
                self.0
            }

            /// True when the quantity is exactly zero.
            #[inline]
            pub fn is_zero(self) -> bool {
                self.0 == 0.0
            }

            /// Element-wise maximum.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Element-wise minimum.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            /// Saturating at zero: quantities cannot go negative.
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self((self.0 - rhs.0).max(0.0))
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self::new(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name::new(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self::new(self.0 / rhs)
            }
        }

        impl Div for $name {
            type Output = f64;
            /// Ratio of two like quantities is dimensionless.
            #[inline]
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl std::iter::Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                iter.fold(Self::zero(), Add::add)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{} {}", self.0, $unit)
            }
        }
    };
}

quantity!(
    /// Wall-clock time in seconds.
    Seconds,
    "s"
);
quantity!(
    /// A volume of computation, counted in floating-point operations.
    ///
    /// The paper counts "multiply-add" operations; we follow the same
    /// convention (one multiply-add = one unit here) and note it wherever a
    /// formula depends on it.
    FlopCount,
    "flop"
);
quantity!(
    /// A computation rate in floating-point operations per second.
    FlopsRate,
    "flop/s"
);
quantity!(
    /// A volume of traffic in bits.
    Bits,
    "bit"
);
quantity!(
    /// A network transfer rate in bits per second.
    BitsPerSec,
    "bit/s"
);

impl Seconds {
    /// Raw value in seconds (alias of [`Self::get`] with a clearer name).
    #[inline]
    pub const fn as_secs(self) -> f64 {
        self.0
    }

    /// Construct from milliseconds.
    #[inline]
    pub fn from_millis(ms: f64) -> Self {
        Self::new(ms * 1e-3)
    }

    /// Construct from microseconds.
    #[inline]
    pub fn from_micros(us: f64) -> Self {
        Self::new(us * 1e-6)
    }
}

impl FlopCount {
    /// `x · 10⁶` operations.
    #[inline]
    pub fn mega(x: f64) -> Self {
        Self::new(x * 1e6)
    }

    /// `x · 10⁹` operations.
    #[inline]
    pub fn giga(x: f64) -> Self {
        Self::new(x * 1e9)
    }
}

impl FlopsRate {
    /// `x · 10⁹` flop/s.
    #[inline]
    pub fn giga(x: f64) -> Self {
        Self::new(x * 1e9)
    }

    /// `x · 10¹²` flop/s.
    #[inline]
    pub fn tera(x: f64) -> Self {
        Self::new(x * 1e12)
    }
}

impl Bits {
    /// Construct from a byte count.
    #[inline]
    pub fn from_bytes(bytes: f64) -> Self {
        Self::new(bytes * 8.0)
    }

    /// Volume of `count` parameters of `bits_per_param` bits each
    /// (the paper uses 32- and 64-bit parameters).
    #[inline]
    pub fn params(count: f64, bits_per_param: u32) -> Self {
        Self::new(count * f64::from(bits_per_param))
    }

    /// Value in bytes.
    #[inline]
    pub fn as_bytes(self) -> f64 {
        self.0 / 8.0
    }

    /// `x · 10⁶` bits.
    #[inline]
    pub fn mega(x: f64) -> Self {
        Self::new(x * 1e6)
    }

    /// `x · 10⁹` bits.
    #[inline]
    pub fn giga(x: f64) -> Self {
        Self::new(x * 1e9)
    }
}

impl BitsPerSec {
    /// `x · 10⁶` bit/s.
    #[inline]
    pub fn mega(x: f64) -> Self {
        Self::new(x * 1e6)
    }

    /// `x · 10⁹` bit/s (e.g. gigabit Ethernet = `BitsPerSec::giga(1.0)`).
    #[inline]
    pub fn giga(x: f64) -> Self {
        Self::new(x * 1e9)
    }
}

impl Div<FlopsRate> for FlopCount {
    type Output = Seconds;
    /// Time to execute a volume of work at a given rate.
    #[inline]
    fn div(self, rate: FlopsRate) -> Seconds {
        assert!(rate.0 > 0.0, "division by zero flop rate");
        Seconds::new(self.0 / rate.0)
    }
}

impl Div<BitsPerSec> for Bits {
    type Output = Seconds;
    /// Time to transfer a volume of traffic at a given bandwidth.
    #[inline]
    fn div(self, bw: BitsPerSec) -> Seconds {
        assert!(bw.0 > 0.0, "division by zero bandwidth");
        Seconds::new(self.0 / bw.0)
    }
}

impl Mul<Seconds> for FlopsRate {
    type Output = FlopCount;
    /// Work performed at a rate over a duration.
    #[inline]
    fn mul(self, t: Seconds) -> FlopCount {
        FlopCount::new(self.0 * t.0)
    }
}

impl Mul<Seconds> for BitsPerSec {
    type Output = Bits;
    /// Traffic transferred at a rate over a duration.
    #[inline]
    fn mul(self, t: Seconds) -> Bits {
        Bits::new(self.0 * t.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flops_over_rate_gives_seconds() {
        let t = FlopCount::giga(2.0) / FlopsRate::giga(1.0);
        assert!((t.as_secs() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn bits_over_bandwidth_gives_seconds() {
        let t = Bits::giga(8.0) / BitsPerSec::giga(1.0);
        assert!((t.as_secs() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn param_volume_matches_paper_convention() {
        // 12e6 64-bit parameters (Fig 2 configuration).
        let v = Bits::params(12e6, 64);
        assert_eq!(v.get(), 64.0 * 12e6);
        assert_eq!(v.as_bytes(), 8.0 * 12e6);
    }

    #[test]
    fn subtraction_saturates_at_zero() {
        let a = Seconds::new(1.0);
        let b = Seconds::new(2.0);
        assert_eq!((a - b).as_secs(), 0.0);
    }

    #[test]
    fn sum_of_seconds() {
        let total: Seconds = (1..=4).map(|i| Seconds::new(f64::from(i))).sum();
        assert_eq!(total.as_secs(), 10.0);
    }

    #[test]
    fn rate_times_time_roundtrip() {
        let rate = FlopsRate::giga(3.0);
        let t = Seconds::new(0.5);
        let work = rate * t;
        assert!((work / rate).as_secs() - 0.5 < 1e-12);
    }

    #[test]
    fn scalar_multiplication_both_sides() {
        let s = Seconds::new(2.0);
        assert_eq!((s * 3.0).as_secs(), 6.0);
        assert_eq!((3.0 * s).as_secs(), 6.0);
    }

    #[test]
    fn display_includes_unit() {
        assert_eq!(format!("{}", Seconds::new(1.5)), "1.5 s");
        assert_eq!(format!("{}", Bits::new(8.0)), "8 bit");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_quantity_panics() {
        let _ = Seconds::new(-1.0);
    }

    #[test]
    fn min_max() {
        let a = Seconds::new(1.0);
        let b = Seconds::new(2.0);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn from_millis_micros() {
        assert!((Seconds::from_millis(1.0).as_secs() - 1e-3).abs() < 1e-15);
        assert!((Seconds::from_micros(1.0).as_secs() - 1e-6).abs() < 1e-15);
    }
}
