//! BSP supersteps and whole-algorithm time models.
//!
//! The paper assumes the algorithm "is implemented using the bulk
//! synchronous parallel (BSP) framework, comprising a series of supersteps.
//! Each superstep is a sequence of concurrent computation and communication
//! steps with a synchronization barrier at the end. … The time complexity of
//! a superstep is determined as the sum of the two terms, since computation
//! and communication steps do not overlap."

use crate::comm::CommModel;
use crate::comp::CompModel;
use crate::units::Seconds;

/// One BSP superstep: a computation phase followed by a (non-overlapping)
/// communication phase. The synchronisation barrier is "implicitly included
/// in the computation" (paper, Section III).
pub struct Superstep {
    /// Computation phase model (`t_cp`).
    pub comp: Box<dyn CompModel>,
    /// Communication phase model (`t_cm`).
    pub comm: Box<dyn CommModel>,
}

impl Superstep {
    /// Builds a superstep from computation and communication models.
    pub fn new(comp: impl CompModel + 'static, comm: impl CommModel + 'static) -> Self {
        Self {
            comp: Box::new(comp),
            comm: Box::new(comm),
        }
    }

    /// Superstep time `t(n) = t_cp(n) + t_cm(n)`.
    pub fn time(&self, n: usize) -> Seconds {
        self.comp.time(n) + self.comm.time(n)
    }

    /// Computation share of the superstep at `n` workers, in `[0, 1]`.
    /// Useful for locating the computation/communication crossover.
    pub fn compute_fraction(&self, n: usize) -> f64 {
        let cp = self.comp.time(n).as_secs();
        let cm = self.comm.time(n).as_secs();
        if cp + cm == 0.0 {
            return 1.0;
        }
        cp / (cp + cm)
    }
}

impl std::fmt::Debug for Superstep {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Superstep")
            .field("comp", &self.comp.name())
            .field("comm", &self.comm.name())
            .finish()
    }
}

/// A whole algorithm: a series of supersteps repeated for a number of
/// iterations.
///
/// "We do not account for the initialization time because the number of
/// iterations until convergence is usually large" — the model therefore has
/// no setup term, and because [`crate::speedup`] works with ratios the
/// iteration count usually cancels; it matters only when mixing algorithms.
#[derive(Debug, Default)]
pub struct AlgorithmModel {
    /// Supersteps executed once per iteration, in order.
    pub supersteps: Vec<Superstep>,
    /// Number of iterations until convergence (default 1).
    pub iterations: u64,
    /// Descriptive name for reports.
    pub name: String,
}

impl AlgorithmModel {
    /// New empty algorithm with a single iteration.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            supersteps: Vec::new(),
            iterations: 1,
            name: name.into(),
        }
    }

    /// Appends a superstep.
    #[must_use]
    pub fn with_superstep(mut self, s: Superstep) -> Self {
        self.supersteps.push(s);
        self
    }

    /// Sets the iteration count.
    ///
    /// # Panics
    /// Panics if `iterations` is zero.
    #[must_use]
    pub fn with_iterations(mut self, iterations: u64) -> Self {
        assert!(iterations > 0, "iterations must be positive");
        self.iterations = iterations;
        self
    }

    /// Time of a single iteration at `n` workers.
    pub fn iteration_time(&self, n: usize) -> Seconds {
        self.supersteps.iter().map(|s| s.time(n)).sum()
    }

    /// Total time `iterations · Σ supersteps` at `n` workers.
    pub fn time(&self, n: usize) -> Seconds {
        self.iteration_time(n) * self.iterations as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::{LogTree, NoComm};
    use crate::comp::PerfectlyParallel;
    use crate::units::{Bits, BitsPerSec, FlopCount, FlopsRate};

    fn comp() -> PerfectlyParallel {
        PerfectlyParallel {
            work: FlopCount::giga(8.0),
            rate: FlopsRate::giga(1.0),
        }
    }

    fn comm() -> LogTree {
        LogTree {
            volume: Bits::giga(1.0),
            bandwidth: BitsPerSec::giga(1.0),
        }
    }

    #[test]
    fn superstep_sums_phases() {
        let s = Superstep::new(comp(), comm());
        let n = 4;
        let expected = comp().time(n) + comm().time(n);
        assert_eq!(s.time(n), expected);
    }

    #[test]
    fn compute_fraction_decreases_with_n() {
        let s = Superstep::new(comp(), comm());
        // Computation shrinks as 1/n while communication grows as log n, so
        // the compute fraction must be non-increasing.
        let fracs: Vec<f64> = (1..=32).map(|n| s.compute_fraction(n)).collect();
        for w in fracs.windows(2) {
            assert!(w[1] <= w[0] + 1e-12, "compute fraction must not increase");
        }
        assert_eq!(fracs[0], 1.0, "n=1 has no communication");
    }

    #[test]
    fn compute_fraction_all_zero_is_one() {
        let s = Superstep::new(
            PerfectlyParallel {
                work: FlopCount::zero(),
                rate: FlopsRate::giga(1.0),
            },
            NoComm,
        );
        assert_eq!(s.compute_fraction(5), 1.0);
    }

    #[test]
    fn algorithm_multiplies_iterations() {
        let a = AlgorithmModel::new("gd")
            .with_superstep(Superstep::new(comp(), comm()))
            .with_iterations(100);
        let n = 4;
        assert_eq!(a.time(n), a.iteration_time(n) * 100.0);
    }

    #[test]
    fn multiple_supersteps_sum() {
        let a = AlgorithmModel::new("two-step")
            .with_superstep(Superstep::new(comp(), NoComm))
            .with_superstep(Superstep::new(comp(), comm()));
        let n = 2;
        let expected = comp().time(n) + comp().time(n) + comm().time(n);
        assert_eq!(a.iteration_time(n), expected);
    }

    #[test]
    #[should_panic(expected = "iterations")]
    fn zero_iterations_rejected() {
        let _ = AlgorithmModel::new("bad").with_iterations(0);
    }

    #[test]
    fn debug_formats() {
        let s = Superstep::new(comp(), comm());
        let d = format!("{s:?}");
        assert!(d.contains("perfectly-parallel"));
        assert!(d.contains("log-tree"));
    }
}
