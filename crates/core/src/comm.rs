//! Communication time-complexity models `t_cm = f_cm(M, n)`.
//!
//! The shape of `f_cm` depends on the topology of the communication medium
//! and on the collective pattern the framework uses to move `M` bits among
//! `n` workers. The paper contrasts:
//!
//! * **linear** communication — the master exchanges with every worker in
//!   turn, `t ∝ M·n` (the model of Sparks et al. that the paper criticises:
//!   it permits only *finite* weak scaling);
//! * **logarithmic / tree** communication — workers form a binary tree,
//!   `t ∝ M·log₂ n` (allows *infinite* weak scaling);
//! * **Spark's actual mechanism** (Fig 2) — torrent-like broadcast
//!   (`log₂ n` rounds) plus a two-wave `treeAggregate` whose waves touch
//!   `⌈√n⌉` peers each.
//!
//! Every model implements [`CommModel`]; composites are built with
//! [`Composite`] / [`Scaled`].

use crate::units::{Bits, BitsPerSec, Seconds};
use serde::{Deserialize, Serialize};

/// A communication time-complexity model: time to move a message volume
/// among `n` workers.
pub trait CommModel: std::fmt::Debug + Send + Sync {
    /// Time for the collective to complete with `n` workers.
    ///
    /// `n == 1` must return zero for any model: a single worker has nobody
    /// to talk to (the paper's `t(1)` contains no communication term).
    fn time(&self, n: usize) -> Seconds;

    /// Human-readable name used in reports.
    fn name(&self) -> &'static str;
}

/// No communication at all (e.g. shared-memory experiments where the paper
/// assumes `t_cm` is negligible).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct NoComm;

impl CommModel for NoComm {
    fn time(&self, _n: usize) -> Seconds {
        Seconds::zero()
    }

    fn name(&self) -> &'static str {
        "none"
    }
}

/// Linear (flat / sequential) collective: the master exchanges `volume`
/// with each of the `n` workers one after another: `t = n · M/B`.
///
/// This is the communication architecture implicitly assumed by
/// Sparks et al. [9]; the paper notes it is "inaccurate for all-reduce …
/// and other communication paradigms".
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Linear {
    /// Volume exchanged with each worker.
    pub volume: Bits,
    /// Link bandwidth.
    pub bandwidth: BitsPerSec,
}

impl CommModel for Linear {
    fn time(&self, n: usize) -> Seconds {
        if n <= 1 {
            return Seconds::zero();
        }
        (self.volume / self.bandwidth) * n as f64
    }

    fn name(&self) -> &'static str {
        "linear"
    }
}

/// Tree (logarithmic) collective: `t = M/B · log₂ n`.
///
/// This is the paper's recommended organisation for gradient broadcast and
/// aggregation ("both communications can be organized as a tree in order to
/// reduce their time complexity"), and the model used for the Fig 3 GPU
/// cluster ("we assume that gradient aggregation uses logarithmic model of
/// communication").
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LogTree {
    /// Volume moved along each tree level.
    pub volume: Bits,
    /// Link bandwidth.
    pub bandwidth: BitsPerSec,
}

impl CommModel for LogTree {
    fn time(&self, n: usize) -> Seconds {
        if n <= 1 {
            return Seconds::zero();
        }
        (self.volume / self.bandwidth) * (n as f64).log2()
    }

    fn name(&self) -> &'static str {
        "log-tree"
    }
}

/// Spark's torrent-like broadcast of the model parameters: the driver splits
/// the payload into blocks that workers re-share, completing in about
/// `log₂ n` bandwidth-limited rounds — same asymptotic shape as [`LogTree`].
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TorrentBroadcast {
    /// Broadcast payload.
    pub volume: Bits,
    /// Link bandwidth.
    pub bandwidth: BitsPerSec,
}

impl CommModel for TorrentBroadcast {
    fn time(&self, n: usize) -> Seconds {
        if n <= 1 {
            return Seconds::zero();
        }
        (self.volume / self.bandwidth) * (n as f64).log2()
    }

    fn name(&self) -> &'static str {
        "torrent-broadcast"
    }
}

/// Spark's two-wave `treeAggregate`: "aggregation is done in two waves.
/// First wave is done for the square root number of the nodes and the second
/// wave is done among the others" — `t = 2 · M/B · ⌈√n⌉`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TwoWaveAggregation {
    /// Per-worker gradient payload.
    pub volume: Bits,
    /// Link bandwidth.
    pub bandwidth: BitsPerSec,
}

impl TwoWaveAggregation {
    /// `⌈√n⌉`, the fan-in of each wave.
    #[inline]
    pub fn wave_width(n: usize) -> f64 {
        (n as f64).sqrt().ceil()
    }
}

impl CommModel for TwoWaveAggregation {
    fn time(&self, n: usize) -> Seconds {
        if n <= 1 {
            return Seconds::zero();
        }
        (self.volume / self.bandwidth) * (2.0 * Self::wave_width(n))
    }

    fn name(&self) -> &'static str {
        "two-wave-aggregation"
    }
}

/// The complete Spark gradient exchange of the Fig 2 experiment:
///
/// ```text
/// t_cm = (bits·W/B)·log₂ n  +  2·(bits·W/B)·⌈√n⌉
///        └ torrent broadcast ┘   └ two-wave treeAggregate ┘
/// ```
///
/// with 64-bit parameters in Spark's case.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SparkGradientExchange {
    /// Parameter payload (e.g. `Bits::params(12e6, 64)`).
    pub volume: Bits,
    /// Link bandwidth.
    pub bandwidth: BitsPerSec,
}

impl CommModel for SparkGradientExchange {
    fn time(&self, n: usize) -> Seconds {
        if n <= 1 {
            return Seconds::zero();
        }
        let unit = self.volume / self.bandwidth;
        unit * (n as f64).log2() + unit * (2.0 * TwoWaveAggregation::wave_width(n))
    }

    fn name(&self) -> &'static str {
        "spark-gradient-exchange"
    }
}

/// The paper's generic two-stage tree gradient exchange:
/// `t_cm = 2 · (bits·W/B) · log₂ n` — broadcast down and aggregate up a
/// binary tree. This is the `t_cm^{GD}` of Section IV-A.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TwoStageTreeExchange {
    /// Parameter payload.
    pub volume: Bits,
    /// Link bandwidth.
    pub bandwidth: BitsPerSec,
}

impl CommModel for TwoStageTreeExchange {
    fn time(&self, n: usize) -> Seconds {
        if n <= 1 {
            return Seconds::zero();
        }
        (self.volume / self.bandwidth) * (2.0 * (n as f64).log2())
    }

    fn name(&self) -> &'static str {
        "two-stage-tree"
    }
}

/// Bandwidth-optimal ring all-reduce: `t = 2·(n−1)/n · M/B`. Not used by
/// the paper's exhibits but included as the standard MPI-style alternative
/// the paper alludes to ("all-reduce, which is implemented in MPI").
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RingAllReduce {
    /// Full parameter payload.
    pub volume: Bits,
    /// Link bandwidth.
    pub bandwidth: BitsPerSec,
}

impl CommModel for RingAllReduce {
    fn time(&self, n: usize) -> Seconds {
        if n <= 1 {
            return Seconds::zero();
        }
        (self.volume / self.bandwidth) * (2.0 * (n as f64 - 1.0) / n as f64)
    }

    fn name(&self) -> &'static str {
        "ring-all-reduce"
    }
}

/// Latency-aware α–β collective model: `rounds(n)` message rounds, each
/// costing `α + M/B` (the LogP-family refinement of the paper's pure
/// bandwidth model — relevant once messages are small enough that setup
/// latency competes with serialisation).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AlphaBetaTree {
    /// Per-message latency `α`.
    pub latency: Seconds,
    /// Volume per round.
    pub volume: Bits,
    /// Link bandwidth.
    pub bandwidth: BitsPerSec,
}

impl CommModel for AlphaBetaTree {
    fn time(&self, n: usize) -> Seconds {
        if n <= 1 {
            return Seconds::zero();
        }
        let per_round = self.latency + self.volume / self.bandwidth;
        per_round * (n as f64).log2()
    }

    fn name(&self) -> &'static str {
        "alpha-beta-tree"
    }
}

/// Sum of several communication phases executed back to back (BSP phases do
/// not overlap).
#[derive(Debug, Default)]
pub struct Composite {
    phases: Vec<Box<dyn CommModel>>,
}

impl Composite {
    /// Empty composite (zero time).
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a phase.
    #[must_use]
    pub fn with(mut self, phase: impl CommModel + 'static) -> Self {
        self.phases.push(Box::new(phase));
        self
    }

    /// Number of phases.
    pub fn len(&self) -> usize {
        self.phases.len()
    }

    /// True when no phases are present.
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }
}

impl CommModel for Composite {
    fn time(&self, n: usize) -> Seconds {
        self.phases.iter().map(|p| p.time(n)).sum()
    }

    fn name(&self) -> &'static str {
        "composite"
    }
}

/// Scales an inner model by a constant factor (e.g. number of repetitions
/// of a collective inside one superstep).
#[derive(Debug)]
pub struct Scaled<M> {
    /// The wrapped model.
    pub inner: M,
    /// Multiplier applied to the inner model's time.
    pub factor: f64,
}

impl<M: CommModel> CommModel for Scaled<M> {
    fn time(&self, n: usize) -> Seconds {
        self.inner.time(n) * self.factor
    }

    fn name(&self) -> &'static str {
        "scaled"
    }
}

/// An arbitrary closure-backed model for quick experimentation.
pub struct FnComm<F> {
    f: F,
    label: &'static str,
}

impl<F> FnComm<F> {
    /// Wraps `f(n) -> Seconds` as a [`CommModel`].
    pub fn new(label: &'static str, f: F) -> Self {
        Self { f, label }
    }
}

impl<F> std::fmt::Debug for FnComm<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "FnComm({})", self.label)
    }
}

impl<F: Fn(usize) -> Seconds + Send + Sync> CommModel for FnComm<F> {
    fn time(&self, n: usize) -> Seconds {
        if n <= 1 {
            return Seconds::zero();
        }
        (self.f)(n)
    }

    fn name(&self) -> &'static str {
        self.label
    }
}

impl<M: CommModel + ?Sized> CommModel for Box<M> {
    fn time(&self, n: usize) -> Seconds {
        (**self).time(n)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

impl<M: CommModel + ?Sized> CommModel for std::sync::Arc<M> {
    fn time(&self, n: usize) -> Seconds {
        (**self).time(n)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vol() -> Bits {
        Bits::mega(100.0)
    }

    fn bw() -> BitsPerSec {
        BitsPerSec::giga(1.0)
    }

    #[test]
    fn all_models_zero_at_one_worker() {
        let models: Vec<Box<dyn CommModel>> = vec![
            Box::new(NoComm),
            Box::new(Linear {
                volume: vol(),
                bandwidth: bw(),
            }),
            Box::new(LogTree {
                volume: vol(),
                bandwidth: bw(),
            }),
            Box::new(TorrentBroadcast {
                volume: vol(),
                bandwidth: bw(),
            }),
            Box::new(TwoWaveAggregation {
                volume: vol(),
                bandwidth: bw(),
            }),
            Box::new(SparkGradientExchange {
                volume: vol(),
                bandwidth: bw(),
            }),
            Box::new(TwoStageTreeExchange {
                volume: vol(),
                bandwidth: bw(),
            }),
            Box::new(RingAllReduce {
                volume: vol(),
                bandwidth: bw(),
            }),
        ];
        for m in &models {
            assert!(m.time(1).is_zero(), "{} must be zero at n=1", m.name());
        }
    }

    #[test]
    fn linear_grows_linearly() {
        let m = Linear {
            volume: vol(),
            bandwidth: bw(),
        };
        let t4 = m.time(4).as_secs();
        let t8 = m.time(8).as_secs();
        assert!((t8 / t4 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn logtree_grows_logarithmically() {
        let m = LogTree {
            volume: vol(),
            bandwidth: bw(),
        };
        // log2(4)=2, log2(16)=4.
        assert!((m.time(16).as_secs() / m.time(4).as_secs() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn two_wave_uses_ceil_sqrt() {
        let m = TwoWaveAggregation {
            volume: vol(),
            bandwidth: bw(),
        };
        let unit = (vol() / bw()).as_secs();
        // n=9: ceil(sqrt(9)) = 3, so t = 2·3·unit.
        assert!((m.time(9).as_secs() - 6.0 * unit).abs() < 1e-9);
        // n=10: ceil(sqrt(10)) = 4.
        assert!((m.time(10).as_secs() - 8.0 * unit).abs() < 1e-9);
    }

    #[test]
    fn spark_exchange_matches_paper_formula() {
        // Paper Fig 2: t_cm = (64·W/B)·log(n) + 2·(64·W/B)·⌈√n⌉.
        let w = 12e6;
        let volume = Bits::params(w, 64);
        let m = SparkGradientExchange {
            volume,
            bandwidth: bw(),
        };
        let n = 9usize;
        let unit = 64.0 * w / 1e9;
        let expected = unit * (n as f64).log2() + 2.0 * unit * 3.0;
        assert!((m.time(n).as_secs() - expected).abs() < 1e-9);
    }

    #[test]
    fn two_stage_tree_matches_paper_formula() {
        // Paper Section IV-A: t_cm = 2·(32·W/B)·log(n).
        let w = 25e6;
        let m = TwoStageTreeExchange {
            volume: Bits::params(w, 32),
            bandwidth: bw(),
        };
        let n = 32usize;
        let expected = 2.0 * (32.0 * w / 1e9) * (n as f64).log2();
        assert!((m.time(n).as_secs() - expected).abs() < 1e-9);
    }

    #[test]
    fn ring_all_reduce_approaches_2x_volume() {
        let m = RingAllReduce {
            volume: vol(),
            bandwidth: bw(),
        };
        let unit = (vol() / bw()).as_secs();
        let t = m.time(1000).as_secs();
        assert!((t - 2.0 * unit).abs() / (2.0 * unit) < 0.01);
    }

    #[test]
    fn composite_sums_phases() {
        let c = Composite::new()
            .with(LogTree {
                volume: vol(),
                bandwidth: bw(),
            })
            .with(TwoWaveAggregation {
                volume: vol(),
                bandwidth: bw(),
            });
        let expected = LogTree {
            volume: vol(),
            bandwidth: bw(),
        }
        .time(8)
            + TwoWaveAggregation {
                volume: vol(),
                bandwidth: bw(),
            }
            .time(8);
        assert_eq!(c.time(8), expected);
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
    }

    #[test]
    fn scaled_multiplies() {
        let inner = LogTree {
            volume: vol(),
            bandwidth: bw(),
        };
        let s = Scaled { inner, factor: 3.0 };
        assert!((s.time(8).as_secs() - 3.0 * inner.time(8).as_secs()).abs() < 1e-12);
    }

    #[test]
    fn fn_comm_is_zero_at_one() {
        let m = FnComm::new("const", |_n| Seconds::new(5.0));
        assert!(m.time(1).is_zero());
        assert_eq!(m.time(2).as_secs(), 5.0);
    }

    #[test]
    fn alpha_beta_adds_latency_per_round() {
        let m = AlphaBetaTree {
            latency: Seconds::from_millis(1.0),
            volume: vol(),
            bandwidth: bw(),
        };
        let pure = LogTree {
            volume: vol(),
            bandwidth: bw(),
        };
        let n = 16usize;
        let expected = pure.time(n).as_secs() + 0.001 * (n as f64).log2();
        assert!((m.time(n).as_secs() - expected).abs() < 1e-12);
        assert!(m.time(1).is_zero());
    }

    #[test]
    fn alpha_beta_latency_dominates_small_messages() {
        let m = AlphaBetaTree {
            latency: Seconds::from_millis(1.0),
            volume: Bits::new(8.0), // 8 ns of serialisation
            bandwidth: bw(),
        };
        let t = m.time(8).as_secs();
        assert!(
            (t - 0.003).abs() < 1e-6,
            "3 rounds of ~1 ms latency, got {t}"
        );
    }

    #[test]
    fn tree_beats_linear_for_large_n() {
        let lin = Linear {
            volume: vol(),
            bandwidth: bw(),
        };
        let tree = LogTree {
            volume: vol(),
            bandwidth: bw(),
        };
        for n in [4usize, 16, 64, 256] {
            assert!(
                tree.time(n) < lin.time(n),
                "tree should beat linear at n={n}"
            );
        }
    }
}
