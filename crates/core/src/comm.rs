//! Communication time-complexity models `t_cm = f_cm(M, n)`.
//!
//! The shape of `f_cm` depends on the topology of the communication medium
//! and on the collective pattern the framework uses to move `M` bits among
//! `n` workers. The paper contrasts:
//!
//! * **linear** communication — the master exchanges with every worker in
//!   turn, `t ∝ M·n` (the model of Sparks et al. that the paper criticises:
//!   it permits only *finite* weak scaling);
//! * **logarithmic / tree** communication — workers form a binary tree,
//!   `t ∝ M·log₂ n` (allows *infinite* weak scaling);
//! * **Spark's actual mechanism** (Fig 2) — torrent-like broadcast
//!   (`log₂ n` rounds) plus a two-wave `treeAggregate` whose waves touch
//!   `⌈√n⌉` peers each.
//!
//! # The α–β (latency-aware) form
//!
//! The paper's formulas are pure bandwidth terms `t = volume/B · shape(n)`
//! — valid in the bandwidth-dominated regime of its exhibits (megabyte
//! parameter payloads on gigabit Ethernet). Real collectives additionally
//! pay a fixed per-message setup latency `α` on every serialised message
//! round, giving the standard α–β cost of the collective-communication
//! literature:
//!
//! ```text
//! t(n) = rounds(n)·α + volume_terms(n)/B
//! ```
//!
//! Latency dominates once `α > M/B` per round — small gradients, RPC-heavy
//! frameworks, or fast links: at 10 µs latency on 100 Gbit/s, any message
//! under ~125 KB is latency-bound. In that regime the *round count* decides
//! the ordering (ring's `2(n−1)` rounds lose badly to a tree's `2·log₂ n`
//! even though ring moves the least data), which is exactly where the flat
//! bandwidth models mispredict the optimal cluster size.
//!
//! Every model reports its serialised message-round count via
//! [`CommModel::rounds`]; wrap any pure-bandwidth model in [`AlphaBeta`] to
//! add `rounds(n)·α`. [`Hierarchical`] is inherently latency-aware (its
//! two link tiers carry their own `α`s). Composites are built with
//! [`Composite`] / [`Scaled`].

use crate::hardware::{ClusterSpec, LinkSpec};
use crate::units::{Bits, BitsPerSec, Seconds};
use serde::{Deserialize, Serialize};

/// A communication time-complexity model: time to move a message volume
/// among `n` workers.
pub trait CommModel: std::fmt::Debug + Send + Sync {
    /// Time for the collective to complete with `n` workers.
    ///
    /// `n == 1` must return zero for any model: a single worker has nobody
    /// to talk to (the paper's `t(1)` contains no communication term).
    fn time(&self, n: usize) -> Seconds;

    /// Number of serialised message rounds on the collective's critical
    /// path with `n` workers — the multiplier of the per-message latency
    /// `α` in the α–β form `t = rounds·α + volume_terms/B`.
    ///
    /// Defaults to zero (a pure-bandwidth model that ignores latency), so
    /// existing implementations keep compiling; every shipped model
    /// overrides it. Must return zero at `n <= 1`.
    fn rounds(&self, n: usize) -> f64 {
        let _ = n;
        0.0
    }

    /// Human-readable name used in reports.
    fn name(&self) -> &'static str;
}

/// No communication at all (e.g. shared-memory experiments where the paper
/// assumes `t_cm` is negligible).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct NoComm;

impl CommModel for NoComm {
    fn time(&self, _n: usize) -> Seconds {
        Seconds::zero()
    }

    fn rounds(&self, _n: usize) -> f64 {
        0.0
    }

    fn name(&self) -> &'static str {
        "none"
    }
}

/// Linear (flat / sequential) collective: the master exchanges `volume`
/// with each of the `n` workers one after another: `t = n · M/B`.
///
/// This is the communication architecture implicitly assumed by
/// Sparks et al. [9]; the paper notes it is "inaccurate for all-reduce …
/// and other communication paradigms".
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Linear {
    /// Volume exchanged with each worker.
    pub volume: Bits,
    /// Link bandwidth.
    pub bandwidth: BitsPerSec,
}

impl CommModel for Linear {
    fn time(&self, n: usize) -> Seconds {
        if n <= 1 {
            return Seconds::zero();
        }
        (self.volume / self.bandwidth) * n as f64
    }

    fn rounds(&self, n: usize) -> f64 {
        if n <= 1 {
            return 0.0;
        }
        // The master's NIC serialises one message per worker.
        n as f64
    }

    fn name(&self) -> &'static str {
        "linear"
    }
}

/// Tree (logarithmic) collective: `t = M/B · log₂ n`.
///
/// This is the paper's recommended organisation for gradient broadcast and
/// aggregation ("both communications can be organized as a tree in order to
/// reduce their time complexity"), and the model used for the Fig 3 GPU
/// cluster ("we assume that gradient aggregation uses logarithmic model of
/// communication").
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LogTree {
    /// Volume moved along each tree level.
    pub volume: Bits,
    /// Link bandwidth.
    pub bandwidth: BitsPerSec,
}

impl CommModel for LogTree {
    fn time(&self, n: usize) -> Seconds {
        if n <= 1 {
            return Seconds::zero();
        }
        (self.volume / self.bandwidth) * (n as f64).log2()
    }

    fn rounds(&self, n: usize) -> f64 {
        if n <= 1 {
            return 0.0;
        }
        (n as f64).log2()
    }

    fn name(&self) -> &'static str {
        "log-tree"
    }
}

/// Spark's torrent-like broadcast of the model parameters: the driver splits
/// the payload into blocks that workers re-share, completing in about
/// `log₂ n` bandwidth-limited rounds — same asymptotic shape as [`LogTree`].
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TorrentBroadcast {
    /// Broadcast payload.
    pub volume: Bits,
    /// Link bandwidth.
    pub bandwidth: BitsPerSec,
}

impl CommModel for TorrentBroadcast {
    fn time(&self, n: usize) -> Seconds {
        if n <= 1 {
            return Seconds::zero();
        }
        (self.volume / self.bandwidth) * (n as f64).log2()
    }

    fn rounds(&self, n: usize) -> f64 {
        if n <= 1 {
            return 0.0;
        }
        (n as f64).log2()
    }

    fn name(&self) -> &'static str {
        "torrent-broadcast"
    }
}

/// Spark's two-wave `treeAggregate`: "aggregation is done in two waves.
/// First wave is done for the square root number of the nodes and the second
/// wave is done among the others" — `t = 2 · M/B · ⌈√n⌉`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TwoWaveAggregation {
    /// Per-worker gradient payload.
    pub volume: Bits,
    /// Link bandwidth.
    pub bandwidth: BitsPerSec,
}

impl TwoWaveAggregation {
    /// `⌈√n⌉`, the fan-in of each wave.
    #[inline]
    pub fn wave_width(n: usize) -> f64 {
        (n as f64).sqrt().ceil()
    }
}

impl CommModel for TwoWaveAggregation {
    fn time(&self, n: usize) -> Seconds {
        if n <= 1 {
            return Seconds::zero();
        }
        (self.volume / self.bandwidth) * (2.0 * Self::wave_width(n))
    }

    fn rounds(&self, n: usize) -> f64 {
        if n <= 1 {
            return 0.0;
        }
        2.0 * Self::wave_width(n)
    }

    fn name(&self) -> &'static str {
        "two-wave-aggregation"
    }
}

/// The complete Spark gradient exchange of the Fig 2 experiment:
///
/// ```text
/// t_cm = (bits·W/B)·log₂ n  +  2·(bits·W/B)·⌈√n⌉
///        └ torrent broadcast ┘   └ two-wave treeAggregate ┘
/// ```
///
/// with 64-bit parameters in Spark's case.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SparkGradientExchange {
    /// Parameter payload (e.g. `Bits::params(12e6, 64)`).
    pub volume: Bits,
    /// Link bandwidth.
    pub bandwidth: BitsPerSec,
}

impl CommModel for SparkGradientExchange {
    fn time(&self, n: usize) -> Seconds {
        if n <= 1 {
            return Seconds::zero();
        }
        let unit = self.volume / self.bandwidth;
        unit * (n as f64).log2() + unit * (2.0 * TwoWaveAggregation::wave_width(n))
    }

    fn rounds(&self, n: usize) -> f64 {
        if n <= 1 {
            return 0.0;
        }
        (n as f64).log2() + 2.0 * TwoWaveAggregation::wave_width(n)
    }

    fn name(&self) -> &'static str {
        "spark-gradient-exchange"
    }
}

/// The paper's generic two-stage tree gradient exchange:
/// `t_cm = 2 · (bits·W/B) · log₂ n` — broadcast down and aggregate up a
/// binary tree. This is the `t_cm^{GD}` of Section IV-A.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TwoStageTreeExchange {
    /// Parameter payload.
    pub volume: Bits,
    /// Link bandwidth.
    pub bandwidth: BitsPerSec,
}

impl CommModel for TwoStageTreeExchange {
    fn time(&self, n: usize) -> Seconds {
        if n <= 1 {
            return Seconds::zero();
        }
        (self.volume / self.bandwidth) * (2.0 * (n as f64).log2())
    }

    fn rounds(&self, n: usize) -> f64 {
        if n <= 1 {
            return 0.0;
        }
        2.0 * (n as f64).log2()
    }

    fn name(&self) -> &'static str {
        "two-stage-tree"
    }
}

/// Bandwidth-optimal ring all-reduce: `t = 2·(n−1)/n · M/B`. Not used by
/// the paper's exhibits but included as the standard MPI-style alternative
/// the paper alludes to ("all-reduce, which is implemented in MPI").
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RingAllReduce {
    /// Full parameter payload.
    pub volume: Bits,
    /// Link bandwidth.
    pub bandwidth: BitsPerSec,
}

impl CommModel for RingAllReduce {
    fn time(&self, n: usize) -> Seconds {
        if n <= 1 {
            return Seconds::zero();
        }
        (self.volume / self.bandwidth) * (2.0 * (n as f64 - 1.0) / n as f64)
    }

    fn rounds(&self, n: usize) -> f64 {
        if n <= 1 {
            return 0.0;
        }
        // 2·(n−1) chunk steps: bandwidth-optimal but latency-hostile.
        2.0 * (n as f64 - 1.0)
    }

    fn name(&self) -> &'static str {
        "ring-all-reduce"
    }
}

/// Latency-aware α–β collective model: `rounds(n)` message rounds, each
/// costing `α + M/B` (the LogP-family refinement of the paper's pure
/// bandwidth model — relevant once messages are small enough that setup
/// latency competes with serialisation).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AlphaBetaTree {
    /// Per-message latency `α`.
    pub latency: Seconds,
    /// Volume per round.
    pub volume: Bits,
    /// Link bandwidth.
    pub bandwidth: BitsPerSec,
}

impl CommModel for AlphaBetaTree {
    fn time(&self, n: usize) -> Seconds {
        if n <= 1 {
            return Seconds::zero();
        }
        let per_round = self.latency + self.volume / self.bandwidth;
        per_round * (n as f64).log2()
    }

    fn rounds(&self, n: usize) -> f64 {
        if n <= 1 {
            return 0.0;
        }
        (n as f64).log2()
    }

    fn name(&self) -> &'static str {
        "alpha-beta-tree"
    }
}

/// Recursive halving/doubling all-reduce (Rabenseifner's algorithm):
/// reduce-scatter by recursive halving, then all-gather by recursive
/// doubling. For `p = 2^⌊log₂ n⌋` participants the pure-bandwidth cost is
/// `2·(p−1)/p · M/B` in `2·log₂ p` rounds — ring's bandwidth optimality at
/// a tree's round count, which is why MPI uses it for large messages on
/// latency-bound networks.
///
/// Non-power-of-two `n` pays the standard penalty: the `n − p` extra
/// workers fold their vectors into partners before the exchange and
/// receive the result after it — two extra rounds moving the full `M`
/// each. The model is therefore (intentionally) *not* monotone in `n`:
/// `t(5) > t(8)`, exactly as the real algorithm behaves.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct HalvingDoubling {
    /// Full parameter payload.
    pub volume: Bits,
    /// Link bandwidth.
    pub bandwidth: BitsPerSec,
}

impl HalvingDoubling {
    /// `(p, extra)`: the power-of-two participant count and the number of
    /// folded-in extra workers. `n <= 1` (nobody to exchange with) maps to
    /// one participant and no extras.
    #[inline]
    pub fn split(n: usize) -> (usize, usize) {
        if n <= 1 {
            return (1, 0);
        }
        let p = 1 << n.ilog2();
        (p, n - p)
    }
}

impl CommModel for HalvingDoubling {
    fn time(&self, n: usize) -> Seconds {
        if n <= 1 {
            return Seconds::zero();
        }
        let (p, extra) = Self::split(n);
        let unit = self.volume / self.bandwidth;
        let exchange = unit * (2.0 * (p as f64 - 1.0) / p as f64);
        let fold = if extra > 0 {
            unit * 2.0
        } else {
            Seconds::zero()
        };
        exchange + fold
    }

    fn rounds(&self, n: usize) -> f64 {
        if n <= 1 {
            return 0.0;
        }
        let (p, extra) = Self::split(n);
        2.0 * f64::from(p.ilog2()) + if extra > 0 { 2.0 } else { 0.0 }
    }

    fn name(&self) -> &'static str {
        "halving-doubling"
    }
}

/// Two-tier hierarchical all-reduce over a racked cluster: binomial-tree
/// reduce to each rack's leader over the intra-rack link, ring all-reduce
/// among the `r` rack leaders over the uplink, binomial-tree broadcast
/// back down. Inherently latency-aware — each tier's [`LinkSpec`] carries
/// its own `α` — so it must **not** be wrapped in [`AlphaBeta`] (that
/// would double-count the latency):
///
/// ```text
/// t(n) = 2·⌈log₂ m⌉·(α_i + M/B_i)  +  2·(r−1)·(α_u + (M/r)/B_u)
/// ```
///
/// with `m` the fullest rack's worker count and `r` the rack count. This
/// is the shape flat models cannot express: the expensive uplink carries
/// only `r − 1 ≪ n` hops of `M/r` chunks, so the cross-rack wall moves
/// out by roughly the rack size.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Hierarchical {
    /// Full parameter payload.
    pub volume: Bits,
    /// Workers per rack.
    pub rack_size: usize,
    /// Intra-rack link (bandwidth + per-message latency).
    pub intra: LinkSpec,
    /// Inter-rack uplink (bandwidth + per-message latency).
    pub uplink: LinkSpec,
}

impl Hierarchical {
    /// Builds the collective from a [`ClusterSpec`]. A flat cluster (no
    /// rack topology) degenerates to a single all-encompassing rack: the
    /// uplink is never used and the model reduces to a binomial-tree
    /// exchange over the base link.
    pub fn from_cluster(volume: Bits, cluster: &ClusterSpec) -> Self {
        match cluster.rack {
            Some(rack) => Self {
                volume,
                rack_size: rack.nodes_per_rack,
                intra: cluster.link,
                uplink: rack.uplink,
            },
            None => Self {
                volume,
                rack_size: usize::MAX,
                intra: cluster.link,
                uplink: cluster.link,
            },
        }
    }

    /// `(m, r)`: workers in the fullest rack and number of racks.
    #[inline]
    fn layout(&self, n: usize) -> (usize, usize) {
        let m = self.rack_size.min(n);
        let r = n.div_ceil(self.rack_size).max(1);
        (m, r)
    }

    /// Binomial-tree rounds to reduce (or broadcast among) `m` rack
    /// members including the leader: `⌈log₂ m⌉`.
    #[inline]
    fn intra_rounds(m: usize) -> f64 {
        if m <= 1 {
            0.0
        } else {
            (m as f64).log2().ceil()
        }
    }
}

impl CommModel for Hierarchical {
    fn time(&self, n: usize) -> Seconds {
        if n <= 1 {
            return Seconds::zero();
        }
        let (m, r) = self.layout(n);
        let intra_unit = self.intra.latency + self.volume / self.intra.bandwidth;
        let intra = intra_unit * (2.0 * Self::intra_rounds(m));
        let inter = if r > 1 {
            let chunk = self.volume / r as f64;
            (self.uplink.latency + chunk / self.uplink.bandwidth) * (2.0 * (r as f64 - 1.0))
        } else {
            Seconds::zero()
        };
        intra + inter
    }

    fn rounds(&self, n: usize) -> f64 {
        if n <= 1 {
            return 0.0;
        }
        let (m, r) = self.layout(n);
        2.0 * Self::intra_rounds(m) + 2.0 * (r as f64 - 1.0)
    }

    fn name(&self) -> &'static str {
        "hierarchical"
    }
}

/// Adds per-message latency to any pure-bandwidth model: the α–β form
/// `t = α·rounds(n) + inner.time(n)`. With `latency == 0` this is exactly
/// the wrapped model — the backwards-compatibility guarantee for every
/// pre-existing exhibit answer.
#[derive(Debug, Clone, Copy)]
pub struct AlphaBeta<M> {
    /// The pure-bandwidth collective being refined.
    pub inner: M,
    /// Per-message setup latency `α`.
    pub latency: Seconds,
}

impl<M: CommModel> CommModel for AlphaBeta<M> {
    fn time(&self, n: usize) -> Seconds {
        if n <= 1 {
            return Seconds::zero();
        }
        self.inner.time(n) + self.latency * self.inner.rounds(n)
    }

    fn rounds(&self, n: usize) -> f64 {
        self.inner.rounds(n)
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }
}

/// A *flat* collective evaluated on a racked cluster: while the job fits
/// inside one rack it runs at intra-rack cost (`within`); once it spans
/// racks, every round is charged at the uplink tier (`spanning`).
///
/// For the ring pipeline this two-regime model is exact — a ring's
/// throughput is set by the slowest link on the cycle, so one cross-rack
/// hop gates all `2·(n−1)` steps. For tree-shaped schedules it is a
/// conservative (pessimistic) bound: some rounds stay on fast intra-rack
/// links, which only a topology-aware collective like [`Hierarchical`]
/// can exploit — that gap *is* the case for hierarchical collectives.
#[derive(Debug, Clone, Copy)]
pub struct RackTiered<A, B> {
    /// Workers per rack: the regime boundary.
    pub rack_size: usize,
    /// Model while `n <= rack_size` (intra-rack links).
    pub within: A,
    /// Model once `n > rack_size` (uplink tier).
    pub spanning: B,
}

impl<A: CommModel, B: CommModel> CommModel for RackTiered<A, B> {
    fn time(&self, n: usize) -> Seconds {
        if n <= 1 {
            return Seconds::zero();
        }
        if n <= self.rack_size {
            self.within.time(n)
        } else {
            self.spanning.time(n)
        }
    }

    fn rounds(&self, n: usize) -> f64 {
        if n <= self.rack_size {
            self.within.rounds(n)
        } else {
            self.spanning.rounds(n)
        }
    }

    fn name(&self) -> &'static str {
        self.within.name()
    }
}

/// Sum of several communication phases executed back to back (BSP phases do
/// not overlap).
#[derive(Debug, Default)]
pub struct Composite {
    phases: Vec<Box<dyn CommModel>>,
}

impl Composite {
    /// Empty composite (zero time).
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a phase.
    #[must_use]
    pub fn with(mut self, phase: impl CommModel + 'static) -> Self {
        self.phases.push(Box::new(phase));
        self
    }

    /// Number of phases.
    pub fn len(&self) -> usize {
        self.phases.len()
    }

    /// True when no phases are present.
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }
}

impl CommModel for Composite {
    fn time(&self, n: usize) -> Seconds {
        if n <= 1 {
            // Guard here as well as in the phases: the invariant must hold
            // even for phases built from raw closures.
            return Seconds::zero();
        }
        self.phases.iter().map(|p| p.time(n)).sum()
    }

    fn rounds(&self, n: usize) -> f64 {
        if n <= 1 {
            return 0.0;
        }
        self.phases.iter().map(|p| p.rounds(n)).sum()
    }

    fn name(&self) -> &'static str {
        "composite"
    }
}

/// Scales an inner model by a constant factor (e.g. number of repetitions
/// of a collective inside one superstep).
#[derive(Debug)]
pub struct Scaled<M> {
    /// The wrapped model.
    pub inner: M,
    /// Multiplier applied to the inner model's time.
    pub factor: f64,
}

impl<M: CommModel> CommModel for Scaled<M> {
    fn time(&self, n: usize) -> Seconds {
        if n <= 1 {
            return Seconds::zero();
        }
        self.inner.time(n) * self.factor
    }

    fn rounds(&self, n: usize) -> f64 {
        if n <= 1 {
            return 0.0;
        }
        self.inner.rounds(n) * self.factor
    }

    fn name(&self) -> &'static str {
        "scaled"
    }
}

/// An arbitrary closure-backed model for quick experimentation.
pub struct FnComm<F> {
    f: F,
    label: &'static str,
}

impl<F> FnComm<F> {
    /// Wraps `f(n) -> Seconds` as a [`CommModel`].
    pub fn new(label: &'static str, f: F) -> Self {
        Self { f, label }
    }
}

impl<F> std::fmt::Debug for FnComm<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "FnComm({})", self.label)
    }
}

impl<F: Fn(usize) -> Seconds + Send + Sync> CommModel for FnComm<F> {
    fn time(&self, n: usize) -> Seconds {
        if n <= 1 {
            return Seconds::zero();
        }
        (self.f)(n)
    }

    fn name(&self) -> &'static str {
        self.label
    }
}

impl<M: CommModel + ?Sized> CommModel for Box<M> {
    fn time(&self, n: usize) -> Seconds {
        (**self).time(n)
    }

    fn rounds(&self, n: usize) -> f64 {
        (**self).rounds(n)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

impl<M: CommModel + ?Sized> CommModel for std::sync::Arc<M> {
    fn time(&self, n: usize) -> Seconds {
        (**self).time(n)
    }

    fn rounds(&self, n: usize) -> f64 {
        (**self).rounds(n)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vol() -> Bits {
        Bits::mega(100.0)
    }

    fn bw() -> BitsPerSec {
        BitsPerSec::giga(1.0)
    }

    #[test]
    fn all_models_zero_at_one_worker() {
        let models: Vec<Box<dyn CommModel>> = vec![
            Box::new(NoComm),
            Box::new(Linear {
                volume: vol(),
                bandwidth: bw(),
            }),
            Box::new(LogTree {
                volume: vol(),
                bandwidth: bw(),
            }),
            Box::new(TorrentBroadcast {
                volume: vol(),
                bandwidth: bw(),
            }),
            Box::new(TwoWaveAggregation {
                volume: vol(),
                bandwidth: bw(),
            }),
            Box::new(SparkGradientExchange {
                volume: vol(),
                bandwidth: bw(),
            }),
            Box::new(TwoStageTreeExchange {
                volume: vol(),
                bandwidth: bw(),
            }),
            Box::new(RingAllReduce {
                volume: vol(),
                bandwidth: bw(),
            }),
        ];
        for m in &models {
            assert!(m.time(1).is_zero(), "{} must be zero at n=1", m.name());
        }
    }

    #[test]
    fn linear_grows_linearly() {
        let m = Linear {
            volume: vol(),
            bandwidth: bw(),
        };
        let t4 = m.time(4).as_secs();
        let t8 = m.time(8).as_secs();
        assert!((t8 / t4 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn logtree_grows_logarithmically() {
        let m = LogTree {
            volume: vol(),
            bandwidth: bw(),
        };
        // log2(4)=2, log2(16)=4.
        assert!((m.time(16).as_secs() / m.time(4).as_secs() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn two_wave_uses_ceil_sqrt() {
        let m = TwoWaveAggregation {
            volume: vol(),
            bandwidth: bw(),
        };
        let unit = (vol() / bw()).as_secs();
        // n=9: ceil(sqrt(9)) = 3, so t = 2·3·unit.
        assert!((m.time(9).as_secs() - 6.0 * unit).abs() < 1e-9);
        // n=10: ceil(sqrt(10)) = 4.
        assert!((m.time(10).as_secs() - 8.0 * unit).abs() < 1e-9);
    }

    #[test]
    fn spark_exchange_matches_paper_formula() {
        // Paper Fig 2: t_cm = (64·W/B)·log(n) + 2·(64·W/B)·⌈√n⌉.
        let w = 12e6;
        let volume = Bits::params(w, 64);
        let m = SparkGradientExchange {
            volume,
            bandwidth: bw(),
        };
        let n = 9usize;
        let unit = 64.0 * w / 1e9;
        let expected = unit * (n as f64).log2() + 2.0 * unit * 3.0;
        assert!((m.time(n).as_secs() - expected).abs() < 1e-9);
    }

    #[test]
    fn two_stage_tree_matches_paper_formula() {
        // Paper Section IV-A: t_cm = 2·(32·W/B)·log(n).
        let w = 25e6;
        let m = TwoStageTreeExchange {
            volume: Bits::params(w, 32),
            bandwidth: bw(),
        };
        let n = 32usize;
        let expected = 2.0 * (32.0 * w / 1e9) * (n as f64).log2();
        assert!((m.time(n).as_secs() - expected).abs() < 1e-9);
    }

    #[test]
    fn ring_all_reduce_approaches_2x_volume() {
        let m = RingAllReduce {
            volume: vol(),
            bandwidth: bw(),
        };
        let unit = (vol() / bw()).as_secs();
        let t = m.time(1000).as_secs();
        assert!((t - 2.0 * unit).abs() / (2.0 * unit) < 0.01);
    }

    #[test]
    fn composite_sums_phases() {
        let c = Composite::new()
            .with(LogTree {
                volume: vol(),
                bandwidth: bw(),
            })
            .with(TwoWaveAggregation {
                volume: vol(),
                bandwidth: bw(),
            });
        let expected = LogTree {
            volume: vol(),
            bandwidth: bw(),
        }
        .time(8)
            + TwoWaveAggregation {
                volume: vol(),
                bandwidth: bw(),
            }
            .time(8);
        assert_eq!(c.time(8), expected);
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
    }

    #[test]
    fn scaled_multiplies() {
        let inner = LogTree {
            volume: vol(),
            bandwidth: bw(),
        };
        let s = Scaled { inner, factor: 3.0 };
        assert!((s.time(8).as_secs() - 3.0 * inner.time(8).as_secs()).abs() < 1e-12);
    }

    #[test]
    fn fn_comm_is_zero_at_one() {
        let m = FnComm::new("const", |_n| Seconds::new(5.0));
        assert!(m.time(1).is_zero());
        assert_eq!(m.time(2).as_secs(), 5.0);
    }

    #[test]
    fn alpha_beta_adds_latency_per_round() {
        let m = AlphaBetaTree {
            latency: Seconds::from_millis(1.0),
            volume: vol(),
            bandwidth: bw(),
        };
        let pure = LogTree {
            volume: vol(),
            bandwidth: bw(),
        };
        let n = 16usize;
        let expected = pure.time(n).as_secs() + 0.001 * (n as f64).log2();
        assert!((m.time(n).as_secs() - expected).abs() < 1e-12);
        assert!(m.time(1).is_zero());
    }

    #[test]
    fn alpha_beta_latency_dominates_small_messages() {
        let m = AlphaBetaTree {
            latency: Seconds::from_millis(1.0),
            volume: Bits::new(8.0), // 8 ns of serialisation
            bandwidth: bw(),
        };
        let t = m.time(8).as_secs();
        assert!(
            (t - 0.003).abs() < 1e-6,
            "3 rounds of ~1 ms latency, got {t}"
        );
    }

    #[test]
    fn halving_doubling_matches_ring_volume_on_powers_of_two() {
        let hd = HalvingDoubling {
            volume: vol(),
            bandwidth: bw(),
        };
        let ring = RingAllReduce {
            volume: vol(),
            bandwidth: bw(),
        };
        for n in [2usize, 4, 8, 16, 64] {
            assert!(
                (hd.time(n).as_secs() - ring.time(n).as_secs()).abs() < 1e-12,
                "same 2(n−1)/n·M/B volume term at n={n}"
            );
        }
        // But far fewer rounds: 2·log₂ n vs 2·(n−1).
        assert_eq!(hd.rounds(64), 12.0);
        assert_eq!(ring.rounds(64), 126.0);
    }

    #[test]
    fn halving_doubling_split_handles_degenerate_counts() {
        assert_eq!(HalvingDoubling::split(0), (1, 0));
        assert_eq!(HalvingDoubling::split(1), (1, 0));
        assert_eq!(HalvingDoubling::split(2), (2, 0));
        assert_eq!(HalvingDoubling::split(5), (4, 1));
        assert_eq!(HalvingDoubling::split(64), (64, 0));
    }

    #[test]
    fn rack_tiered_switches_regime_at_rack_size() {
        let within = RingAllReduce {
            volume: vol(),
            bandwidth: BitsPerSec::giga(10.0),
        };
        let spanning = RingAllReduce {
            volume: vol(),
            bandwidth: bw(),
        };
        let tiered = RackTiered {
            rack_size: 16,
            within,
            spanning,
        };
        assert!(tiered.time(1).is_zero());
        assert_eq!(tiered.time(16), within.time(16), "fits one rack");
        assert_eq!(tiered.time(17), spanning.time(17), "spans racks");
        assert_eq!(tiered.rounds(64), spanning.rounds(64));
        assert_eq!(tiered.name(), "ring-all-reduce");
    }

    #[test]
    fn halving_doubling_non_power_pays_fold_penalty() {
        let hd = HalvingDoubling {
            volume: vol(),
            bandwidth: bw(),
        };
        let unit = (vol() / bw()).as_secs();
        // n=5 → p=4, extra=1: 2·(3/4)·unit + 2·unit.
        assert!((hd.time(5).as_secs() - (1.5 + 2.0) * unit).abs() < 1e-9);
        assert_eq!(hd.rounds(5), 2.0 * 2.0 + 2.0);
        // The fold makes t(5) worse than t(8) — real algorithm behaviour.
        assert!(hd.time(5) > hd.time(8));
    }

    #[test]
    fn alpha_beta_wrapper_adds_rounds_times_latency() {
        let inner = TwoStageTreeExchange {
            volume: vol(),
            bandwidth: bw(),
        };
        let ab = AlphaBeta {
            inner,
            latency: Seconds::from_millis(2.0),
        };
        let n = 16;
        let expected = inner.time(n).as_secs() + 0.002 * inner.rounds(n);
        assert!((ab.time(n).as_secs() - expected).abs() < 1e-12);
        assert_eq!(ab.rounds(n), inner.rounds(n));
        assert_eq!(ab.name(), inner.name());
        assert!(ab.time(1).is_zero());
    }

    #[test]
    fn alpha_beta_zero_latency_is_identity() {
        let inner = SparkGradientExchange {
            volume: vol(),
            bandwidth: bw(),
        };
        let ab = AlphaBeta {
            inner,
            latency: Seconds::zero(),
        };
        for n in 1..=40 {
            assert_eq!(ab.time(n), inner.time(n));
        }
    }

    #[test]
    fn alpha_beta_flips_ring_vs_tree_ordering() {
        // Pure bandwidth: ring beats tree. Latency-bound (tiny payload):
        // ring's 2(n−1) rounds lose to the tree's 2·log₂ n.
        let volume = Bits::new(8e3); // 1 KB
        let ring = AlphaBeta {
            inner: RingAllReduce {
                volume,
                bandwidth: bw(),
            },
            latency: Seconds::from_micros(50.0),
        };
        let tree = AlphaBeta {
            inner: TwoStageTreeExchange {
                volume,
                bandwidth: bw(),
            },
            latency: Seconds::from_micros(50.0),
        };
        assert!(tree.time(64) < ring.time(64), "latency-bound: tree wins");
        let big = Bits::giga(1.0);
        let ring_big = AlphaBeta {
            inner: RingAllReduce {
                volume: big,
                bandwidth: bw(),
            },
            latency: Seconds::from_micros(50.0),
        };
        let tree_big = AlphaBeta {
            inner: TwoStageTreeExchange {
                volume: big,
                bandwidth: bw(),
            },
            latency: Seconds::from_micros(50.0),
        };
        assert!(
            ring_big.time(64) < tree_big.time(64),
            "bandwidth-bound: ring wins"
        );
    }

    #[test]
    fn hierarchical_matches_closed_form() {
        let h = Hierarchical {
            volume: vol(),
            rack_size: 8,
            intra: LinkSpec::new(BitsPerSec::giga(10.0), Seconds::from_micros(5.0)),
            uplink: LinkSpec::new(BitsPerSec::giga(1.0), Seconds::from_micros(50.0)),
        };
        // n = 32: m = 8 (⌈log₂ 8⌉ = 3 rounds each way), r = 4.
        let intra_unit = 5e-6 + 100e6 / 10e9;
        let chunk = 100e6 / 4.0;
        let inter = 2.0 * 3.0 * (50e-6 + chunk / 1e9);
        let expected = 2.0 * 3.0 * intra_unit + inter;
        assert!((h.time(32).as_secs() - expected).abs() < 1e-12);
        assert_eq!(h.rounds(32), 6.0 + 6.0);
        assert!(h.time(1).is_zero());
    }

    #[test]
    fn hierarchical_single_rack_skips_uplink() {
        let h = Hierarchical {
            volume: vol(),
            rack_size: 16,
            intra: LinkSpec::bandwidth_only(bw()),
            uplink: LinkSpec::bandwidth_only(BitsPerSec::mega(1.0)), // terrible
        };
        // n = 8 fits one rack: only intra rounds, uplink untouched.
        let unit = (vol() / bw()).as_secs();
        assert!((h.time(8).as_secs() - 2.0 * 3.0 * unit).abs() < 1e-9);
    }

    #[test]
    fn hierarchical_beats_flat_tree_across_racks() {
        // A flat tree pays every round on the slow uplink-class network;
        // the hierarchical composite keeps most hops on the fast intra
        // links and moves only M/r chunks across racks.
        let volume = vol();
        let slow = LinkSpec::new(BitsPerSec::giga(1.0), Seconds::from_micros(50.0));
        let fast = LinkSpec::new(BitsPerSec::giga(10.0), Seconds::from_micros(5.0));
        let flat = AlphaBeta {
            inner: TwoStageTreeExchange {
                volume,
                bandwidth: slow.bandwidth,
            },
            latency: slow.latency,
        };
        let hier = Hierarchical {
            volume,
            rack_size: 16,
            intra: fast,
            uplink: slow,
        };
        for n in [32usize, 48, 64] {
            assert!(
                hier.time(n) < flat.time(n),
                "hierarchical must win at n={n}"
            );
        }
    }

    #[test]
    fn hierarchical_from_flat_cluster_degenerates_to_one_rack() {
        use crate::hardware::presets;
        let h = Hierarchical::from_cluster(vol(), &presets::spark_cluster());
        let unit = (vol() / bw()).as_secs();
        // One big rack: 2·⌈log₂ n⌉ intra rounds, no uplink term.
        assert!((h.time(8).as_secs() - 6.0 * unit).abs() < 1e-9);
        let racked = Hierarchical::from_cluster(vol(), &presets::two_tier_pod());
        assert_eq!(racked.rack_size, 16);
    }

    #[test]
    fn composite_and_scaled_zero_at_one_worker() {
        let c = Composite::new().with(FnComm::new("raw", |_| Seconds::new(7.0)));
        assert!(c.time(1).is_zero());
        let s = Scaled {
            inner: FnComm::new("raw", |_| Seconds::new(7.0)),
            factor: 3.0,
        };
        assert!(s.time(1).is_zero());
        assert_eq!(s.rounds(1), 0.0);
    }

    #[test]
    fn tree_beats_linear_for_large_n() {
        let lin = Linear {
            volume: vol(),
            bandwidth: bw(),
        };
        let tree = LogTree {
            volume: vol(),
            bandwidth: bw(),
        };
        for n in [4usize, 16, 64, 256] {
            assert!(
                tree.time(n) < lin.time(n),
                "tree should beat linear at n={n}"
            );
        }
    }
}
