//! Deterministic, dependency-free fault injection for crash testing.
//!
//! Long-running surfaces (`mlscale sweep`, `mlscale serve`) thread named
//! **fault points** through their write paths: `faultpoint::hit("name")`
//! is a no-op unless the `MLSCALE_FAULTS` environment variable arms that
//! point, in which case the *N*-th hit either returns an [`InjectedFault`]
//! (action `err`) or aborts the process (action `kill`). Because the
//! trigger is a hit *count*, not a timer, a fault fires at exactly the
//! same place on every run — crash tests are reproducible.
//!
//! Syntax (comma-separated arms):
//!
//! ```text
//! MLSCALE_FAULTS=<point>:<N>=<kill|err>[,<point>:<N>=<action>...]
//! MLSCALE_FAULTS=sweep.after_point:3=kill,serve.write_response:1=err
//! ```
//!
//! * `<point>` — a dotted fault-point name (see [`points`]);
//! * `<N>` — the 1-based hit ordinal that triggers (hits of the same
//!   point share one counter, so `p:2=err,p:4=err` fires twice);
//! * `kill` — `std::process::abort()`: the hard-crash action the
//!   resume/recovery integration tests use;
//! * `err` — the hit returns an [`InjectedFault`] (convertible to
//!   `std::io::Error`), exercising error-handling paths in-process.
//!
//! Front ends call [`check_env`] at startup so a typo'd spec is a named
//! exit-2 diagnostic instead of silently injecting nothing; library code
//! treats a malformed variable as unset. Tests that cannot mutate the
//! process environment (it is shared across the test harness) use
//! [`scoped`], which overlays a plan on the current thread only.
//!
//! This module and [`crate::par`] are the only places allowed to read
//! process environment variables — `mlscale-lint`'s `determinism` rule
//! enforces that, so evaluation paths cannot grow hidden env knobs.

use std::cell::RefCell;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// The environment variable naming the armed fault points.
pub const ENV_VAR: &str = "MLSCALE_FAULTS";

/// Canonical fault-point names, so call sites and tests share spellings.
pub mod points {
    /// Between writing a sweep point's temp file and renaming it into
    /// place — a fault here must leave a `.tmp`, never a torn JSON.
    pub const SWEEP_WRITE_POINT: &str = "sweep.write_point";
    /// After a sweep point has been journaled as complete.
    pub const SWEEP_AFTER_POINT: &str = "sweep.after_point";
    /// Between writing a shard's temp file and renaming it into place —
    /// a fault here must leave a `.tmp`, never a torn shard.
    pub const SWEEP_WRITE_SHARD: &str = "sweep.write_shard";
    /// After a completed shard has been journaled.
    pub const SWEEP_AFTER_SHARD: &str = "sweep.after_shard";
    /// Before the daemon writes a response body (an `err` drops the
    /// connection without answering, like a mid-response crash).
    pub const SERVE_WRITE_RESPONSE: &str = "serve.write_response";
}

/// What an armed fault point does on its triggering hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Return an [`InjectedFault`] from [`hit`].
    Err,
    /// Abort the process (simulates `kill -9` / OOM / power loss).
    Kill,
}

/// The error an `err`-armed fault point injects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedFault {
    /// The fault-point name that fired.
    pub point: String,
    /// Which hit of that point triggered (1-based).
    pub ordinal: u64,
}

impl fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "injected fault at {} (hit {}, armed via {ENV_VAR})",
            self.point, self.ordinal
        )
    }
}

impl std::error::Error for InjectedFault {}

impl From<InjectedFault> for std::io::Error {
    fn from(fault: InjectedFault) -> Self {
        std::io::Error::other(fault)
    }
}

/// One parsed `<point>:<N>=<action>` arm.
#[derive(Debug)]
struct Arm {
    point: String,
    at: u64,
    action: FaultAction,
}

/// A parsed fault plan: the arms plus one hit counter per distinct
/// point name (shared across arms of the same point).
#[derive(Debug, Default)]
struct Plan {
    arms: Vec<Arm>,
    counters: Vec<(String, AtomicU64)>,
}

impl Plan {
    fn parse(raw: &str) -> Result<Self, String> {
        let mut arms = Vec::new();
        for part in raw.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let shape = || {
                format!(
                    "{ENV_VAR}: bad fault arm {part:?} — expected <point>:<N>=<kill|err>, \
                     e.g. sweep.after_point:3=kill"
                )
            };
            let (point_at, action) = part.split_once('=').ok_or_else(shape)?;
            let (point, at) = point_at.rsplit_once(':').ok_or_else(shape)?;
            if point.is_empty()
                || !point
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
            {
                return Err(format!(
                    "{ENV_VAR}: bad fault-point name {point:?} in {part:?} \
                     (letters, digits, '.', '_', '-')"
                ));
            }
            let at: u64 = match at.parse() {
                Ok(n) if n >= 1 => n,
                _ => {
                    return Err(format!(
                        "{ENV_VAR}: hit ordinal {at:?} in {part:?} must be a positive integer"
                    ))
                }
            };
            let action = match action {
                "kill" => FaultAction::Kill,
                "err" => FaultAction::Err,
                other => {
                    return Err(format!(
                        "{ENV_VAR}: unknown action {other:?} in {part:?} (kill or err)"
                    ))
                }
            };
            arms.push(Arm {
                point: point.to_string(),
                at,
                action,
            });
        }
        let mut counters: Vec<(String, AtomicU64)> = Vec::new();
        for arm in &arms {
            if !counters.iter().any(|(name, _)| name == &arm.point) {
                counters.push((arm.point.clone(), AtomicU64::new(0)));
            }
        }
        Ok(Self { arms, counters })
    }

    /// Counts a hit of `point`; fires any arm whose ordinal it reaches.
    fn hit(&self, point: &str) -> Result<(), InjectedFault> {
        let Some((_, counter)) = self.counters.iter().find(|(name, _)| name == point) else {
            return Ok(()); // point not armed
        };
        let ordinal = counter.fetch_add(1, Ordering::Relaxed) + 1;
        let Some(arm) = self
            .arms
            .iter()
            .find(|a| a.point == point && a.at == ordinal)
        else {
            return Ok(());
        };
        match arm.action {
            FaultAction::Kill => {
                eprintln!("mlscale: injected fault {point}:{ordinal}=kill — aborting");
                std::process::abort();
            }
            FaultAction::Err => Err(InjectedFault {
                point: point.to_string(),
                ordinal,
            }),
        }
    }
}

/// The process-wide plan, parsed from `MLSCALE_FAULTS` exactly once.
fn env_plan() -> &'static Result<Plan, String> {
    static PLAN: OnceLock<Result<Plan, String>> = OnceLock::new();
    PLAN.get_or_init(|| match std::env::var(ENV_VAR) {
        Ok(raw) => Plan::parse(&raw),
        Err(std::env::VarError::NotPresent) => Ok(Plan::default()),
        Err(std::env::VarError::NotUnicode(_)) => {
            Err(format!("{ENV_VAR}: value is not valid UTF-8"))
        }
    })
}

thread_local! {
    /// Thread-local plan overlays pushed by [`scoped`] (a stack, so
    /// scopes nest); the innermost overlay shadows the environment.
    static SCOPED: RefCell<Vec<Plan>> = const { RefCell::new(Vec::new()) };
}

/// Validates `MLSCALE_FAULTS` without firing anything. Front ends call
/// this at startup and turn the message into an exit-2 diagnostic;
/// [`hit`] itself treats a malformed variable as unset so library code
/// never acts on a spec the user was not told about.
pub fn check_env() -> Result<(), String> {
    match env_plan() {
        Ok(_) => Ok(()),
        Err(message) => Err(message.clone()),
    }
}

/// Counts a hit of the named fault point and fires it if armed.
///
/// Unarmed points (the production case: `MLSCALE_FAULTS` unset) cost a
/// thread-local read and one `OnceLock` load — cheap enough to leave in
/// release builds, which is the point: the crash tests exercise the real
/// binary.
pub fn hit(point: &str) -> Result<(), InjectedFault> {
    let scoped = SCOPED.with(|stack| {
        let stack = stack.borrow();
        stack.last().map(|plan| plan.hit(point))
    });
    if let Some(result) = scoped {
        return result;
    }
    match env_plan() {
        Ok(plan) if !plan.arms.is_empty() => plan.hit(point),
        _ => Ok(()),
    }
}

/// Runs `f` with a fault plan armed on the **current thread only**,
/// shadowing any environment plan; the overlay is removed when `f`
/// returns (or panics). Errs with the parse diagnostic if `spec` is
/// malformed. This is the in-process test hook: unlike the environment
/// plan it cannot leak between concurrently running tests.
pub fn scoped<T>(spec: &str, f: impl FnOnce() -> T) -> Result<T, String> {
    struct PopOnDrop;
    impl Drop for PopOnDrop {
        fn drop(&mut self) {
            SCOPED.with(|stack| {
                stack.borrow_mut().pop();
            });
        }
    }
    let plan = Plan::parse(spec)?;
    SCOPED.with(|stack| stack.borrow_mut().push(plan));
    let guard = PopOnDrop;
    let out = f();
    drop(guard);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_points_are_noops() {
        assert_eq!(hit("nothing.armed"), Ok(()));
        assert_eq!(hit("nothing.armed"), Ok(()));
    }

    #[test]
    fn parse_accepts_the_documented_syntax() {
        let plan = Plan::parse("sweep.after_point:3=kill,serve.write_response:1=err").unwrap();
        assert_eq!(plan.arms.len(), 2);
        assert_eq!(plan.arms[0].at, 3);
        assert_eq!(plan.arms[0].action, FaultAction::Kill);
        assert_eq!(plan.arms[1].point, "serve.write_response");
        assert_eq!(plan.arms[1].action, FaultAction::Err);
        assert_eq!(plan.counters.len(), 2);
    }

    #[test]
    fn parse_rejects_malformed_arms_with_named_diagnostics() {
        for (spec, needle) in [
            ("nonsense", "expected <point>:<N>=<kill|err>"),
            ("p:0=err", "positive integer"),
            ("p:x=err", "positive integer"),
            ("p:1=explode", "unknown action"),
            ("spaced name:1=err", "fault-point name"),
            (":1=err", "fault-point name"),
        ] {
            let err = Plan::parse(spec).unwrap_err();
            assert!(err.contains(needle), "{spec:?}: {err}");
            assert!(err.contains(ENV_VAR), "{spec:?}: {err}");
        }
    }

    #[test]
    fn empty_and_blank_specs_arm_nothing() {
        assert!(Plan::parse("").unwrap().arms.is_empty());
        assert!(Plan::parse(" , ,").unwrap().arms.is_empty());
    }

    #[test]
    fn err_arm_fires_on_exactly_the_nth_hit() {
        let outcomes = scoped("p:3=err", || (0..5).map(|_| hit("p")).collect::<Vec<_>>()).unwrap();
        assert_eq!(outcomes[0], Ok(()));
        assert_eq!(outcomes[1], Ok(()));
        let fault = outcomes[2].clone().unwrap_err();
        assert_eq!(fault.point, "p");
        assert_eq!(fault.ordinal, 3);
        assert_eq!(outcomes[3], Ok(()), "fires once, not on every later hit");
        assert_eq!(outcomes[4], Ok(()));
    }

    #[test]
    fn arms_on_one_point_share_a_counter() {
        let fired = scoped("p:1=err,p:3=err", || {
            (0..4).filter(|_| hit("p").is_err()).count()
        })
        .unwrap();
        assert_eq!(fired, 2, "hits 1 and 3 fire, 2 and 4 pass");
    }

    #[test]
    fn scoped_overlays_nest_and_unwind() {
        scoped("outer:1=err", || {
            scoped("inner:1=err", || {
                assert!(hit("inner").is_err());
                assert_eq!(hit("outer"), Ok(()), "inner scope shadows outer");
            })
            .unwrap();
            assert!(hit("outer").is_err(), "outer plan restored");
        })
        .unwrap();
        assert_eq!(hit("outer"), Ok(()), "no plan outside any scope");
    }

    #[test]
    fn scoped_rejects_malformed_specs() {
        assert!(scoped("broken", || ()).unwrap_err().contains(ENV_VAR));
    }

    #[test]
    fn injected_fault_converts_to_io_error() {
        let fault = InjectedFault {
            point: "sweep.write_point".to_string(),
            ordinal: 2,
        };
        let io: std::io::Error = fault.into();
        assert!(io.to_string().contains("sweep.write_point"));
        assert!(io.to_string().contains("hit 2"));
    }
}
