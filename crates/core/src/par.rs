//! Dependency-free chunked data parallelism for the model/sim/bench stack.
//!
//! The paper's whole point is predicting distributed-ML scalability
//! cheaply — so the evaluator itself should use every core it is given.
//! This module is the single primitive the hot paths share: a
//! [`map`] over a slice that fans contiguous chunks out across scoped
//! `std::thread` workers and reassembles the results **in input order**,
//! so a parallel run is bit-identical to a serial one whenever the
//! per-item function is pure (every caller in this workspace is).
//!
//! Thread-count resolution, in priority order:
//!
//! 1. a scoped override installed with [`with_thread_count`] (used by the
//!    determinism property tests to pin 1/2/7 workers);
//! 2. the `MLSCALE_THREADS` environment variable (a positive integer;
//!    anything else aborts loudly rather than silently running serial);
//! 3. [`std::thread::available_parallelism`], i.e. whatever the OS or the
//!    container's cpuset/cgroup quota grants.
//!
//! With an effective count of 1 (or a single-item input) no thread is
//! spawned at all — the map degenerates to a plain serial loop, which is
//! also why `MLSCALE_THREADS=1` is the reference configuration the
//! bit-identity tests compare against.

use std::cell::Cell;

thread_local! {
    /// Scoped thread-count override for the current thread (tests).
    static OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The number of worker threads parallel maps on this thread will use.
///
/// # Panics
/// Panics when `MLSCALE_THREADS` is set to anything but a positive
/// integer — a typo'd override should fail loudly, not degrade silently.
pub fn thread_count() -> usize {
    match try_thread_count() {
        Ok(n) => n,
        // lint: allow(panic-free-lib): thread_count is the documented panicking convenience; fallible callers use try_thread_count
        Err(msg) => panic!("{msg}"),
    }
}

/// Fallible variant of [`thread_count`] for long-lived front ends (the
/// CLI and `mlscale serve`) that must turn a typo'd `MLSCALE_THREADS`
/// into a named diagnostic — exit 2 or a refused startup — instead of a
/// process-killing panic. The error message names the variable and the
/// offending value.
pub fn try_thread_count() -> Result<usize, String> {
    if let Some(n) = OVERRIDE.with(Cell::get) {
        return Ok(n.max(1));
    }
    match std::env::var("MLSCALE_THREADS") {
        Ok(raw) => match raw.trim().parse::<usize>() {
            Ok(n) if n >= 1 => Ok(n),
            _ => Err(format!(
                "MLSCALE_THREADS must be a positive integer, got {raw:?}"
            )),
        },
        Err(_) => Ok(std::thread::available_parallelism().map_or(1, usize::from)),
    }
}

/// Runs `f` with the thread count pinned to `n` on the current thread
/// (nested maps launched by worker threads fall back to the global
/// resolution). The previous override is restored even if `f` panics.
pub fn with_thread_count<T>(n: usize, f: impl FnOnce() -> T) -> T {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(OVERRIDE.with(|c| c.replace(Some(n))));
    f()
}

/// Parallel map with deterministic output ordering: `out[i] == f(&items[i])`
/// exactly as a serial loop would produce, regardless of the thread count.
///
/// Items are split into at most [`thread_count`] contiguous chunks, each
/// chunk is processed by one scoped worker, and the per-chunk results are
/// concatenated in chunk order. A panic in `f` is propagated to the caller
/// with its original payload.
pub fn map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = thread_count().min(items.len());
    if threads <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(threads);
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|part| {
                scope.spawn(move || {
                    // Nested maps inside a worker run serial: the caller
                    // already fanned out to the machine's width, and a
                    // second level would multiply thread counts
                    // quadratically (e.g. exp-all workers running curve
                    // sweeps).
                    with_thread_count(1, || part.iter().map(f).collect::<Vec<R>>())
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .collect()
    })
}

/// Parallel in-place fill: splits `data` into contiguous chunks of
/// `chunk_len` and runs `f(chunk_index, chunk)` on each, one scoped
/// worker per chunk. Unlike [`map`] there is no result reassembly — each
/// element is written exactly once, in place — so callers producing
/// large outputs (e.g. gemm) avoid a second full copy. Serial fallback
/// when the thread count is 1 or there is only one chunk; panics in `f`
/// propagate.
///
/// # Panics
/// Panics when `chunk_len == 0`.
pub fn for_each_chunk_mut<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_len >= 1, "chunks must be non-empty");
    if thread_count() <= 1 || data.len() <= chunk_len {
        for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(i, chunk);
        }
        return;
    }
    let f = &f;
    std::thread::scope(|scope| {
        for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
            // Serial nesting inside workers, as in `map`.
            scope.spawn(move || with_thread_count(1, || f(i, chunk)));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order_for_every_thread_count() {
        let items: Vec<usize> = (0..103).collect();
        let expected: Vec<usize> = items.iter().map(|&x| x * x).collect();
        for threads in [1usize, 2, 3, 7, 16, 200] {
            let got = with_thread_count(threads, || map(&items, |&x| x * x));
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn map_handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(map(&empty, |&x| x).is_empty());
        assert_eq!(with_thread_count(8, || map(&[5u32], |&x| x + 1)), vec![6]);
    }

    #[test]
    fn float_results_bit_identical_across_thread_counts() {
        // The guarantee the golden-snapshot suite relies on: the same f64
        // stream regardless of parallelism.
        let items: Vec<f64> = (1..=97).map(|i| i as f64 * 0.173).collect();
        let work = |&x: &f64| (x.sin() * x.exp()).ln_1p() / (1.0 + x * x);
        let serial = with_thread_count(1, || map(&items, work));
        for threads in [2usize, 7] {
            let par = with_thread_count(threads, || map(&items, work));
            let same = serial
                .iter()
                .zip(&par)
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "threads = {threads} drifted");
        }
    }

    #[test]
    fn override_is_scoped_and_panic_safe() {
        let outer = thread_count();
        let result = std::panic::catch_unwind(|| {
            with_thread_count(5, || {
                assert_eq!(thread_count(), 5);
                panic!("boom");
            })
        });
        assert!(result.is_err());
        assert_eq!(thread_count(), outer, "override must unwind away");
    }

    #[test]
    fn worker_panics_propagate() {
        let items = [1u32, 2, 3, 4];
        let caught = std::panic::catch_unwind(|| {
            with_thread_count(2, || {
                map(&items, |&x| {
                    assert!(x != 3, "worker failure surfaces");
                    x
                })
            })
        });
        assert!(caught.is_err());
    }

    #[test]
    fn zero_override_clamps_to_serial() {
        assert_eq!(with_thread_count(0, thread_count), 1);
    }

    #[test]
    fn try_thread_count_matches_infallible_path() {
        assert_eq!(with_thread_count(6, try_thread_count), Ok(6));
        assert_eq!(try_thread_count().ok(), Some(thread_count()));
    }

    #[test]
    fn chunk_fill_matches_serial_for_every_thread_count() {
        let expected: Vec<usize> = (0..57).map(|i| i * 3).collect();
        for threads in [1usize, 2, 7] {
            let mut data = vec![0usize; 57];
            with_thread_count(threads, || {
                for_each_chunk_mut(&mut data, 10, |ci, chunk| {
                    for (local, v) in chunk.iter_mut().enumerate() {
                        *v = (ci * 10 + local) * 3;
                    }
                });
            });
            assert_eq!(data, expected, "threads = {threads}");
        }
    }
}
