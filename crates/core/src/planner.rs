//! Cluster-size planning under cost and deadline constraints — the
//! paper's conclusion argues these "simple, almost back-of-the-envelope
//! scalability estimations … should precede distributed implementations
//! (and may sometimes prevent them!)". This module turns a time model
//! `t(n)` into concrete provisioning answers: the cheapest cluster meeting
//! a deadline, the fastest cluster within a budget, and the
//! cost-efficiency sweet spot.
//!
//! Cost model: a job on `n` nodes that runs `t(n)` seconds costs
//! `n · price_per_node_hour · t(n)/3600`, plus an optional fixed price per
//! node (provisioning).

use crate::units::Seconds;
use serde::{Deserialize, Serialize};

/// Pricing of the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Pricing {
    /// Price of one node for one hour (any currency unit).
    pub node_hour: f64,
    /// Fixed price per provisioned node (setup, licence).
    pub per_node_fixed: f64,
}

impl Pricing {
    /// Hourly pricing with no fixed component.
    pub fn hourly(node_hour: f64) -> Self {
        assert!(node_hour > 0.0, "price must be positive");
        Self {
            node_hour,
            per_node_fixed: 0.0,
        }
    }

    /// Cost of running `n` nodes for `t`.
    pub fn cost(&self, n: usize, t: Seconds) -> f64 {
        n as f64 * (self.node_hour * t.as_secs() / 3600.0 + self.per_node_fixed)
    }
}

/// A provisioning recommendation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Plan {
    /// Recommended worker count.
    pub n: usize,
    /// Predicted run time at `n`.
    pub time: Seconds,
    /// Predicted cost at `n`.
    pub cost: f64,
}

/// A planner over a time model `t(n)` evaluated on `1..=max_n`.
///
/// The sweep is evaluated **once** at construction into a cached plan
/// table; every query verb ([`Self::cheapest`], [`Self::fastest`],
/// [`Self::cheapest_within_deadline`], [`Self::fastest_within_budget`],
/// [`Self::table`]) reads the cache, so an expensive `time_fn` (e.g. a
/// straggler order-statistic quadrature) runs once per candidate size no
/// matter how many questions are asked. Use [`Self::new_par`] to fan the
/// sweep itself out across threads.
pub struct Planner {
    plans: Vec<Plan>,
}

impl Planner {
    /// Creates a planner, evaluating `time_fn` serially on `1..=max_n`.
    ///
    /// # Panics
    /// Panics when `max_n == 0`.
    pub fn new(time_fn: impl Fn(usize) -> Seconds, max_n: usize, pricing: Pricing) -> Self {
        assert!(max_n >= 1, "need at least one candidate size");
        let plans = (1..=max_n)
            .map(|n| Self::plan_at(&time_fn, pricing, n))
            .collect();
        Self { plans }
    }

    /// Creates a planner with the sweep fanned out across threads
    /// ([`crate::par`]). Plans are bit-identical to [`Self::new`] for a
    /// pure `time_fn` — the candidate evaluations are independent and the
    /// table keeps input order.
    ///
    /// # Panics
    /// Panics when `max_n == 0`.
    pub fn new_par(
        time_fn: impl Fn(usize) -> Seconds + Sync,
        max_n: usize,
        pricing: Pricing,
    ) -> Self {
        assert!(max_n >= 1, "need at least one candidate size");
        let ns: Vec<usize> = (1..=max_n).collect();
        let plans = crate::par::map(&ns, |&n| Self::plan_at(&time_fn, pricing, n));
        Self { plans }
    }

    /// Default ladder size for [`Self::new_log`] when a caller has no
    /// opinion: ~29 rungs per decade at `max_n = 10⁶`, comfortably finer
    /// than any speedup curve's curvature.
    pub const DEFAULT_LOG_POINTS: usize = 200;

    /// Creates a planner over a **log-spaced** candidate ladder
    /// ([`crate::speedup::log_spaced_ns`]) instead of the dense
    /// `1..=max_n` sweep — O(`points` + refinement) evaluations of
    /// `time_fn`, so the four query verbs stop being O(`max_n`) at
    /// extreme scale.
    ///
    /// After the parallel ladder sweep, the rung minimising each
    /// objective (time, and cost under `pricing`) is refined by an
    /// integer ternary search between its ladder neighbours, so the
    /// reported optima are exact to ±1 worker provided the objective is
    /// unimodal in `n` — which the models here satisfy: iteration time
    /// falls while compute dominates and rises once communication does.
    /// All refinement evaluations are memoised and merged into the plan
    /// table, so [`Self::cheapest_within_deadline`] /
    /// [`Self::fastest_within_budget`] answer from the ladder plus both
    /// refined neighbourhoods.
    ///
    /// # Panics
    /// Panics when `max_n == 0` or `points < 2`.
    pub fn new_log(
        time_fn: impl Fn(usize) -> Seconds + Sync,
        max_n: usize,
        pricing: Pricing,
        points: usize,
    ) -> Self {
        assert!(max_n >= 1, "need at least one candidate size");
        let ladder = crate::speedup::log_spaced_ns(max_n, points);
        let times = crate::par::map(&ladder, |&n| time_fn(n));
        let mut evaluated: std::collections::HashMap<usize, Seconds> =
            ladder.iter().copied().zip(times).collect();
        for want_cost in [false, true] {
            let score = |n: usize, t: Seconds| {
                if want_cost {
                    pricing.cost(n, t)
                } else {
                    t.as_secs()
                }
            };
            // Coarse argmin over the ladder (ties to the smaller n, as
            // the verbs resolve them).
            let mut best = 0usize;
            for (i, &n) in ladder.iter().enumerate() {
                if score(n, evaluated[&n]) < score(ladder[best], evaluated[&ladder[best]]) {
                    best = i;
                }
            }
            // The optimum lies between the best rung's neighbours;
            // ternary-search the bracket, memoising every probe.
            let mut lo = ladder[best.saturating_sub(1)];
            let mut hi = ladder[(best + 1).min(ladder.len() - 1)];
            while hi - lo > 2 {
                let m1 = lo + (hi - lo) / 3;
                let m2 = hi - (hi - lo) / 3;
                let t1 = *evaluated.entry(m1).or_insert_with(|| time_fn(m1));
                let t2 = *evaluated.entry(m2).or_insert_with(|| time_fn(m2));
                if score(m1, t1) <= score(m2, t2) {
                    hi = m2;
                } else {
                    lo = m1;
                }
            }
            for n in lo..=hi {
                evaluated.entry(n).or_insert_with(|| time_fn(n));
            }
        }
        let mut ns: Vec<usize> = evaluated.keys().copied().collect();
        ns.sort_unstable();
        let plans = ns
            .into_iter()
            .map(|n| {
                let time = evaluated[&n];
                Plan {
                    n,
                    time,
                    cost: pricing.cost(n, time),
                }
            })
            .collect();
        Self { plans }
    }

    fn plan_at(time_fn: &impl Fn(usize) -> Seconds, pricing: Pricing, n: usize) -> Plan {
        let time = time_fn(n);
        Plan {
            n,
            time,
            cost: pricing.cost(n, time),
        }
    }

    /// The cheapest cluster that finishes within `deadline`, or `None`
    /// when no candidate size makes the deadline (the "may sometimes
    /// prevent them" answer). Exact cost ties resolve to the smallest `n`
    /// (fewer machines to provision for the same bill).
    pub fn cheapest_within_deadline(&self, deadline: Seconds) -> Option<Plan> {
        self.plans
            .iter()
            .copied()
            .filter(|p| p.time <= deadline)
            .min_by(|a, b| a.cost.total_cmp(&b.cost).then(a.n.cmp(&b.n)))
    }

    /// The fastest cluster whose cost stays within `budget`, or `None`
    /// when even one node exceeds it. Exact time ties resolve to the
    /// smallest `n`.
    pub fn fastest_within_budget(&self, budget: f64) -> Option<Plan> {
        self.plans
            .iter()
            .copied()
            .filter(|p| p.cost <= budget)
            .min_by(|a, b| {
                a.time
                    .as_secs()
                    .total_cmp(&b.time.as_secs())
                    .then(a.n.cmp(&b.n))
            })
    }

    /// The minimum-cost configuration overall. With hourly-only pricing
    /// this is the efficiency sweet spot: cost ∝ `n·t(n)`, which is
    /// minimal where parallel efficiency is highest. Exact cost ties
    /// resolve to the smallest `n`.
    pub fn cheapest(&self) -> Plan {
        self.plans
            .iter()
            .copied()
            .min_by(|a, b| a.cost.total_cmp(&b.cost).then(a.n.cmp(&b.n)))
            // lint: allow(panic-free-lib): the candidate list has one entry per n in 1..=max_n and max_n >= 1 is validated
            .expect("max_n >= 1")
    }

    /// The fastest configuration overall (the speedup optimum). Exact
    /// time ties resolve to the smallest `n`.
    pub fn fastest(&self) -> Plan {
        self.plans
            .iter()
            .copied()
            .min_by(|a, b| {
                a.time
                    .as_secs()
                    .total_cmp(&b.time.as_secs())
                    .then(a.n.cmp(&b.n))
            })
            // lint: allow(panic-free-lib): the candidate list has one entry per n in 1..=max_n and max_n >= 1 is validated
            .expect("max_n >= 1")
    }

    /// Full `(n, time, cost)` table for reporting.
    pub fn table(&self) -> Vec<Plan> {
        self.plans.clone()
    }
}

/// The Pareto frontier of `(cost, time)` points, both minimised: the
/// ascending indices of every point no other point dominates. Point `j`
/// dominates `i` when it is no worse on both axes and strictly better
/// on at least one — exact duplicates therefore survive together, and
/// non-finite points are never on the frontier.
///
/// This is the provisioning-space question the paper closes on: of all
/// candidate (cluster, workload, mitigation) configurations, which are
/// the undominated cost/time trade-offs? Adaptive sweeps refine the
/// grid only around this set. Runs in `O(n log n)`.
pub fn pareto_frontier(points: &[(f64, f64)]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..points.len())
        .filter(|&i| points[i].0.is_finite() && points[i].1.is_finite())
        .collect();
    order.sort_by(|&a, &b| {
        points[a]
            .0
            .total_cmp(&points[b].0)
            .then(points[a].1.total_cmp(&points[b].1))
    });
    let mut frontier = Vec::new();
    // Sweep in cost order: a point survives iff nothing strictly
    // cheaper matched its time, and nothing at equal cost beat it.
    let mut best_cheaper_time = f64::INFINITY;
    let mut i = 0;
    while i < order.len() {
        let group_cost = points[order[i]].0;
        let mut j = i;
        while j < order.len() && points[order[j]].0 == group_cost {
            j += 1;
        }
        let group = &order[i..j];
        let group_min_time = points[group[0]].1;
        if group_min_time < best_cheaper_time {
            frontier.extend(
                group
                    .iter()
                    .copied()
                    .filter(|&k| points[k].1 == group_min_time),
            );
        }
        best_cheaper_time = best_cheaper_time.min(group_min_time);
        i = j;
    }
    frontier.sort_unstable();
    frontier
}

#[cfg(test)]
mod tests {
    use super::*;

    /// t(n) = 3600·(1/n + 0.05·log2 n): peak speedup around n = 28,
    /// one node takes an hour.
    fn time_fn(n: usize) -> Seconds {
        Seconds::new(3600.0 * (1.0 / n as f64 + 0.05 * (n as f64).log2()))
    }

    fn planner() -> Planner {
        Planner::new(time_fn, 64, Pricing::hourly(2.0))
    }

    #[test]
    fn pricing_cost_formula() {
        let p = Pricing {
            node_hour: 3.0,
            per_node_fixed: 1.0,
        };
        // 4 nodes × (3 · 1800/3600 + 1) = 4 × 2.5.
        assert!((p.cost(4, Seconds::new(1800.0)) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn cheapest_hourly_is_single_node() {
        // With a convex 1/n + growing-comm model, n·t(n) is minimal at 1.
        let plan = planner().cheapest();
        assert_eq!(plan.n, 1);
        assert!(
            (plan.cost - 2.0).abs() < 1e-9,
            "one node for one hour at 2/h"
        );
    }

    #[test]
    fn fastest_matches_speedup_optimum() {
        let plan = planner().fastest();
        // d/dn(1/n + 0.05 log2 n) = 0 at n = ln2/0.05 ≈ 13.9.
        assert!((13..=15).contains(&plan.n), "got {}", plan.n);
    }

    #[test]
    fn deadline_planning_picks_cheapest_feasible() {
        let p = planner();
        // Deadline of 30 minutes: feasible (t(4) ≈ 990 s), and the
        // cheapest feasible n is the smallest one meeting it.
        let plan = p
            .cheapest_within_deadline(Seconds::new(1800.0))
            .expect("feasible");
        assert!(plan.time.as_secs() <= 1800.0);
        // All cheaper configurations (smaller n here) must miss the deadline.
        for n in 1..plan.n {
            assert!(
                time_fn(n).as_secs() > 1800.0,
                "n={n} should miss the deadline"
            );
        }
    }

    #[test]
    fn impossible_deadline_returns_none() {
        // The model's best time is t(14) ≈ 937 s; a 60 s deadline fails.
        assert!(planner()
            .cheapest_within_deadline(Seconds::new(60.0))
            .is_none());
    }

    #[test]
    fn budget_planning_trades_money_for_time() {
        let p = planner();
        let tight = p.fastest_within_budget(2.5).expect("one node fits");
        let loose = p.fastest_within_budget(50.0).expect("rich budget");
        assert!(loose.time < tight.time, "more budget must buy speed");
        assert!(loose.cost <= 50.0 && tight.cost <= 2.5);
    }

    #[test]
    fn empty_budget_returns_none() {
        assert!(planner().fastest_within_budget(0.01).is_none());
    }

    #[test]
    fn fixed_per_node_cost_discourages_large_clusters() {
        let hourly = Planner::new(time_fn, 64, Pricing::hourly(2.0)).fastest_within_budget(20.0);
        let with_fixed = Planner::new(
            time_fn,
            64,
            Pricing {
                node_hour: 2.0,
                per_node_fixed: 1.0,
            },
        )
        .fastest_within_budget(20.0);
        let (h, f) = (hourly.unwrap(), with_fixed.unwrap());
        assert!(f.n <= h.n, "fixed cost must not increase the chosen size");
    }

    #[test]
    fn table_covers_range() {
        let t = planner().table();
        assert_eq!(t.len(), 64);
        assert_eq!(t[0].n, 1);
        assert_eq!(t[63].n, 64);
    }

    /// Perfect strong scaling on powers of two: t(n) = 4h/n, so hourly
    /// cost n·t(n) is *exactly* 4·price for n ∈ {1, 2, 4, 8} (exact in
    /// binary floating point). Everything else is deliberately terrible.
    fn tied_cost_fn(n: usize) -> Seconds {
        match n {
            1 | 2 | 4 | 8 => Seconds::new(4.0 * 3600.0 / n as f64),
            _ => Seconds::new(1e6),
        }
    }

    #[test]
    fn cheapest_tie_resolves_to_smallest_n() {
        let p = Planner::new(tied_cost_fn, 8, Pricing::hourly(2.0));
        // n ∈ {1, 2, 4, 8} all cost exactly 8.0; the tie must go to 1.
        let plan = p.cheapest();
        assert_eq!(plan.cost, 8.0, "fixture must produce an exact tie");
        assert_eq!(plan.n, 1, "equal cost resolves to the smallest n");
    }

    #[test]
    fn deadline_tie_resolves_to_smallest_feasible_n() {
        let p = Planner::new(tied_cost_fn, 8, Pricing::hourly(2.0));
        // A 2-hour deadline leaves {2, 4, 8} feasible, all at cost 8.0.
        let plan = p
            .cheapest_within_deadline(Seconds::new(2.0 * 3600.0))
            .expect("feasible");
        assert_eq!(plan.cost, 8.0);
        assert_eq!(plan.n, 2, "cost tie among {{2,4,8}} resolves to 2");
    }

    #[test]
    fn fastest_tie_resolves_to_smallest_n() {
        // Identical times everywhere: the speed tie must pick one node.
        let p = Planner::new(|_| Seconds::new(1000.0), 16, Pricing::hourly(1.0));
        assert_eq!(p.fastest().n, 1);
    }

    #[test]
    fn sweep_runs_once_across_all_query_verbs() {
        use std::cell::Cell;
        let calls = Cell::new(0usize);
        let counted = |n: usize| {
            calls.set(calls.get() + 1);
            time_fn(n)
        };
        let p = Planner::new(counted, 32, Pricing::hourly(2.0));
        assert_eq!(calls.get(), 32, "construction sweeps each n exactly once");
        let _ = p.cheapest();
        let _ = p.fastest();
        let _ = p.cheapest_within_deadline(Seconds::new(1800.0));
        let _ = p.fastest_within_budget(50.0);
        let _ = p.table();
        assert_eq!(calls.get(), 32, "query verbs must reuse the cached table");
    }

    #[test]
    fn parallel_sweep_is_bit_identical_to_serial() {
        let pricing = Pricing {
            node_hour: 2.0,
            per_node_fixed: 0.25,
        };
        let serial = Planner::new(time_fn, 48, pricing);
        for threads in [1usize, 2, 7] {
            let par =
                crate::par::with_thread_count(threads, || Planner::new_par(time_fn, 48, pricing));
            assert_eq!(serial.table(), par.table(), "threads = {threads}");
        }
    }

    #[test]
    fn log_planner_refines_to_the_dense_optima() {
        // Unimodal time (and cost) in n: the sparse ladder plus ternary
        // refinement must land on exactly the plans the dense sweep finds.
        let pricing = Pricing {
            node_hour: 2.0,
            per_node_fixed: 0.01,
        };
        let dense = Planner::new(time_fn, 4096, pricing);
        let log = Planner::new_log(time_fn, 4096, pricing, 40);
        assert_eq!(log.fastest(), dense.fastest());
        assert_eq!(log.cheapest(), dense.cheapest());
    }

    #[test]
    fn log_planner_evaluation_count_is_logarithmic() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let calls = AtomicUsize::new(0);
        let counted = |n: usize| {
            calls.fetch_add(1, Ordering::Relaxed);
            time_fn(n)
        };
        let p = Planner::new_log(counted, 1_000_000, Pricing::hourly(2.0), 200);
        let evals = calls.load(Ordering::Relaxed);
        assert!(
            evals < 400,
            "a 10⁶-candidate planner must stay O(points): {evals} calls"
        );
        // Verbs reuse the table.
        let _ = p.fastest();
        let _ = p.cheapest();
        let _ = p.cheapest_within_deadline(Seconds::new(1800.0));
        let _ = p.fastest_within_budget(50.0);
        assert_eq!(calls.load(Ordering::Relaxed), evals);
        // And the refined optimum matches the analytic one (ln2/0.05 ≈ 13.9).
        assert!((13..=15).contains(&p.fastest().n), "got {}", p.fastest().n);
    }

    #[test]
    fn log_planner_handles_degenerate_ranges() {
        let p = Planner::new_log(time_fn, 1, Pricing::hourly(1.0), 16);
        assert_eq!(p.fastest().n, 1);
        assert_eq!(p.table().len(), 1);
        let p2 = Planner::new_log(time_fn, 2, Pricing::hourly(1.0), 2);
        assert_eq!(p2.table().len(), 2);
    }

    #[test]
    fn budget_tie_resolves_to_smallest_n() {
        // n = 3 and n = 5 are equally fast and both affordable; 3 wins.
        let time_fn = |n: usize| match n {
            3 | 5 => Seconds::new(1000.0),
            _ => Seconds::new(5000.0),
        };
        let p = Planner::new(time_fn, 8, Pricing::hourly(1.0));
        let plan = p.fastest_within_budget(100.0).expect("affordable");
        assert_eq!(plan.n, 3, "time tie resolves to the smaller cluster");
    }

    /// Brute-force O(n²) frontier for cross-checking the sweep version.
    fn frontier_naive(points: &[(f64, f64)]) -> Vec<usize> {
        (0..points.len())
            .filter(|&i| {
                let (ci, ti) = points[i];
                ci.is_finite()
                    && ti.is_finite()
                    && !points.iter().enumerate().any(|(j, &(cj, tj))| {
                        j != i && cj <= ci && tj <= ti && (cj < ci || tj < ti)
                    })
            })
            .collect()
    }

    #[test]
    fn pareto_frontier_keeps_exactly_the_undominated_points() {
        let points = [
            (1.0, 10.0), // frontier: cheapest
            (2.0, 5.0),  // frontier: trade-off
            (2.0, 6.0),  // dominated at equal cost
            (3.0, 5.0),  // dominated by (2, 5)
            (4.0, 1.0),  // frontier: fastest
            (5.0, 2.0),  // dominated
        ];
        assert_eq!(pareto_frontier(&points), vec![0, 1, 4]);
        assert_eq!(pareto_frontier(&points), frontier_naive(&points));
    }

    #[test]
    fn pareto_frontier_keeps_exact_duplicates_together() {
        let points = [(1.0, 2.0), (1.0, 2.0), (2.0, 1.0), (2.0, 3.0)];
        assert_eq!(pareto_frontier(&points), vec![0, 1, 2]);
        assert_eq!(pareto_frontier(&points), frontier_naive(&points));
    }

    #[test]
    fn pareto_frontier_drops_non_finite_points() {
        let points = [(f64::NAN, 0.0), (0.5, f64::INFINITY), (1.0, 1.0)];
        assert_eq!(pareto_frontier(&points), vec![2]);
        assert!(pareto_frontier(&[]).is_empty());
    }

    #[test]
    fn pareto_frontier_matches_brute_force_on_a_lattice() {
        // Every (cost, time) pair over a coarse lattice, including ties
        // on both axes — the sweep and the naive definition must agree.
        let mut points = Vec::new();
        for c in 0..7 {
            for t in 0..7 {
                points.push((f64::from(c) * 0.5, f64::from((t * 13) % 7)));
            }
        }
        assert_eq!(pareto_frontier(&points), frontier_naive(&points));
    }
}
