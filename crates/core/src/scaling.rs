//! Strong- and weak-scaling analysis drivers.
//!
//! "Strong scaling is when we fix the input size `D` and vary the number of
//! computing nodes. Weak scaling is when we vary both the input size and the
//! number of nodes." The two practitioner questions from the paper's
//! introduction are answered by [`StrongScaling::nodes_for_time_reduction`]
//! and [`WeakScaling::nodes_for_constant_time`].

use crate::speedup::SpeedupCurve;
use crate::units::Seconds;

/// Strong scaling: fixed total workload, growing cluster.
pub struct StrongScaling<F> {
    time_fn: F,
    max_n: usize,
}

impl<F: Fn(usize) -> Seconds> StrongScaling<F> {
    /// Wraps a model's `t(n)` (total workload fixed inside the closure).
    pub fn new(time_fn: F, max_n: usize) -> Self {
        assert!(max_n >= 1);
        Self { time_fn, max_n }
    }

    /// Speedup curve over `1..=max_n`.
    pub fn curve(&self) -> SpeedupCurve {
        SpeedupCurve::from_fn(1..=self.max_n, &self.time_fn)
    }

    /// Scenario (1) of the paper's introduction: "Given a workload, how many
    /// more machines are needed to decrease the run time by a certain
    /// amount?" Returns the smallest `n ≤ max_n` with
    /// `t(n) ≤ t(current)/factor`, or `None` if unattainable (the required
    /// speedup may exceed the model's optimum).
    pub fn nodes_for_time_reduction(&self, current_n: usize, factor: f64) -> Option<usize> {
        assert!(factor >= 1.0, "reduction factor must be >= 1");
        let target = (self.time_fn)(current_n).as_secs() / factor;
        (current_n..=self.max_n).find(|&n| (self.time_fn)(n).as_secs() <= target)
    }

    /// The optimal cluster size `argmax s(n)` and its speedup.
    pub fn optimal(&self) -> (usize, f64) {
        self.curve().optimal()
    }
}

/// Weak scaling: workload grows with the cluster.
///
/// The workload growth rule is captured in the closure: `time_fn(n)` must
/// return the iteration time when `n` workers process the grown input
/// `D(n)` (e.g. per-worker batch kept constant).
pub struct WeakScaling<F> {
    time_fn: F,
    max_n: usize,
}

impl<F: Fn(usize) -> Seconds> WeakScaling<F> {
    /// Wraps a model's weak-scaling `t(n)`.
    pub fn new(time_fn: F, max_n: usize) -> Self {
        assert!(max_n >= 1);
        Self { time_fn, max_n }
    }

    /// Per-instance speedup curve (`t(n)/n` per processed unit, the Fig 3
    /// metric) over `1..=max_n`.
    pub fn per_instance_curve(&self) -> SpeedupCurve {
        SpeedupCurve::from_fn(1..=self.max_n, |n| (self.time_fn)(n) / n as f64)
    }

    /// Raw iteration-time curve (constant per-worker workload). Note this is
    /// *not* a speedup in the classic sense: perfect weak scaling keeps the
    /// time flat.
    pub fn iteration_times(&self) -> Vec<(usize, Seconds)> {
        (1..=self.max_n).map(|n| (n, (self.time_fn)(n))).collect()
    }

    /// Scenario (2) of the paper's introduction: "Given an increasing
    /// workload, how many more machines to add to keep the run time the
    /// same?" Finds the smallest `n ≥ current_n` whose *grown-workload*
    /// iteration time stays within `tolerance` (relative) of the current
    /// time when the input grows by `growth` (the per-worker share is
    /// `growth/n·current_n` of the old one, handled by the caller's
    /// `time_fn` being per-worker-constant — so this just searches for the
    /// point where added communication no longer blows the budget).
    ///
    /// Returns `None` when even `max_n` cannot hold the time (e.g. linear
    /// communication saturating).
    pub fn nodes_for_constant_time(
        &self,
        current_n: usize,
        growth: f64,
        tolerance: f64,
    ) -> Option<usize> {
        assert!(growth >= 1.0, "workload growth must be >= 1");
        let budget = (self.time_fn)(current_n).as_secs() * (1.0 + tolerance);
        // With a per-worker-constant time_fn, processing `growth ×` data at
        // the same per-worker share requires `growth × current_n` workers;
        // communication may still push the time over budget, so search
        // upward from there.
        let start = (growth * current_n as f64).ceil() as usize;
        (start..=self.max_n).find(|&n| (self.time_fn)(n).as_secs() <= budget)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Strong model: t(n) = 16/n + 0.1·log2(n).
    fn strong_time(n: usize) -> Seconds {
        Seconds::new(16.0 / n as f64 + 0.1 * (n as f64).log2())
    }

    /// Weak model: t(n) = 1 + 0.05·log2(n) (per-worker batch constant).
    fn weak_time(n: usize) -> Seconds {
        Seconds::new(1.0 + 0.05 * (n as f64).log2())
    }

    #[test]
    fn strong_curve_peaks_interior() {
        let s = StrongScaling::new(strong_time, 128);
        let (n_opt, _) = s.optimal();
        assert!(n_opt > 1 && n_opt < 128);
    }

    #[test]
    fn nodes_for_halving_runtime() {
        let s = StrongScaling::new(strong_time, 128);
        let n = s
            .nodes_for_time_reduction(1, 2.0)
            .expect("halving feasible");
        assert!(strong_time(n).as_secs() <= strong_time(1).as_secs() / 2.0);
        // And it is the smallest such n.
        assert!(strong_time(n - 1).as_secs() > strong_time(1).as_secs() / 2.0);
    }

    #[test]
    fn infeasible_reduction_returns_none() {
        let s = StrongScaling::new(strong_time, 128);
        // t(1)=16; the model's minimum is bounded below by ~0.4, so a
        // 100× reduction is unattainable.
        assert_eq!(s.nodes_for_time_reduction(1, 100.0), None);
    }

    #[test]
    fn weak_per_instance_curve_monotone_for_log_comm() {
        let w = WeakScaling::new(weak_time, 256);
        let c = w.per_instance_curve();
        let sp = c.speedups();
        for pair in sp.windows(2) {
            assert!(pair[1].1 > pair[0].1, "log comm ⇒ infinite weak scaling");
        }
    }

    #[test]
    fn weak_iteration_times_grow_slowly() {
        let w = WeakScaling::new(weak_time, 64);
        let times = w.iteration_times();
        assert_eq!(times.len(), 64);
        assert!(times[63].1.as_secs() < 1.5, "log growth stays modest");
    }

    #[test]
    fn nodes_for_constant_time_with_log_comm() {
        let w = WeakScaling::new(weak_time, 1024);
        // Workload doubles from n=8: need ≥16 workers; log comm adds little,
        // so 16 should fit a 10 % tolerance.
        let n = w.nodes_for_constant_time(8, 2.0, 0.10).expect("feasible");
        assert!(n >= 16);
        assert!(weak_time(n).as_secs() <= weak_time(8).as_secs() * 1.10);
    }

    #[test]
    fn nodes_for_constant_time_infeasible_with_linear_comm() {
        // Linear comm: t(n) = 1 + 0.05·n — grows without bound.
        let w = WeakScaling::new(|n| Seconds::new(1.0 + 0.05 * n as f64), 512);
        assert_eq!(w.nodes_for_constant_time(64, 2.0, 0.05), None);
    }

    #[test]
    #[should_panic(expected = "factor")]
    fn reduction_factor_below_one_rejected() {
        let s = StrongScaling::new(strong_time, 8);
        let _ = s.nodes_for_time_reduction(1, 0.5);
    }
}
