//! # mlscale-core — analytic scalability models for distributed ML
//!
//! A Rust implementation of the modeling framework of
//! *Modeling Scalability of Distributed Machine Learning*
//! (Ulanov, Simanovsky, Marwah — ICDE 2017, arXiv:1610.06276).
//!
//! The framework predicts, **from hardware specifications alone** (no
//! profiling runs), how a distributed machine-learning algorithm scales
//! with the number of workers:
//!
//! * an algorithm is a series of BSP [supersteps](superstep), each a
//!   computation phase ([`comp`]) followed by a non-overlapping
//!   communication phase ([`comm`]): `t = t_cp + t_cm`;
//! * scalability is read off the [speedup](speedup) curve
//!   `s(n) = t(1)/t(n)`, whose argmax is the optimal cluster size;
//! * [strong and weak scaling](scaling) answer the two practitioner
//!   questions: "how many machines to get K× faster?" and "how many
//!   machines to keep up with growing data?";
//! * [`models::gd`] and [`models::graphinf`] instantiate the framework for
//!   gradient descent and graphical-model inference, the paper's two use
//!   cases; [`metrics`] quantifies model-vs-measurement agreement (MAPE);
//! * [`straggler`] extends the deterministic framework with stochastic
//!   per-worker runtimes: expected barrier costs as order statistics,
//!   heterogeneous clusters, and the drop-slowest-k backup mitigation;
//! * [`par`] is the dependency-free chunked parallel map every hot path
//!   (curve sweeps, planner tables, workload simulations) fans out
//!   through — deterministic ordering, `MLSCALE_THREADS` override, and
//!   bit-identical to serial evaluation.
//!
//! ## Quick example — the paper's Fig 2 configuration
//!
//! ```
//! use mlscale_core::hardware::presets;
//! use mlscale_core::models::gd::{GdComm, GradientDescentModel};
//! use mlscale_core::units::FlopCount;
//!
//! let model = GradientDescentModel {
//!     cost_per_example: FlopCount::new(6.0 * 12e6), // 6·W madds
//!     batch_size: 60_000.0,                         // full MNIST batch
//!     params: 12e6,
//!     bits_per_param: 64,                           // Spark doubles
//!     cluster: presets::spark_cluster(),
//!     comm: GdComm::Spark,
//! };
//! let curve = model.strong_curve(1..=13);
//! let (n_opt, s_opt) = curve.optimal();
//! assert_eq!(n_opt, 9); // paper: "the optimal number of workers is nine"
//! assert!(s_opt > 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod comm;
pub mod comp;
pub mod faultpoint;
pub mod hardware;
pub mod metrics;
pub mod par;
pub mod planner;
pub mod scaling;
pub mod speedup;
pub mod straggler;
pub mod superstep;
pub mod units;

/// Algorithm-specific instantiations of the framework.
pub mod models {
    pub mod asyncgd;
    pub mod gd;
    pub mod graphinf;
}

pub use comm::CommModel;
pub use comp::CompModel;
pub use hardware::{ClusterSpec, Heterogeneity, LinkSpec, NodeSpec};
pub use speedup::SpeedupCurve;
pub use straggler::{
    OrderStatCache, OrderStatCachePool, StragglerGdModel, StragglerGraphModel, StragglerModel,
};
pub use superstep::{AlgorithmModel, Superstep};
