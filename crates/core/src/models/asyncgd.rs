//! Analytic model of **asynchronous** gradient descent on a parameter
//! server — the paper's first future-work item ("building a model for
//! asynchronous algorithms, such as asynchronous gradient descent"),
//! carried out.
//!
//! Workers cycle independently (pull parameters, compute a gradient, push
//! it); the server applies updates in arrival order. Two resources bound
//! the system:
//!
//! * each worker's cycle time
//!   `t_cycle = t_pull + t_comp + t_push + t_apply` (the next pull returns
//!   parameters only once the worker's own update has been applied),
//!   giving an offered load of `n / t_cycle` updates per second;
//! * the server, whose NIC halves are full duplex and whose CPU applies
//!   update `i` while the NIC already receives push `i+1` — consecutive
//!   updates *pipeline*, so the serialised cost per update is the widest
//!   stage, `t_srv = max(t_transfer, t_apply)`, capping throughput at
//!   `1 / t_srv` (validated against the event-level simulator in
//!   `tests/model_vs_simulation.rs`).
//!
//! ```text
//! X(n) = min( n / t_cycle , 1 / t_srv )          (updates per second)
//! ```
//!
//! Expected gradient staleness is the number of other updates applied
//! between a worker's pull and the application of its push. Each of the
//! other `n − 1` workers lands exactly one update per own-cycle, in or out
//! of saturation (queueing stretches every cycle equally), so
//! `E[staleness] = n − 1`: past the saturation point parallelism adds
//! staleness without adding throughput — the parallelism-vs-convergence
//! trade-off the paper highlights.

use crate::units::{Bits, BitsPerSec, FlopCount, FlopsRate, Seconds};
use serde::{Deserialize, Serialize};

/// Analytic asynchronous-SGD model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AsyncGdModel {
    /// Gradient computation per update.
    pub grad_work: FlopCount,
    /// Effective worker compute rate.
    pub worker_flops: FlopsRate,
    /// Server compute rate (for the apply step).
    pub server_flops: FlopsRate,
    /// Cost of applying one update at the server.
    pub apply_work: FlopCount,
    /// Parameter/gradient payload per transfer.
    pub payload: Bits,
    /// Link bandwidth.
    pub bandwidth: BitsPerSec,
    /// Per-message link latency `α` (each pull and each push is one
    /// message, so it enters both the worker cycle and the server
    /// occupancy — matching the simulator's per-transfer charge).
    pub latency: Seconds,
}

impl AsyncGdModel {
    /// One transfer's time `α + payload/B`.
    pub fn transfer_time(&self) -> Seconds {
        self.latency + self.payload / self.bandwidth
    }

    /// A worker's full cycle time: pull + compute + push + apply — the
    /// next pull can only return parameters that include the worker's own
    /// update, so the apply step sits on the worker's critical path too.
    pub fn cycle_time(&self) -> Seconds {
        self.transfer_time() * 2.0
            + self.grad_work / self.worker_flops
            + self.apply_work / self.server_flops
    }

    /// Server occupancy per update. The NIC is full duplex (pulls occupy
    /// the send half, pushes the receive half) and the CPU applies update
    /// `i` while the receive half already takes in push `i+1`, so
    /// consecutive updates pipeline: the serialised cost is the *widest*
    /// stage, `max(t_transfer, t_apply)` — not their sum.
    pub fn server_time_per_update(&self) -> Seconds {
        self.transfer_time()
            .max(self.apply_work / self.server_flops)
    }

    /// Predicted throughput in updates per second with `n` workers:
    /// `min(n/t_cycle, 1/t_srv)`.
    pub fn throughput(&self, n: usize) -> f64 {
        assert!(n >= 1);
        let offered = n as f64 / self.cycle_time().as_secs();
        let cap = 1.0 / self.server_time_per_update().as_secs();
        offered.min(cap)
    }

    /// The worker count at which the server saturates: beyond this,
    /// adding workers only adds staleness.
    pub fn saturation_point(&self) -> usize {
        let ratio = self.cycle_time().as_secs() / self.server_time_per_update().as_secs();
        ratio.ceil().max(1.0) as usize
    }

    /// Expected staleness of an applied gradient with `n` workers: each of
    /// the other `n − 1` workers applies exactly one update per own-cycle
    /// (saturation stretches every cycle equally), so `E[staleness] = n − 1`
    /// — it keeps growing past the saturation point even though throughput
    /// no longer does.
    pub fn expected_staleness(&self, n: usize) -> f64 {
        assert!(n >= 1);
        n as f64 - 1.0
    }

    /// Throughput speedup over one worker.
    pub fn speedup(&self, n: usize) -> f64 {
        self.throughput(n) / self.throughput(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> AsyncGdModel {
        AsyncGdModel {
            grad_work: FlopCount::giga(1.0), // 1 s at 1 Gflop/s
            worker_flops: FlopsRate::giga(1.0),
            server_flops: FlopsRate::giga(1.0),
            apply_work: FlopCount::new(1e6), // 1 ms apply
            payload: Bits::mega(100.0),      // 0.01 s per transfer
            bandwidth: BitsPerSec::giga(10.0),
            latency: Seconds::zero(),
        }
    }

    #[test]
    fn cycle_time_components() {
        let m = model();
        // pull + compute + push + apply.
        let expected = 0.01 + 1.0 + 0.01 + 0.001;
        assert!((m.cycle_time().as_secs() - expected).abs() < 1e-12);
    }

    #[test]
    fn throughput_linear_before_saturation() {
        let m = model();
        let t1 = m.throughput(1);
        let t4 = m.throughput(4);
        assert!(
            (t4 / t1 - 4.0).abs() < 1e-9,
            "pre-saturation scaling is linear"
        );
    }

    #[test]
    fn throughput_capped_at_server_rate() {
        let m = model();
        let cap = 1.0 / m.server_time_per_update().as_secs();
        assert!((m.throughput(10_000) - cap).abs() < 1e-9);
    }

    #[test]
    fn saturation_point_consistent_with_cap() {
        let m = model();
        let sat = m.saturation_point();
        // Just below saturation: still (nearly) linear; just above: capped.
        assert!(m.throughput(sat + 1) <= m.throughput(sat) + 1e-9);
        assert!(m.throughput(sat.saturating_sub(2).max(1)) < m.throughput(sat) + 1e-9);
        // cycle 1.021 s / server max(0.01, 0.001) s = 102.1 → 103.
        assert_eq!(sat, 103);
    }

    #[test]
    fn server_stages_pipeline_rather_than_serialise() {
        // Transfer 0.01 s, apply 0.005 s: the pipelined cap is 1/0.01,
        // not 1/0.015 — consecutive pushes stream through the NIC while
        // the CPU applies the previous update.
        let m = AsyncGdModel {
            apply_work: FlopCount::new(5e6),
            ..model()
        };
        assert!((m.server_time_per_update().as_secs() - 0.01).abs() < 1e-12);
        // Apply-bound server: cap flips to the CPU stage.
        let cpu_bound = AsyncGdModel {
            apply_work: FlopCount::new(5e7),
            ..model()
        };
        assert!((cpu_bound.server_time_per_update().as_secs() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn staleness_is_n_minus_1() {
        let m = model();
        for n in [1usize, 2, 8, 32] {
            let s = m.expected_staleness(n);
            assert!((s - (n as f64 - 1.0)).abs() < 1e-6, "n={n}: staleness {s}");
        }
    }

    #[test]
    fn staleness_keeps_growing_after_saturation() {
        // Past the saturation point parallelism buys staleness, not
        // throughput — the trade-off the event simulator exhibits.
        let m = model();
        let sat = m.saturation_point();
        let at_sat = m.expected_staleness(sat);
        let beyond = m.expected_staleness(sat * 4);
        assert!((beyond - (4 * sat) as f64 + 1.0).abs() < 1e-9);
        assert!(beyond > at_sat);
        assert!((m.throughput(sat * 4) - m.throughput(sat)).abs() < 1e-9);
    }

    #[test]
    fn speedup_is_one_at_one_worker() {
        assert!((model().speedup(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn heavier_payload_saturates_earlier() {
        let light = model();
        let heavy = AsyncGdModel {
            payload: Bits::giga(2.0),
            ..model()
        };
        assert!(heavy.saturation_point() < light.saturation_point());
    }

    #[test]
    fn link_latency_lowers_the_server_cap() {
        let fast = model();
        let laggy = AsyncGdModel {
            latency: Seconds::from_millis(5.0),
            ..model()
        };
        // α enters every pull/push: the server serialises fewer updates
        // per second and saturates at a smaller worker count.
        let cap_fast = 1.0 / fast.server_time_per_update().as_secs();
        let cap_laggy = 1.0 / laggy.server_time_per_update().as_secs();
        assert!(cap_laggy < cap_fast);
        assert!(laggy.saturation_point() < fast.saturation_point());
        assert!((laggy.transfer_time().as_secs() - 0.015).abs() < 1e-12);
    }
}
