//! The paper's gradient-descent scalability model (Section IV-A, V-A).
//!
//! Data-parallel (mini-)batch gradient descent: every worker computes the
//! gradient on its share of the batch, gradients are aggregated at a master
//! and updated parameters are broadcast back. Per iteration:
//!
//! ```text
//! t_cp = C·S / (F·n)                      -- computation
//! t_cm = 2·(bits·W/B)·log₂ n              -- generic tree exchange
//!      | (bits·W/B)·log₂ n + 2·(bits·W/B)·⌈√n⌉   -- Spark (Fig 2)
//!      | n·(bits·W/B)                     -- linear (ablation)
//! ```
//!
//! where `C` is the per-example gradient cost, `S` the batch size, `W` the
//! number of parameters, `F` effective FLOPS per node and `B` the link
//! bandwidth.

use crate::comm::{
    AlphaBeta, CommModel, HalvingDoubling, Hierarchical, Linear, NoComm, RackTiered, RingAllReduce,
    SparkGradientExchange, TwoStageTreeExchange,
};
use crate::hardware::ClusterSpec;
use crate::speedup::SpeedupCurve;
use crate::units::{Bits, FlopCount, Seconds};
use serde::{Deserialize, Serialize};

/// Which communication architecture moves the gradients/parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GdComm {
    /// The paper's generic model: broadcast + aggregation each organised as
    /// a binary tree, `t_cm = 2·(bits·W/B)·log₂ n`.
    TwoStageTree,
    /// Spark's actual mechanism (Fig 2): torrent broadcast (`log₂ n`) plus
    /// two-wave `treeAggregate` (`2·⌈√n⌉`).
    Spark,
    /// Flat master-centric exchange, `t_cm = 2·n·(bits·W/B)` — the
    /// linear-communication baseline the paper contrasts against.
    LinearFlat,
    /// Bandwidth-optimal ring all-reduce, `t_cm = 2·(n−1)/n·(bits·W/B)`.
    Ring,
    /// Recursive halving/doubling all-reduce: ring's bandwidth term in
    /// only `2·log₂ n` rounds — the MPI large-message workhorse.
    HalvingDoubling,
    /// Two-tier rack-aware collective: intra-rack tree + inter-rack ring
    /// over the cluster's [`crate::hardware::RackSpec`] topology. On a
    /// flat cluster it degenerates to a single-rack tree exchange.
    Hierarchical,
    /// No communication (upper bound / single-machine sanity checks).
    None,
}

/// Scalability model of synchronous data-parallel gradient descent.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GradientDescentModel {
    /// Computation cost `C` of the gradient on one data point
    /// (multiply-adds; for a fully-connected ANN this is `6·W`).
    pub cost_per_example: FlopCount,
    /// Batch size `S`. For strong scaling this is the *total* batch split
    /// across workers; for weak scaling it is the *per-worker* batch.
    pub batch_size: f64,
    /// Number of model parameters `W`.
    pub params: f64,
    /// Bits per parameter (32 for single precision, 64 for Spark's doubles).
    pub bits_per_param: u32,
    /// The cluster executing the workload.
    pub cluster: ClusterSpec,
    /// Communication architecture.
    pub comm: GdComm,
}

impl GradientDescentModel {
    /// Parameter payload volume `bits·W`.
    #[inline]
    pub fn param_volume(&self) -> Bits {
        Bits::params(self.params, self.bits_per_param)
    }

    /// The communication model object for this configuration.
    ///
    /// When the cluster's link carries a per-message latency, every
    /// pure-bandwidth collective is wrapped in [`AlphaBeta`] so `t_cm`
    /// takes the full `rounds·α + volume/B` form; at zero latency the
    /// wrapper is exactly the paper's bandwidth-only model.
    /// [`GdComm::Hierarchical`] reads latency from its per-tier links and
    /// is never double-wrapped.
    ///
    /// A *flat* collective on a cluster with a rack topology is evaluated
    /// through [`RackTiered`]: intra-rack link parameters while the job
    /// fits one rack, the uplink tier once it spans racks (exact for the
    /// ring pipeline, conservative for tree shapes) — keeping the analytic
    /// prediction honest against the rack-routing simulator instead of
    /// silently assuming every hop is intra-rack.
    pub fn comm_model(&self) -> Box<dyn CommModel> {
        let volume = self.param_volume();
        if matches!(self.comm, GdComm::Hierarchical) {
            return Box::new(Hierarchical::from_cluster(volume, &self.cluster));
        }
        match self.cluster.rack {
            None => self.flat_comm_model(self.cluster.link),
            Some(rack) => Box::new(RackTiered {
                rack_size: rack.nodes_per_rack,
                within: self.flat_comm_model(self.cluster.link),
                spanning: self.flat_comm_model(rack.uplink),
            }),
        }
    }

    /// The configured flat collective priced over one link tier.
    fn flat_comm_model(&self, link: crate::hardware::LinkSpec) -> Box<dyn CommModel> {
        let volume = self.param_volume();
        let bandwidth = link.bandwidth;
        let base: Box<dyn CommModel> = match self.comm {
            GdComm::TwoStageTree => Box::new(TwoStageTreeExchange { volume, bandwidth }),
            GdComm::Spark => Box::new(SparkGradientExchange { volume, bandwidth }),
            GdComm::LinearFlat => Box::new(crate::comm::Scaled {
                inner: Linear { volume, bandwidth },
                factor: 2.0,
            }),
            GdComm::Ring => Box::new(RingAllReduce { volume, bandwidth }),
            GdComm::HalvingDoubling => Box::new(HalvingDoubling { volume, bandwidth }),
            // lint: allow(panic-free-lib): comm_model() intercepts Hierarchical before this constructor can see it
            GdComm::Hierarchical => unreachable!("handled by comm_model"),
            GdComm::None => Box::new(NoComm),
        };
        if link.latency.is_zero() {
            base
        } else {
            Box::new(AlphaBeta {
                inner: base,
                latency: link.latency,
            })
        }
    }

    /// Communication time `t_cm(n)`.
    pub fn comm_time(&self, n: usize) -> Seconds {
        self.comm_model().time(n)
    }

    /// Strong-scaling computation time: the fixed batch `S` is split across
    /// `n` workers, `t_cp = C·S/(F·n)`.
    pub fn strong_comp_time(&self, n: usize) -> Seconds {
        assert!(n >= 1);
        let total = self.cost_per_example * self.batch_size;
        (total / self.cluster.flops()) / n as f64
    }

    /// Strong-scaling iteration time `t(n) = t_cp(n) + t_cm(n)`.
    pub fn strong_iteration_time(&self, n: usize) -> Seconds {
        self.strong_comp_time(n) + self.comm_time(n)
    }

    /// Weak-scaling iteration time: every worker keeps a full per-worker
    /// batch `S` (the effective global batch grows as `S·n`), so
    /// `t = C·S/F + t_cm(n)`.
    pub fn weak_iteration_time(&self, n: usize) -> Seconds {
        assert!(n >= 1);
        let per_worker = self.cost_per_example * self.batch_size;
        per_worker / self.cluster.flops() + self.comm_time(n)
    }

    /// The paper's Fig 3 metric: "time complexity of processing of one
    /// instance", `t = (C·S/F + t_cm(n)) / n` (up to the constant factor
    /// `S`, which cancels in speedups).
    pub fn weak_per_instance_time(&self, n: usize) -> Seconds {
        self.weak_iteration_time(n) / n as f64
    }

    /// Strong-scaling speedup curve over worker counts `ns`.
    pub fn strong_curve(&self, ns: impl IntoIterator<Item = usize>) -> SpeedupCurve {
        SpeedupCurve::from_fn(ns, |n| self.strong_iteration_time(n))
    }

    /// Weak-scaling per-instance speedup curve over `ns`.
    pub fn weak_curve(&self, ns: impl IntoIterator<Item = usize>) -> SpeedupCurve {
        SpeedupCurve::from_fn(ns, |n| self.weak_per_instance_time(n))
    }

    /// Worker count where strong-scaling communication first exceeds
    /// computation — past this point most of the superstep is overhead.
    pub fn comm_dominance_onset(&self, max_n: usize) -> Option<usize> {
        (2..=max_n).find(|&n| self.comm_time(n) > self.strong_comp_time(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hardware::presets;

    /// The Fig 2 configuration: MNIST FC network on the Spark cluster.
    fn fig2_model() -> GradientDescentModel {
        GradientDescentModel {
            cost_per_example: FlopCount::new(6.0 * 12e6),
            batch_size: 60_000.0,
            params: 12e6,
            bits_per_param: 64,
            cluster: presets::spark_cluster(),
            comm: GdComm::Spark,
        }
    }

    /// The Fig 3 configuration: Inception v3 on a K40 cluster.
    fn fig3_model() -> GradientDescentModel {
        GradientDescentModel {
            cost_per_example: FlopCount::new(3.0 * 5e9),
            batch_size: 128.0,
            params: 25e6,
            bits_per_param: 32,
            cluster: presets::gpu_cluster(),
            comm: GdComm::TwoStageTree,
        }
    }

    #[test]
    fn strong_comp_matches_formula() {
        let m = fig2_model();
        let n = 5;
        let expected = 6.0 * 12e6 * 60_000.0 / (0.8 * 105.6e9 * n as f64);
        assert!((m.strong_comp_time(n).as_secs() - expected).abs() / expected < 1e-12);
    }

    #[test]
    fn spark_comm_matches_formula() {
        let m = fig2_model();
        let n = 9;
        let unit = 64.0 * 12e6 / 1e9;
        let expected = unit * (n as f64).log2() + 2.0 * unit * 3.0;
        assert!((m.comm_time(n).as_secs() - expected).abs() < 1e-9);
    }

    #[test]
    fn fig2_optimum_is_nine_workers_in_plotted_range() {
        // "The model suggests that the optimal number of workers is nine."
        // Over the paper's plotted range the argmax is exactly 9; past it
        // the ⌈√n⌉ staircase produces a flat plateau (s(16) ≈ s(9)), which
        // the experiment harness reports.
        let curve = fig2_model().strong_curve(1..=13);
        let (n_opt, s_opt) = curve.optimal();
        assert_eq!(n_opt, 9, "expected optimum at 9 workers (s={s_opt:.3})");
        assert!(
            s_opt > 3.5 && s_opt < 4.5,
            "paper's peak speedup is ≈4, got {s_opt:.3}"
        );
    }

    #[test]
    fn fig2_wider_range_stays_on_plateau() {
        let curve = fig2_model().strong_curve(1..=32);
        let s9 = curve.speedup_at(9).unwrap();
        let (_, s_opt) = curve.optimal();
        assert!(
            s_opt <= 1.1 * s9,
            "nothing beats 9 workers by more than 10 %"
        );
    }

    #[test]
    fn fig2_no_communication_time_at_one_worker() {
        let m = fig2_model();
        assert!(m.comm_time(1).is_zero());
        assert_eq!(m.strong_iteration_time(1), m.strong_comp_time(1));
    }

    #[test]
    fn fig3_weak_scaling_is_monotone_with_tree_comm() {
        // "Such assumption [logarithmic communication] allows infinite weak
        // scaling, i.e. adding more workers always increases single instance
        // speedup."
        // (From n = 2 on: going from 1 to 2 workers introduces the first
        // communication, so the curve may tick up there before the 1/n
        // amortisation takes over.)
        let m = fig3_model();
        let mut prev = f64::INFINITY;
        for n in 2..=256 {
            let t = m.weak_per_instance_time(n).as_secs();
            assert!(
                t < prev,
                "per-instance time must strictly decrease at n={n}"
            );
            prev = t;
        }
    }

    #[test]
    fn linear_comm_weak_scaling_saturates() {
        // "The linear communication model allows only finite scaling: after
        // enough workers added, the speedup remains constant."
        let m = GradientDescentModel {
            comm: GdComm::LinearFlat,
            ..fig3_model()
        };
        let t64 = m.weak_per_instance_time(64).as_secs();
        let t128 = m.weak_per_instance_time(128).as_secs();
        let t4096 = m.weak_per_instance_time(4096).as_secs();
        // Saturation: large-n per-instance times converge to the constant
        // 2·bits·W/B rather than continuing to drop proportionally.
        let drop_small = t64 / t128;
        let drop_large = t128 / t4096;
        assert!(drop_small < 2.0, "already saturating");
        assert!(
            drop_large < 1.2,
            "fully saturated at large n, got {drop_large}"
        );
    }

    #[test]
    fn fig3_rebased_at_50_matches_paper_convention() {
        let m = fig3_model();
        let curve = m.weak_curve(vec![25, 50, 100, 200]).rebased(50);
        assert!((curve.speedup_at(50).unwrap() - 1.0).abs() < 1e-12);
        assert!(curve.speedup_at(100).unwrap() > 1.0);
        assert!(curve.speedup_at(25).unwrap() < 1.0);
    }

    #[test]
    fn comm_dominance_onset_exists_for_fig2() {
        let m = fig2_model();
        let onset = m
            .comm_dominance_onset(64)
            .expect("comm must dominate eventually");
        assert!(onset > 1);
        // Before the onset computation dominates.
        assert!(m.strong_comp_time(onset - 1) >= m.comm_time(onset - 1));
    }

    #[test]
    fn ring_comm_beats_tree_for_large_n() {
        let tree = fig3_model();
        let ring = GradientDescentModel {
            comm: GdComm::Ring,
            ..fig3_model()
        };
        assert!(ring.comm_time(256) < tree.comm_time(256));
    }

    #[test]
    fn halving_doubling_beats_ring_on_latency_bound_links() {
        use crate::hardware::{ClusterSpec, LinkSpec};
        use crate::units::{BitsPerSec, Seconds};
        let cluster = ClusterSpec::new(
            presets::nvidia_k40(),
            LinkSpec::new(BitsPerSec::giga(100.0), Seconds::from_micros(20.0)),
        );
        let hd = GradientDescentModel {
            comm: GdComm::HalvingDoubling,
            cluster,
            ..fig3_model()
        };
        let ring = GradientDescentModel {
            comm: GdComm::Ring,
            cluster,
            ..fig3_model()
        };
        // 25e6 params · 32 bit / 100 Gbit/s = 8 ms serialisation; at n=64
        // ring pays 126 × 20 µs = 2.5 ms extra latency vs the tree's
        // 12 × 20 µs — the α term decides once volume terms are close.
        assert!(hd.comm_time(64) < ring.comm_time(64));
    }

    #[test]
    fn latency_free_cluster_keeps_paper_predictions() {
        // spark_cluster has a bandwidth-only link, so the α–β wrapper must
        // not engage and the Fig 2 optimum stays at 9.
        let m = fig2_model();
        assert!(m.cluster.link.latency.is_zero());
        let (n_opt, _) = m.strong_curve(1..=13).optimal();
        assert_eq!(n_opt, 9);
    }

    #[test]
    fn hierarchical_comm_scales_past_flat_optimum() {
        let flat = fig2_model();
        let hier = GradientDescentModel {
            cluster: presets::two_tier_pod(),
            comm: GdComm::Hierarchical,
            ..fig2_model()
        };
        let (n_flat, s_flat) = flat.strong_curve(1..=64).optimal();
        let (n_hier, s_hier) = hier.strong_curve(1..=64).optimal();
        assert!(
            n_hier > n_flat,
            "racked pod must push the optimum out: flat {n_flat}, hier {n_hier}"
        );
        assert!(s_hier > s_flat);
    }

    #[test]
    fn hierarchical_on_flat_cluster_is_tree_like() {
        let m = GradientDescentModel {
            comm: GdComm::Hierarchical,
            ..fig2_model()
        };
        // One big rack: 2·⌈log₂ n⌉ rounds of the full payload.
        let unit = 64.0 * 12e6 / 1e9;
        assert!((m.comm_time(8).as_secs() - 2.0 * 3.0 * unit).abs() < 1e-9);
        assert!(m.comm_time(1).is_zero());
    }

    #[test]
    fn param_volume_uses_bits_per_param() {
        let m = fig2_model();
        assert_eq!(m.param_volume().get(), 64.0 * 12e6);
        let m32 = GradientDescentModel {
            bits_per_param: 32,
            ..m
        };
        assert_eq!(m32.param_volume().get(), 32.0 * 12e6);
    }

    #[test]
    fn none_comm_scales_perfectly() {
        let m = GradientDescentModel {
            comm: GdComm::None,
            ..fig2_model()
        };
        let c = m.strong_curve(1..=32);
        for (n, s) in c.speedups() {
            assert!(
                (s - n as f64).abs() < 1e-9,
                "perfect linear speedup expected"
            );
        }
    }
}
